//! Campaign hunter: the analyst workflow for one SEACMA campaign.
//!
//! Starting from a single publisher page, this example clicks an ad,
//! reaches an SE attack, reconstructs the backtracking graph, extracts and
//! validates the milkable upstream URL, then tracks the campaign for a
//! week — enumerating the throw-away domains it burns and checking each
//! against Google Safe Browsing, exactly the loop a threat-intel analyst
//! would run with this library.
//!
//! ```sh
//! cargo run --release --example campaign_hunter
//! ```

use seacma_core::blacklist::{GsbService, VirusTotal};
use seacma_core::browser::{BrowserConfig, BrowserSession};
use seacma_core::graph::{milkable, Attributor, BacktrackGraph};
use seacma_core::milker::{validate_candidates, Milker, MilkingCandidate, MilkingConfig};
use seacma_core::simweb::{SimDuration, SimTime, UaProfile, Vantage, World, WorldConfig};
use seacma_core::Pipeline;

fn main() {
    let world = World::generate(WorldConfig {
        seed: 7,
        n_publishers: 500,
        n_hidden_only_publishers: 0,
        n_advertisers: 50,
        campaign_scale: 0.4,
        error_rate: 0.0,
        ..Default::default()
    });
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);

    // 1. Hunt: click ads until one lands on an SE attack with upstream
    //    indirection.
    let mut found = None;
    'hunt: for publisher in world.publishers() {
        let mut session = BrowserSession::new(&world, cfg, SimTime::EPOCH);
        let Ok(loaded) = session.navigate(&publisher.url()) else { continue };
        for k in 0..loaded.page.ad_click_chain.len() {
            let Some(action) = loaded.page.ad_action(k).cloned() else { break };
            if let Ok(Some(landing)) = session.click(&loaded.url, &action) {
                if landing.page.visual.is_attack() && landing.hops.len() >= 2 {
                    found = Some((publisher, session, landing));
                    break 'hunt;
                }
            }
            session.reopen();
            if session.navigate(&publisher.url()).is_err() {
                break;
            }
        }
    }
    let (publisher, session, landing) = found.expect("an SE ad exists in this world");
    println!("publisher: http://{}/", publisher.domain);
    println!("SE attack reached: {} ({})\n", landing.url, landing.page.title);

    // 2. Reconstruct the ad-loading process.
    let graph = BacktrackGraph::from_log(session.log());
    println!("backtracking graph:\n{}", graph.to_ascii(&landing.url));

    // 3. Attribute the ad.
    let seed_patterns = Pipeline::new(seacma_core::PipelineConfig {
        world: world.config().clone(),
        ..seacma_core::PipelineConfig::small(7)
    })
    .seed_patterns();
    let verdict = Attributor::new(seed_patterns).attribute(&graph, &landing.url);
    println!("served by: {verdict:?}\n");

    // 4. Extract + validate the milkable URL.
    let candidate = milkable::candidate(&graph, &landing.url).expect("upstream exists");
    println!("milkable candidate: {candidate}");
    let reference = landing.screenshot.dhash();
    let sources = validate_candidates(
        &world,
        vec![MilkingCandidate {
            url: candidate,
            ua: UaProfile::ChromeMac,
            cluster: 0,
            reference,
        }],
        SimTime::EPOCH,
    );
    println!("validated: {}\n", !sources.is_empty());

    // 5. Track the campaign for a week.
    let mut gsb = GsbService::new(&world);
    let mut vt = VirusTotal::new(1);
    let config = MilkingConfig {
        duration: SimDuration::from_days(7),
        lookup_tail: SimDuration::from_days(5),
        ..Default::default()
    };
    let out = Milker::new(&world, config).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
    println!("7-day tracking: {} sessions, {} fresh domains", out.sessions, out.discoveries.len());
    for d in &out.discoveries {
        let gsb_status = match d.gsb_listed_at {
            Some(at) => format!("GSB-listed {:.1}d later", (at - d.first_seen).as_days()),
            None => "never GSB-listed".into(),
        };
        println!("  {}  {:<26} {}", d.first_seen, d.domain, gsb_status);
    }
    println!(
        "\nfiles harvested: {} ({} already known to VirusTotal)",
        out.files.len(),
        out.files.iter().filter(|f| f.known_at_submit).count()
    );
}
