//! Screenshot clustering on its own: feed a labeled batch of synthetic
//! landing-page screenshots to the dhash + DBSCAN + θc pipeline and score
//! the result against ground truth — the core algorithmic contribution,
//! isolated from the crawling machinery. Useful as a template for running
//! the clustering stage over *real* screenshot corpora.
//!
//! ```sh
//! cargo run --release --example screenshot_clustering
//! ```

use seacma_core::simweb::visual::VisualTemplate;
use seacma_core::vision::cluster::{cluster_screenshots, ClusterParams, ScreenshotPoint};
use seacma_core::vision::dhash::dhash128;

struct Sample {
    point: ScreenshotPoint,
    truth: &'static str,
}

fn batch() -> Vec<Sample> {
    let mut out = Vec::new();
    let mut add = |truth: &'static str, template: VisualTemplate, copies: usize, domains: usize| {
        for i in 0..copies {
            let shot = template.render(0xBEE5 + i as u64);
            out.push(Sample {
                point: ScreenshotPoint::new(
                    dhash128(&shot),
                    format!("{truth}-{}.club", i % domains),
                ),
                truth,
            });
        }
    };
    // Three SE campaigns on many rotating domains…
    add("techsupport", VisualTemplate::TechSupport { skin: 0 }, 30, 9);
    add("fakeflash", VisualTemplate::FakeSoftware { skin: 4 }, 40, 12);
    add("lottery", VisualTemplate::Lottery { skin: 2 }, 25, 7);
    // …a benign campaign pinned to two domains (θc must drop it)…
    add("benign-brand", VisualTemplate::BenignLanding { style: 11 }, 30, 2);
    // …and diverse one-off benign pages (noise).
    for i in 0..40u64 {
        let t = VisualTemplate::BenignLanding { style: 1000 + i };
        out.push(Sample {
            point: ScreenshotPoint::new(
                dhash128(&t.render(i)),
                format!("one-off-{i}.com"),
            ),
            truth: "benign-misc",
        });
    }
    out
}

fn main() {
    let samples = batch();
    let points: Vec<ScreenshotPoint> = samples.iter().map(|s| s.point.clone()).collect();
    let params = ClusterParams::default();
    println!(
        "clustering {} screenshots (eps={}, MinPts={}, θc={}) …\n",
        points.len(),
        params.eps,
        params.min_pts,
        params.theta_c
    );
    let result = cluster_screenshots(&points, params);

    println!(
        "{} campaign clusters, {} θc-filtered, {} noise points\n",
        result.campaigns.len(),
        result.filtered.len(),
        result.noise
    );
    for (i, c) in result.campaigns.iter().enumerate() {
        // Purity against ground truth.
        let mut votes = std::collections::HashMap::new();
        for &m in &c.members {
            *votes.entry(samples[m].truth).or_insert(0usize) += 1;
        }
        let (label, n) = votes.iter().max_by_key(|(_, n)| **n).unwrap();
        println!(
            "campaign {i}: {} shots over {} domains — majority '{label}' (purity {:.0}%)",
            c.len(),
            c.domain_count(),
            100.0 * *n as f64 / c.len() as f64
        );
    }
    for c in &result.filtered {
        let truth = samples[c.members[0]].truth;
        println!(
            "filtered by θc: {} shots on only {} domains ('{truth}') — benign ads don't rotate domains",
            c.len(),
            c.domain_count()
        );
    }
}
