//! Quickstart: run the whole SEACMA measurement on a small synthetic web
//! and print what it found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seacma_core::pipeline::DiscoverySummary;
use seacma_core::report::{self, ClusterBreakdown};
use seacma_core::{Pipeline, PipelineConfig};

fn main() {
    // A reduced configuration: ~600 publishers, two browser profiles,
    // 3 days of milking. `PipelineConfig::default()` is the paper-shaped
    // setup (4 profiles, 14-day milking).
    let config = PipelineConfig::small(42);
    println!("generating world (seed {:#x}) …", config.world.seed);
    let pipeline = Pipeline::new(config);
    println!(
        "world: {} publishers, {} ad networks, {} SE campaigns (ground truth)",
        pipeline.world().publishers().len(),
        pipeline.world().networks().len(),
        pipeline.world().campaigns().len(),
    );

    println!("running discovery (crawl → dhash → DBSCAN → θc → attribution) …");
    let run = pipeline.run_to_completion();

    let s = DiscoverySummary::over(&run.discovery);
    println!(
        "\ncrawled {} sites; {} produced third-party landings; {} landing pages",
        s.visited, s.with_landings, s.landings
    );
    let b = ClusterBreakdown::over(&run.discovery.labels);
    println!(
        "clusters: {} SEACMA campaigns, {} benign confounders",
        b.se_campaigns,
        b.benign()
    );

    println!("\n{}", report::render_table1(&report::table1(pipeline.world(), &run.discovery)));

    println!(
        "milking: {} sources → {} fresh attack domains, {} files harvested",
        run.sources.len(),
        run.milking.discoveries.len(),
        run.milking.files.len()
    );
    println!(
        "GSB detected {:.1}% of milked domains at discovery, {:.1}% eventually",
        100.0 * run.milking.gsb_init_rate(),
        100.0 * run.milking.gsb_final_rate()
    );
    if let Some(lag) = run.milking.mean_gsb_lag_days() {
        println!("GSB ran {lag:.1} days behind the milker on average");
    }
    println!(
        "new ad networks discovered from unknown attacks: {:?}",
        run.new_networks.new_patterns.iter().map(|p| p.name.as_str()).collect::<Vec<_>>()
    );
}
