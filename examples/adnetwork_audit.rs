//! Ad-network audit: measure how dirty each low-tier ad network is, and
//! demonstrate the two evasions the paper documents — IP cloaking and
//! `navigator.webdriver` anti-bot checks.
//!
//! For every seed network the audit clicks a sample of its ads under four
//! client configurations (institutional vs residential vantage × naive vs
//! stealthy automation) and reports the SE-attack rate per configuration.
//!
//! ```sh
//! cargo run --release --example adnetwork_audit
//! ```

use seacma_core::simweb::{
    ClientProfile, HostResponse, SimTime, UaProfile, Vantage, World, WorldConfig,
};

const SAMPLES: u64 = 400;

fn se_rate(world: &World, net: &seacma_core::simweb::AdNetworkSpec, client: &ClientProfile) -> f64 {
    let mut se = 0usize;
    let mut total = 0usize;
    for i in 0..SAMPLES {
        let url = net.click_url(world.seed(), i * 131, 0, 0);
        // Follow the redirect chain to the landing.
        let mut cur = url;
        let mut landed = None;
        for _ in 0..8 {
            match world.fetch(&cur, client, SimTime(60)) {
                HostResponse::Redirect { to, .. } => cur = to,
                HostResponse::Page(p) => {
                    landed = Some(p);
                    break;
                }
                _ => break,
            }
        }
        if let Some(page) = landed {
            total += 1;
            if page.visual.is_attack() {
                se += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        se as f64 / total as f64
    }
}

fn main() {
    let world = World::generate(WorldConfig {
        seed: 99,
        n_publishers: 50,
        n_hidden_only_publishers: 0,
        n_advertisers: 60,
        ..Default::default()
    });

    let configs = [
        ("institutional+naive", ClientProfile::naive(UaProfile::ChromeMac, Vantage::Institutional)),
        ("institutional+stealth", ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Institutional)),
        ("residential+naive", ClientProfile::naive(UaProfile::ChromeMac, Vantage::Residential)),
        ("residential+stealth", ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential)),
    ];

    println!(
        "{:<13} {:>22} {:>22} {:>19} {:>21}",
        "network", configs[0].0, configs[1].0, configs[2].0, configs[3].0
    );
    for net in world.networks().iter().filter(|n| n.seed_listed) {
        print!("{:<13}", net.name);
        for (_, client) in &configs {
            print!(" {:>21.1}%", 100.0 * se_rate(&world, net, client));
        }
        let mut notes = Vec::new();
        if net.cloaks_nonresidential {
            notes.push("cloaks non-residential IPs");
        }
        if net.checks_webdriver {
            notes.push("checks navigator.webdriver");
        }
        if notes.is_empty() {
            println!();
        } else {
            println!("   <- {}", notes.join(", "));
        }
    }
    println!(
        "\nreading: Propeller/Clickadu only serve SE ads to residential clients;\n\
         AdSterra refuses SE ads when automation is detectable. The paper worked\n\
         around both with residential laptops and a patched Chromium (§3.2)."
    );
}
