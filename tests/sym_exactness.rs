//! Phase-boundary exactness for the interned + struct-of-arrays pipeline:
//! at every boundary — crawl dataset, clustering, each crawl-replay epoch,
//! each milking day — the symbol fast path must be **byte-identical** (in
//! resolved JSON form) to the string-based reference, across random worker
//! counts and epoch splits. These properties are what let the e2e bench
//! (`e2e_scaling`) time the fast path and publish the numbers as the
//! pipeline's numbers.

use seacma_core::blacklist::VirusTotal;
use seacma_core::browser::{BrowserConfig, QuietBrowser, RenderCache};
use seacma_core::crawler::{visit_publisher, visit_publisher_reusing, CrawlPolicy, VisitScratch};
use seacma_core::milker::trackfeed::{discovery_points, epoch_batches};
use seacma_core::simweb::{SimDuration, SimTime, UaProfile, Vantage, HOUR};
use seacma_core::tracker::CampaignTracker;
use seacma_core::vision::cluster::{cluster_screenshots_parallel, ScreenshotPoint};
use seacma_core::{Pipeline, PipelineConfig};
use seacma_util::sym::SymbolArena;
use seacma_util::{forall, json};

/// A pipeline small enough to discover + track + milk inside a property
/// case, with the knobs under test (workers, epoch splits) exposed.
fn tiny_config(seed: u64, workers: usize) -> PipelineConfig {
    let mut c = PipelineConfig::small(seed);
    c.world.n_publishers = 150;
    c.world.n_hidden_only_publishers = 15;
    c.world.n_advertisers = 20;
    c.workers = workers;
    c.milking.lookup_tail = SimDuration::from_days(1);
    c.max_milking_sources = 40;
    c
}

#[test]
fn discovery_boundaries_match_string_reference_at_any_worker_count() {
    forall!(5, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let workers = rng.range(1, 5);
        let pipeline = Pipeline::new(tiny_config(seed, workers));
        let discovery = pipeline.discover();

        // Crawl boundary: the dataset — dhashes, symbols and the arena
        // they resolve against — equals a single-worker pipeline's byte
        // for byte (worker-scratch interning canonicalizes to job order).
        let reference = Pipeline::new(tiny_config(seed, 1));
        let ref_discovery = reference.discover();
        assert_eq!(discovery.crawl, ref_discovery.crawl, "crawl dataset diverged");
        assert_eq!(
            json::to_string(&*discovery.arena.read()),
            json::to_string(&*ref_discovery.arena.read()),
            "arena symbol assignment diverged"
        );

        // Cluster boundary: sym-column DBSCAN over the record columns
        // equals the sequential string-based clustering byte for byte.
        let arena = discovery.arena.read();
        let points: Vec<ScreenshotPoint> = discovery
            .landings()
            .map(|l| ScreenshotPoint::new(l.dhash, arena.resolve(l.landing_e2ld)))
            .collect();
        let string_clusters =
            cluster_screenshots_parallel(&points, pipeline.config().clustering, 1);
        assert_eq!(
            json::to_string(&discovery.clusters),
            json::to_string(&string_clusters),
            "sym-column clustering diverged from the string reference"
        );
    });
}

#[test]
fn memoized_crawl_visits_match_uncached_reference_in_any_job_order() {
    // The crawl hot path stacks three transparencies: a shared clean-render
    // cache, per-visit reload memoization, and worker-scratch reuse of the
    // event log / backtracking graph. None of them may leave a byte behind:
    // a random job order driven through the full fast path must produce
    // visit records and arena symbol assignment identical to fresh-state,
    // cache-free visits of the same jobs.
    forall!(5, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let pipeline = Pipeline::new(tiny_config(seed, 1));
        let world = pipeline.world();

        // A random job order over a random slice of the publisher list —
        // the farm's per-worker streams are subsequences of exactly this
        // shape.
        let mut jobs: Vec<usize> = (0..world.publishers().len()).collect();
        for i in (1..jobs.len()).rev() {
            jobs.swap(i, rng.below(i as u64 + 1) as usize);
        }
        jobs.truncate(40);

        let cache = RenderCache::new();
        let mut scratch = VisitScratch::new();
        let mut arena_fast = SymbolArena::new();
        let mut arena_ref = SymbolArena::new();
        let config = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
        for (i, &j) in jobs.iter().enumerate() {
            let publisher = &world.publishers()[j];
            let start = SimTime(200 + (i as u64 % 7) * 30);
            let fast = visit_publisher_reusing(
                world,
                publisher,
                config,
                start,
                CrawlPolicy::default(),
                Some(&cache),
                &mut arena_fast,
                &mut scratch,
            );
            let reference = visit_publisher(
                world,
                publisher,
                config,
                start,
                CrawlPolicy::default(),
                None,
                &mut arena_ref,
            );
            assert_eq!(fast, reference, "memoized visit diverged at {}", publisher.domain);
        }
        assert_eq!(
            arena_fast.strings().to_vec(),
            arena_ref.strings().to_vec(),
            "arena symbol assignment diverged under scratch reuse"
        );
    });
}

#[test]
fn batched_trackfeed_rederivation_matches_per_discovery_reference() {
    // The milker trackfeed groups discoveries by source and replays each
    // source's timeline through one warm browser pass. The reference is
    // the obvious slow shape: a fresh browser and a fresh render cache per
    // discovery, replayed in the outcome's own merge-sweep order. Both
    // must produce the same feed byte for byte, and bucketing the feed
    // into a random epoch split must preserve it exactly.
    forall!(3, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let mut config = tiny_config(seed, rng.range(1, 4));
        config.milking.duration = SimDuration::from_days(rng.range_u64(1, 4));
        let days = config
            .milking
            .duration
            .minutes()
            .div_ceil(seacma_core::simweb::DAY.minutes())
            .max(1);
        let pipeline = Pipeline::new(config);
        let discovery = pipeline.discover();
        let mut fast =
            CampaignTracker::with_arena(pipeline.tracker_config(), discovery.arena.clone());
        for sb in pipeline.crawl_epoch_sym_batches(&discovery) {
            for (dhash, sym) in sb {
                fast.ingest_sym(dhash, sym);
            }
            fast.end_epoch();
        }
        let crawl_end = discovery
            .crawl
            .visits
            .iter()
            .map(|v| v.started)
            .max()
            .unwrap_or(SimTime::EPOCH)
            + HOUR;
        let sources = pipeline.milking_sources(&discovery, &fast, crawl_end);
        let mut vt = VirusTotal::new(pipeline.world().seed() ^ 0x7A);
        let milking = pipeline.milk(&sources, crawl_end, &mut vt);

        let batched = discovery_points(pipeline.world(), &sources, &milking);
        let naive: Vec<(SimTime, ScreenshotPoint)> = milking
            .discoveries
            .iter()
            .filter_map(|d| {
                let src = &sources[d.source_idx];
                let cache = RenderCache::new();
                let browser = QuietBrowser::with_cache(
                    pipeline.world(),
                    BrowserConfig::instrumented(src.ua, Vantage::Residential)
                        .without_screenshots(),
                    &cache,
                );
                let (url, page) = browser.load(&src.url, d.first_seen).ok()?;
                let dhash = browser.screenshot_dhash(&url, &page, d.first_seen);
                Some((d.first_seen, ScreenshotPoint::new(dhash, d.domain.clone())))
            })
            .collect();
        assert_eq!(
            json::to_string(&batched.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>()),
            json::to_string(&naive.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>()),
            "batched re-derivation diverged from the per-discovery reference"
        );
        assert!(batched.iter().zip(&naive).all(|(a, b)| a.0 == b.0));

        // Random epoch split: concatenated buckets reproduce the feed.
        let rejoined: Vec<ScreenshotPoint> = epoch_batches(&batched, crawl_end, days)
            .into_iter()
            .flatten()
            .collect();
        let flat: Vec<ScreenshotPoint> = batched.into_iter().map(|(_, p)| p).collect();
        assert_eq!(rejoined, flat, "epoch bucketing must preserve the feed");
    });
}

#[test]
fn tracking_boundaries_match_string_reference_at_any_epoch_split() {
    forall!(5, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let mut config = tiny_config(seed, rng.range(1, 4));
        config.crawl_track_epochs = rng.range(1, 9);
        config.milking.duration = SimDuration::from_days(rng.range_u64(1, 4));
        let pipeline = Pipeline::new(config);
        let discovery = pipeline.discover();

        // Two trackers fed the same epochs: the fast one on the symbol
        // path sharing the world arena, the reference on materialized
        // string points with a private arena. Every closed epoch's
        // summary must serialize identically.
        let mut fast =
            CampaignTracker::with_arena(pipeline.tracker_config(), discovery.arena.clone());
        let mut reference = CampaignTracker::new(pipeline.tracker_config());
        let sym_batches = pipeline.crawl_epoch_sym_batches(&discovery);
        let str_batches = pipeline.crawl_epoch_batches(&discovery);
        assert_eq!(sym_batches.len(), str_batches.len());
        for (day, (sb, tb)) in sym_batches.iter().zip(&str_batches).enumerate() {
            for &(dhash, sym) in sb {
                fast.ingest_sym(dhash, sym);
            }
            reference.ingest_all(tb.clone());
            assert_eq!(
                json::to_string(&fast.end_epoch()),
                json::to_string(&reference.end_epoch()),
                "crawl epoch {day} summary diverged"
            );
        }
        // The final crawl boundary also equals the batch discovery
        // clustering (the incremental exactness property).
        assert_eq!(
            json::to_string(&fast.clusters()),
            json::to_string(&discovery.clusters),
            "crawl-replay snapshot diverged from batch clustering"
        );

        // Milking boundaries: one epoch per virtual day, sym feed vs
        // materialized string feed.
        let crawl_end = discovery
            .crawl
            .visits
            .iter()
            .map(|v| v.started)
            .max()
            .unwrap_or(SimTime::EPOCH)
            + HOUR;
        let sources = pipeline.milking_sources(&discovery, &fast, crawl_end);
        let mut vt = VirusTotal::new(pipeline.world().seed() ^ 0x7A);
        let milking = pipeline.milk(&sources, crawl_end, &mut vt);
        let sym_days = pipeline.milking_epoch_sym_batches(&sources, &milking, crawl_end);
        let str_days = pipeline.milking_epoch_batches(&sources, &milking, crawl_end);
        assert_eq!(sym_days.len(), str_days.len());
        for (day, (sb, tb)) in sym_days.iter().zip(&str_days).enumerate() {
            for &(dhash, sym) in sb {
                fast.ingest_sym(dhash, sym);
            }
            reference.ingest_all(tb.clone());
            assert_eq!(
                json::to_string(&fast.end_epoch()),
                json::to_string(&reference.end_epoch()),
                "milking day {day} summary diverged"
            );
        }
        assert_eq!(
            json::to_string(&fast.clusters()),
            json::to_string(&reference.clusters()),
            "final cluster snapshot diverged"
        );
        // Ledgers live in different arenas (shared world arena vs the
        // reference's private one), so compare the arena-independent
        // resolved state rather than raw symbol ids.
        assert_eq!(
            json::to_string(&fast.ledger().to_state(&fast.arena().read())),
            json::to_string(&reference.ledger().to_state(&reference.arena().read())),
            "final ledger diverged"
        );
    });
}
