//! Phase-boundary exactness for the interned + struct-of-arrays pipeline:
//! at every boundary — crawl dataset, clustering, each crawl-replay epoch,
//! each milking day — the symbol fast path must be **byte-identical** (in
//! resolved JSON form) to the string-based reference, across random worker
//! counts and epoch splits. These properties are what let the e2e bench
//! (`e2e_scaling`) time the fast path and publish the numbers as the
//! pipeline's numbers.

use seacma_core::blacklist::VirusTotal;
use seacma_core::simweb::{SimDuration, SimTime, HOUR};
use seacma_core::tracker::CampaignTracker;
use seacma_core::vision::cluster::{cluster_screenshots_parallel, ScreenshotPoint};
use seacma_core::{Pipeline, PipelineConfig};
use seacma_util::{forall, json};

/// A pipeline small enough to discover + track + milk inside a property
/// case, with the knobs under test (workers, epoch splits) exposed.
fn tiny_config(seed: u64, workers: usize) -> PipelineConfig {
    let mut c = PipelineConfig::small(seed);
    c.world.n_publishers = 150;
    c.world.n_hidden_only_publishers = 15;
    c.world.n_advertisers = 20;
    c.workers = workers;
    c.milking.lookup_tail = SimDuration::from_days(1);
    c.max_milking_sources = 40;
    c
}

#[test]
fn discovery_boundaries_match_string_reference_at_any_worker_count() {
    forall!(5, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let workers = rng.range(1, 5);
        let pipeline = Pipeline::new(tiny_config(seed, workers));
        let discovery = pipeline.discover();

        // Crawl boundary: the dataset — dhashes, symbols and the arena
        // they resolve against — equals a single-worker pipeline's byte
        // for byte (worker-scratch interning canonicalizes to job order).
        let reference = Pipeline::new(tiny_config(seed, 1));
        let ref_discovery = reference.discover();
        assert_eq!(discovery.crawl, ref_discovery.crawl, "crawl dataset diverged");
        assert_eq!(
            json::to_string(&*discovery.arena.read()),
            json::to_string(&*ref_discovery.arena.read()),
            "arena symbol assignment diverged"
        );

        // Cluster boundary: sym-column DBSCAN over the record columns
        // equals the sequential string-based clustering byte for byte.
        let arena = discovery.arena.read();
        let points: Vec<ScreenshotPoint> = discovery
            .landings()
            .map(|l| ScreenshotPoint::new(l.dhash, arena.resolve(l.landing_e2ld)))
            .collect();
        let string_clusters =
            cluster_screenshots_parallel(&points, pipeline.config().clustering, 1);
        assert_eq!(
            json::to_string(&discovery.clusters),
            json::to_string(&string_clusters),
            "sym-column clustering diverged from the string reference"
        );
    });
}

#[test]
fn tracking_boundaries_match_string_reference_at_any_epoch_split() {
    forall!(5, |rng| {
        let seed = rng.range_u64(1, 1 << 40);
        let mut config = tiny_config(seed, rng.range(1, 4));
        config.crawl_track_epochs = rng.range(1, 9);
        config.milking.duration = SimDuration::from_days(rng.range_u64(1, 4));
        let pipeline = Pipeline::new(config);
        let discovery = pipeline.discover();

        // Two trackers fed the same epochs: the fast one on the symbol
        // path sharing the world arena, the reference on materialized
        // string points with a private arena. Every closed epoch's
        // summary must serialize identically.
        let mut fast =
            CampaignTracker::with_arena(pipeline.tracker_config(), discovery.arena.clone());
        let mut reference = CampaignTracker::new(pipeline.tracker_config());
        let sym_batches = pipeline.crawl_epoch_sym_batches(&discovery);
        let str_batches = pipeline.crawl_epoch_batches(&discovery);
        assert_eq!(sym_batches.len(), str_batches.len());
        for (day, (sb, tb)) in sym_batches.iter().zip(&str_batches).enumerate() {
            for &(dhash, sym) in sb {
                fast.ingest_sym(dhash, sym);
            }
            reference.ingest_all(tb.clone());
            assert_eq!(
                json::to_string(&fast.end_epoch()),
                json::to_string(&reference.end_epoch()),
                "crawl epoch {day} summary diverged"
            );
        }
        // The final crawl boundary also equals the batch discovery
        // clustering (the incremental exactness property).
        assert_eq!(
            json::to_string(&fast.clusters()),
            json::to_string(&discovery.clusters),
            "crawl-replay snapshot diverged from batch clustering"
        );

        // Milking boundaries: one epoch per virtual day, sym feed vs
        // materialized string feed.
        let crawl_end = discovery
            .crawl
            .visits
            .iter()
            .map(|v| v.started)
            .max()
            .unwrap_or(SimTime::EPOCH)
            + HOUR;
        let sources = pipeline.milking_sources(&discovery, &fast, crawl_end);
        let mut vt = VirusTotal::new(pipeline.world().seed() ^ 0x7A);
        let milking = pipeline.milk(&sources, crawl_end, &mut vt);
        let sym_days = pipeline.milking_epoch_sym_batches(&sources, &milking, crawl_end);
        let str_days = pipeline.milking_epoch_batches(&sources, &milking, crawl_end);
        assert_eq!(sym_days.len(), str_days.len());
        for (day, (sb, tb)) in sym_days.iter().zip(&str_days).enumerate() {
            for &(dhash, sym) in sb {
                fast.ingest_sym(dhash, sym);
            }
            reference.ingest_all(tb.clone());
            assert_eq!(
                json::to_string(&fast.end_epoch()),
                json::to_string(&reference.end_epoch()),
                "milking day {day} summary diverged"
            );
        }
        assert_eq!(
            json::to_string(&fast.clusters()),
            json::to_string(&reference.clusters()),
            "final cluster snapshot diverged"
        );
        // Ledgers live in different arenas (shared world arena vs the
        // reference's private one), so compare the arena-independent
        // resolved state rather than raw symbol ids.
        assert_eq!(
            json::to_string(&fast.ledger().to_state(&fast.arena().read())),
            json::to_string(&reference.ledger().to_state(&reference.arena().read())),
            "final ledger diverged"
        );
    });
}
