//! Shape regression against the paper's headline findings, at a moderate
//! scale (shared across tests via `OnceLock`). These are the claims the
//! reproduction must preserve; absolute counts are scale-dependent and
//! deliberately not asserted.

use std::sync::OnceLock;

use seacma_core::report;
use seacma_core::{Pipeline, PipelineConfig, PipelineRun};
use seacma_simweb::SeCategory;

fn run() -> &'static (Pipeline, PipelineRun) {
    static RUN: OnceLock<(Pipeline, PipelineRun)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = PipelineConfig::small(0x5EAC);
        config.world.n_publishers = 1200;
        config.world.n_hidden_only_publishers = 120;
        config.world.campaign_scale = 0.5;
        config.uas = seacma_simweb::UaProfile::ALL.to_vec();
        let pipeline = Pipeline::new(config);
        let run = pipeline.run_to_completion();
        (pipeline, run)
    })
}

/// Paper §4.3: Fake Software dominates campaign counts, and the Table-1
/// category ordering by campaign count is FakeSoftware > Registration >
/// the rest.
#[test]
fn fake_software_dominates_campaigns() {
    let (pipeline, r) = run();
    let t1 = report::table1(pipeline.world(), &r.discovery);
    let by_cat = |c: SeCategory| t1.iter().find(|row| row.category == c).unwrap();
    let fs = by_cat(SeCategory::FakeSoftware);
    for cat in SeCategory::ALL {
        if cat != SeCategory::FakeSoftware {
            assert!(
                fs.campaigns >= by_cat(cat).campaigns,
                "{cat} outgrew Fake Software"
            );
            assert!(fs.se_attacks >= by_cat(cat).se_attacks);
        }
    }
    assert!(fs.campaigns >= by_cat(SeCategory::Registration).campaigns);
}

/// Paper Tables 1/4: Registration campaigns evade GSB completely.
#[test]
fn registration_fully_evades_gsb() {
    let (pipeline, r) = run();
    let t1 = report::table1(pipeline.world(), &r.discovery);
    let reg = t1.iter().find(|row| row.category == SeCategory::Registration).unwrap();
    assert_eq!(reg.gsb_domain_pct, 0.0);
    let t4 = report::table4(&r.discovery.labels, &r.milking);
    let reg4 = t4.iter().find(|row| row.group == "Registration").unwrap();
    assert_eq!(reg4.gsb_final_pct, 0.0);
}

/// Paper §4.5: GSB's initial detection of milked domains is tiny and its
/// final rate is an order of magnitude larger but still a small minority;
/// the mean listing lag exceeds 7 days.
#[test]
fn gsb_lags_and_underdetects() {
    let (_, r) = run();
    let init = r.milking.gsb_init_rate();
    let fin = r.milking.gsb_final_rate();
    assert!(init < 0.05, "init rate {init}");
    assert!(fin > init * 2.0, "final {fin} vs init {init}");
    assert!(fin < 0.5, "final rate {fin} should remain a minority");
    let lag = r.milking.mean_gsb_lag_days().expect("some listings happen");
    assert!(lag > 7.0, "mean lag {lag} days (paper: >7)");
}

/// Paper Table 3: a substantial minority of SE attacks come from unknown
/// (non-seed) networks, and the feedback loop identifies the hidden trio.
#[test]
fn unknown_networks_discovered() {
    let (_, r) = run();
    assert!(r.new_networks.unknown_attacks > 20);
    let names: Vec<&str> =
        r.new_networks.new_patterns.iter().map(|p| p.name.as_str()).collect();
    for expected in ["EroAdvertising", "Yllix", "AdCenter"] {
        assert!(names.contains(&expected), "{expected} not discovered ({names:?})");
    }
    assert!(r.new_networks.new_publishers > 50, "pool expansion too small");
}

/// Paper §4.3: the benign clusters break down into parked, stock-image,
/// shortener and spurious kinds (11/6/4/1 at full scale).
#[test]
fn benign_cluster_kinds_present() {
    let (_, r) = run();
    let b = report::ClusterBreakdown::over(&r.discovery.labels);
    assert!(b.parked >= 5, "parked clusters {}", b.parked);
    assert!(b.stock >= 2, "stock clusters {}", b.stock);
    assert!(b.shortener >= 2, "shortener clusters {}", b.shortener);
    assert!(b.spurious >= 1, "spurious cluster missing");
    assert!(b.se_campaigns > b.benign(), "SE campaigns must dominate");
}

/// Paper §4.2/§4.5: milking multiplies visibility — the discovered
/// domains far outnumber the domains seen during crawling for milkable
/// categories, and files flow to VirusTotal largely unknown.
#[test]
fn milking_multiplies_visibility() {
    let (_, r) = run();
    let discovered = r.milking.discoveries.len();
    // Sources of one campaign share its domain stream, so normalize by
    // distinct tracked clusters, not raw source count.
    let clusters: std::collections::HashSet<usize> =
        r.sources.iter().map(|s| s.cluster).collect();
    assert!(
        discovered > clusters.len() * 3,
        "{discovered} domains from {} tracked campaigns",
        clusters.len()
    );
    let files = &r.milking.files;
    assert!(!files.is_empty());
    let known = files.iter().filter(|f| f.known_at_submit).count();
    assert!(
        (known as f64) < 0.3 * files.len() as f64,
        "{known}/{} files pre-known — payloads not polymorphic enough",
        files.len()
    );
    let malicious = files
        .iter()
        .filter(|f| f.finally_malicious())
        .count();
    assert!(
        malicious as f64 > 0.85 * files.len() as f64,
        "only {malicious}/{} flagged after rescan",
        files.len()
    );
}

/// Paper Table 2: suspicious/pornography categories lead the publisher
/// distribution.
#[test]
fn publisher_categories_lead_with_suspicious() {
    let (pipeline, r) = run();
    let t2 = report::table2(pipeline.world(), &r.discovery, 20);
    assert!(t2.len() >= 10);
    let top: Vec<&str> = t2.iter().take(3).map(|row| row.category.name()).collect();
    assert!(
        top.contains(&"Suspicious"),
        "Suspicious must rank top-3, got {top:?}"
    );
    assert!(
        top.contains(&"Pornography"),
        "Pornography must rank top-3, got {top:?}"
    );
}

/// §6 ethics: per-advertiser cost stays in cents on average.
#[test]
fn ethics_cost_is_negligible() {
    let (_, r) = run();
    let e = report::EthicsReport::over(&r.discovery);
    assert!(e.mean_cost_usd() < 0.5, "mean cost ${}", e.mean_cost_usd());
    assert!(e.worst_cost_usd() < 25.0, "worst cost ${}", e.worst_cost_usd());
}
