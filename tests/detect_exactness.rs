//! Online-detector exactness: every verdict the served [`Detector`] (and
//! the daemon's lock-free query path on top of it) returns must be
//! **byte-identical** — in canonical JSON form — to seacma-detect's naive
//! linear-scan oracle over the same snapshot columns, across random
//! insertion orders, parallel-build worker counts, and mid-epoch
//! snapshot/resume. These properties are what let `detect_eval` time the
//! indexed path and publish the numbers as the detector's numbers.

use seacma_daemon::Daemon;
use seacma_detect::oracle::linear_verdict;
use seacma_detect::{Detector, DetectorConfig, PageObservation, PageSignals};
use seacma_tracker::TrackerConfig;
use seacma_util::prop::Rng;
use seacma_util::{forall, json};
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;

/// A random campaign-shaped batch: `n_campaigns` visual templates, each a
/// tight cloud of near-duplicate hashes over a handful of rotating
/// domains, plus background noise points far from everything.
fn campaign_batch(rng: &mut Rng, n_campaigns: usize, noise: usize) -> Vec<ScreenshotPoint> {
    let mut points = Vec::new();
    for c in 0..n_campaigns {
        let base = Dhash(rng.u128());
        let members = rng.range(8, 20);
        for m in 0..members {
            let mut h = base.0;
            for _ in 0..rng.below(3) {
                h ^= 1u128 << rng.below(128);
            }
            points.push(ScreenshotPoint::new(Dhash(h), format!("c{c}-{}.club", m % 4)));
        }
    }
    for i in 0..noise {
        points.push(ScreenshotPoint::new(Dhash(rng.u128()), format!("bg{i}.example")));
    }
    points
}

/// A random page-load observation: a probe hash near an indexed point,
/// near-ish (escalation band), or uniformly random, with random cheap
/// structural signals — exercising all four verdict kinds.
fn random_obs(rng: &mut Rng, hashes: &[Dhash]) -> PageObservation {
    let mut h = if hashes.is_empty() || rng.bool(0.3) {
        rng.u128()
    } else {
        hashes[rng.range(0, hashes.len())].0
    };
    for _ in 0..rng.below(20) {
        h ^= 1u128 << rng.below(128);
    }
    let mut signals = PageSignals::default();
    signals.redirect_hops = rng.below(6) as u32;
    signals.third_party_e2lds = rng.below(6) as u32;
    signals.scam_phone = rng.bool(0.3);
    signals.survey_gateway = rng.bool(0.3);
    signals.locking = rng.bool(0.2);
    signals.notification_prompt = rng.bool(0.4);
    signals.auto_download = rng.bool(0.2);
    PageObservation { dhash: Dhash(h), signals }
}

#[test]
fn detector_matches_linear_oracle_at_any_worker_count_and_order() {
    forall!(5, |rng| {
        let (nc, noise) = (rng.range(2, 5), rng.range(5, 30));
        let mut points = campaign_batch(rng, nc, noise);
        // Random insertion order: shuffle by repeated random swaps.
        for _ in 0..points.len() * 2 {
            let (a, b) = (rng.range(0, points.len()), rng.range(0, points.len()));
            points.swap(a, b);
        }

        let mut daemon = Daemon::new(TrackerConfig::default());
        daemon.ingest_all(points.clone());
        daemon.close_epoch();
        let snap = daemon.handle().snapshot();
        let det = snap.detector();
        let (hashes, assignments) = (det.hashes().to_vec(), det.assignments().to_vec());

        // Parallel builds over the same columns must answer identically
        // to both the snapshot's own detector and the naive oracle.
        let rebuilt: Vec<Detector> = [1usize, 2, 8]
            .iter()
            .map(|&w| Detector::from_columns_parallel(&hashes, &assignments, *det.config(), w))
            .collect();

        let mut scratch = Vec::new();
        for _ in 0..40 {
            let obs = random_obs(rng, &hashes);
            let served = json::to_string(&snap.detect_with(&obs, &mut scratch));
            let oracle =
                json::to_string(&linear_verdict(&hashes, &assignments, det.config(), &obs));
            assert_eq!(served, oracle, "served verdict diverged from the linear oracle");
            for (w, d) in [1usize, 2, 8].iter().zip(&rebuilt) {
                assert_eq!(
                    json::to_string(&d.detect_with(&obs, &mut scratch)),
                    oracle,
                    "{w}-worker rebuild diverged from the linear oracle"
                );
            }
        }
    });
}

#[test]
fn resumed_daemon_serves_identical_verdicts_mid_epoch() {
    forall!(5, |rng| {
        let epochs = rng.range(1, 4);
        let mut daemon = Daemon::new(TrackerConfig::default());
        for _ in 0..epochs {
            let (nc, noise) = (rng.range(1, 4), rng.range(3, 15));
            daemon.ingest_all(campaign_batch(rng, nc, noise));
            daemon.close_epoch();
        }
        // Mid-epoch: ingested but unclosed points must not change any
        // verdict, and must survive snapshot/resume byte-identically.
        daemon.ingest_all(campaign_batch(rng, 1, 5));

        let resumed = Daemon::from_json(&daemon.to_json()).expect("snapshot parses");
        let (live, back) = (daemon.handle(), resumed.handle());
        let snap = live.snapshot();
        let det = snap.detector();
        let hashes = det.hashes().to_vec();
        let assignments = det.assignments().to_vec();

        for _ in 0..40 {
            let obs = random_obs(rng, &hashes);
            let served = json::to_string(&live.detect(&obs));
            assert_eq!(
                served,
                json::to_string(&back.detect(&obs)),
                "resumed daemon verdict diverged"
            );
            assert_eq!(
                served,
                json::to_string(&linear_verdict(&hashes, &assignments, det.config(), &obs)),
                "served verdict diverged from the linear oracle"
            );
        }
    });
}

#[test]
fn default_config_radii_nest() {
    let c = DetectorConfig::default();
    assert!(c.base_radius() < c.escalated_radius());
    assert!(c.escalated_radius() <= 128);
}
