//! Cross-crate integration: drives crawl → backtracking → milkable
//! extraction → validation → milking by hand, using each crate's public
//! API directly (no `Pipeline`), to pin the contracts between crates.

use seacma_core::blacklist::{GsbService, VirusTotal};
use seacma_core::browser::BrowserConfig;
use seacma_core::crawler::{visit_publisher, CrawlPolicy};
use seacma_core::graph::{Attribution, Attributor, NetworkPattern};
use seacma_core::milker::{validate_candidates, Milker, MilkingCandidate, MilkingConfig};
use seacma_core::simweb::{SimDuration, SimTime, UaProfile, Vantage, World, WorldConfig};
use seacma_util::sym::SymbolArena;

fn world() -> World {
    World::generate(WorldConfig {
        seed: 0xC805,
        n_publishers: 250,
        n_hidden_only_publishers: 25,
        n_advertisers: 30,
        campaign_scale: 0.3,
        error_rate: 0.0,
        ..Default::default()
    })
}

#[test]
fn crawl_to_milking_hand_wired() {
    let w = world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);

    // Crawl until we have a few attack landings with milkable candidates.
    let mut arena = SymbolArena::new();
    let mut candidates = Vec::new();
    let mut attack_count = 0;
    for (i, p) in w.publishers().iter().enumerate() {
        let visit = visit_publisher(
            &w, p, cfg, SimTime(i as u64 * 2), CrawlPolicy::default(), None, &mut arena,
        );
        for l in &visit.landings {
            if !l.truth_is_attack {
                continue;
            }
            attack_count += 1;
            if let Some(url) = &l.milkable_candidate {
                candidates.push(MilkingCandidate {
                    url: url.clone(),
                    ua: l.ua,
                    cluster: 0,
                    reference: l.dhash,
                });
            }
        }
        if candidates.len() >= 8 {
            break;
        }
    }
    assert!(attack_count > 0, "no SE attacks crawled");
    assert!(candidates.len() >= 8, "not enough milkable candidates");

    // Validate and milk.
    let sources = validate_candidates(&w, candidates, SimTime(5000));
    assert!(!sources.is_empty(), "validation rejected everything");
    let mut gsb = GsbService::new(&w);
    let mut vt = VirusTotal::new(2);
    let out = Milker::new(
        &w,
        MilkingConfig {
            duration: SimDuration::from_days(2),
            lookup_tail: SimDuration::from_days(1),
            ..Default::default()
        },
    )
    .run(&sources, &mut gsb, &mut vt, SimTime(5000));
    assert!(
        out.discoveries.len() >= sources.len(),
        "each source should yield at least its current domain"
    );
    // Milked domains must not be publisher or advertiser domains.
    for d in &out.discoveries {
        assert!(w.publisher_by_domain(&d.domain).is_none());
    }
}

#[test]
fn attribution_chain_contract() {
    // The crawler's chain_urls must carry the network invariant for
    // seed-network ads end to end.
    let w = world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let patterns: Vec<NetworkPattern> = w
        .networks()
        .iter()
        .filter(|n| n.seed_listed)
        .map(|n| NetworkPattern { name: n.name.clone(), url_invariant: n.url_invariant.clone() })
        .collect();
    let attributor = Attributor::new(patterns);

    let mut arena = SymbolArena::new();
    let mut known = 0;
    let mut unknown = 0;
    for p in w.publishers().iter().take(120) {
        // Hidden-only publishers must attribute Unknown; seed publishers
        // mostly Known.
        let only_hidden = p.networks.iter().all(|id| !w.networks()[id.0 as usize].seed_listed);
        let visit =
            visit_publisher(&w, p, cfg, SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena);
        for l in &visit.landings {
            match attributor.attribute_urls(l.chain_urls().into_iter()) {
                Attribution::Known(name) => {
                    known += 1;
                    assert!(
                        !only_hidden,
                        "hidden-only publisher attributed to seed network {name}"
                    );
                }
                Attribution::Unknown => unknown += 1,
            }
        }
    }
    assert!(known > 50, "known attributions: {known}");
    assert!(unknown > 0, "some landings must be unknown (hidden networks)");
}

#[test]
fn locking_pages_need_instrumentation_end_to_end() {
    // A stock-automation crawl still completes but captures fewer
    // landings on lock-heavy pages; the instrumented crawl never wedges.
    let w = world();
    let instrumented = BrowserConfig::instrumented(UaProfile::Ie10Windows, Vantage::Residential);
    let stock = BrowserConfig::stock_automation(UaProfile::Ie10Windows, Vantage::Residential);
    let mut arena = SymbolArena::new();
    let mut li = 0;
    let mut ls = 0;
    for p in w.publishers().iter().take(150) {
        li += visit_publisher(
            &w, p, instrumented, SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena,
        )
        .landings
        .len();
        ls += visit_publisher(&w, p, stock, SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena)
            .landings
            .len();
    }
    assert!(li > 0);
    // The stock crawler is both detectable (webdriver) and lockable, so it
    // must see strictly less.
    assert!(ls <= li, "stock automation saw more than the instrumented browser");
}
