//! The three-stage online detector.
//!
//! Stage 1 — **seen campaign**: probe the banded
//! [`HammingIndex`] at the clustering radius (`eps`, same as DBSCAN). A
//! hit on a campaign-assigned point is the strongest possible verdict:
//! the screenshot is a near-duplicate of a tracked creative.
//!
//! Stage 2 — **near miss**: the *same* probe answers an escalated radius
//! a few bits wider. This catches new creative variants of known
//! campaigns (the SENet observation that campaigns drift visually faster
//! than blocklists refresh).
//!
//! Stage 3 — **never-seen campaign**: no indexed point is close enough,
//! so only the structural tells can speak. The deterministic
//! [`PageSignals::score`](crate::PageSignals::score) against a fixed threshold separates
//! `Suspicious` from `Benign`.
//!
//! # The shared two-radius probe
//!
//! Stages 1 and 2 share **one** banded index, built at the escalated
//! radius, and **one** candidate sweep per query. The escalated ball is a
//! superset of the base ball, so the minimum `(distance, point index)`
//! over campaign-assigned candidates answers both stages at once: a
//! minimum within the base radius is exactly what a dedicated tight probe
//! would have picked (a superset minimum that lands in the subset *is*
//! the subset minimum), and a base miss means no assigned point sits
//! within the base radius at all, so the same minimum is the escalated
//! answer. This halves index build time and memory, and the near-miss and
//! miss paths — the ones production traffic actually consists of — stop
//! paying two probes. The answer remains "nearest campaign-assigned
//! point, ties to the lowest point index" — a pure function of the
//! indexed column, which is what makes the naive-scan oracle (and
//! therefore the byte-identity harness) possible; exactness against
//! [`oracle::linear_verdict`](crate::oracle::linear_verdict) is pinned by
//! the forall suite.

use seacma_util::{impl_json_enum, impl_json_struct};
use seacma_vision::dhash::Dhash;
use seacma_vision::index::{radius_for_eps, HammingIndex};

use crate::feature::PageObservation;

/// Detector tuning. All three knobs are part of the verdict contract:
/// the oracle takes the same config and must agree byte for byte.
///
/// ```
/// use seacma_detect::DetectorConfig;
///
/// let c = DetectorConfig::default();
/// assert_eq!(c.base_radius(), 12);      // eps 0.1 over 128 bits
/// assert_eq!(c.escalated_radius(), 16); // + 4 bits of generalization
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Clustering radius as normalized Hamming distance — keep equal to
    /// the tracker's DBSCAN `eps` so a `Campaign` verdict means "would
    /// have joined this cluster".
    pub eps: f64,
    /// Extra bits of radius for the near-miss probe.
    pub escalation_bits: u32,
    /// Minimum [`PageSignals::score`](crate::PageSignals::score) for a `Suspicious` verdict on an
    /// index miss.
    pub feature_threshold: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { eps: 0.1, escalation_bits: 4, feature_threshold: 4 }
    }
}

impl DetectorConfig {
    /// Default knobs over an explicit clustering radius (the daemon passes
    /// the tracker's own `eps` so verdicts agree with cluster membership).
    pub fn for_eps(eps: f64) -> Self {
        DetectorConfig { eps, ..DetectorConfig::default() }
    }

    /// Stage-1 integer bit radius: `floor(eps · 128)`.
    pub fn base_radius(&self) -> u32 {
        radius_for_eps(self.eps)
    }

    /// Stage-2 integer bit radius, clamped to 128.
    pub fn escalated_radius(&self) -> u32 {
        (self.base_radius() + self.escalation_bits).min(128)
    }
}

/// The scored answer for one page load.
///
/// `campaign` ids are the tracker ledger's stable campaign ids;
/// `distance` is the exact Hamming distance to the matched point; every
/// variant carries the structural `score` so downstream policy can
/// combine visual and structural evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Near-duplicate of a tracked campaign creative (within `eps`).
    Campaign {
        /// Matched ledger campaign id.
        campaign: u32,
        /// Hamming distance to the matched point.
        distance: u32,
        /// Structural feature score of the observation.
        score: u32,
    },
    /// Within the escalated radius of a tracked campaign — a likely new
    /// creative variant.
    NearCampaign {
        /// Matched ledger campaign id.
        campaign: u32,
        /// Hamming distance to the matched point.
        distance: u32,
        /// Structural feature score of the observation.
        score: u32,
    },
    /// No visual match, but the structural score clears the threshold —
    /// the never-seen-campaign path.
    Suspicious {
        /// Structural feature score of the observation.
        score: u32,
    },
    /// No visual match and an unremarkable structure.
    Benign {
        /// Structural feature score of the observation.
        score: u32,
    },
}

impl Verdict {
    /// Stable verdict-kind name, the bucketing key benches and counters
    /// use: `"campaign"`, `"near_campaign"`, `"suspicious"`, `"benign"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::Campaign { .. } => "campaign",
            Verdict::NearCampaign { .. } => "near_campaign",
            Verdict::Suspicious { .. } => "suspicious",
            Verdict::Benign { .. } => "benign",
        }
    }

    /// Whether the verdict flags the load (everything except `Benign`).
    pub fn flagged(&self) -> bool {
        !matches!(self, Verdict::Benign { .. })
    }
}

/// The online detector: one exact Hamming index (at the escalated
/// radius) over a frozen point column plus that column's campaign
/// assignments; the base-radius verdict falls out of the same probe.
///
/// ```
/// use seacma_detect::{Detector, DetectorConfig, PageObservation, PageSignals};
/// use seacma_vision::dhash::Dhash;
///
/// let hashes = vec![Dhash(0), Dhash(!0u128)];
/// let assign = vec![Some(7), None];
/// let d = Detector::from_columns(&hashes, &assign, DetectorConfig::default());
/// let obs = PageObservation { dhash: Dhash(0b11), signals: PageSignals::default() };
/// assert_eq!(d.detect(&obs).kind(), "campaign"); // 2 bits from point 0
/// ```
#[derive(Debug, Clone)]
pub struct Detector {
    index: HammingIndex,
    assignments: Vec<Option<u32>>,
    config: DetectorConfig,
}

impl Detector {
    /// Builds the detector over the tracker's struct-of-arrays columns:
    /// the dhash column (point-index order) and the ledger's campaign
    /// assignment per point. `assignments` may be shorter than `hashes`
    /// when points arrived mid-epoch and have not been clustered yet;
    /// missing tails are unassigned.
    pub fn from_columns(
        hashes: &[Dhash],
        assignments: &[Option<u32>],
        config: DetectorConfig,
    ) -> Self {
        Self::from_columns_parallel(hashes, assignments, config, 1)
    }

    /// [`Detector::from_columns`] with the index build sharded across
    /// `workers` scoped threads. The result is identical for every worker
    /// count — the acceptance gate the bench re-checks at 1/2/8.
    pub fn from_columns_parallel(
        hashes: &[Dhash],
        assignments: &[Option<u32>],
        config: DetectorConfig,
        workers: usize,
    ) -> Self {
        let mut assignments = assignments.to_vec();
        assignments.resize(hashes.len(), None);
        Detector {
            index: HammingIndex::build_radius_parallel(hashes, config.escalated_radius(), workers),
            assignments,
            config,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the detector indexes no points.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The tuning the detector was built with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The indexed dhash column, in point-index order.
    pub fn hashes(&self) -> &[Dhash] {
        self.index.hashes()
    }

    /// The campaign assignment column, parallel to
    /// [`Detector::hashes`] (padded to its length).
    pub fn assignments(&self) -> &[Option<u32>] {
        &self.assignments
    }

    /// Scores one observation. Allocates a scratch buffer; the serving
    /// path uses [`Detector::detect_with`] to reuse one.
    pub fn detect(&self, obs: &PageObservation) -> Verdict {
        let mut scratch = Vec::new();
        self.detect_with(obs, &mut scratch)
    }

    /// Scores one observation using a caller-owned scratch buffer —
    /// allocation-free once the buffer has grown to the candidate volume.
    pub fn detect_with(&self, obs: &PageObservation, scratch: &mut Vec<usize>) -> Verdict {
        let score = obs.signals.score();
        // One escalated-radius probe answers stages 1 and 2 together (see
        // module docs): the classifying threshold is applied to the single
        // minimum afterwards, not baked into the candidate sweep.
        if let Some((campaign, distance)) = self.nearest_assigned(obs.dhash, scratch) {
            return if distance <= self.config.base_radius() {
                Verdict::Campaign { campaign, distance, score }
            } else {
                Verdict::NearCampaign { campaign, distance, score }
            };
        }
        if score >= self.config.feature_threshold {
            Verdict::Suspicious { score }
        } else {
            Verdict::Benign { score }
        }
    }

    /// Nearest campaign-assigned point within the escalated radius, as
    /// `(campaign id, distance)`. Ties break by `(distance, point index)`
    /// exactly like the oracle's full scan, so both implementations pick
    /// the same point — not merely the same distance.
    fn nearest_assigned(&self, h: Dhash, scratch: &mut Vec<usize>) -> Option<(u32, u32)> {
        self.index.neighbours_of_hash(h, scratch);
        scratch
            .iter()
            .filter_map(|&q| {
                self.assignments[q].map(|id| ((h.0 ^ self.index.hashes()[q].0).count_ones(), q, id))
            })
            .min_by_key(|&(d, q, _)| (d, q))
            .map(|(d, _, id)| (id, d))
    }
}

impl_json_struct!(DetectorConfig { eps, escalation_bits, feature_threshold });
impl_json_enum!(Verdict {
    Campaign { campaign: u32, distance: u32, score: u32 },
    NearCampaign { campaign: u32, distance: u32, score: u32 },
    Suspicious { score: u32 },
    Benign { score: u32 },
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::PageSignals;

    fn obs(h: u128) -> PageObservation {
        PageObservation { dhash: Dhash(h), signals: PageSignals::default() }
    }

    fn scored(h: u128, signals: PageSignals) -> PageObservation {
        PageObservation { dhash: Dhash(h), signals }
    }

    #[test]
    fn stages_escalate_in_order() {
        let hashes = vec![Dhash(0), Dhash(1u128 << 90)];
        let assign = vec![Some(3), Some(4)];
        let d = Detector::from_columns(&hashes, &assign, DetectorConfig::default());
        // 2 bits away: stage 1.
        assert_eq!(
            d.detect(&obs(0b11)),
            Verdict::Campaign { campaign: 3, distance: 2, score: 0 }
        );
        // 14 bits away: outside eps (12), inside escalation (16): stage 2.
        let near = (1u128 << 14) - 1;
        assert_eq!(
            d.detect(&obs(near)),
            Verdict::NearCampaign { campaign: 3, distance: 14, score: 0 }
        );
        // 20 bits away with a hot structural score: stage 3.
        let far = (1u128 << 20) - 1;
        let hot = PageSignals { scam_phone: true, locking: true, ..PageSignals::default() };
        assert_eq!(d.detect(&scored(far, hot)), Verdict::Suspicious { score: 4 });
        assert_eq!(d.detect(&obs(far)), Verdict::Benign { score: 0 });
    }

    #[test]
    fn unassigned_points_never_match() {
        let hashes = vec![Dhash(0)];
        let d = Detector::from_columns(&hashes, &[None], DetectorConfig::default());
        assert_eq!(d.detect(&obs(0)), Verdict::Benign { score: 0 });
        // Short assignment columns pad with None.
        let d = Detector::from_columns(&hashes, &[], DetectorConfig::default());
        assert_eq!(d.detect(&obs(0)), Verdict::Benign { score: 0 });
        assert_eq!(d.assignments().len(), 1);
    }

    #[test]
    fn tie_breaks_to_lowest_point_index() {
        // Two assigned points at equal distance 1 from the probe; the
        // lower point index (campaign 9) must win deterministically.
        let hashes = vec![Dhash(0b01), Dhash(0b10)];
        let assign = vec![Some(9), Some(5)];
        let d = Detector::from_columns(&hashes, &assign, DetectorConfig::default());
        assert_eq!(d.detect(&obs(0)), Verdict::Campaign { campaign: 9, distance: 1, score: 0 });
    }

    #[test]
    fn parallel_build_detects_identically() {
        use seacma_util::prop::Rng;
        let mut rng = Rng::new(0xDE7EC7);
        let base = rng.u128();
        let hashes: Vec<Dhash> = (0..400)
            .map(|i| if i % 3 == 0 { Dhash(base ^ (1u128 << (i % 11))) } else { Dhash(rng.u128()) })
            .collect();
        let assign: Vec<Option<u32>> =
            (0..400).map(|i| if i % 2 == 0 { Some(i as u32 % 5) } else { None }).collect();
        let cfg = DetectorConfig::default();
        let seq = Detector::from_columns(&hashes, &assign, cfg);
        let par = Detector::from_columns_parallel(&hashes, &assign, cfg, 8);
        for i in 0..64 {
            let probe = obs(base ^ ((1u128 << (i % 19)) - 1));
            assert_eq!(seq.detect(&probe), par.detect(&probe), "probe {i}");
        }
    }

    #[test]
    fn verdict_json_roundtrip_and_kinds() {
        use seacma_util::json;
        let vs = [
            Verdict::Campaign { campaign: 1, distance: 2, score: 3 },
            Verdict::NearCampaign { campaign: 4, distance: 15, score: 0 },
            Verdict::Suspicious { score: 6 },
            Verdict::Benign { score: 1 },
        ];
        let kinds: Vec<&str> = vs.iter().map(Verdict::kind).collect();
        assert_eq!(kinds, ["campaign", "near_campaign", "suspicious", "benign"]);
        for v in vs {
            let back: Verdict = json::from_str(&json::to_string(&v)).unwrap();
            assert_eq!(back, v);
            assert_eq!(v.flagged(), v.kind() != "benign");
        }
    }
}
