//! The two-implementation oracle: a naive linear scan with the same
//! verdict contract as the indexed [`Detector`](crate::Detector).
//!
//! The exactness harness ("forall insertion orders, worker counts,
//! snapshot/resume: verdicts are byte-identical") is only meaningful if
//! the reference implementation shares *no* code with the thing under
//! test beyond the scoring weights. This scan touches every point with a
//! plain XOR+popcount, picks the nearest campaign-assigned one with the
//! `(distance, point index)` tie-break, and classifies by the same radii
//! — so any banding, dedup or escalation bug in the indexed path shows up
//! as a verdict diff, not a silent agreement.

use seacma_vision::dhash::Dhash;

use crate::detector::{DetectorConfig, Verdict};
use crate::feature::PageObservation;

/// Scores `obs` against the raw columns by exhaustive scan. Byte-for-byte
/// equal to [`Detector::detect`](crate::Detector::detect) over the same
/// columns and config — the exactness gate both the forall suite and the
/// `detect_eval` bench enforce before trusting any timing.
///
/// ```
/// use seacma_detect::oracle::linear_verdict;
/// use seacma_detect::{Detector, DetectorConfig, PageObservation, PageSignals};
/// use seacma_vision::dhash::Dhash;
///
/// let hashes = vec![Dhash(0), Dhash(!0u128)];
/// let assign = vec![Some(1), Some(2)];
/// let cfg = DetectorConfig::default();
/// let obs = PageObservation { dhash: Dhash(7), signals: PageSignals::default() };
/// let indexed = Detector::from_columns(&hashes, &assign, cfg).detect(&obs);
/// assert_eq!(linear_verdict(&hashes, &assign, &cfg, &obs), indexed);
/// ```
pub fn linear_verdict(
    hashes: &[Dhash],
    assignments: &[Option<u32>],
    config: &DetectorConfig,
    obs: &PageObservation,
) -> Verdict {
    let score = obs.signals.score();
    let nearest = hashes
        .iter()
        .enumerate()
        .filter_map(|(q, h)| {
            assignments
                .get(q)
                .copied()
                .flatten()
                .map(|id| ((obs.dhash.0 ^ h.0).count_ones(), q, id))
        })
        .min_by_key(|&(d, q, _)| (d, q));
    match nearest {
        Some((distance, _, campaign)) if distance <= config.base_radius() => {
            Verdict::Campaign { campaign, distance, score }
        }
        Some((distance, _, campaign)) if distance <= config.escalated_radius() => {
            Verdict::NearCampaign { campaign, distance, score }
        }
        _ if score >= config.feature_threshold => Verdict::Suspicious { score },
        _ => Verdict::Benign { score },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, PageSignals};
    use seacma_util::prop::Rng;

    #[test]
    fn oracle_matches_indexed_detector_on_random_columns() {
        let mut rng = Rng::new(0x04AC1E);
        for _ in 0..5 {
            let base = rng.u128();
            let n = rng.range(0, 300);
            let hashes: Vec<Dhash> = (0..n)
                .map(|i| {
                    if rng.bool(0.5) {
                        Dhash(base ^ (1u128 << (i % 23)))
                    } else {
                        Dhash(rng.u128())
                    }
                })
                .collect();
            let assign: Vec<Option<u32>> = (0..n)
                .map(|_| if rng.bool(0.6) { Some(rng.below(6) as u32) } else { None })
                .collect();
            let cfg = DetectorConfig::default();
            let d = Detector::from_columns(&hashes, &assign, cfg);
            for _ in 0..100 {
                let flips = rng.below(30) as u32;
                let mut h = base;
                for _ in 0..flips {
                    h ^= 1u128 << rng.below(128);
                }
                let obs = PageObservation {
                    dhash: Dhash(h),
                    signals: PageSignals {
                        scam_phone: rng.bool(0.3),
                        survey_gateway: rng.bool(0.3),
                        redirect_hops: rng.below(6) as u32,
                        ..PageSignals::default()
                    },
                };
                assert_eq!(linear_verdict(&hashes, &assign, &cfg, &obs), d.detect(&obs));
            }
        }
    }
}
