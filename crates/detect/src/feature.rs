//! Structural page-load features and the fused observation record.
//!
//! The paper's measurement found SE attack pages share cheap structural
//! tells besides their visual creative: they sit at the end of long
//! cross-origin redirect chains (§3.4), display scam call-center numbers
//! (tech support), funnel to survey gateways (lottery), lock the page,
//! beg for notification permission, or auto-trigger downloads (§3.2).
//! [`PageSignals`] extracts exactly those from the instrumented browser
//! log and the served document — no DOM parsing, no rendering beyond the
//! screenshot the dhash already needs — and folds them into one small
//! integer score the detector uses when the visual index has nothing to
//! say (the never-seen-campaign path).

use std::collections::BTreeSet;

use seacma_browser::{EventLog, EventRef};
use seacma_simweb::Page;
use seacma_util::impl_json_struct;
use seacma_vision::dhash::Dhash;

/// Redirect-chain length at or above which a load looks trafficked
/// through an ad/redirector funnel rather than served directly.
pub const SUSPICIOUS_HOPS: u32 = 3;

/// Distinct third-party e2LD count at or above which the loading process
/// looks syndicated through multiple ad-network origins.
pub const SUSPICIOUS_THIRD_PARTIES: u32 = 3;

/// Cheap structural features of one page load.
///
/// ```
/// use seacma_detect::PageSignals;
///
/// let s = PageSignals { scam_phone: true, survey_gateway: true, ..PageSignals::default() };
/// assert_eq!(s.score(), 4); // 2 + 2, no chain or behaviour tells
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageSignals {
    /// Redirect hops the browser followed to reach the document.
    pub redirect_hops: u32,
    /// Distinct e2LDs involved in the load other than the landing page's.
    pub third_party_e2lds: u32,
    /// The document displays a scam call-center phone number.
    pub scam_phone: bool,
    /// The document funnels to a survey-scam gateway.
    pub survey_gateway: bool,
    /// Page-locking tactics are active (onbeforeunload loops, alert walls).
    pub locking: bool,
    /// The document immediately requests push-notification permission.
    pub notification_prompt: bool,
    /// Interaction (or mere load) triggers a file download.
    pub auto_download: bool,
}

impl PageSignals {
    /// Extracts the signals from an instrumented session log plus the
    /// served document. `landing_e2ld` is the landing page's own e2LD, so
    /// the third-party count excludes same-site URLs.
    ///
    /// ```
    /// use seacma_browser::{BrowserEvent, EventLog, NavCause};
    /// use seacma_detect::PageSignals;
    /// use seacma_simweb::{Page, RedirectKind, Url, VisualTemplate};
    ///
    /// let mut log = EventLog::new();
    /// log.push(BrowserEvent::Redirected {
    ///     from: Url::http("pub.com", "/"),
    ///     to: Url::http("trk.net", "/r"),
    ///     kind: RedirectKind::Http302,
    /// });
    /// log.push(BrowserEvent::Redirected {
    ///     from: Url::http("trk.net", "/r"),
    ///     to: Url::http("prize.club", "/lp"),
    ///     kind: RedirectKind::JsLocation,
    /// });
    /// let mut page = Page::bare(
    ///     Url::http("prize.club", "/lp"),
    ///     "You won!",
    ///     VisualTemplate::Lottery { skin: 1 },
    /// );
    /// page.survey_gateway = Some(Url::http("survey.gate", "/go"));
    /// let s = PageSignals::from_page_load(&log, &page, "prize.club");
    /// assert_eq!(s.redirect_hops, 2);
    /// assert_eq!(s.third_party_e2lds, 2); // pub.com, trk.net
    /// assert!(s.survey_gateway);
    /// ```
    pub fn from_page_load(log: &EventLog, page: &Page, landing_e2ld: &str) -> Self {
        let mut third: BTreeSet<String> = BTreeSet::new();
        let mut note = |u: &seacma_simweb::Url| {
            let e = u.e2ld();
            if e != landing_e2ld {
                third.insert(e);
            }
        };
        for e in log.events() {
            match e {
                EventRef::NavigationStart { url, .. } => note(url),
                EventRef::PageLoaded { url, .. } => note(url),
                EventRef::Redirected { from, to, .. } => {
                    note(from);
                    note(to);
                }
                EventRef::ScriptLoaded { src, .. } => note(src),
                EventRef::TabOpened { opener, url } => {
                    note(opener);
                    note(url);
                }
                _ => {}
            }
        }
        let notification_prompt = page.notification_prompt
            || log.events().any(|e| matches!(e, EventRef::NotificationPrompt { .. }));
        Self::from_counts(
            log.redirects().count() as u32,
            third.len() as u32,
            page,
        )
        .with_notification_prompt(notification_prompt)
    }

    /// Builds the signals from already-computed chain counts plus the
    /// served document — the batch-evaluation entry point, where the
    /// crawler's [`LandingRecord`] carries the hop and involved-URL lists
    /// and only the document tells remain to be read.
    ///
    /// [`LandingRecord`]: https://docs.rs/seacma-crawler
    pub fn from_counts(redirect_hops: u32, third_party_e2lds: u32, page: &Page) -> Self {
        PageSignals {
            redirect_hops,
            third_party_e2lds,
            scam_phone: page.scam_phone.is_some(),
            survey_gateway: page.survey_gateway.is_some(),
            locking: !page.locking.is_empty(),
            notification_prompt: page.notification_prompt,
            auto_download: page.auto_download.is_some(),
        }
    }

    fn with_notification_prompt(mut self, v: bool) -> Self {
        self.notification_prompt = v;
        self
    }

    /// The deterministic integer feature score: strong tells (scam phone,
    /// survey gateway, page locking, auto-download) weigh 2, weak tells
    /// (notification prompt, a chain of ≥ [`SUSPICIOUS_HOPS`] hops, ≥
    /// [`SUSPICIOUS_THIRD_PARTIES`] third-party e2LDs) weigh 1. Maximum 11.
    pub fn score(&self) -> u32 {
        2 * u32::from(self.scam_phone)
            + 2 * u32::from(self.survey_gateway)
            + 2 * u32::from(self.locking)
            + 2 * u32::from(self.auto_download)
            + u32::from(self.notification_prompt)
            + u32::from(self.redirect_hops >= SUSPICIOUS_HOPS)
            + u32::from(self.third_party_e2lds >= SUSPICIOUS_THIRD_PARTIES)
    }
}

/// One page load as the detector sees it: the fused screenshot dhash plus
/// the structural signals.
///
/// ```
/// use seacma_detect::{PageObservation, PageSignals};
/// use seacma_vision::dhash::Dhash;
///
/// let obs = PageObservation { dhash: Dhash(42), signals: PageSignals::default() };
/// assert_eq!(obs.signals.score(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageObservation {
    /// Fused screenshot dhash of the loaded document.
    pub dhash: Dhash,
    /// Structural features of the load.
    pub signals: PageSignals,
}

impl_json_struct!(PageSignals {
    redirect_hops,
    third_party_e2lds,
    scam_phone,
    survey_gateway,
    locking,
    notification_prompt,
    auto_download,
});
impl_json_struct!(PageObservation { dhash, signals });

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_browser::{BrowserEvent, NavCause};
    use seacma_simweb::{RedirectKind, Url, VisualTemplate};

    fn lp(host: &str) -> Page {
        Page::bare(Url::http(host, "/lp"), "t", VisualTemplate::TechSupport { skin: 3 })
    }

    #[test]
    fn counts_exclude_landing_e2ld_and_dedupe() {
        let mut log = EventLog::new();
        log.push(BrowserEvent::NavigationStart {
            url: Url::http("pub.com", "/"),
            cause: NavCause::Initial,
            initiator: None,
        });
        log.push(BrowserEvent::Redirected {
            from: Url::http("pub.com", "/"),
            to: Url::http("ads.trk.net", "/a"),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: Url::http("ads.trk.net", "/a"),
            to: Url::http("x.club", "/lp"),
            kind: RedirectKind::JsLocation,
        });
        log.push(BrowserEvent::PageLoaded { url: Url::http("x.club", "/lp"), title: "t".into() });
        let s = PageSignals::from_page_load(&log, &lp("x.club"), "x.club");
        assert_eq!(s.redirect_hops, 2);
        // pub.com and trk.net (subdomain folds to its e2LD); x.club is the
        // landing site and excluded.
        assert_eq!(s.third_party_e2lds, 2);
    }

    #[test]
    fn document_tells_and_score_weights() {
        let mut page = lp("x.club");
        page.scam_phone = Some("1-800-000".into());
        page.locking = vec![seacma_simweb::LockTactic::OnBeforeUnload];
        page.notification_prompt = true;
        let s = PageSignals::from_counts(4, 1, &page);
        assert!(s.scam_phone && s.locking && s.notification_prompt);
        assert!(!s.survey_gateway && !s.auto_download);
        // 2 (phone) + 2 (lock) + 1 (notify) + 1 (hops >= 3) = 6.
        assert_eq!(s.score(), 6);
    }

    #[test]
    fn prompt_event_counts_even_without_document_flag() {
        let mut log = EventLog::new();
        log.push(BrowserEvent::NotificationPrompt { page: Url::http("x.club", "/lp") });
        let s = PageSignals::from_page_load(&log, &lp("x.club"), "x.club");
        assert!(s.notification_prompt);
        assert_eq!(s.score(), 1);
    }

    #[test]
    fn observation_json_roundtrip() {
        use seacma_util::json;
        let obs = PageObservation {
            dhash: Dhash(0xDEAD_BEEF),
            signals: PageSignals {
                redirect_hops: 5,
                third_party_e2lds: 2,
                scam_phone: true,
                survey_gateway: false,
                locking: true,
                notification_prompt: false,
                auto_download: true,
            },
        };
        let s = json::to_string(&obs);
        let back: PageObservation = json::from_str(&s).unwrap();
        assert_eq!(back, obs);
    }
}
