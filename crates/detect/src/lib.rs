//! # seacma-detect
//!
//! Online, per-page-load social-engineering detection served from the live
//! campaign index.
//!
//! The source paper discovers SE campaigns *offline*: crawl, screenshot,
//! cluster dhashes, track. Its follow-ups (SENet, arXiv 2401.05569; PP3D,
//! arXiv 2510.18465) argue the real defense is an **online** classifier
//! fast enough to sit on the browser's page-load path and able to
//! generalize to campaigns it has never seen. This crate is that layer for
//! the seacma substrate:
//!
//! * [`PageObservation`] — what one page load yields: the fused screenshot
//!   [`Dhash`](seacma_vision::dhash::Dhash) plus [`PageSignals`], cheap
//!   structural features read straight off the instrumented browser log
//!   and the served document (redirect-chain length, third-party e2LD
//!   count, scam-phone / survey-gateway / page-locking tells).
//! * [`Detector`] — scores an observation against a frozen snapshot of the
//!   campaign tracker's point set in three stages: an exact banded
//!   [`HammingIndex`](seacma_vision::index::HammingIndex) probe at the
//!   clustering radius (the approximate-kNN front-end; a hit is a
//!   *seen-campaign* match), a **radius-escalated** second probe a few
//!   bits wider (near-miss generalization: a new creative variant of a
//!   known campaign), and a deterministic feature-threshold score for
//!   index misses — the never-seen-campaign path, where only the
//!   structural tells can speak.
//! * [`Verdict`] — the scored answer, one of `Campaign` / `NearCampaign` /
//!   `Suspicious` / `Benign`.
//! * [`oracle::linear_verdict`] — an independent naive O(n) scan
//!   implementing the same contract; the exactness harness pins the
//!   indexed detector byte-identical to it across insertion orders,
//!   worker counts and snapshot/resume.
//!
//! Every stage is deterministic and allocation-free on the hot path
//! ([`Detector::detect_with`] reuses a caller scratch buffer), so the
//! daemon can serve `detect` queries lock-free from an epoch-published
//! snapshot at six-figure QPS.

#![deny(missing_docs)]

pub mod detector;
pub mod feature;
pub mod oracle;

pub use detector::{Detector, DetectorConfig, Verdict};
pub use feature::{PageObservation, PageSignals};
