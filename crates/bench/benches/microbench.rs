//! Microbenchmarks for the pipeline's hot paths: perceptual hashing,
//! clustering, page rendering, world generation, crawl visits,
//! backtracking-graph construction, attribution matching and milking
//! rounds. Runs on the in-tree `seacma_util::bench` harness; pass
//! `--json PATH` for machine-readable results, `--quick` for a smoke run
//! (which is also what `cargo test` does to this target).

use seacma_util::bench::{Bench, BenchmarkId, Throughput};
use seacma_util::bench_main;

use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_crawler::{visit_publisher, CrawlPolicy};
use seacma_graph::{Attributor, BacktrackGraph, NetworkPattern};
use seacma_simweb::visual::VisualTemplate;
use seacma_simweb::{SimTime, UaProfile, Vantage, World, WorldConfig};
use seacma_vision::cluster::{cluster_screenshots, ClusterParams, ScreenshotPoint};
use seacma_vision::dhash::{dhash128, hamming, Dhash};

fn small_world() -> World {
    World::generate(WorldConfig {
        seed: 0xBE7C,
        n_publishers: 300,
        n_hidden_only_publishers: 30,
        n_advertisers: 40,
        campaign_scale: 0.4,
        error_rate: 0.0,
        ..Default::default()
    })
}

fn bench_dhash(c: &mut Bench) {
    let mut g = c.benchmark_group("dhash");
    let shot = VisualTemplate::TechSupport { skin: 1 }.render(7);
    g.throughput(Throughput::Elements(1));
    g.bench_function("dhash128_128x80", |b| b.iter(|| dhash128(std::hint::black_box(&shot))));
    let a = Dhash(0x0123_4567_89ab_cdef_1122_3344_5566_7788);
    let d = Dhash(0x8877_6655_4433_2211_fedc_ba98_7654_3210);
    g.bench_function("hamming", |b| {
        b.iter(|| hamming(std::hint::black_box(a), std::hint::black_box(d)))
    });
    g.finish();
}

fn bench_render(c: &mut Bench) {
    let mut g = c.benchmark_group("render");
    for (name, t) in [
        ("tech_support", VisualTemplate::TechSupport { skin: 2 }),
        ("benign", VisualTemplate::BenignLanding { style: 99 }),
        ("parked", VisualTemplate::Parked { provider: 3 }),
    ] {
        g.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                t.render(i)
            })
        });
    }
    g.finish();
}

fn bench_dbscan(c: &mut Bench) {
    let mut g = c.benchmark_group("clustering");
    g.sample_size(10);
    for n in [500usize, 2000, 8000] {
        // Synthetic corpus: 20 campaigns + noise.
        let points: Vec<ScreenshotPoint> = (0..n)
            .map(|i| {
                let campaign = i % 25;
                let base = seacma_simweb::det::det_hash(&[0x5EED, campaign as u64]);
                let wiggle = 1u128 << (i % 5);
                ScreenshotPoint::new(
                    Dhash(u128::from(base) << 64 | u128::from(base.rotate_left(17)) ^ wiggle),
                    format!("d{}.club", i % 200),
                )
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("dbscan_theta", n), &points, |b, pts| {
            b.iter(|| cluster_screenshots(pts, ClusterParams::default()))
        });
    }
    g.finish();
}

fn bench_world_gen(c: &mut Bench) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    for n in [500u32, 2000] {
        g.bench_with_input(BenchmarkId::new("generate", n), &n, |b, &n| {
            b.iter(|| {
                World::generate(WorldConfig {
                    n_publishers: n,
                    n_hidden_only_publishers: n / 10,
                    ..Default::default()
                })
            })
        });
    }
    g.finish();
}

fn bench_crawl(c: &mut Bench) {
    let world = small_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut g = c.benchmark_group("crawl");
    g.throughput(Throughput::Elements(1));
    g.bench_function("visit_publisher", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % world.publishers().len();
            visit_publisher(
                &world,
                &world.publishers()[i],
                cfg,
                SimTime((i as u64) * 2),
                CrawlPolicy::default(),
                None,
            )
        })
    });
    g.finish();
}

fn bench_graph_and_attribution(c: &mut Bench) {
    let world = small_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    // Produce one session log with several ad chains.
    let mut session = BrowserSession::new(&world, cfg, SimTime::EPOCH);
    let publisher = world.publishers().iter().find(|p| !p.stale).unwrap();
    let loaded = session.navigate(&publisher.url()).unwrap();
    let mut last_landing = None;
    for k in 0..loaded.page.ad_click_chain.len() {
        if let Some(a) = loaded.page.ad_action(k).cloned() {
            if let Ok(Some(l)) = session.click(&loaded.url, &a) {
                last_landing = Some(l.url);
            }
            session.reopen();
            let _ = session.navigate(&publisher.url());
        }
    }
    let log = session.into_log();
    let landing = last_landing.expect("some landing");

    let mut g = c.benchmark_group("graph");
    g.bench_function("backtrack_from_log", |b| b.iter(|| BacktrackGraph::from_log(&log)));
    let graph = BacktrackGraph::from_log(&log);
    g.bench_function("involved_urls", |b| b.iter(|| graph.involved_urls(&landing)));
    let attributor = Attributor::new(
        world
            .networks()
            .iter()
            .map(|n| NetworkPattern {
                name: n.name.clone(),
                url_invariant: n.url_invariant.clone(),
            })
            .collect(),
    );
    g.bench_function("attribute", |b| b.iter(|| attributor.attribute(&graph, &landing)));
    g.finish();
}

fn bench_milking_session(c: &mut Bench) {
    let world = small_world();
    let campaign = world
        .campaigns()
        .iter()
        .find(|cm| cm.tds_domain.is_some())
        .unwrap();
    let tds = campaign.tds_url(0).unwrap();
    let cfg =
        BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential).without_screenshots();
    let mut g = c.benchmark_group("milking");
    g.throughput(Throughput::Elements(1));
    g.bench_function("one_session", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 15;
            let mut session = BrowserSession::new(&world, cfg, SimTime(t));
            session.navigate(std::hint::black_box(&tds))
        })
    });
    g.finish();
}

bench_main!(
    bench_dhash,
    bench_render,
    bench_dbscan,
    bench_world_gen,
    bench_crawl,
    bench_graph_and_attribution,
    bench_milking_session,
);
