//! Regenerates the §4.5 VirusTotal analysis of milked files: how many
//! were already known, how many the matured AV ensemble flags, and the
//! label distribution.

use std::collections::HashMap;

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_milker::downloads::DownloadStats;

fn main() {
    let args = BenchArgs::parse();
    banner("VirusTotal analysis of milked files (paper §4.5)");
    let (_pipeline, run) = args.full();
    let files = &run.milking.files;
    let stats = DownloadStats::over(files);
    println!("files milked:                  {}", stats.total);
    println!(
        "already known to VT at submit: {} ({:.1}%)",
        stats.known_at_submit,
        pct(stats.known_at_submit, stats.total)
    );
    println!(
        "flagged malicious after rescan: {} ({:.1}%)",
        stats.finally_malicious,
        pct(stats.finally_malicious, stats.total)
    );
    println!(
        "flagged by >= 15 engines:      {} ({:.1}%)",
        stats.flagged_15_plus,
        pct(stats.flagged_15_plus, stats.total)
    );

    let mut formats: HashMap<&str, usize> = HashMap::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    for f in files {
        *formats
            .entry(match f.payload.format {
                seacma_simweb::FileFormat::Pe => "Windows PE",
                seacma_simweb::FileFormat::Dmg => "macOS DMG",
                seacma_simweb::FileFormat::Crx => "extension CRX",
            })
            .or_default() += 1;
        if let Some(l) = f.final_report.as_ref().and_then(|r| r.label.clone()) {
            *labels.entry(l).or_default() += 1;
        }
    }
    println!("\nformats: {formats:?}");
    let mut labels: Vec<(String, usize)> = labels.into_iter().collect();
    labels.sort_by(|a, b| b.1.cmp(&a.1));
    println!("labels:  {labels:?}");
    paper_note(&[
        "9,476 files milked in 14 days; only 1,203 already known to VirusTotal",
        ">9,000 flagged malicious after the 3-month rescan; >4,000 by >=15 AVs",
        "Trojan, Adware and PUP were the most popular labels",
    ]);
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}
