//! Regenerates **Table 1** — SE ad campaign statistics per category:
//! attacks, attack domains, campaigns and GSB detection rates.

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 1: SE ad campaign statistics");
    let (pipeline, discovery) = args.discovery();
    let rows = report::table1(pipeline.world(), &discovery);
    println!("{}", report::render_table1(&rows));
    paper_note(&[
        "Fake Software   16802 attacks  2370 dom  52 camp  GSB 15.4% dom / 73.1% camp",
        "Registration     2909 attacks   474 dom  36 camp  GSB  0.0% dom /  0.0% camp",
        "Lottery/Gift     4297 attacks    50 dom   9 camp  GSB 18.0% dom / 66.7% camp",
        "Chrome Notif.    3419 attacks   102 dom   3 camp  GSB  0.0% dom /  0.0% camp",
        "Scareware        1032 attacks    71 dom   5 camp  GSB  0.0% dom /  0.0% camp",
        "Tech Support      464 attacks    74 dom   3 camp  GSB  1.4% dom / 33.3% camp",
    ]);
}
