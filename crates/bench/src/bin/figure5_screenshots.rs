//! Reproduces **Figures 5 and 6** — the screenshot galleries of
//! discovered SEACMA campaigns. Writes PGM images (one per campaign
//! category plus the confounders) under `target/seacma-gallery/` and
//! prints ASCII previews.

use std::fs;
use std::path::PathBuf;

use seacma_bench::{banner, BenchArgs};
use seacma_simweb::visual::VisualTemplate;

fn main() {
    let args = BenchArgs::parse();
    banner("Figures 5/6: SE attack screenshot gallery");
    let dir = PathBuf::from("target/seacma-gallery");
    fs::create_dir_all(&dir).expect("create gallery dir");

    let gallery: Vec<(&str, VisualTemplate)> = vec![
        ("fake_software", VisualTemplate::FakeSoftware { skin: 3 }),
        ("tech_support_scam", VisualTemplate::TechSupport { skin: 1 }),
        ("lottery_scam", VisualTemplate::Lottery { skin: 2 }),
        ("scareware", VisualTemplate::Scareware { skin: 0 }),
        ("chrome_notification", VisualTemplate::ChromeNotification { skin: 1 }),
        ("registration", VisualTemplate::Registration { skin: 4 }),
        ("parked_domain", VisualTemplate::Parked { provider: 2 }),
        ("stock_adult", VisualTemplate::StockAdult { image: 1 }),
        ("url_shortener", VisualTemplate::ShortenerFrame { service: 0 }),
    ];

    for (name, template) in &gallery {
        let shot = template.render(args.seed);
        let path = dir.join(format!("{name}.pgm"));
        fs::write(&path, shot.to_pgm()).expect("write pgm");
        println!("\n--- {name} -> {} ---", path.display());
        println!("{}", shot.to_ascii(64));
    }
    println!("gallery written to {}", dir.display());
}
