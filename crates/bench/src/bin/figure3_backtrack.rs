//! Reproduces **Figure 3** — the backtracking graph of one SE attack
//! load, printed as ASCII and Graphviz DOT.

use seacma_bench::{banner, BenchArgs};
use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_graph::{milkable, Attributor, BacktrackGraph};
use seacma_simweb::{SimTime, UaProfile, Vantage};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 3: backtracking graph of a tech-support-scam ad load");
    let pipeline = seacma_core::Pipeline::new(args.config());
    let world = pipeline.world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);

    // Crawl publishers until a click lands on an SE attack with an
    // upstream TDS (the Figure-3 shape).
    for publisher in world.publishers() {
        let mut session = BrowserSession::new(world, cfg, SimTime::EPOCH);
        let Ok(loaded) = session.navigate(&publisher.url()) else { continue };
        for k in 0..loaded.page.ad_click_chain.len() {
            let Some(action) = loaded.page.ad_action(k).cloned() else { break };
            let Ok(Some(landing)) = session.click(&loaded.url, &action) else {
                session.reopen();
                continue;
            };
            if landing.page.visual.is_attack() && landing.hops.len() >= 2 {
                let graph = BacktrackGraph::from_log(session.log());
                println!("attack page: {}\n", landing.url);
                println!("backward path (indentation = causality):");
                println!("{}", graph.to_ascii(&landing.url));
                if let Some(m) = milkable::candidate(&graph, &landing.url) {
                    println!("milkable candidate (first off-domain upstream): {m}");
                }
                let attributor = Attributor::new(pipeline.seed_patterns());
                println!("attribution: {:?}", attributor.attribute(&graph, &landing.url));
                println!("\nGraphviz DOT:\n{}", graph.to_dot(&landing.url));
                return;
            }
            session.reopen();
            let _ = session.navigate(&publisher.url());
        }
    }
    println!("no multi-hop SE attack found — increase --publishers");
}
