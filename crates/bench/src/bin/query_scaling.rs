//! Query-serving bench for the resident reputation daemon (DESIGN.md §2g;
//! EXPERIMENTS.md "Query serving").
//!
//! Measures single-core QPS and latency percentiles (p50/p95/p99) for the
//! daemon's read path — URL lookups, dhash nearest-campaign lookups and
//! campaign status — against the final published snapshot of an epoch run.
//! Before any timing, an **exactness gate** proves the daemon's answers at
//! every epoch boundary are byte-identical to the offline batch pipeline
//! (`seacma_daemon::offline::replay_batches`), and that a snapshot → resume
//! → re-query round trip changes neither the serialized state nor one
//! answer byte.
//!
//! The criterion-shaped harness reports min/mean/median/p95 only, so this
//! bin records per-query latencies itself and writes its own JSON:
//!
//! ```text
//! cargo run --release -p seacma-bench --bin query_scaling -- --json BENCH_query.json
//! cargo run --release -p seacma-bench --bin query_scaling -- --quick   # tier-1 smoke
//! ```

use std::time::Instant;

use seacma_daemon::offline::replay_batches;
use seacma_daemon::{Daemon, ReputationSnapshot};
use seacma_tracker::TrackerConfig;
use seacma_util::json::{self, Value};
use seacma_util::prop::Rng;
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;

/// The milking-feed-shaped corpus `tracker_scaling` uses: ~1 campaign
/// template per 150 points, 80 % near-duplicates (≤ 3 flipped bits) on 12
/// rotating e2LDs per campaign, 20 % uniform noise.
fn synth(n: usize, seed: u64) -> Vec<ScreenshotPoint> {
    let mut rng = Rng::new(seed);
    let centers: Vec<u128> = (0..(n / 150).max(1)).map(|_| rng.u128()).collect();
    (0..n)
        .map(|i| {
            if rng.bool(0.8) {
                let c = rng.below(centers.len() as u64) as usize;
                let mut h = centers[c];
                for _ in 0..rng.below(4) {
                    h ^= 1u128 << rng.below(128);
                }
                ScreenshotPoint::new(Dhash(h), format!("c{c}-{}.club", rng.below(12)))
            } else {
                ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.info"))
            }
        })
        .collect()
}

/// Every probe's answer from one snapshot as one string: the gate's
/// equality check is string equality over this sheet.
fn answer_sheet(snap: &ReputationSnapshot, urls: &[String], hashes: &[Dhash]) -> String {
    let mut out = format!("epoch={}\n", snap.epoch());
    for u in urls {
        out.push_str(&json::to_string(&snap.lookup_url(u)));
        out.push('\n');
    }
    for &h in hashes {
        out.push_str(&json::to_string(&snap.nearest_campaign(h)));
        out.push('\n');
    }
    for id in 0..=(snap.statuses().len() as u32) {
        out.push_str(&json::to_string(&snap.campaign(id).cloned()));
        out.push('\n');
    }
    out
}

/// Latency percentile over sorted per-query samples (nearest-rank).
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil().max(1.0) as usize - 1;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Times `queries` calls of `run` one by one on the current thread,
/// returning `(total_ns, sorted per-query ns)`. The checksum accumulator
/// keeps the answers observable so the optimizer cannot skip them.
fn time_kind(queries: usize, mut run: impl FnMut(usize) -> u64) -> (u64, Vec<u64>) {
    let mut samples = Vec::with_capacity(queries);
    let mut checksum = 0u64;
    let wall = Instant::now();
    for i in 0..queries {
        let t = Instant::now();
        checksum = checksum.wrapping_add(run(i));
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let total = wall.elapsed().as_nanos() as u64;
    std::hint::black_box(checksum);
    samples.sort_unstable();
    (total, samples)
}

fn kind_stats(name: &str, total_ns: u64, sorted_ns: &[u64]) -> (String, Value) {
    let n = sorted_ns.len() as f64;
    let qps = n / (total_ns as f64 / 1e9);
    println!(
        "{name:>14}: {qps:>12.0} qps   p50 {:>7.2} µs   p95 {:>7.2} µs   p99 {:>7.2} µs",
        percentile_us(sorted_ns, 50.0),
        percentile_us(sorted_ns, 95.0),
        percentile_us(sorted_ns, 99.0),
    );
    (
        name.to_string(),
        Value::Obj(vec![
            ("queries".into(), Value::UInt(sorted_ns.len() as u128)),
            ("qps".into(), Value::Float((qps * 10.0).round() / 10.0)),
            ("p50_us".into(), Value::Float(percentile_us(sorted_ns, 50.0))),
            ("p95_us".into(), Value::Float(percentile_us(sorted_ns, 95.0))),
            ("p99_us".into(), Value::Float(percentile_us(sorted_ns, 99.0))),
        ]),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (epoch_size, epochs, queries_per_kind) =
        if quick { (500, 4, 2_000) } else { (5_000, 10, 100_000) };
    let corpus = synth(epoch_size * epochs, 0x5EAC_DAE1);
    let batches: Vec<Vec<ScreenshotPoint>> =
        corpus.chunks(epoch_size).map(<[ScreenshotPoint]>::to_vec).collect();
    let config = TrackerConfig::default();

    // Gate probes: hits, misses and near/far hashes, deterministic.
    let mut rng = Rng::new(0x5EAC_DAE2);
    let mut urls: Vec<String> = (0..300.min(corpus.len()))
        .map(|_| format!("http://www.{}/lp", rng.pick(&corpus).e2ld))
        .collect();
    urls.extend((0..50).map(|i| format!("http://unseen{i}.example/")));
    let mut hashes: Vec<Dhash> =
        (0..300.min(corpus.len())).map(|_| Dhash(rng.pick(&corpus).dhash.0 ^ 1)).collect();
    hashes.extend((0..50).map(|_| Dhash(rng.u128())));

    // ── Exactness gate ────────────────────────────────────────────────
    // 1. Every epoch boundary: daemon answers == offline batch answers.
    let oracle = replay_batches(config, &batches);
    let mut daemon = Daemon::new(config);
    let handle = daemon.handle();
    for (e, batch) in batches.iter().enumerate() {
        daemon.ingest_all(batch.iter().cloned());
        daemon.close_epoch();
        let live = answer_sheet(&handle.snapshot(), &urls, &hashes);
        let batch_sheet = answer_sheet(&oracle[e], &urls, &hashes);
        assert_eq!(live, batch_sheet, "daemon diverged from the batch oracle at epoch {e}");
    }
    // 2. Snapshot → resume → re-query: byte-identical state and answers.
    let frozen = daemon.to_json();
    let resumed = Daemon::from_json(&frozen).expect("snapshot parses");
    assert_eq!(resumed.to_json(), frozen, "resume must re-serialize identically");
    assert_eq!(
        answer_sheet(&resumed.handle().snapshot(), &urls, &hashes),
        answer_sheet(&handle.snapshot(), &urls, &hashes),
        "resumed daemon must answer identically"
    );
    println!(
        "exactness check: daemon == offline batch pipeline at {epochs} boundaries, \
         snapshot/resume byte-identical ({} probes)\n",
        urls.len() + hashes.len(),
    );

    // ── Timing (one core, lock-free reads on the final snapshot) ──────
    let snap = handle.snapshot();
    let n_campaigns = snap.statuses().len().max(1) as u32;
    let hit_urls: Vec<String> = (0..1024)
        .map(|_| format!("http://www.{}/lp?x=1", rng.pick(&corpus).e2ld))
        .collect();
    let miss_urls: Vec<String> =
        (0..1024).map(|i| format!("http://never{i}.example/download")).collect();
    let near_hashes: Vec<Dhash> = (0..1024)
        .map(|_| Dhash(rng.pick(&corpus).dhash.0 ^ (1u128 << rng.below(128))))
        .collect();
    let far_hashes: Vec<Dhash> = (0..1024).map(|_| Dhash(rng.u128())).collect();

    println!(
        "query latency over {} points, {} campaigns, {queries_per_kind} queries/kind:",
        snap.points().len(),
        snap.statuses().iter().filter(|s| s.qualified).count(),
    );
    let mut kinds = Vec::new();
    let (total, samples) = time_kind(queries_per_kind, |i| {
        u64::from(!matches!(
            snap.lookup_url(&hit_urls[i % hit_urls.len()]),
            seacma_daemon::UrlVerdict::Unknown
        ))
    });
    kinds.push(kind_stats("url_hit", total, &samples));
    let mut all_ns = samples;
    let mut all_total = total;

    let (total, samples) = time_kind(queries_per_kind, |i| {
        u64::from(!matches!(
            snap.lookup_url(&miss_urls[i % miss_urls.len()]),
            seacma_daemon::UrlVerdict::Unknown
        ))
    });
    kinds.push(kind_stats("url_miss", total, &samples));
    all_ns.extend(&samples);
    all_total += total;

    let (total, samples) = time_kind(queries_per_kind, |i| {
        snap.nearest_campaign(near_hashes[i % near_hashes.len()])
            .map_or(0, |m| u64::from(m.campaign) + 1)
    });
    kinds.push(kind_stats("dhash_near", total, &samples));
    all_ns.extend(&samples);
    all_total += total;

    let (total, samples) = time_kind(queries_per_kind, |i| {
        snap.nearest_campaign(far_hashes[i % far_hashes.len()])
            .map_or(0, |m| u64::from(m.campaign) + 1)
    });
    kinds.push(kind_stats("dhash_far", total, &samples));
    all_ns.extend(&samples);
    all_total += total;

    let (total, samples) = time_kind(queries_per_kind, |i| {
        snap.campaign(i as u32 % n_campaigns).map_or(0, |s| u64::from(s.members))
    });
    kinds.push(kind_stats("campaign_state", total, &samples));
    all_ns.extend(&samples);
    all_total += total;

    all_ns.sort_unstable();
    let (_, overall) = kind_stats("overall", all_total, &all_ns);
    let overall_qps = all_ns.len() as f64 / (all_total as f64 / 1e9);

    if let Some(path) = json_path {
        let doc = Value::Obj(vec![
            (
                "config".into(),
                Value::Obj(vec![
                    ("points".into(), Value::UInt((epoch_size * epochs) as u128)),
                    ("epochs".into(), Value::UInt(epochs as u128)),
                    ("queries_per_kind".into(), Value::UInt(queries_per_kind as u128)),
                    ("threads".into(), Value::UInt(1)),
                ]),
            ),
            (
                "exactness".into(),
                Value::Obj(vec![
                    ("epochs_compared".into(), Value::UInt(epochs as u128)),
                    ("probes".into(), Value::UInt((urls.len() + hashes.len()) as u128)),
                    ("snapshot_resume_byte_identical".into(), Value::Bool(true)),
                    ("identical_to_batch".into(), Value::Bool(true)),
                ]),
            ),
            ("kinds".into(), Value::Obj(kinds)),
            ("overall".into(), overall),
        ]);
        std::fs::write(&path, json::to_string_pretty(&doc) + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path} (overall {overall_qps:.0} qps on one core)");
    }
}
