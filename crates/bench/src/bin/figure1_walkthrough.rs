//! Reproduces **Figure 1** — the transparent-ad walkthrough: a streaming
//! publisher page where clicking anywhere opens a pop-up that redirects
//! to an SE attack, shown twice (two stacked ad networks → two different
//! attacks).

use seacma_bench::{banner, BenchArgs};
use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_simweb::{SimTime, UaProfile, Vantage};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 1: transparent-ad walkthrough");
    let (pipeline, _) = (seacma_core::Pipeline::new(args.config()), ());
    let world = pipeline.world();

    // A publisher running at least two ad networks (greedy site).
    let publisher = world
        .publishers()
        .iter()
        .find(|p| !p.stale && p.networks.len() >= 2)
        .expect("greedy publishers exist");
    println!("(a) publisher page: http://{}/", publisher.domain);
    println!(
        "    embeds {} ad networks: {}",
        publisher.networks.len(),
        publisher
            .networks
            .iter()
            .map(|id| world.networks()[id.0 as usize].name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut session = BrowserSession::new(world, cfg, SimTime::EPOCH);
    let loaded = session.navigate(&publisher.url()).expect("publisher loads");
    let overlay = loaded
        .page
        .elements
        .iter()
        .any(|e| e.width >= 1366 && e.height >= 768);
    println!("    full-page transparent overlay present: {overlay}");

    // Repeated clicks at the same spot trigger the stacked networks in
    // sequence (footnote 2 / §3.2).
    for (k, label) in [(0usize, "(b)"), (1usize, "(c)")] {
        let Some(action) = loaded.page.ad_action(k).cloned() else { break };
        match session.click(&loaded.url, &action) {
            Ok(Some(landing)) => {
                println!(
                    "{label} click #{k} opened tab -> {} [{}]{}",
                    landing.url,
                    landing.page.title,
                    if landing.page.visual.is_attack() { "  << SE ATTACK" } else { "" }
                );
                for (from, to, kind) in &landing.hops {
                    println!("      {from} --{kind:?}--> {to}");
                }
                session.reopen();
                let _ = session.navigate(&publisher.url());
            }
            Ok(None) => println!("{label} click #{k}: no navigation"),
            Err(e) => println!("{label} click #{k}: {e}"),
        }
    }
    println!("\nASCII screenshot of the last landing:");
    if let Ok(l) = session.navigate(&publisher.url()) {
        let bm = l.screenshot.bitmap().expect("instrumented sessions render screenshots");
        println!("{}", bm.to_ascii(64));
    }
}
