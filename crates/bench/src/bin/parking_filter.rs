//! Evaluates the automated parked-cluster filter — the paper's explicit
//! future-work item (§4.3): "Most of these domains could be automatically
//! filtered out using parking detection algorithms."
//!
//! The detector re-visits cluster representatives and scores structural
//! features only (no ground truth). We report its confusion matrix
//! against the ground-truth labels.

use seacma_bench::{banner, BenchArgs};
use seacma_core::label::{BenignKind, ClusterLabel};
use seacma_core::parking::detect_parked_clusters;

fn main() {
    let args = BenchArgs::parse();
    banner("Automated parked-domain filtering (paper future work)");
    let (pipeline, discovery) = args.discovery();
    let landings: Vec<_> = discovery.landings().collect();
    let verdicts =
        detect_parked_clusters(pipeline.world(), &discovery.clusters.campaigns, &landings);

    let mut tp = 0; // parked, filtered
    let mut fna = 0; // parked, kept
    let mut other_benign_filtered = 0; // stock/shortener/spurious, filtered — harmless
    let mut campaigns_filtered = 0; // SE campaign filtered — the one real failure mode
    let mut kept_live = 0;
    for (label, &parked) in discovery.labels.iter().zip(&verdicts) {
        match (label, parked) {
            (ClusterLabel::Benign(BenignKind::Parked), true) => tp += 1,
            (ClusterLabel::Benign(BenignKind::Parked), false) => fna += 1,
            (ClusterLabel::Campaign(_), true) => campaigns_filtered += 1,
            (ClusterLabel::Benign(_), true) => other_benign_filtered += 1,
            (_, false) => kept_live += 1,
        }
    }
    println!("clusters evaluated: {}", verdicts.len());
    println!("  parked clusters filtered:                  {tp}");
    println!("  parked clusters missed:                    {fna}");
    println!("  other benign confounders also filtered:    {other_benign_filtered} (harmless)");
    println!("  SE campaigns wrongly filtered:             {campaigns_filtered}");
    println!("  clusters kept for review:                  {kept_live}");
    let recall = if tp + fna == 0 { 1.0 } else { f64::from(tp) / f64::from(tp + fna) };
    println!("  parked recall {recall:.3}");
    println!(
        "\nwith the filter enabled, {tp} parked clusters (the paper had 11) never\n\
         reach manual review; {campaigns_filtered} SE campaigns were lost in the process."
    );
}
