//! Scaling bench for the incremental campaign tracker (DESIGN.md §2e;
//! EXPERIMENTS.md "Scaling & performance").
//!
//! As epochs accumulate, re-running batch `cluster_screenshots` over the
//! full history costs O(total) per epoch, while the tracker's incremental
//! DBSCAN pays only for the new points. This bench measures both at every
//! epoch boundary of a growing corpus — and first proves, over the whole
//! run, that the incremental snapshot is *identical* to batch clustering
//! of the same prefix (the same gate the property suites enforce).
//!
//! ```text
//! cargo run --release -p seacma-bench --bin tracker_scaling -- --json BENCH_tracker.json
//! cargo run --release -p seacma-bench --bin tracker_scaling -- --quick   # tier-1 smoke
//! ```
//!
//! The incremental timing includes cloning the pre-epoch tracker (the
//! bench body must be re-runnable), which only *overstates* its cost:
//! a real deployment mutates one tracker in place.

use seacma_tracker::{CampaignTracker, TrackerConfig};
use seacma_util::bench::{Bench, BenchmarkId, Throughput};
use seacma_util::prop::Rng;
use seacma_vision::cluster::{cluster_screenshots, ScreenshotPoint};
use seacma_vision::dhash::Dhash;

/// A milking-feed-shaped corpus: ~1 campaign template per 150 points,
/// 80 % of points near-duplicates of a template (≤ 3 flipped bits) on a
/// rotating set of e2LDs, 20 % uniform noise on throwaway domains.
fn synth(n: usize, seed: u64) -> Vec<ScreenshotPoint> {
    let mut rng = Rng::new(seed);
    let centers: Vec<u128> = (0..(n / 150).max(1)).map(|_| rng.u128()).collect();
    (0..n)
        .map(|i| {
            if rng.bool(0.8) {
                let c = rng.below(centers.len() as u64) as usize;
                let mut h = centers[c];
                for _ in 0..rng.below(4) {
                    h ^= 1u128 << rng.below(128);
                }
                // Rotate through 12 domains per campaign — enough for θc.
                ScreenshotPoint::new(Dhash(h), format!("c{c}-{}.club", rng.below(12)))
            } else {
                ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.info"))
            }
        })
        .collect()
}

fn main() {
    let mut harness = Bench::from_args();
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let (epoch_size, epochs) = if quick { (500, 4) } else { (5_000, 10) };
    let corpus = synth(epoch_size * epochs, 0x5EAC_A204);
    let config = TrackerConfig::default();

    // Exactness gate before any timing: at every epoch boundary the
    // tracker snapshot must equal batch clustering of the same prefix.
    let mut gate = CampaignTracker::new(config);
    for e in 0..epochs {
        gate.ingest_all(corpus[e * epoch_size..(e + 1) * epoch_size].iter().cloned());
        let summary = gate.end_epoch();
        let batch = cluster_screenshots(&corpus[..(e + 1) * epoch_size], config.params);
        assert_eq!(summary.clusters, batch, "incremental diverged from batch at epoch {e}");
    }
    println!(
        "exactness check: incremental == batch at {epochs} boundaries \
         ({} campaigns, {} ledger records)\n",
        gate.clusters().campaigns.len(),
        gate.ledger().records().len()
    );

    let mut group = harness.benchmark_group("tracker");
    let mut base = CampaignTracker::new(config);
    for e in 0..epochs {
        let n = (e + 1) * epoch_size;
        let delta = &corpus[e * epoch_size..n];
        let prefix = &corpus[..n];
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= 25_000 { 5 } else { 10 });
        // One epoch of incremental work on top of the accumulated state.
        group.bench_with_input(BenchmarkId::new("incremental", n), &delta, |b, d| {
            b.iter(|| {
                let mut t = base.clone();
                t.ingest_all(d.iter().cloned());
                t.end_epoch()
            })
        });
        // The alternative: re-cluster the full history from scratch.
        group.bench_with_input(BenchmarkId::new("batch", n), &prefix, |b, p| {
            b.iter(|| cluster_screenshots(p, config.params))
        });
        // Advance the accumulated state for the next epoch's baseline.
        base.ingest_all(delta.iter().cloned());
        base.end_epoch();
    }
    group.finish();
    harness.finish();
}
