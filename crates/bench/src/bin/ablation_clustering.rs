//! Ablation study over the clustering design choices DESIGN.md calls out:
//!
//! * DBSCAN `eps` sweep — too tight fragments campaigns, too loose merges
//!   them (the paper picked 0.1 via pilot experiments);
//! * θc sweep — the domain-count filter that separates blacklist-evading
//!   campaigns from benign ads;
//! * 64-bit vs 128-bit dhash — the narrower hash collides across
//!   campaigns.
//!
//! For each setting we report cluster counts, ground-truth purity and the
//! SE recall (fraction of true attack landings captured in SE-majority
//! clusters).

use seacma_bench::{banner, BenchArgs};
use seacma_core::Pipeline;
use seacma_vision::bitmap::Bitmap;
use seacma_vision::cluster::{cluster_screenshots, ClusterParams, ScreenshotPoint};
use seacma_vision::dhash::Dhash;

struct Corpus {
    points: Vec<ScreenshotPoint>,
    points64: Vec<ScreenshotPoint>,
    truth: Vec<bool>,
}

/// 64-bit dhash (8×9 grid) for the hash-width ablation.
fn dhash64(image: &Bitmap) -> Dhash {
    let small = image.resize(9, 8);
    let mut bits: u128 = 0;
    for row in 0..8 {
        for col in 0..8 {
            bits <<= 1;
            if small.get(col, row) > small.get(col + 1, row) {
                bits |= 1;
            }
        }
    }
    Dhash(bits)
}

fn build_corpus(args: &BenchArgs) -> Corpus {
    let pipeline = Pipeline::new(args.config());
    let world = pipeline.world();
    // Re-render each landing's screenshot at both hash widths by crawling
    // a slice of the world directly.
    let discovery = pipeline.discover();
    let arena = discovery.arena.read();
    let landings: Vec<_> = discovery.landings().collect();
    let mut points = Vec::new();
    let mut points64 = Vec::new();
    let mut truth = Vec::new();
    for l in &landings {
        let e2ld = arena.resolve(l.landing_e2ld);
        points.push(ScreenshotPoint::new(l.dhash, e2ld));
        // 64-bit variant must re-render; use the labeling helper.
        if let Some(v) = seacma_core::label::visual_of(world, l) {
            let seed = seacma_simweb::det::det_hash(&[
                world.seed(),
                0x5C4EE,
                seacma_simweb::det::str_word(&l.landing_url.to_string()),
                l.t.minutes() / 30,
            ]);
            points64.push(ScreenshotPoint::new(dhash64(&v.render(seed)), e2ld));
        } else {
            points64.push(ScreenshotPoint::new(Dhash(0), e2ld));
        }
        truth.push(l.truth_is_attack);
    }
    Corpus { points, points64, truth }
}

fn evaluate(corpus: &Corpus, points: &[ScreenshotPoint], params: ClusterParams) -> (usize, f64, f64) {
    let result = cluster_screenshots(points, params);
    let mut captured = 0usize;
    let mut pure = 0usize;
    let mut total_members = 0usize;
    for c in &result.campaigns {
        let attacks = c.members.iter().filter(|&&m| corpus.truth[m]).count();
        total_members += c.len();
        pure += attacks.max(c.len() - attacks); // majority size
        if attacks * 2 > c.len() {
            captured += attacks;
        }
    }
    let truth_total = corpus.truth.iter().filter(|&&t| t).count().max(1);
    let purity = if total_members == 0 { 1.0 } else { pure as f64 / total_members as f64 };
    (result.campaigns.len(), purity, captured as f64 / truth_total as f64)
}

fn main() {
    let mut args = BenchArgs::parse();
    if !args.quick && args.publishers > 1500 {
        // The ablation re-clusters the corpus many times; a mid-size crawl
        // is plenty.
        args.publishers = 1500;
    }
    banner("Clustering ablation (eps, θc, hash width)");
    let corpus = build_corpus(&args);
    println!(
        "corpus: {} screenshots, {} true SE attacks\n",
        corpus.points.len(),
        corpus.truth.iter().filter(|&&t| t).count()
    );

    println!("--- eps sweep (θc=5, 128-bit) ---");
    println!("{:>6} {:>10} {:>8} {:>10}", "eps", "clusters", "purity", "SE recall");
    for eps in [0.02, 0.05, 0.1, 0.2, 0.3] {
        let (n, purity, recall) =
            evaluate(&corpus, &corpus.points, ClusterParams { eps, ..Default::default() });
        println!("{eps:>6} {n:>10} {purity:>8.3} {recall:>10.3}");
    }

    println!("\n--- θc sweep (eps=0.1, 128-bit) ---");
    println!("{:>6} {:>10} {:>8} {:>10}", "θc", "clusters", "purity", "SE recall");
    for theta_c in [1usize, 3, 5, 8, 15] {
        let (n, purity, recall) =
            evaluate(&corpus, &corpus.points, ClusterParams { theta_c, ..Default::default() });
        println!("{theta_c:>6} {n:>10} {purity:>8.3} {recall:>10.3}");
    }

    println!("\n--- hash width (eps=0.1 scaled, θc=5) ---");
    let (n128, p128, r128) = evaluate(&corpus, &corpus.points, ClusterParams::default());
    // eps for 64-bit: same fractional radius over a 128-bit word whose top
    // half is zero ⇒ halve it.
    let (n64, p64, r64) = evaluate(
        &corpus,
        &corpus.points64,
        ClusterParams { eps: 0.05, ..Default::default() },
    );
    println!("128-bit: {n128} clusters, purity {p128:.3}, recall {r128:.3}");
    println!(" 64-bit: {n64} clusters, purity {p64:.3}, recall {r64:.3}");
    println!(
        "\nreading: eps in [0.05, 0.2] sits on a plateau (the paper tuned 0.1 via\n\
         pilots); θc trades SE recall against admitting few-domain benign\n\
         clusters — 5 keeps the multi-domain evasion signature. The 64-bit\n\
         hash holds up on synthetic creatives but leaves only a 3-bit noise\n\
         margin at the same fractional eps, versus 12 bits at 128."
    );
}
