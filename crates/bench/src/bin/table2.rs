//! Regenerates **Table 2** — top-20 categories of publisher sites that
//! hosted SEACMA ads.

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 2: categories of SEACMA ad publisher sites");
    let (pipeline, discovery) = args.discovery();
    let rows = report::table2(pipeline.world(), &discovery, 20);
    println!("{}", report::render_table2(&rows));
    paper_note(&[
        "Suspicious 15.81%  Pornography 13.52%  Web Hosting 8.85%  Entertainment 6.57%",
        "Personal Sites 6.46%  Malicious Sources 6.25%  Dynamic DNS 4.60%  Technology 4.02%",
        "(20 categories total; 52 publishers in the top-10k popularity, 4 in the top-1k)",
    ]);
    // Popularity footnote (paper §4.3).
    let top10k = pipeline
        .world()
        .publishers()
        .iter()
        .filter(|p| p.rank.is_some_and(|r| r <= 10_000))
        .count();
    let top1k = pipeline
        .world()
        .publishers()
        .iter()
        .filter(|p| p.rank.is_some_and(|r| r <= 1_000))
        .count();
    println!("popularity: {top10k} publishers ranked in top-10k, {top1k} in top-1k");
}
