//! Regenerates **Table 3** — SE attacks per ad network, with the
//! "Unknown" row that seeds new-network discovery.

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 3: SE attacks from each ad network");
    let (pipeline, discovery) = args.discovery();
    let rows = report::table3(pipeline.world(), &discovery);
    println!("{}", report::render_table3(&rows));

    let known: usize =
        rows.iter().filter(|r| r.network != "Unknown").map(|r| r.se_pages).sum();
    let unknown = rows.iter().find(|r| r.network == "Unknown").map_or(0, |r| r.se_pages);
    let total = known + unknown;
    if total > 0 {
        println!(
            "attributed to seed networks: {known}/{total} ({:.0}%), unknown: {unknown} ({:.0}%)",
            100.0 * known as f64 / total as f64,
            100.0 * unknown as f64 / total as f64
        );
    }
    paper_note(&[
        "RevenueHits 517 dom, 15635 lp, 3075 SE (19.67%) | AdSterra 578, 15102, 7644 (50.62%)",
        "PopCash 2, 9734, 6256 (64.27%) | Propeller 4, 8206, 3470 (42.29%) | PopAds 3, 4658, 873 (18.74%)",
        "Clickadu 10, 2814, 848 (30.14%) | AdCash 14, 1698, 955 (56.24%) | HilltopAds 46, 1198, 77 (6.43%)",
        "PopMyAds 1, 1194, 103 (8.63%) | AdMaven 39, 496, 122 (24.60%) | Clicksor 4, 276, 12 (4.35%)",
        "Unknown: 5488 SE attacks (19%); 3 networks with >50% SE ads",
    ]);
}
