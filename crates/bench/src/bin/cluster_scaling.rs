//! Scaling bench for the Hamming-space clustering stage (DESIGN.md
//! "Hamming neighbour index"; EXPERIMENTS.md "Scaling & performance").
//!
//! Clusters synthetic dhash corpora at n ∈ {1k, 10k, 50k, 200k} three
//! ways — naive O(n²) region scans, the exact pigeonhole-banded index,
//! and the index with construction + region queries sharded across all
//! cores — and verifies on the smallest corpus that all three produce
//! identical labels before timing anything.
//!
//! ```text
//! cargo run --release -p seacma-bench --bin cluster_scaling -- --json BENCH_cluster.json
//! cargo run --release -p seacma-bench --bin cluster_scaling -- --quick   # tier-1 smoke
//! ```
//!
//! `--quick` keeps the smoke offline-CI-fast: sizes shrink to {1k, 10k}
//! and every bench body runs exactly once. The naive path is skipped at
//! n = 200k (it alone would dominate the run at ~16× the 50k cost); the
//! skip is printed so the JSON's coverage is explicit.

use seacma_util::bench::{Bench, BenchmarkId, Throughput};
use seacma_util::prop::Rng;
use seacma_vision::dbscan::{dbscan, dbscan_with, DbscanParams, Label};
use seacma_vision::dhash::{normalized_hamming, Dhash};
use seacma_vision::index::HammingIndex;

const EPS: f64 = 0.1;
const MIN_PTS: usize = 3;
/// Above this size the naive O(n²) path is skipped (printed, not silent).
const NAIVE_MAX: usize = 50_000;

/// A screenshot-shaped corpus: ~1 campaign template per 100 points, 80 %
/// of points near-duplicates of a template (≤ 3 flipped bits — inside the
/// eps ball), 20 % uniform noise.
fn synth(n: usize, seed: u64) -> Vec<Dhash> {
    let mut rng = Rng::new(seed);
    let centers: Vec<u128> = (0..(n / 100).max(1)).map(|_| rng.u128()).collect();
    (0..n)
        .map(|_| {
            if rng.bool(0.8) {
                let mut h = *rng.pick(&centers);
                for _ in 0..rng.below(4) {
                    h ^= 1u128 << rng.below(128);
                }
                Dhash(h)
            } else {
                Dhash(rng.u128())
            }
        })
        .collect()
}

fn naive_labels(hashes: &[Dhash]) -> Vec<Label> {
    dbscan(hashes.len(), DbscanParams { eps: EPS, min_pts: MIN_PTS }, |a, b| {
        normalized_hamming(hashes[a], hashes[b])
    })
}

fn indexed_labels(hashes: &[Dhash]) -> Vec<Label> {
    let mut index = HammingIndex::build(hashes, EPS);
    dbscan_with(&mut index, MIN_PTS)
}

fn indexed_parallel_labels(hashes: &[Dhash], workers: usize) -> Vec<Label> {
    let index = HammingIndex::build_parallel(hashes, EPS, workers);
    let mut regions = index.regions_parallel(workers);
    dbscan_with(&mut regions, MIN_PTS)
}

fn main() {
    let mut harness = Bench::from_args();
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let sizes: &[usize] =
        if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 50_000, 200_000] };
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Exactness gate before any timing: all three paths must agree.
    let probe = synth(2_000, 0x5EAC_A201);
    let reference = naive_labels(&probe);
    assert_eq!(indexed_labels(&probe), reference, "indexed path diverged from naive");
    assert_eq!(
        indexed_parallel_labels(&probe, workers),
        reference,
        "parallel path diverged from naive"
    );
    let clusters = reference.iter().filter_map(|l| l.cluster_id()).max().map_or(0, |m| m + 1);
    println!("exactness check: 3 paths agree on 2,000 points ({clusters} clusters)\n");

    let mut group = harness.benchmark_group("cluster");
    for &n in sizes {
        let hashes = synth(n, 0x5EAC_A201);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= NAIVE_MAX { 5 } else { 10 });
        if n <= NAIVE_MAX {
            group.bench_with_input(BenchmarkId::new("naive", n), &hashes, |b, hs| {
                b.iter(|| naive_labels(hs))
            });
        } else {
            println!("cluster/naive/{n}: skipped (O(n²) scan; measure up to n = {NAIVE_MAX})");
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &hashes, |b, hs| {
            b.iter(|| indexed_labels(hs))
        });
        group.bench_with_input(BenchmarkId::new("indexed-par", n), &hashes, |b, hs| {
            b.iter(|| indexed_parallel_labels(hs, workers))
        });
    }
    group.finish();
    harness.finish();
}
