//! Online-detection eval bench (DESIGN.md §2j; EXPERIMENTS.md "Online
//! detection").
//!
//! Drives the resident daemon's third workload class — whole page-load
//! observations scored by the snapshot's frozen [`Detector`] — and
//! reports three things:
//!
//! 1. **Exactness** (gated before any number is written): the detector
//!    built at 1/2/8 workers returns byte-identical verdicts, every
//!    served verdict equals `seacma-detect`'s naive linear-scan oracle,
//!    and a daemon snapshot → resume round trip changes no verdict byte.
//! 2. **Detection quality**: precision/recall against the simulated
//!    world's ground truth, on two splits — *seen* (every campaign fed to
//!    the index) and *held-out* (whole campaigns withheld from the feed,
//!    so only the escalation and feature-threshold stages can catch them
//!    — the generalization claim).
//! 3. **Latency**: single-core QPS and p50/p95/p99 per verdict kind.
//!
//! ```text
//! cargo run --release -p seacma-bench --bin detect_eval -- --json BENCH_detect.json
//! cargo run -p seacma-bench --bin detect_eval -- --quick   # tier-1 smoke
//! ```

use std::collections::BTreeSet;
use std::time::Instant;

use seacma_core::detecteval::{eval_observations, EvalObservation};
use seacma_core::{Pipeline, PipelineConfig};
use seacma_daemon::{Daemon, ReputationSnapshot};
use seacma_detect::oracle::linear_verdict;
use seacma_detect::{Detector, PageObservation, PageSignals, Verdict};
use seacma_simweb::WorldConfig;
use seacma_util::json::{self, Value};
use seacma_util::prop::Rng;
use seacma_vision::dhash::Dhash;

/// Latency percentile over sorted per-query samples (nearest-rank).
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil().max(1.0) as usize - 1;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Times `queries` calls of `run` one by one on the current thread,
/// returning `(total_ns, sorted per-query ns)`.
fn time_kind(queries: usize, mut run: impl FnMut(usize) -> u64) -> (u64, Vec<u64>) {
    let mut samples = Vec::with_capacity(queries);
    let mut checksum = 0u64;
    let wall = Instant::now();
    for i in 0..queries {
        let t = Instant::now();
        checksum = checksum.wrapping_add(run(i));
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let total = wall.elapsed().as_nanos() as u64;
    std::hint::black_box(checksum);
    samples.sort_unstable();
    (total, samples)
}

fn kind_stats(name: &str, total_ns: u64, sorted_ns: &[u64]) -> (String, Value) {
    let n = sorted_ns.len() as f64;
    let qps = n / (total_ns as f64 / 1e9);
    println!(
        "{name:>14}: {qps:>12.0} qps   p50 {:>7.2} µs   p95 {:>7.2} µs   p99 {:>7.2} µs",
        percentile_us(sorted_ns, 50.0),
        percentile_us(sorted_ns, 95.0),
        percentile_us(sorted_ns, 99.0),
    );
    (
        name.to_string(),
        Value::Obj(vec![
            ("queries".into(), Value::UInt(sorted_ns.len() as u128)),
            ("qps".into(), Value::Float((qps * 10.0).round() / 10.0)),
            ("p50_us".into(), Value::Float(percentile_us(sorted_ns, 50.0))),
            ("p95_us".into(), Value::Float(percentile_us(sorted_ns, 95.0))),
            ("p99_us".into(), Value::Float(percentile_us(sorted_ns, 99.0))),
        ]),
    )
}

/// A stable small word per verdict, to keep the optimizer honest.
fn verdict_word(v: &Verdict) -> u64 {
    match v {
        Verdict::Campaign { campaign, .. } => u64::from(*campaign) + 4,
        Verdict::NearCampaign { campaign, .. } => u64::from(*campaign) + 3,
        Verdict::Suspicious { score } => u64::from(*score) + 2,
        Verdict::Benign { score } => u64::from(*score) + 1,
    }
}

/// Every observation's verdict from one snapshot as one string — the
/// exactness gates are string equality over this sheet.
fn verdict_sheet(snap: &ReputationSnapshot, evals: &[EvalObservation]) -> String {
    let mut scratch = Vec::new();
    let mut out = String::new();
    for e in evals {
        out.push_str(&json::to_string(&snap.detect_with(&e.obs, &mut scratch)));
        out.push('\n');
    }
    out
}

/// Precision/recall of `snap`'s flagged verdicts against ground truth.
fn score_split(name: &str, snap: &ReputationSnapshot, evals: &[EvalObservation]) -> (String, Value) {
    let mut scratch = Vec::new();
    let (mut tp, mut fp, mut fond, mut tn) = (0u64, 0u64, 0u64, 0u64);
    // False positives by verdict kind: an index-match FP is a benign
    // template cluster that survived θc (the paper removes those by
    // manual labeling); a suspicious FP is a benign page whose structure
    // trips the feature threshold.
    let (mut fp_index, mut fp_feature) = (0u64, 0u64);
    for e in evals {
        let v = snap.detect_with(&e.obs, &mut scratch);
        match (v.flagged(), e.truth_attack) {
            (true, true) => tp += 1,
            (true, false) => {
                fp += 1;
                match v.kind() {
                    "suspicious" => fp_feature += 1,
                    _ => fp_index += 1,
                }
            }
            (false, true) => fond += 1,
            (false, false) => tn += 1,
        }
    }
    let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 1.0 };
    let recall = if tp + fond > 0 { tp as f64 / (tp + fond) as f64 } else { 1.0 };
    println!(
        "{name:>9} split: {} obs ({} attack)  precision {precision:.4}  recall {recall:.4}  \
         (fp: {fp_index} index-match, {fp_feature} feature-score)",
        evals.len(),
        tp + fond,
    );
    (
        name.to_string(),
        Value::Obj(vec![
            ("observations".into(), Value::UInt(evals.len() as u128)),
            ("attacks".into(), Value::UInt((tp + fond) as u128)),
            ("true_positives".into(), Value::UInt(tp as u128)),
            ("false_positives".into(), Value::UInt(fp as u128)),
            ("fp_index_match".into(), Value::UInt(fp_index as u128)),
            ("fp_feature_score".into(), Value::UInt(fp_feature as u128)),
            ("false_negatives".into(), Value::UInt(fond as u128)),
            ("true_negatives".into(), Value::UInt(tn as u128)),
            ("precision".into(), Value::Float((precision * 1e4).round() / 1e4)),
            ("recall".into(), Value::Float((recall * 1e4).round() / 1e4)),
        ]),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let queries_per_kind = if quick { 2_000 } else { 100_000 };
    let mut config = PipelineConfig::small(0x5EAC_DE7);
    if quick {
        config.world.n_publishers = 250;
        config.world.n_hidden_only_publishers = 25;
        config.world.n_advertisers = 20;
    } else {
        config.world = WorldConfig {
            seed: 0x5EAC_DE7,
            n_publishers: 2_000,
            n_hidden_only_publishers: 200,
            n_advertisers: 150,
            campaign_scale: 0.3,
            ..Default::default()
        };
    }

    let pipeline = Pipeline::new(config);
    let discovery = pipeline.discover();
    let evals = eval_observations(pipeline.world(), &discovery);

    // Held-out split: every 4th ground-truth campaign id (sorted) is
    // withheld from the held-out daemon's feed entirely — at detection
    // time its pages are campaigns the index has never seen.
    let ids: Vec<u32> =
        evals.iter().filter_map(|e| e.truth_campaign).collect::<BTreeSet<_>>().into_iter().collect();
    let held_out: BTreeSet<u32> = ids.iter().copied().skip(3).step_by(4).collect();
    assert!(
        ids.len() < 2 || !held_out.is_empty(),
        "need at least one held-out campaign to measure generalization"
    );

    // Two daemons over the same epoch feed: the seen daemon ingests every
    // point; the held-out daemon's feed drops every point whose landing
    // belongs to a held-out campaign. Batches are contiguous chunks of
    // the flattened landing order, so `evals[i]` describes feed point `i`.
    let batches = pipeline.crawl_epoch_batches(&discovery);
    let mut seen_daemon = Daemon::new(pipeline.tracker_config());
    let mut held_daemon = Daemon::new(pipeline.tracker_config());
    let mut at = 0usize;
    for batch in &batches {
        let filtered: Vec<_> = batch
            .iter()
            .enumerate()
            .filter(|(j, _)| {
                !evals[at + j].truth_campaign.is_some_and(|c| held_out.contains(&c))
            })
            .map(|(_, p)| p.clone())
            .collect();
        at += batch.len();
        seen_daemon.ingest_all(batch.iter().cloned());
        held_daemon.ingest_all(filtered);
        seen_daemon.close_epoch();
        held_daemon.close_epoch();
    }
    let snap = seen_daemon.handle().snapshot();
    let held_snap = held_daemon.handle().snapshot();
    let det = snap.detector();

    // ── Exactness gate (before any timing) ────────────────────────────
    // 1. Worker-count identity: the detector rebuilt over the snapshot's
    //    columns at 1/2/8 workers returns byte-identical verdict sheets.
    let sheet = verdict_sheet(&snap, &evals);
    let mut scratch = Vec::new();
    for workers in [1usize, 2, 8] {
        let rebuilt = Detector::from_columns_parallel(
            det.hashes(),
            det.assignments(),
            *det.config(),
            workers,
        );
        let mut out = String::new();
        for e in &evals {
            out.push_str(&json::to_string(&rebuilt.detect_with(&e.obs, &mut scratch)));
            out.push('\n');
        }
        assert_eq!(out, sheet, "{workers}-worker detector rebuild diverged");
    }
    // 2. Oracle identity: served verdicts equal the naive linear scan.
    let oracle_cap = evals.len().min(300);
    for e in &evals[..oracle_cap] {
        assert_eq!(
            json::to_string(&snap.detect_with(&e.obs, &mut scratch)),
            json::to_string(&linear_verdict(det.hashes(), det.assignments(), det.config(), &e.obs)),
            "served verdict diverged from the linear-scan oracle"
        );
    }
    // 3. Snapshot/resume identity: a resumed daemon serves the same sheet.
    let resumed = Daemon::from_json(&seen_daemon.to_json()).expect("snapshot parses");
    assert_eq!(
        verdict_sheet(&resumed.handle().snapshot(), &evals),
        sheet,
        "resumed daemon verdicts diverged"
    );
    println!(
        "exactness check: 1/2/8-worker builds, linear oracle ({oracle_cap} probes) and \
         snapshot/resume all byte-identical over {} observations\n",
        evals.len(),
    );

    // ── Detection quality ─────────────────────────────────────────────
    let seen_eval = score_split("seen", &snap, &evals);
    let held_evals: Vec<EvalObservation> = evals
        .iter()
        .filter(|e| {
            !e.truth_attack || e.truth_campaign.is_some_and(|c| held_out.contains(&c))
        })
        .copied()
        .collect();
    let held_eval = score_split("held_out", &held_snap, &held_evals);
    println!();

    // ── Latency (one core, allocation-free detect path) ───────────────
    // Probe pools per verdict kind, each verified to actually classify as
    // its kind before timing.
    let mut rng = Rng::new(0x5EAC_DE7E);
    let assigned: Vec<Dhash> = det
        .hashes()
        .iter()
        .zip(det.assignments())
        .filter(|(_, a)| a.is_some())
        .map(|(&h, _)| h)
        .collect();
    assert!(!assigned.is_empty(), "no campaign-assigned points in the index");
    let base = det.config().base_radius();
    let strong = PageSignals { scam_phone: true, survey_gateway: true, ..PageSignals::default() };
    let mut pool = |want: &str, make: &mut dyn FnMut(&mut Rng) -> PageObservation| {
        let mut out = Vec::new();
        let mut tries = 0;
        while out.len() < 1024 && tries < 100_000 {
            tries += 1;
            let obs = make(&mut rng);
            if snap.detect(&obs).kind() == want {
                out.push(obs);
            }
        }
        assert!(!out.is_empty(), "could not build a {want} probe pool");
        out
    };
    // Url-style hits: a 1-bit perturbation of an indexed campaign page —
    // the page-load a milking URL or a re-crawl would produce.
    let campaign_pool = pool("campaign", &mut |r| PageObservation {
        dhash: Dhash(r.pick(&assigned).0 ^ (1u128 << r.below(128))),
        signals: PageSignals::default(),
    });
    let near_pool = pool("near_campaign", &mut |r| {
        let mut h = r.pick(&assigned).0;
        // base+2 distinct low bits flipped: outside the base ball, inside
        // the escalated one (unless another assigned point is closer —
        // the pool filter rejects those probes).
        for b in 0..base + 2 {
            h ^= 1u128 << b;
        }
        let _ = r.below(2);
        PageObservation { dhash: Dhash(h), signals: PageSignals::default() }
    });
    let suspicious_pool = pool("suspicious", &mut |r| PageObservation {
        dhash: Dhash(r.u128()),
        signals: strong,
    });
    let benign_pool = pool("benign", &mut |r| PageObservation {
        dhash: Dhash(r.u128()),
        signals: PageSignals::default(),
    });

    println!(
        "detect latency over {} points ({} assigned), {queries_per_kind} queries/kind:",
        snap.resident_points(),
        assigned.len(),
    );
    let mut kinds = Vec::new();
    let mut all_ns: Vec<u64> = Vec::new();
    let mut all_total = 0u64;
    for (name, pool) in [
        ("campaign_hit", &campaign_pool),
        ("near_campaign", &near_pool),
        ("suspicious", &suspicious_pool),
        ("benign", &benign_pool),
    ] {
        let (total, samples) = time_kind(queries_per_kind, |i| {
            verdict_word(&snap.detect_with(&pool[i % pool.len()], &mut scratch))
        });
        kinds.push(kind_stats(name, total, &samples));
        all_ns.extend(&samples);
        all_total += total;
    }
    all_ns.sort_unstable();
    let (_, overall) = kind_stats("overall", all_total, &all_ns);
    let overall_qps = all_ns.len() as f64 / (all_total as f64 / 1e9);

    if let Some(path) = json_path {
        let doc = Value::Obj(vec![
            (
                "config".into(),
                Value::Obj(vec![
                    ("publishers".into(), Value::UInt(pipeline.config().world.n_publishers as u128)),
                    ("observations".into(), Value::UInt(evals.len() as u128)),
                    ("resident_points".into(), Value::UInt(snap.resident_points() as u128)),
                    ("campaigns".into(), Value::UInt(ids.len() as u128)),
                    ("held_out_campaigns".into(), Value::UInt(held_out.len() as u128)),
                    ("queries_per_kind".into(), Value::UInt(queries_per_kind as u128)),
                    ("threads".into(), Value::UInt(1)),
                ]),
            ),
            (
                "exactness".into(),
                Value::Obj(vec![
                    ("worker_counts".into(), Value::Arr(vec![
                        Value::UInt(1),
                        Value::UInt(2),
                        Value::UInt(8),
                    ])),
                    ("oracle_probes".into(), Value::UInt(oracle_cap as u128)),
                    ("snapshot_resume_byte_identical".into(), Value::Bool(true)),
                    ("identical_to_oracle".into(), Value::Bool(true)),
                ]),
            ),
            ("eval".into(), Value::Obj(vec![seen_eval, held_eval])),
            ("kinds".into(), Value::Obj(kinds)),
            ("overall".into(), overall),
        ]);
        std::fs::write(&path, json::to_string_pretty(&doc) + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path} (overall {overall_qps:.0} qps on one core)");
    }
}
