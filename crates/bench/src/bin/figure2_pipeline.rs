//! Reproduces **Figure 2** — the system overview — by running every
//! pipeline stage and printing per-stage statistics.

use seacma_bench::{banner, BenchArgs};
use seacma_core::pipeline::DiscoverySummary;
use seacma_core::report::ClusterBreakdown;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 2: pipeline stage walkthrough");
    let (pipeline, run) = args.full();

    println!("① seed ad networks: {}", pipeline.seed_patterns().len());
    let s = DiscoverySummary::over(&run.discovery);
    println!("② reversed publisher pool: {} sites", s.pool_size);
    println!(
        "   institutional: {}   residential (cloaking networks): {} ({} visited)",
        run.discovery.institutional_pool.len(),
        run.discovery.residential_pool.len(),
        run.discovery.residential_visited
    );
    println!(
        "③ crawl: {} sites visited, {} produced third-party landings, {} landing pages",
        s.visited, s.with_landings, s.landings
    );
    println!(
        "④⑤ clustering: {} clusters total, {} θc-passing candidates",
        s.clusters_total, s.campaign_clusters
    );
    let b = ClusterBreakdown::over(&run.discovery.labels);
    println!(
        "   labels: {} SE campaigns | benign: {} parked, {} stock, {} shortener, {} spurious, {} other",
        b.se_campaigns, b.parked, b.stock, b.shortener, b.spurious, b.other
    );
    println!(
        "⑥ milking: {} validated sources, {} sessions, {} new domains, {} files",
        run.sources.len(),
        run.milking.sessions,
        run.milking.discoveries.len(),
        run.milking.files.len()
    );
    println!(
        "⑦ attribution: {} unknown SE attacks -> {} new networks -> +{} publishers",
        run.new_networks.unknown_attacks,
        run.new_networks.new_patterns.len(),
        run.new_networks.new_publishers
    );
    for p in &run.new_networks.new_patterns {
        println!("   discovered network: {} (invariant {})", p.name, p.url_invariant);
    }
    println!(
        "\npaper reference: 93,427 pool / 70,541 visited / 39,171 with landings / ~199,400 landings"
    );
    println!("                 130 clusters -> 108 campaigns; 505 milking sources; +8,981 publishers");
}
