//! Regenerates **Table 4** — milking: new attack domains per category
//! with GSB detection at discovery vs. after all lookups, plus the GSB
//! listing lag.

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report;

fn main() {
    let args = BenchArgs::parse();
    banner("Table 4: tracking SEACMA campaigns (milking)");
    let (_pipeline, run) = args.full();
    println!(
        "milking sources: {}   sessions: {}   new domains: {}",
        run.sources.len(),
        run.milking.sessions,
        run.milking.discoveries.len()
    );
    let rows = report::table4(&run.discovery.labels, &run.milking);
    println!("{}", report::render_table4(&rows));
    match run.milking.mean_gsb_lag_days() {
        Some(lag) => println!("mean GSB listing lag behind milking: {lag:.1} days"),
        None => println!("no milked domain was ever listed by GSB"),
    }
    paper_note(&[
        "Fake Software 1665 dom, 1.28% -> 18.59% | Lottery/Gift 258, 2.99% -> 4.70%",
        "Chrome Notifications 45, 0% -> 2.27% | Registration 47, 0% -> 0%",
        "Tech Support/Scareware 27, 3.70% -> 55.56% | Total 2042, 1.42% -> 16.21%",
        "505 milking sources, >1M sessions over 14 days; GSB >7 days slower than milking",
    ]);
}
