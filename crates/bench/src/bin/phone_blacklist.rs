//! Intelligence side-channels of the milker (paper §4.3): scam
//! call-center numbers from tech-support pages, survey-scam gateways from
//! lottery pages and push-notification permission grants — each a
//! blacklist/feed the system produces in real time.

use seacma_bench::{banner, paper_note, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    banner("Milked intelligence: phones, survey gateways, notification grants");
    let (_pipeline, run) = args.full();
    let m = &run.milking;

    println!("scam phone numbers collected ({}):", m.scam_phones.len());
    for (phone, t, cluster) in &m.scam_phones {
        println!("  {t}  {phone}  (campaign cluster {cluster})");
    }

    println!("\nsurvey-scam gateways collected ({}):", m.survey_gateways.len());
    for (gw, t, cluster) in m.survey_gateways.iter().take(20) {
        println!("  {t}  {gw}  (campaign cluster {cluster})");
    }
    if m.survey_gateways.len() > 20 {
        println!("  … and {} more", m.survey_gateways.len() - 20);
    }

    println!(
        "\nnotification-permission grants recorded: {} (on {} distinct domains)",
        m.notification_grants.len(),
        m.notification_grants
            .iter()
            .map(|(u, _, _)| u.e2ld())
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    paper_note(&[
        "tech-support scams are cross-channel: the web page exists to deliver a phone",
        "number; collecting them in real time feeds call-blocking lists (§4.3).",
        "lottery pages gateway into survey scams (Surveylance); notification grants",
        "let attackers push malicious content long after the page is gone.",
    ]);
}
