//! Automates the paper's only substantial manual step (§3.1/§5): deriving
//! each ad network's invariant pattern from obfuscated loader snippets
//! ("about 15 minutes per network" by hand). The miner intersects
//! snippets/URLs from publishers known to run the network, filters
//! boilerplate shared with other networks, and checks that the mined
//! token reverses to the *same* publisher pool as the hand-derived one.

use seacma_bench::{banner, BenchArgs};
use seacma_core::invariants::{mine_world_patterns, pools_match};

fn main() {
    let args = BenchArgs::parse();
    banner("Automatic invariant mining (replaces the §3.1 manual step)");
    let pipeline = seacma_core::Pipeline::new(args.config());
    let world = pipeline.world();

    let mined = mine_world_patterns(world, 5);
    println!(
        "{:<13} {:<24} {:<22} {:>10}",
        "network", "mined JS token", "mined URL token", "pool match"
    );
    let mut matched = 0;
    for (name, m) in &mined {
        let net = world.networks().iter().find(|n| &n.name == name).unwrap();
        let js = m.js_token.as_deref().unwrap_or("-");
        let url = m.url_token.as_deref().unwrap_or("-");
        let ok = m
            .js_token
            .as_deref()
            .map(|tok| pools_match(world, tok, &net.js_invariant))
            .unwrap_or(false);
        if ok {
            matched += 1;
        }
        println!("{name:<13} {js:<24} {url:<22} {:>10}", if ok { "yes" } else { "NO" });
    }
    println!(
        "\n{matched}/{} networks: mined token reverses to the identical publisher pool\n\
         as the hand-derived invariant — stage ① fully automated.",
        mined.len()
    );
}
