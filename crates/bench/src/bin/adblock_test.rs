//! Regenerates the §4.4 ad-blocker experiment: latest Chrome + AdBlock
//! Plus vs. the 11 seed networks — which ads still display?

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::adblock::{adblock_experiment, FilterList};
use seacma_simweb::SimTime;

fn main() {
    let args = BenchArgs::parse();
    banner("AdBlock Plus experiment (paper §4.4)");
    let pipeline = seacma_core::Pipeline::new(args.config());
    let world = pipeline.world();
    let list = FilterList::easylist(world);
    println!("filter list entries: {}\n", list.len());

    let results = adblock_experiment(world, SimTime::EPOCH, 500);
    println!("{:<14} {:>8} {:>10}  verdict", "network", "sampled", "% blocked");
    for r in &results {
        println!(
            "{:<14} {:>8} {:>9.1}%  {}",
            r.network,
            r.sampled,
            100.0 * r.blocked_fraction,
            if r.effectively_blocked() { "BLOCKED" } else { "ads still display" }
        );
    }
    let blocked = results.iter().filter(|r| r.effectively_blocked()).count();
    println!("\n{blocked}/11 networks effectively blocked");
    paper_note(&[
        "only Clicksor's ads stopped displaying; the other 10 networks kept serving",
        "malicious ads (rotating code domains stay ahead of the filter lists)",
    ]);
}
