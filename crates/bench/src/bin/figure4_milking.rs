//! Reproduces **Figure 4** — milking one upstream URL over time: the
//! succession of fresh attack domains it yields, with GSB listing status.

use seacma_bench::{banner, BenchArgs};
use seacma_blacklist::{GsbService, VirusTotal};
use seacma_milker::{Milker, MilkingSource};
use seacma_simweb::{SeCategory, SimTime};
use seacma_vision::dhash::dhash128;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 4: milking a single upstream URL");
    let pipeline = seacma_core::Pipeline::new(args.config());
    let world = pipeline.world();

    let campaign = world
        .campaigns()
        .iter()
        .find(|c| c.tds_domain.is_some() && c.category == SeCategory::FakeSoftware)
        .expect("a milkable fake-software campaign exists");
    let source = MilkingSource {
        url: campaign.tds_url(0).unwrap(),
        ua: seacma_simweb::UaProfile::ChromeMac,
        cluster: 0,
        reference: dhash128(&campaign.template().render(1)),
    };
    println!("milkable URL: {}  (campaign: {})\n", source.url, campaign.category);

    let mut gsb = GsbService::new(world);
    let mut vt = VirusTotal::new(7);
    let mut config = pipeline.config().milking;
    config.duration = seacma_simweb::SimDuration::from_days(args.milk_days);
    let out = Milker::new(world, config).run_parallel(
        &[source],
        &mut gsb,
        &mut vt,
        SimTime::EPOCH,
        0,
    );

    println!("{:>10}  {:<28}  {}", "sim time", "fresh attack domain", "GSB status");
    for d in &out.discoveries {
        let status = match d.gsb_listed_at {
            Some(at) => format!("listed after {:.1} days", (at - d.first_seen).as_days()),
            None => "never listed".to_string(),
        };
        println!("{:>10}  {:<28}  {status}", d.first_seen.to_string(), d.domain);
    }
    println!(
        "\n{} domains over {} days ({} sessions); files milked: {}",
        out.discoveries.len(),
        args.milk_days,
        out.sessions,
        out.files.len()
    );
    println!("paper reference: findglo210.info -> live6nmld10.club -> relsta60.club -> 99cret1040.club ...");
}
