//! Scaling bench for the crawl phase (DESIGN.md "Crawl fast path";
//! EXPERIMENTS.md "Crawl scaling").
//!
//! Crawls a fixed world over a publishers × UA grid two ways — the
//! pre-fast-path reference (sequential full-render visits, one job at a
//! time in index order, no cache) and the farm's fast path (fused dhash
//! screenshots through one shared clean-render cache, sharded dataset
//! assembly) — and verifies on a small configuration that both produce
//! byte-identical `CrawlDataset`s at 1, 2 and 8 workers before timing
//! anything.
//!
//! ```text
//! cargo run --release -p seacma-bench --bin crawl_scaling -- --json BENCH_crawl.json
//! cargo run --release -p seacma-bench --bin crawl_scaling -- --quick   # tier-1 smoke
//! ```
//!
//! `--quick` keeps the smoke offline-CI-fast: the grid shrinks to one
//! small configuration and every bench body runs exactly once (the
//! exactness gate still runs in full). The fast path owes its win to
//! algorithmic structure, not thread count — each template's clean render
//! is computed once per crawl instead of once per screenshot, and landing
//! hashes come from a fused noise+downsample pass that never materializes
//! a pixel buffer — so the headline speedup is measured farm-at-1-worker
//! against the reference, on one core; extra workers only add.

use seacma_browser::BrowserConfig;
use seacma_crawler::{
    visit_publisher, CrawlDataset, CrawlFarm, CrawlPolicy, CrawlSchedule,
};
use seacma_simweb::{PublisherId, UaProfile, Vantage, World, WorldConfig};
use seacma_util::bench::{Bench, BenchmarkId, Throughput};
use seacma_util::sym::{SharedArena, SymbolArena};

/// The pre-fast-path crawl, job for job: full-render visits (pixels
/// materialized for every screenshot, no shared cache), executed
/// sequentially in job-index order, passes back to back in virtual time.
fn reference_crawl(
    world: &World,
    publishers: &[PublisherId],
    uas: &[UaProfile],
    schedule: CrawlSchedule,
) -> CrawlDataset {
    let mut arena = SymbolArena::new();
    let mut visits = Vec::with_capacity(publishers.len() * uas.len());
    let mut pass_start = schedule.start;
    for &ua in uas {
        let config = BrowserConfig::instrumented(ua, Vantage::Residential);
        let pass = CrawlSchedule { start: pass_start, ..schedule };
        for (idx, p) in publishers.iter().enumerate() {
            let site = &world.publishers()[p.0 as usize];
            visits.push(visit_publisher(
                world,
                site,
                config,
                pass.job_time(idx),
                CrawlPolicy::default(),
                None,
                &mut arena,
            ));
        }
        pass_start = pass.pass_end(publishers.len());
    }
    CrawlDataset { visits }
}

fn farm_crawl(
    world: &World,
    publishers: &[PublisherId],
    uas: &[UaProfile],
    workers: usize,
) -> CrawlDataset {
    CrawlFarm::new(world, workers, CrawlPolicy::default()).crawl(
        publishers,
        uas,
        Vantage::Residential,
        CrawlSchedule::default(),
        &SharedArena::new(),
    )
}

fn main() {
    let mut harness = Bench::from_args();
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    let world = World::generate(WorldConfig {
        seed: 71,
        n_publishers: 1000,
        n_hidden_only_publishers: 40,
        n_advertisers: 60,
        campaign_scale: 1.0,
        error_rate: 0.01,
        ..Default::default()
    });
    let all: Vec<PublisherId> = world.publishers().iter().map(|p| p.id).collect();
    let uas = [UaProfile::ChromeMac, UaProfile::ChromeAndroid];
    println!("world: {} publishers, {} campaigns\n", all.len(), world.campaigns().len());

    // Exactness gate before any timing: the farm's fast path must
    // reproduce the reference crawl byte for byte at every worker count.
    let gate_pubs = &all[..all.len().min(120)];
    let reference = reference_crawl(&world, gate_pubs, &uas, CrawlSchedule::default());
    for w in [1usize, 2, 8] {
        assert_eq!(
            farm_crawl(&world, gate_pubs, &uas, w),
            reference,
            "fast-path dataset diverged from reference at {w} workers"
        );
    }
    println!(
        "exactness check: reference == farm @ 1/2/8 workers on {} publishers x {} UAs ({} landings)\n",
        gate_pubs.len(),
        uas.len(),
        reference.landing_count()
    );

    // publishers grid; every configuration crawls with both UAs. The
    // largest configuration (paper-scale job count: 1000 publishers x
    // 2 UAs = 2000 jobs) carries the headline speedup number.
    let grid: Vec<usize> = if quick { vec![60] } else { vec![300, 1000] };

    let mut group = harness.benchmark_group("crawl");
    for &n in &grid {
        let pubs = &all[..n.min(all.len())];
        group.throughput(Throughput::Elements((pubs.len() * uas.len()) as u64));
        group.sample_size(if n >= 1000 { 5 } else { 10 });
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{n}x{}ua", uas.len())),
            &pubs,
            |b, p| b.iter(|| reference_crawl(&world, p, &uas, CrawlSchedule::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("farm1", format!("{n}x{}ua", uas.len())),
            &pubs,
            |b, p| b.iter(|| farm_crawl(&world, p, &uas, 1)),
        );
        group.bench_with_input(
            BenchmarkId::new("farm", format!("{n}x{}ua", uas.len())),
            &pubs,
            |b, p| b.iter(|| farm_crawl(&world, p, &uas, workers)),
        );
    }
    group.finish();

    // Headline ratio at the largest grid configuration, on best-of-sample
    // times. farm1 pins the one-core algorithmic win (cache + fused
    // hashing + shard assembly, no thread-count help); farm adds threads.
    if !quick {
        let n = *grid.last().expect("grid is non-empty");
        let find = |path: &str| {
            let name = format!("crawl/{path}/{n}x{}ua", uas.len());
            harness.results().iter().find(|r| r.name == name).map(|r| r.min_ns)
        };
        if let (Some(rf), Some(f1), Some(fw)) = (find("reference"), find("farm1"), find("farm")) {
            println!(
                "\nlargest config ({n} publishers x {}): reference {:.1} ms, farm@1 {:.1} ms ({:.2}x), farm@{workers} {:.1} ms ({:.2}x)",
                uas.len(),
                rf / 1e6,
                f1 / 1e6,
                rf / f1,
                fw / 1e6,
                rf / fw
            );
        }
    }
    harness.finish();
}
