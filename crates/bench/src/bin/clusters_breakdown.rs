//! Regenerates the §4.3 cluster breakdown: N clusters → SE campaigns plus
//! the benign confounders (parked, stock-image, shortener, spurious).

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report::ClusterBreakdown;

fn main() {
    let args = BenchArgs::parse();
    banner("Cluster breakdown (paper §4.3)");
    let (_pipeline, discovery) = args.discovery();
    let b = ClusterBreakdown::over(&discovery.labels);
    println!("θc-passing clusters: {}", b.total());
    println!("  SEACMA campaigns:      {}", b.se_campaigns);
    println!("  parked domains:        {}", b.parked);
    println!("  stock adult images:    {}", b.stock);
    println!("  URL shorteners:        {}", b.shortener);
    println!("  spurious (load error): {}", b.spurious);
    println!("  other benign:          {}", b.other);
    println!("(+ {} dense clusters filtered by θc, {} noise points)",
        discovery.clusters.filtered.len(), discovery.clusters.noise);
    paper_note(&[
        "130 clusters total -> 108 SEACMA campaigns + 22 benign",
        "benign: 11 parked/inaccessible, 6 stock adult images, 4 URL shorteners, 1 spurious",
    ]);
}
