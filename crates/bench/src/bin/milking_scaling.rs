//! Scaling bench for the milking stage (DESIGN.md "Deterministic
//! simulate/merge milking"; EXPERIMENTS.md "Scaling & performance").
//!
//! Milks a fixed world over a sources × duration grid two ways — the
//! sequential reference scheduler (`Milker::run`) and the two-phase
//! simulate/merge scheduler (`Milker::run_parallel`) — and verifies on a
//! small configuration that both produce byte-identical
//! `MilkingOutcome`s at 1, 2 and 8 workers before timing anything.
//!
//! ```text
//! cargo run --release -p seacma-bench --bin milking_scaling -- --json BENCH_milker.json
//! cargo run --release -p seacma-bench --bin milking_scaling -- --quick   # tier-1 smoke
//! ```
//!
//! `--quick` keeps the smoke offline-CI-fast: the grid shrinks to one
//! small configuration and every bench body runs exactly once (the
//! exactness gate still runs in full). The parallel path owes its win to
//! algorithmic structure, not thread count — candidate ticks are resolved
//! by TTL-memoized HEAD-style probes and hashed without rendering — so
//! the speedup survives on a single-core host; extra workers only add.

use seacma_blacklist::{GsbService, VirusTotal};
use seacma_milker::{Milker, MilkingConfig, MilkingOutcome, MilkingSource};
use seacma_simweb::{SeCategory, SimDuration, SimTime, UaProfile, World, WorldConfig};
use seacma_util::bench::{Bench, BenchmarkId, Throughput};
use seacma_vision::dhash::dhash128;

/// One milking source per milkable campaign, exactly as the pipeline
/// builds them after clustering: the campaign's TDS entry URL, the UA its
/// cloaking expects, and the reference dhash of its creative.
fn sources(world: &World, n: usize) -> Vec<MilkingSource> {
    world
        .campaigns()
        .iter()
        .filter(|c| c.tds_domain.is_some())
        .take(n)
        .map(|c| MilkingSource {
            url: c.tds_url(0).unwrap(),
            ua: if c.category == SeCategory::LotteryGift {
                UaProfile::ChromeAndroid
            } else {
                UaProfile::ChromeMac
            },
            cluster: c.id.0 as usize,
            reference: dhash128(&c.template().render(1)),
        })
        .collect()
}

fn milk_sequential(world: &World, srcs: &[MilkingSource], days: u64) -> MilkingOutcome {
    let config = MilkingConfig { duration: SimDuration::from_days(days), ..Default::default() };
    let mut gsb = GsbService::new(world);
    let mut vt = VirusTotal::new(1);
    Milker::new(world, config).run(srcs, &mut gsb, &mut vt, SimTime::EPOCH)
}

fn milk_parallel(
    world: &World,
    srcs: &[MilkingSource],
    days: u64,
    workers: usize,
) -> MilkingOutcome {
    let config = MilkingConfig { duration: SimDuration::from_days(days), ..Default::default() };
    let mut gsb = GsbService::new(world);
    let mut vt = VirusTotal::new(1);
    Milker::new(world, config).run_parallel(srcs, &mut gsb, &mut vt, SimTime::EPOCH, workers)
}

fn main() {
    let mut harness = Bench::from_args();
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    let world = World::generate(WorldConfig {
        seed: 61,
        n_publishers: 60,
        n_hidden_only_publishers: 0,
        n_advertisers: 10,
        campaign_scale: 1.0,
        error_rate: 0.0,
        ..Default::default()
    });
    let all = sources(&world, usize::MAX);
    println!("world: {} milkable campaigns\n", all.len());

    // Exactness gate before any timing: the two-phase scheduler must
    // reproduce the sequential outcome byte for byte at every worker
    // count (thread-count invariance is the whole point of the design).
    let gate_srcs = &all[..all.len().min(18)];
    let reference = milk_sequential(&world, gate_srcs, 3);
    for w in [1usize, 2, 8] {
        assert_eq!(
            milk_parallel(&world, gate_srcs, 3, w),
            reference,
            "parallel outcome diverged from sequential at {w} workers"
        );
    }
    println!(
        "exactness check: sequential == parallel @ 1/2/8 workers on {} sources x 3 days ({} discoveries)\n",
        gate_srcs.len(),
        reference.discoveries.len()
    );

    // sources × duration grid; the largest configuration (all sources ×
    // 14 days) carries the headline speedup number.
    let grid: Vec<(usize, u64)> = if quick {
        vec![(12, 2)]
    } else {
        vec![(18, 3), (all.len(), 3), (18, 14), (all.len(), 14)]
    };

    let mut group = harness.benchmark_group("milk");
    for &(n, days) in &grid {
        let srcs = &all[..n.min(all.len())];
        let sessions = milk_parallel(&world, srcs, days, workers).sessions;
        group.throughput(Throughput::Elements(sessions));
        group.sample_size(if days >= 14 { 5 } else { 10 });
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{n}x{days}d")),
            &srcs,
            |b, s| b.iter(|| milk_sequential(&world, s, days)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{n}x{days}d")),
            &srcs,
            |b, s| b.iter(|| milk_parallel(&world, s, days, workers)),
        );
    }
    group.finish();

    // Headline ratio at the largest grid configuration, on best-of-sample
    // times (robust to scheduler noise on shared hosts). Smoke-mode bodies
    // run untimed, so there is no ratio to report there.
    if !quick {
        let (n, days) = *grid.last().expect("grid is non-empty");
        let find = |path: &str| {
            let name = format!("milk/{path}/{n}x{days}d");
            harness.results().iter().find(|r| r.name == name).map(|r| r.min_ns)
        };
        if let (Some(seq), Some(par)) = (find("sequential"), find("parallel")) {
            println!(
                "\nlargest config ({n} sources x {days} days): sequential {:.1} ms, parallel {:.1} ms -> {:.2}x speedup",
                seq / 1e6,
                par / 1e6,
                seq / par
            );
        }
    }
    harness.finish();
}
