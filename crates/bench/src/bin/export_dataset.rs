//! Writes the release dataset (browser logs + screenshots + campaign
//! metadata) the paper publishes alongside the study, under
//! `target/seacma-dataset/`.

use std::path::PathBuf;

use seacma_bench::{banner, BenchArgs};
use seacma_core::export::export_run;

fn main() {
    let args = BenchArgs::parse();
    banner("Dataset export (paper §4: released logs + screenshots)");
    let (pipeline, run) = args.full();
    let dir = PathBuf::from("target/seacma-dataset");
    let summary = export_run(&pipeline, &run, &dir).expect("export failed");
    println!(
        "wrote {} landing records, {} campaign clusters, {} screenshots to {}",
        summary.landings,
        summary.campaigns,
        summary.screenshots,
        dir.display()
    );
    println!("files: landings.jsonl, campaigns.json, milking.json, screenshots/*.pgm");
}
