//! Paper-scale end-to-end bench (DESIGN.md §2i; EXPERIMENTS.md
//! "End-to-end scale").
//!
//! Runs the whole measurement — crawl → cluster → track → milk → track —
//! on one core at paper scale (a 70,000-publisher world, 14 virtual days
//! of crawl-epoch replay and 14 virtual days of milking at the paper's
//! 505-source cap) and records wall time, allocation calls and points
//! processed per phase. A final phase replays the same epoch feed through
//! the pre-refactor string path (a fresh private-arena tracker fed
//! materialized `ScreenshotPoint` batches); its resolved snapshot —
//! cluster set, ledger and every epoch summary — must be **byte-identical**
//! to the symbol-path tracker's before any result is written. (The raw
//! `to_json` states differ only in arena content: the world arena also
//! holds publisher domains, so identity is gated on the resolved form,
//! which is exactly what every downstream table consumes.)
//!
//! ```text
//! cargo run --release -p seacma-bench --features count-alloc --bin e2e_scaling -- --json BENCH_e2e.json
//! cargo run -p seacma-bench --features count-alloc --bin e2e_scaling -- --quick   # tier-1 smoke
//! ```
//!
//! Allocation counts only appear when built with `--features count-alloc`
//! (which installs `seacma_util::alloc::CountingAlloc` as the global
//! allocator); without it the `allocs` column is null. With `workers = 1`
//! the program is deterministic, so the quick-mode counts are exact and
//! `verify.sh` gates them against a checked-in baseline.

use std::time::Instant;

use seacma_blacklist::VirusTotal;
use seacma_core::{Pipeline, PipelineConfig};
use seacma_simweb::{SimTime, UaProfile, WorldConfig, HOUR};
use seacma_tracker::CampaignTracker;
use seacma_util::impl_json_struct;
use seacma_util::json;

#[cfg(feature = "count-alloc")]
#[global_allocator]
static ALLOC: seacma_util::alloc::CountingAlloc = seacma_util::alloc::CountingAlloc;

fn alloc_count() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(seacma_util::alloc::alloc_count())
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// One measured phase row — the shape `load_bench_dir` parses out of
/// `BENCH_e2e.json` (`wall_ms` and `allocs` points per phase name).
#[derive(Debug, Clone, PartialEq)]
struct PhaseRow {
    name: String,
    wall_ms: f64,
    allocs: Option<u64>,
    points: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct E2eConfig {
    seed: u64,
    publishers: u64,
    uas: u64,
    workers: u64,
    crawl_track_epochs: u64,
    milking_days: u64,
    milking_sources: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct E2eOutput {
    config: E2eConfig,
    identity: bool,
    arena: u64,
    resident_points: u64,
    phases: Vec<PhaseRow>,
}

impl_json_struct!(PhaseRow { name, wall_ms, allocs, points });
impl_json_struct!(E2eConfig {
    seed,
    publishers,
    uas,
    workers,
    crawl_track_epochs,
    milking_days,
    milking_sources,
});
impl_json_struct!(E2eOutput { config, identity, arena, resident_points, phases });

/// Single-pass phase timer: one wall-clock and one allocation-counter
/// bracket around `f`. No warmup or sampling — the full-scale run is the
/// measurement (paper scale is too large to repeat), and with one worker
/// the allocation count is exact either way.
fn timed<T>(phases: &mut Vec<PhaseRow>, name: &str, f: impl FnOnce() -> T) -> T {
    let a0 = alloc_count();
    let t0 = Instant::now();
    let out = f();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let allocs = alloc_count().zip(a0).map(|(a1, b)| a1 - b);
    phases.push(PhaseRow { name: name.to_string(), wall_ms, allocs, points: 0 });
    out
}

/// The paper-scale configuration: a 70k-publisher pool (paper: 93,427
/// reversed sites), two UA passes on one worker, 14 crawl-replay epochs
/// and the default 14-day / 505-source milking window.
fn paper_config() -> PipelineConfig {
    PipelineConfig {
        world: WorldConfig {
            seed: 0x5EAC_E2E,
            n_publishers: 70_000,
            n_hidden_only_publishers: 7_000,
            n_advertisers: 3_500,
            ..Default::default()
        },
        uas: vec![UaProfile::ChromeMac, UaProfile::ChromeAndroid],
        workers: 1,
        crawl_track_epochs: 14,
        ..Default::default()
    }
}

/// The tier-1 smoke configuration: the standard small pipeline pinned to
/// one worker so allocation counts are reproducible.
fn quick_config() -> PipelineConfig {
    PipelineConfig { workers: 1, ..PipelineConfig::small(0x5EAC) }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let json_path =
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let config = if quick { quick_config() } else { paper_config() };
    let e2e_config = E2eConfig {
        seed: config.world.seed,
        publishers: u64::from(config.world.n_publishers),
        uas: config.uas.len() as u64,
        workers: config.workers as u64,
        crawl_track_epochs: config.crawl_track_epochs as u64,
        milking_days: config.milking.duration.minutes() / seacma_simweb::DAY.minutes(),
        milking_sources: config.max_milking_sources as u64,
    };

    let t0 = Instant::now();
    let pipeline = Pipeline::new(config);
    println!(
        "world: {} publishers, {} campaigns (generated in {:.1} ms)",
        pipeline.world().publishers().len(),
        pipeline.world().campaigns().len(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    let mut phases: Vec<PhaseRow> = Vec::new();

    // ② ③ crawl both vantage pools.
    let crawled = timed(&mut phases, "crawl", || pipeline.crawl_phase());
    let landings = crawled.crawl.landing_count() as u64;
    phases.last_mut().expect("crawl phase recorded").points = landings;

    // ④ ⑤ ⑦ cluster + label + attribute.
    let discovery = timed(&mut phases, "cluster", || pipeline.cluster_phase(crawled));
    phases.last_mut().expect("cluster phase recorded").points = landings;

    // ⑧ replay the crawl through the tracker on the symbol fast path.
    let (mut tracker, crawl_epochs) =
        timed(&mut phases, "track-crawl", || pipeline.track(&discovery));
    phases.last_mut().expect("track-crawl phase recorded").points = landings;

    // ⑥ validate sources against live tracker state and milk them.
    let crawl_end = discovery
        .crawl
        .visits
        .iter()
        .map(|v| v.started)
        .max()
        .unwrap_or(SimTime::EPOCH)
        + HOUR;
    let (sources, milking) = timed(&mut phases, "milk", || {
        let sources = pipeline.milking_sources(&discovery, &tracker, crawl_end);
        let mut vt = VirusTotal::new(pipeline.world().seed() ^ 0x7A);
        let outcome = pipeline.milk(&sources, crawl_end, &mut vt);
        (sources, outcome)
    });
    let discoveries = milking.discoveries.len() as u64;
    phases.last_mut().expect("milk phase recorded").points = discoveries;

    // ⑧ feed the milking discoveries back, one epoch per virtual day.
    let milking_epochs = timed(&mut phases, "track-milk", || {
        pipeline.track_milking(&mut tracker, &sources, &milking, crawl_end)
    });
    phases.last_mut().expect("track-milk phase recorded").points = discoveries;

    // The pre-refactor reference: a private-arena tracker fed the same
    // epochs as materialized string points (batch construction included —
    // that materialization is exactly the cost the symbol path removed).
    let (reference, ref_summaries) = timed(&mut phases, "track-strings", || {
        let mut t = CampaignTracker::new(pipeline.tracker_config());
        let mut summaries = Vec::new();
        for batch in pipeline.crawl_epoch_batches(&discovery) {
            t.ingest_all(batch);
            summaries.push(t.end_epoch());
        }
        for batch in pipeline.milking_epoch_batches(&sources, &milking, crawl_end) {
            t.ingest_all(batch);
            summaries.push(t.end_epoch());
        }
        (t, summaries)
    });
    phases.last_mut().expect("track-strings phase recorded").points = landings + discoveries;

    // Byte-identity gate: resolved snapshot (clusters + ledger) and every
    // epoch summary must match the string-based reference exactly. A
    // mismatch aborts before any artifact is written.
    let fast_summaries: Vec<_> = crawl_epochs.iter().chain(milking_epochs.iter()).collect();
    assert_eq!(
        json::to_string(&tracker.clusters()),
        json::to_string(&reference.clusters()),
        "symbol-path cluster snapshot diverged from the string reference"
    );
    assert_eq!(
        json::to_string(&tracker.ledger().to_state(&tracker.arena().read())),
        json::to_string(&reference.ledger().to_state(&reference.arena().read())),
        "symbol-path ledger diverged from the string reference"
    );
    assert_eq!(fast_summaries.len(), ref_summaries.len(), "epoch count diverged");
    for (fast, reference) in fast_summaries.iter().zip(&ref_summaries) {
        assert_eq!(
            json::to_string(*fast),
            json::to_string(reference),
            "epoch {} summary diverged from the string reference",
            reference.epoch,
        );
    }
    println!(
        "identity: symbol path == string reference over {} epochs ({} resident points)\n",
        ref_summaries.len(),
        tracker.unique_len(),
    );

    for p in &phases {
        match p.allocs {
            Some(a) => println!(
                "{:<14} {:>10.1} ms  {:>12} allocs  {:>8} points",
                p.name, p.wall_ms, a, p.points
            ),
            None => {
                println!("{:<14} {:>10.1} ms  {:>12} allocs  {:>8} points", p.name, p.wall_ms, "-", p.points)
            }
        }
    }
    let find = |name: &str| phases.iter().find(|p| p.name == name).expect("phase recorded");
    let fast_wall = find("track-crawl").wall_ms + find("track-milk").wall_ms;
    let ref_wall = find("track-strings").wall_ms;
    print!("\ntracking: strings {ref_wall:.1} ms vs symbols {fast_wall:.1} ms ({:.2}x)", ref_wall / fast_wall);
    if let (Some(fa), Some(fb), Some(r)) =
        (find("track-crawl").allocs, find("track-milk").allocs, find("track-strings").allocs)
    {
        let fast_allocs = fa + fb;
        print!(
            ", {r} vs {fast_allocs} allocs ({:.2}x fewer)",
            r as f64 / (fast_allocs.max(1)) as f64
        );
    }
    println!();

    let output = E2eOutput {
        config: e2e_config,
        identity: true,
        arena: pipeline.arena().len() as u64,
        resident_points: tracker.unique_len() as u64,
        phases,
    };
    if let Some(path) = json_path {
        std::fs::write(&path, json::to_string_pretty(&output)).expect("write bench json");
        println!("wrote {path}");
    }
}
