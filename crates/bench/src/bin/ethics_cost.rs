//! Regenerates the §6 ethics analysis: the estimated cost our automated
//! clicks imposed on legitimate advertisers.

use seacma_bench::{banner, paper_note, BenchArgs};
use seacma_core::report::EthicsReport;

fn main() {
    let args = BenchArgs::parse();
    banner("Ethics: estimated cost to legitimate advertisers (paper §6)");
    let (_pipeline, discovery) = args.discovery();
    let e = EthicsReport::over(&discovery);
    println!("total clicks issued:            {}", discovery.crawl.click_count());
    println!("legitimate (non-SE) domains hit: {}", e.legit_domains);
    println!("clicks landing on them:          {}", e.legit_clicks);
    println!("mean clicks per legit domain:    {:.1}", e.mean_clicks);
    if let Some((domain, hits)) = &e.worst {
        println!("worst case: {domain} opened {hits} times");
    }
    println!(
        "at ${} CPM: mean cost ${:.3}/domain, worst case ${:.2}",
        e.cpm_usd,
        e.mean_cost_usd(),
        e.worst_cost_usd()
    );
    paper_note(&[
        "worst case: one legitimate page opened 1,209 times ≈ $4.8 at $4 CPM",
        "average ≈ 9 clicks per legitimate domain ≈ $0.04",
    ]);
}
