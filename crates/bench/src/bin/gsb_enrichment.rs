//! Blacklist-enrichment analysis (paper §6: "our results show how
//! existing URL blacklists can be enriched to include and protect from
//! many new web pages that contain SE attacks").
//!
//! For every domain the milker discovered, compute the *protection
//! window*: the span between our discovery and GSB's own listing (or the
//! end of the study, for domains GSB never lists). During that window, a
//! blacklist enriched by the milker protects users GSB does not.

use seacma_bench::{banner, BenchArgs};
use seacma_simweb::SimDuration;

fn main() {
    let args = BenchArgs::parse();
    banner("GSB enrichment: protection window gained by milking");
    let (_pipeline, run) = args.full();
    let m = &run.milking;
    let study_span = SimDuration::from_days(args.milk_days + 60);

    let mut windows: Vec<f64> = Vec::new();
    let mut never = 0usize;
    for d in &m.discoveries {
        match d.gsb_lag() {
            Some(lag) => windows.push(lag.as_days()),
            None => {
                never += 1;
                windows.push(study_span.as_days());
            }
        }
    }
    windows.sort_by(f64::total_cmp);
    let n = windows.len().max(1);
    let mean = windows.iter().sum::<f64>() / n as f64;
    let median = windows[n / 2];

    println!("milked domains:                      {}", m.discoveries.len());
    println!("never listed by GSB at all:          {never} ({:.1}%)", 100.0 * never as f64 / n as f64);
    println!("protection window (days) — mean:     {mean:.1}");
    println!("protection window (days) — median:   {median:.1}");
    println!(
        "window percentiles: p10 {:.1}  p50 {:.1}  p90 {:.1}",
        windows[n / 10],
        windows[n / 2],
        windows[(n * 9) / 10]
    );

    // Lag distribution over the domains GSB *did* list.
    let lags: Vec<f64> = m.discoveries.iter().filter_map(|d| d.gsb_lag()).map(|l| l.as_days()).collect();
    if !lags.is_empty() {
        println!("\nGSB listing lag distribution (listed domains only):");
        print!(
            "{}",
            seacma_core::report::render_histogram(&lags, 8, 0.0, 40.0, "d")
        );
    }
    println!(
        "\nreading: every milked domain could be pushed to a blacklist the moment it\n\
         appears; users would be protected for the whole window during which GSB\n\
         has not yet listed it (or never does)."
    );
}
