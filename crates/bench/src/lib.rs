//! # seacma-bench
//!
//! The benchmark/experiment harness: one binary per table and figure of
//! the paper's evaluation (see `src/bin/`), plus microbenchmarks on the
//! in-tree `seacma_util::bench` harness (see `benches/`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --seed N          world seed                      (default 0x5EACA201)
//! --publishers N    seed-pool publisher count       (default 3000)
//! --scale F         campaign-count multiplier       (default 1.0 = 108 campaigns)
//! --milk-days N     milking duration in sim days    (default 14)
//! --quick           tiny configuration for smoke runs
//! ```
//!
//! Counts scale linearly with `--publishers`; the paper crawled 70,541
//! sites, the default harness ~1/9 of that. The *shape* of every table —
//! who wins, category orderings, evasion rates — is the reproduction
//! target, not absolute counts.

use seacma_core::{DiscoveryOutput, Pipeline, PipelineConfig, PipelineRun};
use seacma_crawler::CrawlSchedule;
use seacma_simweb::{SimDuration, WorldConfig};

/// Common CLI arguments for experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// World seed.
    pub seed: u64,
    /// Publisher-pool size.
    pub publishers: u32,
    /// Campaign scale multiplier.
    pub scale: f64,
    /// Milking duration (days).
    pub milk_days: u64,
    /// Tiny smoke-run configuration.
    pub quick: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self { seed: 0x5EAC_A201, publishers: 3000, scale: 1.0, milk_days: 14, quick: false }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; panics with usage on malformed flags.
    pub fn parse() -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut grab = |name: &str| -> String {
                args.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--seed" => out.seed = parse_num(&grab("--seed")),
                "--publishers" => out.publishers = parse_num(&grab("--publishers")) as u32,
                "--scale" => {
                    out.scale = grab("--scale").parse().expect("--scale takes a float")
                }
                "--milk-days" => out.milk_days = parse_num(&grab("--milk-days")),
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --seed N --publishers N --scale F --milk-days N --quick"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        out
    }

    /// Builds the pipeline configuration for these arguments.
    pub fn config(&self) -> PipelineConfig {
        if self.quick {
            let mut c = PipelineConfig::small(self.seed);
            c.milking.duration = SimDuration::from_days(self.milk_days.min(3));
            return c;
        }
        let mut c = PipelineConfig {
            world: WorldConfig {
                seed: self.seed,
                n_publishers: self.publishers,
                n_hidden_only_publishers: self.publishers / 10,
                n_advertisers: 400,
                campaign_scale: self.scale,
                ..Default::default()
            },
            // 4 lanes of 2-minute sessions: a 3k-publisher, 4-UA crawl
            // spans ~4 virtual days — several rotation periods for every
            // campaign category.
            schedule: CrawlSchedule { lanes: 4, ..Default::default() },
            ..Default::default()
        };
        c.milking.duration = SimDuration::from_days(self.milk_days);
        c
    }

    /// Runs the discovery phase.
    pub fn discovery(&self) -> (Pipeline, DiscoveryOutput) {
        let pipeline = Pipeline::new(self.config());
        let discovery = pipeline.discover();
        (pipeline, discovery)
    }

    /// Runs the complete measurement.
    pub fn full(&self) -> (Pipeline, PipelineRun) {
        let pipeline = Pipeline::new(self.config());
        let run = pipeline.run_to_completion();
        (pipeline, run)
    }
}

fn parse_num(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("bad hex number")
    } else {
        s.parse().expect("bad number")
    }
}

/// Prints a section header for experiment output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints the paper-reference block that accompanies every regenerated
/// table (absolute counts differ — the harness runs at reduced scale —
/// but shapes should match).
pub fn paper_note(lines: &[&str]) {
    println!("--- paper reference (IMC'19, full scale) ---");
    for l in lines {
        println!("  {l}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let a = BenchArgs::default();
        let c = a.config();
        assert_eq!(c.world.campaign_scale, 1.0);
        assert_eq!(c.uas.len(), 4);
        assert_eq!(c.milking.duration, SimDuration::from_days(14));
    }

    #[test]
    fn quick_config_is_small() {
        let a = BenchArgs { quick: true, ..Default::default() };
        let c = a.config();
        assert!(c.world.n_publishers < 1000);
        assert!(c.milking.duration <= SimDuration::from_days(3));
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(parse_num("0xff"), 255);
        assert_eq!(parse_num("42"), 42);
    }
}
