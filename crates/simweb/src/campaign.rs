//! SE attack campaigns.
//!
//! A SEACMA campaign (paper Definition 2) is a set of ads pointing to the
//! same SE attack content, hosted on frequently rotating throw-away domains
//! behind a longer-lived traffic-distribution ("milkable") URL. The six
//! categories, their campaign counts and their rotation behaviour are
//! calibrated to Tables 1 and 4 of the paper.

use seacma_util::{impl_json_enum, impl_json_newtype, impl_json_struct};

use crate::client::{OsClass, UaProfile};
use crate::det::det_hash;
use crate::names::throwaway_domain;
use crate::page::LockTactic;
use crate::payload::FileFormat;
use crate::time::{SimDuration, SimTime};
use crate::url::Url;
use crate::visual::VisualTemplate;

/// Identifier of a campaign within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CampaignId(pub u32);

/// The six SE attack categories the measurement discovered (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SeCategory {
    /// Fake Flash/Java updates, fake macOS media players.
    FakeSoftware,
    /// Networks of fake-video-player pages funnelling account registrations.
    Registration,
    /// Fake lotteries and gift cards (mobile-only).
    LotteryGift,
    /// Push-notification permission lures.
    ChromeNotifications,
    /// "Your computer is infected" scanner pages.
    Scareware,
    /// Tech-support scams with call-now numbers.
    TechnicalSupport,
}

impl SeCategory {
    /// All categories, in Table 1 order.
    pub const ALL: [SeCategory; 6] = [
        SeCategory::FakeSoftware,
        SeCategory::Registration,
        SeCategory::LotteryGift,
        SeCategory::ChromeNotifications,
        SeCategory::Scareware,
        SeCategory::TechnicalSupport,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SeCategory::FakeSoftware => "Fake Software",
            SeCategory::Registration => "Registration",
            SeCategory::LotteryGift => "Lottery/Gift",
            SeCategory::ChromeNotifications => "Chrome Notifications",
            SeCategory::Scareware => "Scareware",
            SeCategory::TechnicalSupport => "Technical Support",
        }
    }

    /// Number of campaigns of this category in the paper (Table 1, col 4);
    /// scaled by the world config.
    pub fn paper_campaign_count(self) -> u32 {
        match self {
            SeCategory::FakeSoftware => 52,
            SeCategory::Registration => 36,
            SeCategory::LotteryGift => 9,
            SeCategory::ChromeNotifications => 3,
            SeCategory::Scareware => 5,
            SeCategory::TechnicalSupport => 3,
        }
    }

    /// Share of all SE attack impressions this category receives
    /// (Table 1, col 2 normalized: 16802/2909/4297/3419/1032/464).
    pub fn traffic_share(self) -> f64 {
        match self {
            SeCategory::FakeSoftware => 0.581,
            SeCategory::Registration => 0.101,
            SeCategory::LotteryGift => 0.149,
            SeCategory::ChromeNotifications => 0.118,
            SeCategory::Scareware => 0.036,
            SeCategory::TechnicalSupport => 0.016,
        }
    }

    /// How long each throw-away attack domain stays live before the
    /// campaign rotates to a fresh one. Derived from Tables 1/4 domain
    /// counts over the respective observation windows.
    pub fn rotation_period(self) -> SimDuration {
        match self {
            SeCategory::FakeSoftware => SimDuration::from_hours(10),
            SeCategory::Registration => SimDuration::from_hours(24),
            SeCategory::LotteryGift => SimDuration::from_hours(18),
            SeCategory::ChromeNotifications => SimDuration::from_hours(36),
            SeCategory::Scareware => SimDuration::from_hours(24),
            SeCategory::TechnicalSupport => SimDuration::from_hours(12),
        }
    }

    /// Number of attack domains a campaign keeps live in parallel
    /// (sharded by traffic source).
    pub fn parallel_shards(self) -> u8 {
        2
    }

    /// Fraction of campaigns of this category that use a TDS indirection
    /// layer (and are therefore milkable). Registration campaigns mostly
    /// drive traffic directly — which is why Table 4 shows only 47 milked
    /// Registration domains against 474 seen during crawling.
    pub fn milkable_fraction(self) -> f64 {
        match self {
            SeCategory::FakeSoftware => 0.95,
            SeCategory::Registration => 0.10,
            SeCategory::LotteryGift => 0.90,
            SeCategory::ChromeNotifications => 0.90,
            SeCategory::Scareware => 0.40,
            SeCategory::TechnicalSupport => 0.50,
        }
    }

    /// OS classes this category's landing pages serve. Lottery/gift scams
    /// are mobile-only in the paper's data.
    pub fn targets(self, ua: UaProfile) -> bool {
        match self {
            SeCategory::LotteryGift => ua.is_mobile(),
            // Mac-targeted fake players plus Windows fake updates: all UAs.
            _ => true,
        }
    }

    /// Page-locking tactics typical of the category.
    pub fn lock_tactics(self) -> &'static [LockTactic] {
        match self {
            SeCategory::TechnicalSupport => {
                &[LockTactic::ModalDialogLoop, LockTactic::AuthDialogStorm, LockTactic::OnBeforeUnload]
            }
            SeCategory::Scareware => &[LockTactic::ModalDialogLoop, LockTactic::OnBeforeUnload],
            SeCategory::FakeSoftware => &[LockTactic::OnBeforeUnload],
            _ => &[],
        }
    }

    /// Whether interacting with the landing page yields a file download.
    pub fn serves_download(self) -> bool {
        matches!(self, SeCategory::FakeSoftware | SeCategory::Scareware)
    }

    /// Stable numeric id for deterministic hashing.
    pub fn index(self) -> u64 {
        match self {
            SeCategory::FakeSoftware => 0,
            SeCategory::Registration => 1,
            SeCategory::LotteryGift => 2,
            SeCategory::ChromeNotifications => 3,
            SeCategory::Scareware => 4,
            SeCategory::TechnicalSupport => 5,
        }
    }
}

impl std::fmt::Display for SeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One SE attack campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SeCampaign {
    /// Campaign id (index into the world's campaign table).
    pub id: CampaignId,
    /// Attack category.
    pub category: SeCategory,
    /// Visual skin — unique per campaign so each campaign forms its own
    /// screenshot cluster.
    pub skin: u16,
    /// Malware family for downloadable payloads.
    pub family: u64,
    /// Long-lived TDS ("milkable") domain, if the campaign uses
    /// indirection. `None` means ads redirect straight to attack domains.
    pub tds_domain: Option<String>,
    /// Path component of the TDS URL.
    pub tds_path: String,
    /// Stable landing path used on every attack domain (paper Fig. 4:
    /// "same SE attack with same URL pattern").
    pub landing_path: String,
    /// Relative traffic weight within its category.
    pub weight: f64,
}

impl SeCampaign {
    /// The rotation epoch index at time `t`, staggered per campaign so all
    /// campaigns don't rotate simultaneously.
    pub fn epoch(&self, t: SimTime) -> u64 {
        let period = self.category.rotation_period().minutes();
        let stagger = det_hash(&[u64::from(self.id.0), 0x57A6]) % period;
        (t.minutes() + stagger) / period
    }

    /// Time at which epoch `e` begins.
    pub fn epoch_start(&self, e: u64) -> SimTime {
        let period = self.category.rotation_period().minutes();
        let stagger = det_hash(&[u64::from(self.id.0), 0x57A6]) % period;
        SimTime((e * period).saturating_sub(stagger))
    }

    /// The throw-away attack domain live at epoch `e` for traffic shard
    /// `shard`.
    pub fn attack_domain_at_epoch(&self, world_seed: u64, e: u64, shard: u8) -> String {
        throwaway_domain(&[world_seed, 0xD0_5EAC, u64::from(self.id.0), e, u64::from(shard)])
    }

    /// The attack domain currently live at time `t` for `shard`.
    pub fn attack_domain(&self, world_seed: u64, t: SimTime, shard: u8) -> String {
        self.attack_domain_at_epoch(world_seed, self.epoch(t), shard)
    }

    /// Full attack-page URL at time `t` for `shard`.
    pub fn attack_url(&self, world_seed: u64, t: SimTime, shard: u8) -> Url {
        Url::http(self.attack_domain(world_seed, t, shard), self.landing_path.clone())
    }

    /// The campaign's milkable TDS URL for `shard`, if it has one.
    pub fn tds_url(&self, shard: u8) -> Option<Url> {
        self.tds_domain.as_ref().map(|d| {
            Url::http(d.clone(), format!("{}?s={}", self.tds_path, shard))
        })
    }

    /// The campaign's visual template.
    pub fn template(&self) -> VisualTemplate {
        match self.category {
            SeCategory::FakeSoftware => VisualTemplate::FakeSoftware { skin: self.skin },
            SeCategory::Registration => VisualTemplate::Registration { skin: self.skin },
            SeCategory::LotteryGift => VisualTemplate::Lottery { skin: self.skin },
            SeCategory::ChromeNotifications => {
                VisualTemplate::ChromeNotification { skin: self.skin }
            }
            SeCategory::Scareware => VisualTemplate::Scareware { skin: self.skin },
            SeCategory::TechnicalSupport => VisualTemplate::TechSupport { skin: self.skin },
        }
    }

    /// Payload container format served to the given client.
    pub fn payload_format(&self, ua: UaProfile) -> FileFormat {
        match ua.os() {
            OsClass::MacOs => FileFormat::Dmg,
            OsClass::Windows => FileFormat::Pe,
            OsClass::Android => FileFormat::Crx,
        }
    }

    /// How many rotation epochs a dead domain keeps resolving to a parking
    /// page before dropping out of DNS entirely.
    pub const PARKED_GRACE_EPOCHS: u64 = 12;

    /// The scam call-center number shown on technical-support pages at
    /// time `t`. Numbers rotate far more slowly than domains (call centers
    /// are expensive); the paper notes the system "provides an automatic
    /// real-time way to collect these scam phone numbers and add \[them\] to
    /// a blacklist".
    pub fn scam_phone(&self, world_seed: u64, t: SimTime) -> Option<String> {
        if self.category != SeCategory::TechnicalSupport {
            return None;
        }
        let week = t.minutes() / SimDuration::from_days(7).minutes();
        let h = det_hash(&[world_seed, 0x940_4E, u64::from(self.id.0), week]);
        Some(format!(
            "+1-8{}{}-{:03}-{:04}",
            h % 10,
            (h >> 8) % 10,
            (h >> 16) % 1000,
            (h >> 32) % 10_000
        ))
    }

    /// The survey-scam gateway URL the lottery landing funnels victims to
    /// at time `t`. Gateways sit on their own slowly-rotating domains
    /// (studied in the Surveylance paper the authors cite); our system
    /// "provides an automatic way of collecting the gateways".
    pub fn survey_gateway(&self, world_seed: u64, t: SimTime) -> Option<Url> {
        if self.category != SeCategory::LotteryGift {
            return None;
        }
        let period = t.minutes() / SimDuration::from_days(4).minutes();
        let domain = throwaway_domain(&[world_seed, 0x5B4_6E, u64::from(self.id.0), period]);
        Some(Url::http(domain, format!("/survey?cid={}", self.id.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::DAY;

    fn campaign(cat: SeCategory) -> SeCampaign {
        SeCampaign {
            id: CampaignId(5),
            category: cat,
            skin: 5,
            family: 1005,
            tds_domain: Some("findglo210.info".into()),
            tds_path: "/go".into(),
            landing_path: "/landing/k5".into(),
            weight: 1.0,
        }
    }

    #[test]
    fn category_counts_sum_to_108() {
        let total: u32 = SeCategory::ALL.iter().map(|c| c.paper_campaign_count()).sum();
        assert_eq!(total, 108);
    }

    #[test]
    fn traffic_shares_sum_to_one() {
        let total: f64 = SeCategory::ALL.iter().map(|c| c.traffic_share()).sum();
        assert!((total - 1.0).abs() < 0.01, "shares sum to {total}");
    }

    #[test]
    fn lottery_targets_only_mobile() {
        assert!(SeCategory::LotteryGift.targets(UaProfile::ChromeAndroid));
        assert!(!SeCategory::LotteryGift.targets(UaProfile::ChromeMac));
        assert!(SeCategory::FakeSoftware.targets(UaProfile::ChromeMac));
    }

    #[test]
    fn domains_rotate_on_schedule() {
        let c = campaign(SeCategory::FakeSoftware);
        let d0 = c.attack_domain(1, SimTime::EPOCH, 0);
        // Same epoch → same domain.
        assert_eq!(c.attack_domain(1, SimTime(1), 0), d0);
        // After > rotation period, the domain must have changed.
        let later = SimTime::EPOCH + c.category.rotation_period() + crate::time::HOUR;
        assert_ne!(c.attack_domain(1, later, 0), d0);
    }

    #[test]
    fn fourteen_days_of_milking_yields_expected_domain_count() {
        // FakeSoftware rotates every 10h → ~33-34 distinct domains per
        // shard over 14 days (paper: 1665 domains / ~50 milkable
        // campaigns ≈ 33).
        let c = campaign(SeCategory::FakeSoftware);
        let mut domains = std::collections::HashSet::new();
        let mut t = SimTime::EPOCH;
        while t < SimTime::EPOCH + DAY * 14 {
            domains.insert(c.attack_domain(1, t, 0));
            t += crate::time::SimDuration::from_minutes(15);
        }
        assert!(
            (32..=35).contains(&domains.len()),
            "got {} domains over 14 days",
            domains.len()
        );
    }

    #[test]
    fn shards_use_distinct_domains() {
        let c = campaign(SeCategory::FakeSoftware);
        assert_ne!(
            c.attack_domain(1, SimTime::EPOCH, 0),
            c.attack_domain(1, SimTime::EPOCH, 1)
        );
    }

    #[test]
    fn epoch_start_inverts_epoch() {
        let c = campaign(SeCategory::LotteryGift);
        for t in [SimTime(0), SimTime(5000), SimTime(100_000)] {
            let e = c.epoch(t);
            let start = c.epoch_start(e);
            assert!(start <= t);
            assert_eq!(c.epoch(start), e, "epoch_start must land in the same epoch");
        }
    }

    #[test]
    fn tds_url_carries_shard() {
        let c = campaign(SeCategory::FakeSoftware);
        let u = c.tds_url(1).unwrap();
        assert_eq!(u.host, "findglo210.info");
        assert!(u.query.contains("s=1"));
        let direct = SeCampaign { tds_domain: None, ..c };
        assert!(direct.tds_url(0).is_none());
    }

    #[test]
    fn templates_match_categories() {
        let c = campaign(SeCategory::Scareware);
        assert!(matches!(c.template(), VisualTemplate::Scareware { skin: 5 }));
        assert!(c.template().is_attack());
    }

    #[test]
    fn payload_format_follows_os() {
        let c = campaign(SeCategory::FakeSoftware);
        assert_eq!(c.payload_format(UaProfile::ChromeMac), FileFormat::Dmg);
        assert_eq!(c.payload_format(UaProfile::Ie10Windows), FileFormat::Pe);
        assert_eq!(c.payload_format(UaProfile::ChromeAndroid), FileFormat::Crx);
    }
}
impl_json_newtype!(CampaignId);
impl_json_enum!(SeCategory {
    FakeSoftware,
    Registration,
    LotteryGift,
    ChromeNotifications,
    Scareware,
    TechnicalSupport,
});
impl_json_struct!(SeCampaign {
    id,
    category,
    skin,
    family,
    tds_domain,
    tds_path,
    landing_path,
    weight,
});
