//! WebPulse-style site categorization.
//!
//! The paper uses Symantec's public WebPulse API to categorize the
//! publisher sites that hosted SEACMA ads (Table 2). In the simulation the
//! categorizer simply exposes the world's ground-truth category for known
//! publishers and a heuristic fallback for everything else — reproducing
//! the role, not the vendor.

use crate::publisher::SiteCategory;
use crate::world::World;

/// A site categorization service.
pub struct Categorizer<'w> {
    world: &'w World,
}

impl<'w> Categorizer<'w> {
    /// Builds a categorizer over `world`.
    pub fn new(world: &'w World) -> Self {
        Self { world }
    }

    /// Categorizes a domain. Publisher domains return their generated
    /// category; unknown domains fall back to [`SiteCategory::Suspicious`]
    /// (how commercial categorizers bucket fresh throw-away names).
    pub fn categorize(&self, domain: &str) -> SiteCategory {
        self.world
            .publisher_by_domain(domain)
            .map(|p| p.category)
            .unwrap_or(SiteCategory::Suspicious)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    #[test]
    fn publisher_domains_get_ground_truth() {
        let w = World::generate(WorldConfig {
            n_publishers: 100,
            n_hidden_only_publishers: 0,
            n_advertisers: 5,
            ..Default::default()
        });
        let cat = Categorizer::new(&w);
        for p in w.publishers().iter().take(20) {
            assert_eq!(cat.categorize(&p.domain), p.category);
        }
    }

    #[test]
    fn unknown_domains_are_suspicious() {
        let w = World::generate(WorldConfig {
            n_publishers: 10,
            n_hidden_only_publishers: 0,
            n_advertisers: 5,
            ..Default::default()
        });
        let cat = Categorizer::new(&w);
        assert_eq!(cat.categorize("qqwweerrtt.club"), SiteCategory::Suspicious);
    }

    #[test]
    fn category_distribution_follows_table2() {
        let w = World::generate(WorldConfig {
            n_publishers: 6000,
            n_hidden_only_publishers: 0,
            n_advertisers: 5,
            ..Default::default()
        });
        let suspicious = w
            .publishers()
            .iter()
            .filter(|p| p.category == SiteCategory::Suspicious)
            .count() as f64
            / 6000.0;
        // Table 2: Suspicious ≈ 15.81% of ~91.7% covered ⇒ ~17% of draws.
        assert!((0.12..0.23).contains(&suspicious), "suspicious share {suspicious}");
    }
}
