//! Minimal URL type for the simulated web.
//!
//! The pipeline manipulates URLs constantly: redirect chains, backtracking
//! graphs, attribution pattern matching, e2LD extraction, milkable-URL
//! bookkeeping. The simulated web only needs scheme, host, path and query —
//! there is no fragment or userinfo traffic in the ecosystem.

use seacma_util::impl_json_struct;
use std::fmt;
use std::str::FromStr;

use crate::domain::e2ld;

/// A parsed `http(s)` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Hostname, lowercase.
    pub host: String,
    /// Path, always beginning with `/`.
    pub path: String,
    /// Query string without the leading `?`; empty if absent.
    pub query: String,
}

/// Error returned when parsing an invalid URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError(pub String);

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.0)
    }
}

impl std::error::Error for ParseUrlError {}

impl Url {
    /// Builds an `http` URL from host and path.
    pub fn http(host: impl Into<String>, path: impl Into<String>) -> Url {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path, String::new()),
        };
        Url { scheme: "http".into(), host: host.into().to_ascii_lowercase(), path, query }
    }

    /// Effective second-level domain of the host.
    pub fn e2ld(&self) -> String {
        e2ld(&self.host)
    }

    /// [`e2ld`](Self::e2ld) as a borrowed suffix of the host — no
    /// allocation. Exact for every URL built through
    /// [`http`](Self::http), whose hosts are lowercased on construction.
    pub fn e2ld_ref(&self) -> &str {
        crate::domain::e2ld_ref(&self.host)
    }

    /// True if both URLs share an e2LD.
    pub fn same_site(&self, other: &Url) -> bool {
        crate::domain::same_site(&self.host, &other.host)
    }

    /// Path plus `?query` when present.
    pub fn path_and_query(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query)
        }
    }

    /// Substring match over the full textual form — the primitive used by
    /// ad-network invariant patterns ("a specific URL path name, URL
    /// structure", paper §3.1).
    pub fn contains(&self, pattern: &str) -> bool {
        self.to_string().contains(pattern)
    }

    /// Decision word of the URL: exactly
    /// `det::str_word(&url.to_string())`, computed without allocating the
    /// textual form. `World::fetch` draws per-document randomness from
    /// this on every hop, so the streaming version keeps the hot fetch
    /// path allocation-free while producing bit-identical draws.
    pub fn det_word(&self) -> u64 {
        use crate::det::str_word_extend;
        let mut h = str_word_extend(0xcbf2_9ce4_8422_2325, &self.scheme);
        h = str_word_extend(h, "://");
        h = str_word_extend(h, &self.host);
        h = str_word_extend(h, &self.path);
        if !self.query.is_empty() {
            h = str_word_extend(h, "?");
            h = str_word_extend(h, &self.query);
        }
        h
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| ParseUrlError(format!("missing scheme: {s}")))?;
        if scheme != "http" && scheme != "https" {
            return Err(ParseUrlError(format!("unsupported scheme: {s}")));
        }
        let (host, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() || host.contains(|c: char| c.is_whitespace()) {
            return Err(ParseUrlError(format!("bad host: {s}")));
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path_query.to_string(), String::new()),
        };
        Ok(Url { scheme: scheme.into(), host: host.to_ascii_lowercase(), path, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_word_equals_hash_of_textual_form() {
        for u in [
            Url::http("evil.club", "/landing?x=1"),
            Url::http("a.com", "/"),
            Url::http("tds.example", "/go?s=2&k=abc"),
            Url::http("no-query.net", "/deep/path"),
        ] {
            assert_eq!(u.det_word(), crate::det::str_word(&u.to_string()), "{u}");
        }
    }

    #[test]
    fn http_constructor_normalizes() {
        let u = Url::http("EVIL.Club", "landing?x=1");
        assert_eq!(u.host, "evil.club");
        assert_eq!(u.path, "/landing");
        assert_eq!(u.query, "x=1");
        assert_eq!(u.to_string(), "http://evil.club/landing?x=1");
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "http://a.com/",
            "https://b.co.uk/p/q?x=1&y=2",
            "http://c.club/deep/path",
        ] {
            let u: Url = s.parse().unwrap();
            assert_eq!(u.to_string(), s);
        }
    }

    #[test]
    fn parse_without_path_gets_root() {
        let u: Url = "http://a.com".parse().unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "http://a.com/");
    }

    #[test]
    fn parse_errors() {
        assert!("ftp://a.com/".parse::<Url>().is_err());
        assert!("nota url".parse::<Url>().is_err());
        assert!("http:///path".parse::<Url>().is_err());
        assert!("http://ho st/".parse::<Url>().is_err());
    }

    #[test]
    fn same_site_and_e2ld() {
        let a: Url = "http://x.pub.com/1".parse().unwrap();
        let b: Url = "http://y.pub.com/2".parse().unwrap();
        let c: Url = "http://evil.club/".parse().unwrap();
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
        assert_eq!(c.e2ld(), "evil.club");
    }

    #[test]
    fn contains_matches_full_form() {
        let u = Url::http("srv.adnet.com", "/watch.php?key=abc");
        assert!(u.contains("watch.php"));
        assert!(u.contains("adnet.com/watch"));
        assert!(!u.contains("popunder"));
    }

    #[test]
    fn path_and_query_forms() {
        assert_eq!(Url::http("a.com", "/p").path_and_query(), "/p");
        assert_eq!(Url::http("a.com", "/p?q=1").path_and_query(), "/p?q=1");
    }
}
impl_json_struct!(Url { scheme, host, path, query });

impl seacma_util::json::JsonKey for Url {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(k: &str) -> Result<Self, seacma_util::json::JsonError> {
        k.parse().map_err(|e: ParseUrlError| seacma_util::json::JsonError::msg(e.to_string()))
    }
}
