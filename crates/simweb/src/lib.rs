//! # seacma-simweb
//!
//! A deterministic, seeded synthetic web ecosystem that stands in for the
//! live web in the SEACMA reproduction (Vadrevu & Perdisci, IMC 2019).
//!
//! The paper's measurement pipeline observes the web only through a narrow
//! interface: fetch a URL with a given client profile (user agent, IP
//! vantage, automation fingerprint) at a given time, and receive back a page
//! (with scripts, clickable elements, a rendered appearance, page-locking
//! behaviours, downloads) or a redirect. This crate implements that
//! interface over a generated world containing:
//!
//! * **publisher sites** embedding low-tier ad-network code snippets
//!   (categories follow Table 2 of the paper),
//! * **ad networks** — the 11 seed networks of Table 3 plus three
//!   "unknown" networks discoverable through attribution — with rotating
//!   code-hosting domains, URL/JS invariant patterns, IP cloaking
//!   (Propeller/Clickadu serve benign ads to non-residential vantage) and
//!   `navigator.webdriver` anti-bot checks,
//! * **SE attack campaigns** of the six categories of Table 1, hosted on
//!   frequently rotating throw-away domains behind a longer-lived
//!   traffic-distribution ("milkable") layer,
//! * **benign advertisers** and the paper's clustering confounders (parked
//!   domains, stock-image adult pages, ad-based URL shorteners),
//! * a **PublicWWW-like source-code search engine** and a **WebPulse-like
//!   categorizer**.
//!
//! Every response is a pure function of `(world seed, url, client profile,
//! sim time)`, so crawling is embarrassingly parallel and milking rounds are
//! reproducible.

#![deny(missing_docs)]

pub mod adnet;
pub mod campaign;
pub mod categorize;
pub mod client;
pub mod det;
pub mod domain;
pub mod host;
pub mod names;
pub mod page;
pub mod payload;
pub mod publisher;
pub mod search;
pub mod time;
pub mod url;
pub mod visual;
pub mod world;

pub use adnet::{AdNetworkId, AdNetworkSpec};
pub use campaign::{CampaignId, SeCampaign, SeCategory};
pub use client::{ClientProfile, OsClass, UaProfile, Vantage};
pub use domain::{e2ld, e2ld_ref};
pub use host::{HostResponse, LiteResponse, RedirectKind};
pub use page::{ClickAction, Element, ElementKind, LockTactic, Page};
pub use payload::{FileFormat, FilePayload};
pub use publisher::{PublisherId, PublisherSite, SiteCategory};
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE};
pub use url::Url;
pub use visual::VisualTemplate;
pub use world::{World, WorldConfig};
