//! Effective second-level domain (e2LD) extraction.
//!
//! The clustering step pairs every screenshot with the e2LD of the page it
//! was taken on (paper §3.3), using Mozilla's Public Suffix List. We embed
//! the subset of the PSL relevant to the simulated ecosystem, including the
//! multi-label suffixes that make naive "last two labels" extraction wrong
//! (`co.uk`, `com.br`, …), so the logic is exercised the same way the real
//! system exercises the full list.

/// Multi-label public suffixes known to the extractor. Single-label TLDs
/// (com, net, club, …) need no table: any final label is a public suffix.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "net.br", "com.au", "net.au", "co.jp",
    "ne.jp", "or.jp", "co.in", "net.in", "com.mx", "com.ar", "com.tr", "co.za", "com.cn",
    "com.tw", "co.kr", "com.sg", "com.hk", "co.nz", "com.pl", "com.ru",
];

/// Extracts the effective second-level domain of a hostname.
///
/// `a.b.example.co.uk` → `example.co.uk`; `x.evil.club` → `evil.club`;
/// a bare suffix (`co.uk`, `com`) or the empty string is returned unchanged.
pub fn e2ld(host: &str) -> String {
    if is_normalized(host) {
        // Hot path: every simulator-generated host is already lowercase
        // with no trailing dot, so the e2LD is a plain suffix slice and
        // the single allocation is the owned return value.
        return e2ld_ref(host).to_string();
    }
    let norm = host.trim_end_matches('.').to_ascii_lowercase();
    let start = norm.len() - e2ld_ref(&norm).len();
    if start == 0 {
        norm
    } else {
        norm[start..].to_string()
    }
}

/// [`e2ld`] without the allocation: the e2LD as a suffix slice of `host`.
///
/// Skips the normalization `e2ld` applies, so the two agree exactly on
/// hosts that are already lowercase without a trailing dot — which is
/// every host the simulated web generates (pinned by test). Callers with
/// arbitrary, possibly mixed-case input want [`e2ld`].
pub fn e2ld_ref(host: &str) -> &str {
    let host = host.trim_end_matches('.');
    if label_start(host, 2).is_none() {
        return host; // zero or one label: the host is its own e2LD.
    }
    // Longest-match against multi-label suffixes.
    for take in [3usize, 2] {
        if let Some(s) = label_start(host, take) {
            if MULTI_LABEL_SUFFIXES.contains(&&host[s..]) {
                return label_start(host, take + 1).map_or(host, |s| &host[s..]);
            }
        }
    }
    let s = label_start(host, 2).expect("host has at least two labels");
    &host[s..]
}

/// Byte index where the `n`-th label counted from the end begins, or
/// `None` when `host` has fewer than `n` labels (`n ≥ 1`).
fn label_start(host: &str, n: usize) -> Option<usize> {
    let mut end = host.len();
    for i in 0..n {
        match host[..end].rfind('.') {
            Some(dot) => end = dot,
            None => return (i + 1 == n).then_some(0),
        }
    }
    Some(end + 1)
}

/// Whether `host` is already in `e2ld`'s normalized form (lowercase, no
/// trailing dot), i.e. whether [`e2ld_ref`] agrees with [`e2ld`] on it.
fn is_normalized(host: &str) -> bool {
    !host.ends_with('.') && !host.bytes().any(|b| b.is_ascii_uppercase())
}

/// True if `host` equals or is a subdomain of `apex`'s e2LD.
pub fn same_site(host: &str, apex: &str) -> bool {
    if is_normalized(host) && is_normalized(apex) {
        return e2ld_ref(host) == e2ld_ref(apex);
    }
    e2ld(host) == e2ld(apex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tld() {
        assert_eq!(e2ld("evil.club"), "evil.club");
        assert_eq!(e2ld("www.evil.club"), "evil.club");
        assert_eq!(e2ld("a.b.c.evil.club"), "evil.club");
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(e2ld("shop.example.co.uk"), "example.co.uk");
        assert_eq!(e2ld("example.co.uk"), "example.co.uk");
        assert_eq!(e2ld("deep.sub.site.com.br"), "site.com.br");
    }

    #[test]
    fn bare_suffix_and_degenerate() {
        assert_eq!(e2ld("co.uk"), "co.uk");
        assert_eq!(e2ld("com"), "com");
        assert_eq!(e2ld(""), "");
        assert_eq!(e2ld("localhost"), "localhost");
    }

    #[test]
    fn case_and_trailing_dot_normalized() {
        assert_eq!(e2ld("WWW.Evil.CLUB."), "evil.club");
    }

    #[test]
    fn e2ld_ref_matches_e2ld_on_normalized_hosts() {
        // The zero-alloc slice variant must agree with the allocating one
        // on every normalized host shape the extractor distinguishes.
        for h in [
            "evil.club",
            "www.evil.club",
            "a.b.c.evil.club",
            "shop.example.co.uk",
            "example.co.uk",
            "deep.sub.site.com.br",
            "co.uk",
            "com",
            "",
            "localhost",
            "x.com.ru",
            "srv7.adnet12.com",
        ] {
            assert_eq!(e2ld_ref(h), e2ld(h), "diverged on {h:?}");
        }
        // Trailing dots are trimmed by both.
        assert_eq!(e2ld_ref("www.evil.club."), "evil.club");
    }

    #[test]
    fn same_site_checks() {
        assert!(same_site("cdn.pub.com", "pub.com"));
        assert!(same_site("pub.com", "www.pub.com"));
        assert!(!same_site("pub.com", "attacker.com"));
        assert!(!same_site("a.co.uk", "b.co.uk"));
    }
}
