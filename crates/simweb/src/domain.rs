//! Effective second-level domain (e2LD) extraction.
//!
//! The clustering step pairs every screenshot with the e2LD of the page it
//! was taken on (paper §3.3), using Mozilla's Public Suffix List. We embed
//! the subset of the PSL relevant to the simulated ecosystem, including the
//! multi-label suffixes that make naive "last two labels" extraction wrong
//! (`co.uk`, `com.br`, …), so the logic is exercised the same way the real
//! system exercises the full list.

/// Multi-label public suffixes known to the extractor. Single-label TLDs
/// (com, net, club, …) need no table: any final label is a public suffix.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "net.br", "com.au", "net.au", "co.jp",
    "ne.jp", "or.jp", "co.in", "net.in", "com.mx", "com.ar", "com.tr", "co.za", "com.cn",
    "com.tw", "co.kr", "com.sg", "com.hk", "co.nz", "com.pl", "com.ru",
];

/// Extracts the effective second-level domain of a hostname.
///
/// `a.b.example.co.uk` → `example.co.uk`; `x.evil.club` → `evil.club`;
/// a bare suffix (`co.uk`, `com`) or the empty string is returned unchanged.
pub fn e2ld(host: &str) -> String {
    let host = host.trim_end_matches('.').to_ascii_lowercase();
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 1 {
        return host;
    }
    // Longest-match against multi-label suffixes.
    for take in (2..=3.min(labels.len())).rev() {
        let suffix = labels[labels.len() - take..].join(".");
        if MULTI_LABEL_SUFFIXES.contains(&suffix.as_str()) {
            return if labels.len() > take {
                labels[labels.len() - take - 1..].join(".")
            } else {
                suffix
            };
        }
    }
    labels[labels.len() - 2..].join(".")
}

/// True if `host` equals or is a subdomain of `apex`'s e2LD.
pub fn same_site(host: &str, apex: &str) -> bool {
    e2ld(host) == e2ld(apex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tld() {
        assert_eq!(e2ld("evil.club"), "evil.club");
        assert_eq!(e2ld("www.evil.club"), "evil.club");
        assert_eq!(e2ld("a.b.c.evil.club"), "evil.club");
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(e2ld("shop.example.co.uk"), "example.co.uk");
        assert_eq!(e2ld("example.co.uk"), "example.co.uk");
        assert_eq!(e2ld("deep.sub.site.com.br"), "site.com.br");
    }

    #[test]
    fn bare_suffix_and_degenerate() {
        assert_eq!(e2ld("co.uk"), "co.uk");
        assert_eq!(e2ld("com"), "com");
        assert_eq!(e2ld(""), "");
        assert_eq!(e2ld("localhost"), "localhost");
    }

    #[test]
    fn case_and_trailing_dot_normalized() {
        assert_eq!(e2ld("WWW.Evil.CLUB."), "evil.club");
    }

    #[test]
    fn same_site_checks() {
        assert!(same_site("cdn.pub.com", "pub.com"));
        assert!(same_site("pub.com", "www.pub.com"));
        assert!(!same_site("pub.com", "attacker.com"));
        assert!(!same_site("a.co.uk", "b.co.uk"));
    }
}
