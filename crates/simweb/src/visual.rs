//! Procedural page appearance.
//!
//! Screenshots are the pipeline's clustering signal, so the simulator gives
//! every page a *visual template*: a procedural description of what the
//! rendered page looks like. Pages of the same SE campaign share a template
//! (same attack creative served from many rotating domains) and differ only
//! by small per-instance noise — exactly the near-duplicate structure the
//! 128-bit dhash + DBSCAN step exploits. Distinct campaigns get distinct
//! layouts; benign pages are visually diverse; the paper's confounders
//! (parked pages, stock adult images, URL-shortener interstitials, failed
//! loads) are modelled as shared templates across unrelated domains.

use seacma_util::impl_json_enum;

use seacma_vision::bitmap::{Bitmap, DEFAULT_HEIGHT, DEFAULT_WIDTH};
use seacma_vision::dhash::{dhash128_noised, Dhash};

use crate::det::{det_hash, det_range, str_word};

/// Per-instance noise amplitude applied to campaign screenshots: rotating
/// domain strings, timestamps, localized copy. Chosen so intra-template
/// dhash distance stays well under the DBSCAN eps (≤ 12/128 bits).
pub const INSTANCE_NOISE: u8 = 5;

/// What a rendered page looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisualTemplate {
    /// Fake Flash/Java/media-player update dialog (Fake Software category).
    FakeSoftware {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// "Your computer is infected" scanner page.
    Scareware {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// Tech-support scam: fake BSOD/alert wall with a phone number.
    TechSupport {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// "You won!" lottery/gift-card wheel (mobile-targeted).
    Lottery {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// Page luring the user to Allow push notifications.
    ChromeNotification {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// Fake video player demanding account registration.
    Registration {
        /// Campaign creative skin: selects layout geometry and decoration.
        skin: u16,
    },
    /// Domain-parking placeholder; `provider` selects one of the parking
    /// services' shared layouts.
    Parked {
        /// Parking service, selecting one of the services' shared layouts.
        provider: u16,
    },
    /// Stock-photo adult lure page; `image` selects the stock image.
    StockAdult {
        /// Stock image selector.
        image: u16,
    },
    /// Ad-based URL-shortener interstitial (adf.ly / shorte.st style).
    ShortenerFrame {
        /// Shortener service skin.
        service: u16,
    },
    /// Blank/failed page load (the paper's one spurious cluster).
    LoadError,
    /// A benign advertiser's landing page; `style` is effectively unique
    /// per advertiser.
    BenignLanding {
        /// Style word, effectively unique per site.
        style: u64,
    },
    /// A publisher's own page.
    PublisherHome {
        /// Style word, effectively unique per site.
        style: u64,
    },
}

impl VisualTemplate {
    /// Renders the template at the default screenshot size with
    /// per-instance noise keyed by `instance_seed`.
    pub fn render(&self, instance_seed: u64) -> Bitmap {
        Self::render_from_clean(&self.render_clean(), instance_seed)
    }

    /// Applies the per-instance noise pass to a clean render. Equivalent
    /// to [`render`](Self::render) when `clean` came from
    /// [`render_clean`](Self::render_clean) of the same template — which
    /// lets high-frequency re-visitors (the milker renders the same
    /// campaign creative thousands of times) cache the expensive clean
    /// pass per template and pay only the cheap noise pass per instance.
    pub fn render_from_clean(clean: &Bitmap, instance_seed: u64) -> Bitmap {
        let mut bm = clean.clone();
        bm.perturb(instance_seed, INSTANCE_NOISE);
        bm
    }

    /// The perceptual hash of [`render_from_clean`](Self::render_from_clean)
    /// — bit-identical to `dhash128(&Self::render_from_clean(clean, seed))`
    /// but computed in one fused pass over the clean render, with no
    /// bitmap materialized (`seacma_vision::dhash::dhash128_noised`). The
    /// milker hashes thousands of per-visit screenshots of each cached
    /// clean render and never inspects the pixels; this is its path.
    pub fn dhash_from_clean(clean: &Bitmap, instance_seed: u64) -> Dhash {
        dhash128_noised(clean, instance_seed, INSTANCE_NOISE)
    }

    /// Renders the template without instance noise: the procedural layout,
    /// campaign decoration and background texture, but no per-visit
    /// variation. This is the expensive, template-constant part of
    /// [`render`](Self::render).
    pub fn render_clean(&self) -> Bitmap {
        let mut bm = Bitmap::new(DEFAULT_WIDTH, DEFAULT_HEIGHT);
        match *self {
            VisualTemplate::FakeSoftware { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"fakesw", skin);
                // Three creative families, as in the paper's Figure 6:
                // fake Flash/Java update dialogs and fake macOS media
                // players.
                match skin % 3 {
                    0 => {
                        // Windows-style update dialog with title bar.
                        let (x, y) = (18 + g[0] % 20, 14 + g[1] % 10);
                        bm.fill_rect(x, y, 80, 44, 210);
                        bm.fill_rect(x, y, 80, 7, 120); // title bar
                        bm.stroke_rect(x, y, 80, 44, 90);
                        bm.fill_rect(x + 4, y + 10, 14, 14, 60 + (g[2] % 100) as u8);
                        bm.text_block(x + 22, y + 12, 50, 3, 40);
                        bm.fill_rect(x + 20 + g[3] % 12, y + 30, 40, 10, 45);
                    }
                    1 => {
                        // Full-page "update required" splash with big CTA.
                        bm.fill_rect(0, 10, DEFAULT_WIDTH, 26, 180 + (g[0] % 40) as u8);
                        bm.text_block(14, 14, 100, 2, 35);
                        bm.fill_rect(30 + g[1] % 16, 44, 64, 14, 50);
                        bm.text_block(10, 64, 108, 2, 150);
                    }
                    _ => {
                        // Fake macOS media player (dark player + traffic
                        // lights + prompt sheet).
                        bm.fill_rect(6, 12, 116, 52, 25);
                        for (i, tone) in [200u8, 170, 140].iter().enumerate() {
                            bm.fill_rect(10 + i * 6, 15, 4, 4, *tone);
                        }
                        let px = 52 + g[0] % 12;
                        bm.fill_rect(px, 30, 16, 14, 220);
                        bm.fill_rect(22 + g[1] % 10, 40, 84, 16, 235); // sheet
                        bm.text_block(26, 44, 70, 2, 60);
                    }
                }
                bm.text_block(4, 70, 100, 2, 140);
            }
            VisualTemplate::Scareware { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"scare", skin);
                // Full-width warning banner + scanner list.
                bm.fill_rect(0, 12, DEFAULT_WIDTH, 14 + g[0] % 6, 230);
                bm.text_block(8, 16, 110, 2, 20);
                for i in 0..5 {
                    let y = 34 + i * 8;
                    bm.fill_rect(10, y, 4, 4, 250); // red "threat" dot
                    bm.text_block(20, y, 70 + (g[1] % 20), 1, 120);
                }
                bm.fill_rect(34 + g[2] % 30, 66, 54, 10, 50);
            }
            VisualTemplate::TechSupport { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"techsup", skin);
                // Blue-screen-like text wall plus modal alert box.
                bm.fill_rect(0, 10, DEFAULT_WIDTH, DEFAULT_HEIGHT - 10, 70);
                bm.text_block(6, 14, 116, 8, 190);
                let (x, y) = (24 + g[0] % 16, 30 + g[1] % 8);
                bm.fill_rect(x, y, 76, 30, 235);
                bm.stroke_rect(x, y, 76, 30, 20);
                bm.text_block(x + 4, y + 4, 66, 2, 30);
                bm.fill_rect(x + 6, y + 20, 26, 7, 60); // "call now" button
                bm.fill_rect(x + 42, y + 20, 26, 7, 60);
            }
            VisualTemplate::Lottery { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"lottery", skin);
                // Prize wheel: concentric boxes + radial segments stand-in.
                let cx = 40 + g[0] % 24;
                for r in 0..4 {
                    let s = 36 - r * 8;
                    bm.stroke_rect(cx - s / 2 + 24, 40 - s / 2 + 6, s, s, 200 + (r * 15) as u8);
                }
                bm.fill_rect(cx + 18, 34, 12, 12, 250);
                bm.text_block(10, 12, 108, 2, 220);
                bm.fill_rect(30 + g[1] % 20, 64, 60, 9, 55);
            }
            VisualTemplate::ChromeNotification { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"notif", skin);
                // Browser permission prompt top-left + blurred lure behind.
                bm.fill_rect(0, 10, DEFAULT_WIDTH, DEFAULT_HEIGHT - 10, 120 + (g[0] % 30) as u8);
                bm.fill_rect(6, 12, 66, 26, 245);
                bm.stroke_rect(6, 12, 66, 26, 80);
                bm.text_block(10, 16, 56, 2, 60);
                bm.fill_rect(12, 30, 20, 6, 70); // Allow
                bm.fill_rect(40, 30, 20, 6, 180); // Block
                bm.text_block(20, 52 + g[1] % 8, 90, 3, 200);
            }
            VisualTemplate::Registration { skin } => {
                draw_chrome(&mut bm, 30);
                let g = geom(b"regis", skin);
                // Fake video player with centered play button, paused with
                // an account-creation prompt.
                bm.fill_rect(8, 14, 112, 46, 15);
                let px = 54 + g[0] % 10;
                bm.fill_rect(px, 30, 14, 12, 230); // play triangle stand-in
                bm.fill_rect(26 + g[1] % 8, 38, 76, 18, 240);
                bm.text_block(30, 42, 60, 2, 50);
                bm.fill_rect(8, 64, 112, 4, 90); // progress bar
            }
            VisualTemplate::Parked { provider } => {
                // No browser chrome variance: parking pages are served
                // identically across thousands of unrelated domains.
                let g = geom(b"parked", provider);
                bm.fill_rect(0, 0, DEFAULT_WIDTH, DEFAULT_HEIGHT, 235);
                bm.text_block(24, 8, 80, 1, 120);
                for i in 0..4 {
                    let y = 22 + i * 12;
                    bm.fill_rect(16, y, 96, 8, 210 - (g[0] % 20) as u8);
                    bm.text_block(20, y + 2, 60, 1, 100);
                }
                bm.text_block(34, 72, 60, 1, 160);
            }
            VisualTemplate::StockAdult { image } => {
                let g = geom(b"stock", image);
                // A large "photo" block (textured) + click-through button.
                for y in 0..48usize {
                    for x in 0..(DEFAULT_WIDTH) {
                        let v = det_hash(&[u64::from(image), (x / 8) as u64, (y / 8) as u64]);
                        bm.set(x, y + 8, 80 + (v % 140) as u8);
                    }
                }
                bm.fill_rect(30 + g[0] % 30, 62, 56, 10, 240);
            }
            VisualTemplate::ShortenerFrame { service } => {
                let g = geom(b"shortener", service);
                // Top banner ad frame + countdown + "skip ad" button.
                bm.fill_rect(0, 0, DEFAULT_WIDTH, 10, 60);
                bm.fill_rect(10, 16, 108, 34, 190 + (g[0] % 30) as u8);
                bm.stroke_rect(10, 16, 108, 34, 90);
                bm.fill_rect(96, 58, 26, 10, 50); // skip button
                bm.text_block(12, 60, 60, 2, 140);
            }
            VisualTemplate::LoadError => {
                // about:blank-ish: nothing but a faint chrome strip.
                bm.fill_rect(0, 0, DEFAULT_WIDTH, 8, 40);
            }
            VisualTemplate::BenignLanding { style } => {
                draw_chrome(&mut bm, 30);
                // Fully style-derived layout: background wash, header, hero
                // and a handful of freely-placed content blocks — visually
                // unique per advertiser.
                let h = det_hash(&[style, 1]);
                bm.fill_rect(0, 8, DEFAULT_WIDTH, DEFAULT_HEIGHT - 8, 40 + (h % 140) as u8);
                bm.fill_rect(0, 10, DEFAULT_WIDTH, 10 + (h % 8) as usize, 100 + (h >> 8 & 0x7f) as u8);
                for c in 0..6u64 {
                    let hh = det_hash(&[style, 2, c]);
                    let bw = 18 + (hh % 50) as usize;
                    let bh = 8 + ((hh >> 8) % 24) as usize;
                    let x = ((hh >> 16) % DEFAULT_WIDTH as u64) as usize;
                    let y = 20 + ((hh >> 32) % (DEFAULT_HEIGHT as u64 - 28)) as usize;
                    bm.fill_rect(x, y, bw.min(DEFAULT_WIDTH - x), bh, 60 + ((hh >> 48) % 180) as u8);
                }
            }
            VisualTemplate::PublisherHome { style } => {
                draw_chrome(&mut bm, 30);
                let h = det_hash(&[style, 3]);
                // Content grid typical of streaming/download portals.
                bm.fill_rect(0, 10, DEFAULT_WIDTH, 8, 50 + (h % 60) as u8);
                for r in 0..3u64 {
                    for c in 0..4u64 {
                        let hh = det_hash(&[style, 4, r, c]);
                        let x = 4 + c as usize * 31;
                        let y = 22 + r as usize * 19;
                        bm.fill_rect(x, y, 27, 15, 120 + (hh % 110) as u8);
                    }
                }
            }
        }
        // Campaign-specific decoration: each campaign's creative has its own
        // banner art, so skins within a category must not collapse into one
        // cluster.
        if let Some((tag, skin)) = self.skin_tag() {
            draw_decor(&mut bm, tag, skin);
        }
        apply_texture(&mut bm, self.texture_key());
        bm
    }

    /// `(category tag, skin)` for campaign templates; `None` for the rest.
    fn skin_tag(&self) -> Option<(u64, u16)> {
        match *self {
            VisualTemplate::FakeSoftware { skin } => Some((1, skin)),
            VisualTemplate::Scareware { skin } => Some((2, skin)),
            VisualTemplate::TechSupport { skin } => Some((3, skin)),
            VisualTemplate::Lottery { skin } => Some((4, skin)),
            VisualTemplate::ChromeNotification { skin } => Some((5, skin)),
            VisualTemplate::Registration { skin } => Some((6, skin)),
            _ => None,
        }
    }

    /// A stable 64-bit identity word for this template: equal templates
    /// always map to the same word, distinct templates to distinct words
    /// (up to `det_hash` collisions). Concurrent render caches use it to
    /// pick a shard without hashing the whole enum.
    pub fn key(&self) -> u64 {
        self.texture_key()
    }

    /// A key identifying this template's page "theme" (background art,
    /// fonts, body texture). Stable per template, distinct across
    /// templates.
    fn texture_key(&self) -> u64 {
        match *self {
            VisualTemplate::FakeSoftware { skin } => det_hash(&[1, u64::from(skin)]),
            VisualTemplate::Scareware { skin } => det_hash(&[2, u64::from(skin)]),
            VisualTemplate::TechSupport { skin } => det_hash(&[3, u64::from(skin)]),
            VisualTemplate::Lottery { skin } => det_hash(&[4, u64::from(skin)]),
            VisualTemplate::ChromeNotification { skin } => det_hash(&[5, u64::from(skin)]),
            VisualTemplate::Registration { skin } => det_hash(&[6, u64::from(skin)]),
            VisualTemplate::Parked { provider } => det_hash(&[7, u64::from(provider)]),
            VisualTemplate::StockAdult { image } => det_hash(&[8, u64::from(image)]),
            VisualTemplate::ShortenerFrame { service } => det_hash(&[9, u64::from(service)]),
            VisualTemplate::LoadError => det_hash(&[10]),
            VisualTemplate::BenignLanding { style } => det_hash(&[11, style]),
            VisualTemplate::PublisherHome { style } => det_hash(&[12, style]),
        }
    }

    /// True for templates that represent SE attack content (used as ground
    /// truth when evaluating cluster labeling).
    pub fn is_attack(&self) -> bool {
        matches!(
            self,
            VisualTemplate::FakeSoftware { .. }
                | VisualTemplate::Scareware { .. }
                | VisualTemplate::TechSupport { .. }
                | VisualTemplate::Lottery { .. }
                | VisualTemplate::ChromeNotification { .. }
                | VisualTemplate::Registration { .. }
        )
    }
}

/// Browser chrome strip (address bar) whose tone varies slightly per page
/// but contributes no clustering signal.
fn draw_chrome(bm: &mut Bitmap, tone: u8) {
    let w = bm.width();
    bm.fill_rect(0, 0, w, 8, tone);
    bm.fill_rect(4, 2, w / 2, 4, tone + 60);
}

/// Draws per-campaign decoration blocks whose geometry and tone derive from
/// the skin, spreading campaigns of one category far apart in dhash space.
fn draw_decor(bm: &mut Bitmap, tag: u64, skin: u16) {
    let w = bm.width();
    let h = bm.height();
    for i in 0..4u64 {
        let r = det_hash(&[0xDEC0, tag, u64::from(skin), i]);
        let bw = 14 + (r % 40) as usize;
        let bh = 6 + ((r >> 8) % 16) as usize;
        let x = ((r >> 16) % (w as u64)) as usize;
        let y = 8 + ((r >> 32) % ((h - 16) as u64)) as usize;
        let tone = 30 + ((r >> 48) % 200) as u8;
        bm.fill_rect(x, y, bw.min(w - x), bh, tone);
    }
}

/// Overlays the template's background texture: a per-template pseudo-random
/// brightness offset per coarse cell.
///
/// This serves two purposes at once. Flat fills would make neighbouring
/// dhash cells exactly equal, turning their gradient bits into coin flips
/// under per-instance noise — the texture pins them (adjacent cells are
/// forced to distinct offsets, and instance noise averages to ≪ 1 grey
/// level per dhash cell). And because the texture derives from the
/// template identity, *different* templates disagree on most background
/// gradient bits, keeping unrelated pages far apart in Hamming space —
/// as unrelated real pages are.
fn apply_texture(bm: &mut Bitmap, key: u64) {
    let w = bm.width();
    let h = bm.height();
    const CELL_W: usize = 8;
    const CELL_H: usize = 10;
    let mut prev_offset = 0u8;
    for cy in 0..h.div_ceil(CELL_H) {
        for cx in 0..w.div_ceil(CELL_W) {
            let mut offset = (det_hash(&[key, 0x7E47, cx as u64, cy as u64]) % 31) as u8;
            if offset == prev_offset {
                offset = (offset + 7) % 31;
            }
            prev_offset = offset;
            for y in (cy * CELL_H)..((cy + 1) * CELL_H).min(h) {
                for x in (cx * CELL_W)..((cx + 1) * CELL_W).min(w) {
                    let v = bm.get(x, y);
                    bm.set(x, y, v.saturating_add(offset).min(250));
                }
            }
        }
    }
}

/// Skin-specific geometry words: deterministic per (category, skin) so all
/// instances of a campaign share layout while campaigns differ.
fn geom(tag: &[u8], skin: u16) -> [usize; 4] {
    let t = str_word(std::str::from_utf8(tag).expect("ascii tag"));
    let mut out = [0usize; 4];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = det_range(&[t, u64::from(skin), i as u64], 1 << 16) as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_vision::dhash::{dhash128, hamming};

    #[test]
    fn same_template_instances_are_near_duplicates() {
        let t = VisualTemplate::TechSupport { skin: 2 };
        let a = dhash128(&t.render(1));
        let b = dhash128(&t.render(999));
        assert!(hamming(a, b) <= 12, "distance {}", hamming(a, b));
    }

    #[test]
    fn different_categories_are_far_apart() {
        let cats = [
            VisualTemplate::FakeSoftware { skin: 0 },
            VisualTemplate::Scareware { skin: 0 },
            VisualTemplate::TechSupport { skin: 0 },
            VisualTemplate::Lottery { skin: 0 },
            VisualTemplate::ChromeNotification { skin: 0 },
            VisualTemplate::Registration { skin: 0 },
            VisualTemplate::Parked { provider: 0 },
        ];
        for (i, a) in cats.iter().enumerate() {
            for b in &cats[i + 1..] {
                let d = hamming(dhash128(&a.render(1)), dhash128(&b.render(1)));
                assert!(d > 12, "{a:?} vs {b:?} only {d} bits apart");
            }
        }
    }

    #[test]
    fn most_skins_within_category_are_distinguishable() {
        // Campaign clusters must not merge: check the fraction of skin
        // pairs within a category that stay outside the eps ball.
        let mut far = 0;
        let mut total = 0;
        for s1 in 0..12u16 {
            for s2 in (s1 + 1)..12 {
                let a = dhash128(&VisualTemplate::FakeSoftware { skin: s1 }.render(1));
                let b = dhash128(&VisualTemplate::FakeSoftware { skin: s2 }.render(1));
                total += 1;
                if hamming(a, b) > 12 {
                    far += 1;
                }
            }
        }
        assert!(
            far * 10 >= total * 9,
            "only {far}/{total} skin pairs distinguishable"
        );
    }

    #[test]
    fn benign_styles_are_diverse() {
        let mut far = 0;
        for i in 0..20u64 {
            let a = dhash128(&VisualTemplate::BenignLanding { style: i }.render(1));
            let b = dhash128(&VisualTemplate::BenignLanding { style: i + 1000 }.render(1));
            if hamming(a, b) > 12 {
                far += 1;
            }
        }
        assert!(far >= 17, "benign pages cluster too easily: {far}/20 far");
    }

    #[test]
    fn parked_providers_share_layout_across_instances() {
        let t = VisualTemplate::Parked { provider: 3 };
        let d = hamming(dhash128(&t.render(5)), dhash128(&t.render(6)));
        assert!(d <= 12);
    }

    #[test]
    fn attack_flag_matches_categories() {
        assert!(VisualTemplate::Lottery { skin: 1 }.is_attack());
        assert!(!VisualTemplate::Parked { provider: 1 }.is_attack());
        assert!(!VisualTemplate::BenignLanding { style: 1 }.is_attack());
        assert!(!VisualTemplate::LoadError.is_attack());
    }

    #[test]
    fn render_is_deterministic() {
        let t = VisualTemplate::Scareware { skin: 7 };
        assert_eq!(t.render(42), t.render(42));
    }

    #[test]
    fn cached_clean_render_is_exact() {
        // The split `render_clean` + `render_from_clean` path must equal
        // the one-shot `render` bit for bit — it is what makes per-template
        // clean-render caching safe for the byte-identity guarantees.
        for t in [
            VisualTemplate::FakeSoftware { skin: 3 },
            VisualTemplate::Lottery { skin: 1 },
            VisualTemplate::Parked { provider: 2 },
            VisualTemplate::LoadError,
        ] {
            let clean = t.render_clean();
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                assert_eq!(VisualTemplate::render_from_clean(&clean, seed), t.render(seed));
            }
        }
    }

    #[test]
    fn dhash_from_clean_equals_render_then_hash() {
        for t in [
            VisualTemplate::FakeSoftware { skin: 3 },
            VisualTemplate::Scareware { skin: 9 },
            VisualTemplate::Lottery { skin: 1 },
            VisualTemplate::Parked { provider: 2 },
            VisualTemplate::BenignLanding { style: 0x51AB },
            VisualTemplate::LoadError,
        ] {
            let clean = t.render_clean();
            for seed in [0u64, 1, 77, 0xDEAD_BEEF] {
                assert_eq!(
                    VisualTemplate::dhash_from_clean(&clean, seed),
                    seacma_vision::dhash::dhash128(&t.render(seed)),
                    "hash path divergence for {t:?} seed={seed}"
                );
            }
        }
    }
}
impl_json_enum!(VisualTemplate {
    FakeSoftware { skin: u16 },
    Scareware { skin: u16 },
    TechSupport { skin: u16 },
    Lottery { skin: u16 },
    ChromeNotification { skin: u16 },
    Registration { skin: u16 },
    Parked { provider: u16 },
    StockAdult { image: u16 },
    ShortenerFrame { service: u16 },
    LoadError,
    BenignLanding { style: u64 },
    PublisherHome { style: u64 },
});
