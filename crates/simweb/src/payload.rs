//! Downloadable file payloads.
//!
//! Fake-software and scareware attack pages respond to interaction with a
//! file download (Windows PE or macOS DMG in the paper, §4.5). The binaries
//! are *highly polymorphic*: of 9,476 milked files only 1,203 were already
//! known to VirusTotal. We model a payload as a member of a per-campaign
//! *family* whose content hash is re-randomized per serving.

use seacma_util::{impl_json_enum, impl_json_struct};

use crate::det::det_hash;

/// Container format of a served binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    /// Windows Portable Executable.
    Pe,
    /// macOS disk image.
    Dmg,
    /// Browser extension package.
    Crx,
}

/// A concrete downloaded file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilePayload {
    /// Malware family — shared by all downloads of one campaign.
    pub family: u64,
    /// Content hash of this serving. Polymorphism means the hash is fresh
    /// for most servings; a fraction repeats (already-known samples).
    pub sha: u128,
    /// Container format.
    pub format: FileFormat,
}

/// Probability that a served sample reuses a previously-distributed hash
/// (and is therefore already known to VirusTotal). Calibrated to the
/// paper's 1,203 / 9,476 ≈ 12.7 %.
pub const KNOWN_SAMPLE_RATE: f64 = 0.127;

impl FilePayload {
    /// Derives the payload served by campaign `family` at serving
    /// coordinates `words`. With probability [`KNOWN_SAMPLE_RATE`] the
    /// sample is drawn from a small pool of "old" hashes (already seen in
    /// the wild); otherwise the hash is unique to this serving.
    pub fn serve(family: u64, format: FileFormat, words: &[u64]) -> FilePayload {
        let mut w = vec![family, 0xF11E];
        w.extend_from_slice(words);
        let h = det_hash(&w);
        let reuse = (h % 1000) as f64 / 1000.0;
        let sha = if reuse < KNOWN_SAMPLE_RATE {
            // One of 16 well-known variants of the family.
            let idx = h >> 32 & 0xF;
            (u128::from(family) << 64) | u128::from(det_hash(&[family, 0x01D, idx]))
        } else {
            let low = h ^ det_hash(&[h, 0x901F]);
            (u128::from(family) << 64) | u128::from(low)
        };
        FilePayload { family, sha, format }
    }

    /// Whether the hash belongs to the family's "old variant" pool.
    pub fn is_known_variant(&self) -> bool {
        (0..16).any(|idx| {
            self.sha == (u128::from(self.family) << 64) | u128::from(det_hash(&[self.family, 0x01D, idx]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_is_deterministic() {
        let a = FilePayload::serve(7, FileFormat::Pe, &[1, 2, 3]);
        let b = FilePayload::serve(7, FileFormat::Pe, &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn polymorphism_rate_matches_calibration() {
        let known = (0..20_000u64)
            .map(|i| FilePayload::serve(3, FileFormat::Pe, &[i]))
            .filter(FilePayload::is_known_variant)
            .count();
        let rate = known as f64 / 20_000.0;
        assert!(
            (rate - KNOWN_SAMPLE_RATE).abs() < 0.02,
            "known-sample rate {rate} departs from calibration"
        );
    }

    #[test]
    fn fresh_hashes_are_unique() {
        use std::collections::HashSet;
        let fresh: Vec<FilePayload> = (0..5000u64)
            .map(|i| FilePayload::serve(9, FileFormat::Dmg, &[i]))
            .filter(|p| !p.is_known_variant())
            .collect();
        let hashes: HashSet<u128> = fresh.iter().map(|p| p.sha).collect();
        assert_eq!(hashes.len(), fresh.len(), "fresh polymorphic hashes collided");
    }

    #[test]
    fn family_is_embedded_in_hash() {
        let p = FilePayload::serve(42, FileFormat::Pe, &[0]);
        assert_eq!((p.sha >> 64) as u64, 42);
    }

    #[test]
    fn different_families_never_share_hashes() {
        let a = FilePayload::serve(1, FileFormat::Pe, &[5]);
        let b = FilePayload::serve(2, FileFormat::Pe, &[5]);
        assert_ne!(a.sha, b.sha);
    }
}
impl_json_enum!(FileFormat { Pe, Dmg, Crx });
impl_json_struct!(FilePayload { family, sha, format });
