//! The page model the simulated browser renders.
//!
//! A [`Page`] carries everything the measurement pipeline observes about a
//! document: its clickable elements with rendered sizes (the crawler ranks
//! images/iframes by size, §3.2), the scripts it includes (source-code
//! search and attribution), its visual appearance, its page-locking
//! behaviour, notification prompts and interaction-triggered downloads.

use seacma_util::{impl_json_enum, impl_json_struct};

use crate::payload::FilePayload;
use crate::url::Url;
use crate::visual::VisualTemplate;

/// Kind of a DOM element relevant to the click heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// `<img>`.
    Image,
    /// `<iframe>`.
    Iframe,
    /// `<div>` — including full-page transparent overlay ads.
    Div,
    /// `<a>`/`<button>`.
    Button,
}

/// What happens when an element (or the page) is clicked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClickAction {
    /// Nothing observable.
    None,
    /// Open a new tab at `url` (pop-up / pop-under ads).
    OpenTab(Url),
    /// Navigate the current tab away to `url`.
    Navigate(Url),
    /// Trigger a file download.
    Download(FilePayload),
    /// Grant the page's push-notification permission request.
    AllowNotifications,
}

/// Browser-locking tactics the paper found on SE attack pages (§3.2):
/// modal dialog loops, repeated authentication prompts and
/// `onbeforeunload` handlers. The instrumented browser bypasses all of
/// them; a non-instrumented session stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTactic {
    /// `alert()`/`confirm()` called in a loop.
    ModalDialogLoop,
    /// Repeated HTTP authentication dialogs.
    AuthDialogStorm,
    /// `onbeforeunload` handler that refuses navigation.
    OnBeforeUnload,
}

/// A rendered DOM element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Element {
    /// Element kind.
    pub kind: ElementKind,
    /// Rendered width in CSS pixels.
    pub width: u32,
    /// Rendered height in CSS pixels.
    pub height: u32,
    /// Listener installed directly on the element (publisher content links,
    /// download buttons). Ad-network listeners are modelled at page level —
    /// see [`Page::ad_click_chain`].
    pub action: ClickAction,
}

impl Element {
    /// Rendered area — the crawler's ranking key.
    pub fn area(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }
}

/// A script included by the page.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Script {
    /// URL the script was fetched from.
    pub src: Url,
    /// Source text (obfuscated ad-network loaders carry their invariant
    /// tokens here; PublicWWW-style search runs over this).
    pub source: String,
}

/// A document as served to one client at one time.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The URL this page was served from.
    pub url: Url,
    /// Page title.
    pub title: String,
    /// Clickable/rankable elements, in DOM order.
    pub elements: Vec<Element>,
    /// Scripts included by the page.
    pub scripts: Vec<Script>,
    /// Visual appearance for screenshotting.
    pub visual: VisualTemplate,
    /// Ad-network listeners armed on the whole page, in activation order:
    /// the k-th page-level click triggers `ad_click_chain[k]` (greedy
    /// publishers stack several networks; each interaction pops the next —
    /// paper §3.2). Empty for pages with no ad code.
    pub ad_click_chain: Vec<ClickAction>,
    /// Page-locking tactics active on this page.
    pub locking: Vec<LockTactic>,
    /// Whether the page immediately asks for push-notification permission.
    pub notification_prompt: bool,
    /// Download triggered on any interaction (fake-software "your download
    /// starts automatically" behaviour), if any.
    pub auto_download: Option<FilePayload>,
    /// Scam call-center number displayed by technical-support pages.
    pub scam_phone: Option<String>,
    /// Survey-scam gateway the page funnels victims to (lottery pages).
    pub survey_gateway: Option<Url>,
}

impl Page {
    /// A minimal page with the given URL and appearance.
    pub fn bare(url: Url, title: impl Into<String>, visual: VisualTemplate) -> Page {
        Page {
            url,
            title: title.into(),
            elements: Vec::new(),
            scripts: Vec::new(),
            visual,
            ad_click_chain: Vec::new(),
            locking: Vec::new(),
            notification_prompt: false,
            auto_download: None,
            scam_phone: None,
            survey_gateway: None,
        }
    }

    /// The ad action armed for the `k`-th page-level click, if any.
    pub fn ad_action(&self, k: usize) -> Option<&ClickAction> {
        self.ad_click_chain.get(k)
    }

    /// Elements sorted by descending rendered area — the crawler's click
    /// candidate order.
    pub fn elements_by_area(&self) -> Vec<(usize, &Element)> {
        let mut v: Vec<(usize, &Element)> = self.elements.iter().enumerate().collect();
        v.sort_by_key(|(i, e)| (std::cmp::Reverse(e.area()), *i));
        v
    }

    /// Whether any lock tactic is active.
    pub fn is_locking(&self) -> bool {
        !self.locking.is_empty()
    }

    /// Concatenated page source: element markup plus script bodies. This is
    /// what the PublicWWW-style search engine indexes.
    pub fn source_text(&self) -> String {
        let mut s = String::new();
        for e in &self.elements {
            s.push_str(&format!("<{:?} w={} h={}/>\n", e.kind, e.width, e.height));
        }
        for sc in &self.scripts {
            s.push_str(&format!("<script src=\"{}\">\n", sc.src));
            s.push_str(&sc.source);
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visual::VisualTemplate;

    fn page_with_elements() -> Page {
        let mut p = Page::bare(
            Url::http("pub.com", "/"),
            "t",
            VisualTemplate::PublisherHome { style: 1 },
        );
        p.elements = vec![
            Element { kind: ElementKind::Image, width: 10, height: 10, action: ClickAction::None },
            Element { kind: ElementKind::Iframe, width: 300, height: 250, action: ClickAction::None },
            Element { kind: ElementKind::Image, width: 300, height: 250, action: ClickAction::None },
            Element { kind: ElementKind::Button, width: 50, height: 20, action: ClickAction::None },
        ];
        p
    }

    #[test]
    fn area_ranking_is_descending_and_stable() {
        let p = page_with_elements();
        let ranked = p.elements_by_area();
        let areas: Vec<u64> = ranked.iter().map(|(_, e)| e.area()).collect();
        assert!(areas.windows(2).all(|w| w[0] >= w[1]));
        // Equal areas tie-break by DOM order.
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[1].0, 2);
    }

    #[test]
    fn ad_chain_pops_in_order() {
        let mut p = page_with_elements();
        p.ad_click_chain = vec![
            ClickAction::OpenTab(Url::http("ad1.com", "/")),
            ClickAction::OpenTab(Url::http("ad2.com", "/")),
        ];
        assert!(matches!(p.ad_action(0), Some(ClickAction::OpenTab(u)) if u.host == "ad1.com"));
        assert!(matches!(p.ad_action(1), Some(ClickAction::OpenTab(u)) if u.host == "ad2.com"));
        assert!(p.ad_action(2).is_none());
    }

    #[test]
    fn source_text_contains_scripts() {
        let mut p = page_with_elements();
        p.scripts.push(Script {
            src: Url::http("cdn.adnet.com", "/tag.min.js"),
            source: "var _pop_cfg = {zone: 42};".into(),
        });
        let src = p.source_text();
        assert!(src.contains("tag.min.js"));
        assert!(src.contains("_pop_cfg"));
        assert!(src.contains("Iframe"));
    }

    #[test]
    fn locking_flag() {
        let mut p = page_with_elements();
        assert!(!p.is_locking());
        p.locking.push(LockTactic::OnBeforeUnload);
        assert!(p.is_locking());
    }
}
impl_json_enum!(ElementKind { Image, Iframe, Div, Button });
impl_json_enum!(ClickAction {
    None,
    OpenTab(Url),
    Navigate(Url),
    Download(FilePayload),
    AllowNotifications,
});
impl_json_enum!(LockTactic { ModalDialogLoop, AuthDialogStorm, OnBeforeUnload });
impl_json_struct!(Element { kind, width, height, action });
impl_json_struct!(Script { src, source });
impl_json_struct!(Page {
    url,
    title,
    elements,
    scripts,
    visual,
    ad_click_chain,
    locking,
    notification_prompt,
    auto_download,
    scam_phone,
    survey_gateway,
});
