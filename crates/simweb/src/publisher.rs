//! Publisher websites.
//!
//! Publishers embed loader snippets from one or more low-tier ad networks
//! (greedy sites stack several — §3.2). Their topical categories follow
//! Table 2 of the paper; popularity ranks include a handful of top-1,000
//! and top-10,000 sites (§4.3).

use seacma_util::{impl_json_enum, impl_json_newtype, impl_json_struct};

use crate::adnet::AdNetworkId;
use crate::det::str_word;
use crate::url::Url;

/// Identifier of a publisher within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublisherId(pub u32);

/// Topical categories of publisher sites (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiteCategory {
    /// Sites flagged suspicious by the categorizer.
    Suspicious,
    /// Pornography sites.
    Pornography,
    /// Free/low-cost web hosting.
    WebHosting,
    /// Entertainment portals.
    Entertainment,
    /// Personal sites and blogs.
    PersonalSites,
    /// Known malicious sources.
    MaliciousSources,
    /// Dynamic-DNS hosted sites.
    DynamicDns,
    /// Technology sites.
    Technology,
    /// Piracy / copyright-infringing sites.
    Piracy,
    /// Gaming sites.
    Games,
    /// TV and video streaming sites.
    TvVideoStreams,
    /// Phishing sites.
    Phishing,
    /// Business sites.
    Business,
    /// Adult/mature content.
    AdultMature,
    /// Sports sites.
    Sports,
    /// Education sites.
    Education,
    /// Social networking sites.
    SocialNetworking,
    /// Placeholder/parked-like pages.
    Placeholders,
    /// Health sites.
    Health,
    /// Daily-living/lifestyle sites.
    DailyLiving,
}

impl SiteCategory {
    /// All categories in Table 2 order.
    pub const ALL: [SiteCategory; 20] = [
        SiteCategory::Suspicious,
        SiteCategory::Pornography,
        SiteCategory::WebHosting,
        SiteCategory::Entertainment,
        SiteCategory::PersonalSites,
        SiteCategory::MaliciousSources,
        SiteCategory::DynamicDns,
        SiteCategory::Technology,
        SiteCategory::Piracy,
        SiteCategory::Games,
        SiteCategory::TvVideoStreams,
        SiteCategory::Phishing,
        SiteCategory::Business,
        SiteCategory::AdultMature,
        SiteCategory::Sports,
        SiteCategory::Education,
        SiteCategory::SocialNetworking,
        SiteCategory::Placeholders,
        SiteCategory::Health,
        SiteCategory::DailyLiving,
    ];

    /// Name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            SiteCategory::Suspicious => "Suspicious",
            SiteCategory::Pornography => "Pornography",
            SiteCategory::WebHosting => "Web Hosting",
            SiteCategory::Entertainment => "Entertainment",
            SiteCategory::PersonalSites => "Personal Sites",
            SiteCategory::MaliciousSources => "Malicious Sources/Malnets",
            SiteCategory::DynamicDns => "Dynamic DNS Host",
            SiteCategory::Technology => "Technology/Internet",
            SiteCategory::Piracy => "Piracy/Copyright Concerns",
            SiteCategory::Games => "Games",
            SiteCategory::TvVideoStreams => "TV/Video Streams",
            SiteCategory::Phishing => "Phishing",
            SiteCategory::Business => "Business/Economy",
            SiteCategory::AdultMature => "Adult/Mature Content",
            SiteCategory::Sports => "Sports/Recreation",
            SiteCategory::Education => "Education",
            SiteCategory::SocialNetworking => "Social Networking",
            SiteCategory::Placeholders => "Placeholders",
            SiteCategory::Health => "Health",
            SiteCategory::DailyLiving => "Society/Daily Living",
        }
    }

    /// Relative frequency among SEACMA-hosting publishers (Table 2 col 3,
    /// in percent of total).
    pub fn weight(self) -> f64 {
        match self {
            SiteCategory::Suspicious => 15.81,
            SiteCategory::Pornography => 13.52,
            SiteCategory::WebHosting => 8.85,
            SiteCategory::Entertainment => 6.57,
            SiteCategory::PersonalSites => 6.46,
            SiteCategory::MaliciousSources => 6.25,
            SiteCategory::DynamicDns => 4.60,
            SiteCategory::Technology => 4.02,
            SiteCategory::Piracy => 3.91,
            SiteCategory::Games => 3.11,
            SiteCategory::TvVideoStreams => 2.73,
            SiteCategory::Phishing => 2.46,
            SiteCategory::Business => 1.80,
            SiteCategory::AdultMature => 1.72,
            SiteCategory::Sports => 1.52,
            SiteCategory::Education => 1.49,
            SiteCategory::SocialNetworking => 1.08,
            SiteCategory::Placeholders => 1.05,
            SiteCategory::Health => 1.01,
            SiteCategory::DailyLiving => 0.98,
        }
    }

    /// Whether the category is adult-oriented (Ero Advertising only runs
    /// on these).
    pub fn is_adult(self) -> bool {
        matches!(self, SiteCategory::Pornography | SiteCategory::AdultMature)
    }
}

impl std::fmt::Display for SiteCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One publisher website.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublisherSite {
    /// Publisher id (index into the world's publisher table).
    pub id: PublisherId,
    /// The site's domain.
    pub domain: String,
    /// Topical category.
    pub category: SiteCategory,
    /// Popularity rank (1 = most popular); `None` for long-tail sites.
    pub rank: Option<u32>,
    /// Ad networks whose loader snippets the site embeds, in slot order.
    pub networks: Vec<AdNetworkId>,
    /// The site dropped its ad code after the source-search index snapshot
    /// was taken: the PublicWWW-style reversal still returns it, but live
    /// visits arm no ads. This is why only 56 % of the paper's 70,541
    /// visited publishers produced third-party landings.
    pub stale: bool,
}

impl PublisherSite {
    /// The site's front-page URL (the crawler's entry point).
    pub fn url(&self) -> Url {
        Url::http(self.domain.clone(), "/")
    }

    /// Stable word for deterministic hashing of per-publisher decisions.
    pub fn word(&self) -> u64 {
        str_word(&self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_table2_total() {
        // Table 2 covers ~85% of SEACMA publisher domains (top-20 cats).
        let total: f64 = SiteCategory::ALL.iter().map(|c| c.weight()).sum();
        assert!((85.0..95.0).contains(&total), "total {total}");
    }

    #[test]
    fn suspicious_is_heaviest() {
        let max = SiteCategory::ALL
            .iter()
            .max_by(|a, b| a.weight().total_cmp(&b.weight()))
            .unwrap();
        assert_eq!(*max, SiteCategory::Suspicious);
    }

    #[test]
    fn adult_flags() {
        assert!(SiteCategory::Pornography.is_adult());
        assert!(SiteCategory::AdultMature.is_adult());
        assert!(!SiteCategory::Games.is_adult());
    }

    #[test]
    fn url_and_word() {
        let p = PublisherSite {
            id: PublisherId(3),
            domain: "streamhub.tv".into(),
            category: SiteCategory::TvVideoStreams,
            rank: Some(900),
            networks: vec![AdNetworkId(0)],
            stale: false,
        };
        assert_eq!(p.url().to_string(), "http://streamhub.tv/");
        assert_eq!(p.word(), str_word("streamhub.tv"));
    }
}
impl_json_newtype!(PublisherId);
impl_json_enum!(SiteCategory {
    Suspicious,
    Pornography,
    WebHosting,
    Entertainment,
    PersonalSites,
    MaliciousSources,
    DynamicDns,
    Technology,
    Piracy,
    Games,
    TvVideoStreams,
    Phishing,
    Business,
    AdultMature,
    Sports,
    Education,
    SocialNetworking,
    Placeholders,
    Health,
    DailyLiving,
});
impl_json_struct!(PublisherSite { id, domain, category, rank, networks, stale });
