//! Deterministic hashing utilities.
//!
//! Every stochastic decision the simulated web makes — does this ad click
//! cloak, which campaign does this network serve, what is the current attack
//! domain of campaign 17 — is a *pure function* of the world seed and the
//! decision's identifying coordinates. This makes `World::fetch` referentially
//! transparent: crawler workers can run in parallel with no shared RNG state
//! and milking rounds replay identically for a given seed.
//!
//! The mixer is SplitMix64 folded over the input words; it has excellent
//! avalanche behaviour and is more than strong enough for simulation
//! purposes (this is not cryptographic code).

/// Mixes a sequence of words into a single 64-bit value.
pub fn det_hash(words: &[u64]) -> u64 {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        state = state.wrapping_add(w).wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = splitmix64(state);
    }
    splitmix64(state)
}

/// SplitMix64 finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` derived from the hash of `words`.
pub fn det_f64(words: &[u64]) -> f64 {
    // 53 mantissa bits.
    (det_hash(words) >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform integer in `[0, n)`. `n` must be nonzero.
pub fn det_range(words: &[u64], n: u64) -> u64 {
    assert!(n > 0, "det_range with empty range");
    // Multiply-shift reduction avoids modulo bias for all practical n.
    ((u128::from(det_hash(words)) * u128::from(n)) >> 64) as u64
}

/// Picks an element of `slice` deterministically.
pub fn det_pick<'a, T>(words: &[u64], slice: &'a [T]) -> &'a T {
    assert!(!slice.is_empty(), "det_pick from empty slice");
    &slice[det_range(words, slice.len() as u64) as usize]
}

/// Bernoulli draw with probability `p`.
pub fn det_bool(words: &[u64], p: f64) -> bool {
    det_f64(words) < p
}

/// Picks an index according to `weights` (need not be normalized).
pub fn det_weighted(words: &[u64], weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "det_weighted with no weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "det_weighted with zero total weight");
    let mut x = det_f64(words) * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Hashes a string to a word, for mixing names into decision coordinates.
pub fn str_word(s: &str) -> u64 {
    str_word_extend(0xcbf2_9ce4_8422_2325, s) // FNV-1a 64
}

/// Folds `s` into a running [`str_word`] state. Streaming several pieces
/// through this is byte-equivalent to hashing their concatenation, which
/// lets hot paths hash composite strings (like a URL's textual form)
/// without materializing them.
#[inline]
pub fn str_word_extend(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_sensitive() {
        assert_eq!(det_hash(&[1, 2, 3]), det_hash(&[1, 2, 3]));
        assert_ne!(det_hash(&[1, 2, 3]), det_hash(&[1, 2, 4]));
        assert_ne!(det_hash(&[1, 2, 3]), det_hash(&[3, 2, 1]));
        assert_ne!(det_hash(&[]), det_hash(&[0]));
    }

    #[test]
    fn f64_in_unit_interval() {
        for i in 0..1000 {
            let x = det_f64(&[42, i]);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| det_f64(&[7, i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_bounds_respected() {
        for i in 0..1000 {
            assert!(det_range(&[i], 7) < 7);
        }
        // All 7 values reachable.
        let mut seen = [false; 7];
        for i in 0..200 {
            seen[det_range(&[i], 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_zero_panics() {
        det_range(&[1], 0);
    }

    #[test]
    fn weighted_respects_weights() {
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for i in 0..4000 {
            counts[det_weighted(&[9, i], &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio} not ≈ 3");
    }

    #[test]
    fn bool_probability() {
        let hits = (0..10_000).filter(|&i| det_bool(&[3, i], 0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn str_word_distinguishes() {
        assert_ne!(str_word("popads.net"), str_word("popcash.net"));
        assert_eq!(str_word("a"), str_word("a"));
    }

    #[test]
    fn pick_returns_member() {
        let v = [10, 20, 30];
        for i in 0..50 {
            assert!(v.contains(det_pick(&[i], &v)));
        }
    }
}
