//! Hosting-layer response types.
//!
//! `World::fetch` resolves one URL to one response hop; the browser follows
//! redirect hops itself (recording each, as the instrumented Chromium logs
//! every navigation — §3.4 lists the redirection mechanisms observed in the
//! wild, all of which the simulator emits).

use seacma_util::impl_json_enum;

use crate::page::Page;
use crate::url::Url;

/// How a redirect hop is implemented. The paper's backtracking graphs must
/// capture all of these because obfuscated ad code suppresses referrers,
/// making HTTP-level analysis insufficient (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedirectKind {
    /// HTTP 301 Moved Permanently.
    Http301,
    /// HTTP 302 Found.
    Http302,
    /// `<meta http-equiv="refresh">`.
    MetaRefresh,
    /// JS `window.location` assignment.
    JsLocation,
    /// JS `history.pushState` + content swap.
    JsPushState,
    /// JS navigation scheduled via `setTimeout`.
    JsSetTimeout,
}

impl RedirectKind {
    /// Whether the redirect happens at the HTTP layer (and would therefore
    /// be visible to network-log-only analyses).
    pub fn is_http(self) -> bool {
        matches!(self, RedirectKind::Http301 | RedirectKind::Http302)
    }
}

/// One resolution hop for a URL.
#[derive(Debug, Clone, PartialEq)]
pub enum HostResponse {
    /// A document was served.
    Page(Box<Page>),
    /// The server redirected the client.
    Redirect {
        /// Redirect target.
        to: Url,
        /// Mechanism used.
        kind: RedirectKind,
    },
    /// The domain does not resolve (expired beyond the parking grace
    /// period, or never existed).
    NxDomain,
    /// The server refused the request (anti-bot hard block).
    Refused,
}

impl HostResponse {
    /// The served page, if any.
    pub fn page(&self) -> Option<&Page> {
        match self {
            HostResponse::Page(p) => Some(p),
            _ => None,
        }
    }

    /// The redirect target, if any.
    pub fn redirect_target(&self) -> Option<&Url> {
        match self {
            HostResponse::Redirect { to, .. } => Some(to),
            _ => None,
        }
    }
}

/// One resolution hop with the document body elided — what a `HEAD`-style
/// probe observes. `World::fetch_lite` returns this for hot paths (the
/// milker's no-op re-visits) that only need to know *where* a navigation
/// lands, not what the page contains; it must classify every URL exactly
/// as [`World::fetch`](crate::World::fetch) does (pinned by a property
/// test in `world`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiteResponse {
    /// A document would be served ([`HostResponse::Page`], body elided).
    Doc,
    /// The server redirects the client.
    Redirect {
        /// Redirect target.
        to: Url,
        /// Mechanism used.
        kind: RedirectKind,
    },
    /// The domain does not resolve.
    NxDomain,
    /// The server refused the request.
    Refused,
}

impl LiteResponse {
    /// The body-elided classification of a full response.
    pub fn of(resp: &HostResponse) -> LiteResponse {
        match resp {
            HostResponse::Page(_) => LiteResponse::Doc,
            HostResponse::Redirect { to, kind } => {
                LiteResponse::Redirect { to: to.clone(), kind: *kind }
            }
            HostResponse::NxDomain => LiteResponse::NxDomain,
            HostResponse::Refused => LiteResponse::Refused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visual::VisualTemplate;

    #[test]
    fn http_layer_classification() {
        assert!(RedirectKind::Http301.is_http());
        assert!(RedirectKind::Http302.is_http());
        assert!(!RedirectKind::JsLocation.is_http());
        assert!(!RedirectKind::MetaRefresh.is_http());
        assert!(!RedirectKind::JsSetTimeout.is_http());
    }

    #[test]
    fn accessors() {
        let url = Url::http("a.com", "/");
        let page = HostResponse::Page(Box::new(Page::bare(
            url.clone(),
            "t",
            VisualTemplate::LoadError,
        )));
        assert!(page.page().is_some());
        assert!(page.redirect_target().is_none());

        let redir = HostResponse::Redirect { to: url.clone(), kind: RedirectKind::Http302 };
        assert_eq!(redir.redirect_target(), Some(&url));
        assert!(redir.page().is_none());

        assert!(HostResponse::NxDomain.page().is_none());
    }
}
impl_json_enum!(RedirectKind {
    Http301,
    Http302,
    MetaRefresh,
    JsLocation,
    JsPushState,
    JsSetTimeout,
});
impl_json_enum!(HostResponse {
    Page(Box<Page>),
    Redirect { to: Url, kind: RedirectKind },
    NxDomain,
    Refused,
});
impl_json_enum!(LiteResponse {
    Doc,
    Redirect { to: Url, kind: RedirectKind },
    NxDomain,
    Refused,
});
