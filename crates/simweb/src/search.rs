//! PublicWWW-style source-code search.
//!
//! The paper "reverses" ad-network invariant patterns into publisher lists
//! by querying publicwww.com, a source-code search engine (§3.1: 93,427
//! publishers from 11 networks; §4.4: 8,981 more from the three newly
//! discovered networks). This module provides the same operation over the
//! simulated publishers' page sources.

use crate::publisher::PublisherId;
use crate::world::World;

/// A source-code search engine over the world's publisher pages.
pub struct SourceSearch<'w> {
    world: &'w World,
}

impl<'w> SourceSearch<'w> {
    /// Builds a search engine over `world`.
    pub fn new(world: &'w World) -> Self {
        Self { world }
    }

    /// Returns the publishers whose page source contains `pattern`,
    /// in id order.
    pub fn search(&self, pattern: &str) -> Vec<PublisherId> {
        self.world
            .publishers()
            .iter()
            .filter(|p| self.world.publisher_source(p.id).contains(pattern))
            .map(|p| p.id)
            .collect()
    }

    /// Returns the union of publishers matching *any* of `patterns`,
    /// deduplicated, in id order — how the seed crawl pool is assembled
    /// from the 11 networks' invariants.
    pub fn search_any(&self, patterns: &[&str]) -> Vec<PublisherId> {
        let mut out: Vec<PublisherId> = self
            .world
            .publishers()
            .iter()
            .filter(|p| {
                let src = self.world.publisher_source(p.id);
                patterns.iter().any(|pat| src.contains(pat))
            })
            .map(|p| p.id)
            .collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn small_world() -> World {
        World::generate(WorldConfig {
            n_publishers: 300,
            n_hidden_only_publishers: 40,
            n_advertisers: 20,
            ..Default::default()
        })
    }

    #[test]
    fn seed_invariants_find_only_their_publishers() {
        let w = small_world();
        let search = SourceSearch::new(&w);
        let net = &w.networks()[0];
        let hits = search.search(&net.js_invariant);
        assert!(!hits.is_empty());
        for pid in &hits {
            let p = &w.publishers()[pid.0 as usize];
            assert!(p.networks.contains(&net.id), "{} matched without embedding", p.domain);
        }
        // Completeness: every embedder is found.
        let embedders = w.publishers().iter().filter(|p| p.networks.contains(&net.id)).count();
        assert_eq!(hits.len(), embedders);
    }

    #[test]
    fn union_search_covers_seed_pool() {
        let w = small_world();
        let search = SourceSearch::new(&w);
        let patterns: Vec<String> = w
            .networks()
            .iter()
            .filter(|n| n.seed_listed)
            .map(|n| n.js_invariant.clone())
            .collect();
        let pats: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let hits = search.search_any(&pats);
        // All non-hidden-only publishers embed ≥1 seed network.
        assert_eq!(hits.len() as u32, w.config().n_publishers);
    }

    #[test]
    fn hidden_only_publishers_not_in_seed_pool() {
        let w = small_world();
        let search = SourceSearch::new(&w);
        let patterns: Vec<String> = w
            .networks()
            .iter()
            .filter(|n| n.seed_listed)
            .map(|n| n.js_invariant.clone())
            .collect();
        let pats: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let hits = search.search_any(&pats);
        let hidden_start = w.config().n_publishers;
        assert!(hits.iter().all(|p| p.0 < hidden_start));
        // But the hidden networks' own invariants do find them.
        let hidden_net = w.networks().iter().find(|n| !n.seed_listed).unwrap();
        let hidden_hits = search.search(&hidden_net.js_invariant);
        assert!(hidden_hits.iter().any(|p| p.0 >= hidden_start));
    }

    #[test]
    fn nonsense_pattern_finds_nothing() {
        let w = small_world();
        let search = SourceSearch::new(&w);
        assert!(search.search("zzz_does_not_exist_zzz").is_empty());
    }
}
