//! Client profiles: user-agent emulation, IP vantage and automation
//! fingerprint.
//!
//! The paper's crawlers visit every publisher with four Browser/OS
//! combinations (§3.2), from either institutional or residential IP space
//! (Propeller and Clickadu cloak on non-residential space), and patch
//! Chromium so `navigator.webdriver` no longer betrays DevTools automation.
//! All three axes are captured here and threaded through every fetch.

use seacma_util::{impl_json_enum, impl_json_struct};
use std::fmt;

/// Operating-system class the client claims to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsClass {
    /// Desktop macOS.
    MacOs,
    /// Mobile Android.
    Android,
    /// Desktop Windows.
    Windows,
}

/// The four Browser/OS combinations used in the measurement (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UaProfile {
    /// Chrome 66 on macOS.
    ChromeMac,
    /// Chrome 65 on Android, with DevTools device emulation (screen size
    /// and touch events adjusted, not just the UA string).
    ChromeAndroid,
    /// Internet Explorer 10 on Windows.
    Ie10Windows,
    /// Edge 12 on Windows.
    Edge12Windows,
}

impl UaProfile {
    /// All four crawl profiles, in the order the crawler cycles them.
    pub const ALL: [UaProfile; 4] = [
        UaProfile::ChromeMac,
        UaProfile::ChromeAndroid,
        UaProfile::Ie10Windows,
        UaProfile::Edge12Windows,
    ];

    /// The OS class implied by the profile.
    pub fn os(self) -> OsClass {
        match self {
            UaProfile::ChromeMac => OsClass::MacOs,
            UaProfile::ChromeAndroid => OsClass::Android,
            UaProfile::Ie10Windows | UaProfile::Edge12Windows => OsClass::Windows,
        }
    }

    /// Whether this is a mobile profile (affects targeting: e.g. the
    /// fake-lottery campaigns only serve mobile clients).
    pub fn is_mobile(self) -> bool {
        matches!(self, UaProfile::ChromeAndroid)
    }

    /// The full user-agent string sent with requests.
    pub fn user_agent(self) -> &'static str {
        match self {
            UaProfile::ChromeMac => {
                "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_4) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/66.0.3359.139 Safari/537.36"
            }
            UaProfile::ChromeAndroid => {
                "Mozilla/5.0 (Linux; Android 8.0; Pixel 2) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/65.0.3325.109 Mobile Safari/537.36"
            }
            UaProfile::Ie10Windows => {
                "Mozilla/5.0 (compatible; MSIE 10.0; Windows NT 6.2; Trident/6.0)"
            }
            UaProfile::Edge12Windows => {
                "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Chrome/42.0.2311.135 Safari/537.36 Edge/12.246"
            }
        }
    }

    /// Emulated viewport in CSS pixels, `(width, height)`.
    pub fn viewport(self) -> (u32, u32) {
        match self {
            UaProfile::ChromeAndroid => (412, 732),
            _ => (1366, 768),
        }
    }

    /// Stable numeric id for deterministic hashing.
    pub fn index(self) -> u64 {
        match self {
            UaProfile::ChromeMac => 0,
            UaProfile::ChromeAndroid => 1,
            UaProfile::Ie10Windows => 2,
            UaProfile::Edge12Windows => 3,
        }
    }
}

impl fmt::Display for UaProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UaProfile::ChromeMac => "Chrome66/macOS",
            UaProfile::ChromeAndroid => "Chrome65/Android",
            UaProfile::Ie10Windows => "IE10/Windows",
            UaProfile::Edge12Windows => "Edge12/Windows",
        };
        f.write_str(s)
    }
}

/// The network position requests originate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vantage {
    /// University/institution address space.
    Institutional,
    /// Residential ISP address space (the paper's laptops).
    Residential,
    /// Cloud-provider ranges (e.g. AWS).
    Cloud,
    /// Tor exit nodes.
    TorExit,
}

impl Vantage {
    /// Stable numeric id for deterministic hashing.
    pub fn index(self) -> u64 {
        match self {
            Vantage::Institutional => 0,
            Vantage::Residential => 1,
            Vantage::Cloud => 2,
            Vantage::TorExit => 3,
        }
    }
}

/// Everything a server-side cloaking check can observe about the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientProfile {
    /// Emulated browser/OS combination.
    pub ua: UaProfile,
    /// IP vantage of the request.
    pub vantage: Vantage,
    /// Whether `navigator.webdriver` is observable as `true`. Stock
    /// DevTools automation exposes it; the instrumented browser's stealth
    /// patch hides it.
    pub webdriver_visible: bool,
}

impl ClientProfile {
    /// A stealthy crawler profile (webdriver hidden), as deployed in the
    /// paper after the anti-bot investigation.
    pub fn stealthy(ua: UaProfile, vantage: Vantage) -> Self {
        Self { ua, vantage, webdriver_visible: false }
    }

    /// A naive automation profile that still exposes `navigator.webdriver`.
    pub fn naive(ua: UaProfile, vantage: Vantage) -> Self {
        Self { ua, vantage, webdriver_visible: true }
    }

    /// Words for deterministic hashing of per-client decisions.
    pub fn det_words(&self) -> [u64; 3] {
        [self.ua.index(), self.vantage.index(), u64::from(self.webdriver_visible)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_three_oses() {
        use std::collections::HashSet;
        let oses: HashSet<_> = UaProfile::ALL.iter().map(|u| u.os()).collect();
        assert_eq!(oses.len(), 3);
    }

    #[test]
    fn only_android_is_mobile() {
        assert!(UaProfile::ChromeAndroid.is_mobile());
        assert!(!UaProfile::ChromeMac.is_mobile());
        assert!(!UaProfile::Ie10Windows.is_mobile());
        assert!(!UaProfile::Edge12Windows.is_mobile());
    }

    #[test]
    fn mobile_viewport_is_narrow() {
        let (w, _) = UaProfile::ChromeAndroid.viewport();
        let (dw, _) = UaProfile::ChromeMac.viewport();
        assert!(w < dw / 2);
    }

    #[test]
    fn ua_strings_distinct() {
        use std::collections::HashSet;
        let uas: HashSet<_> = UaProfile::ALL.iter().map(|u| u.user_agent()).collect();
        assert_eq!(uas.len(), 4);
    }

    #[test]
    fn indices_distinct() {
        use std::collections::HashSet;
        let ids: HashSet<_> = UaProfile::ALL.iter().map(|u| u.index()).collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn stealth_hides_webdriver() {
        let p = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential);
        assert!(!p.webdriver_visible);
        let n = ClientProfile::naive(UaProfile::ChromeMac, Vantage::Residential);
        assert!(n.webdriver_visible);
        assert_ne!(p.det_words(), n.det_words());
    }
}
impl_json_enum!(OsClass { MacOs, Android, Windows });
impl_json_enum!(UaProfile { ChromeMac, ChromeAndroid, Ie10Windows, Edge12Windows });
impl_json_enum!(Vantage { Institutional, Residential, Cloud, TorExit });
impl_json_struct!(ClientProfile { ua, vantage, webdriver_visible });
