//! Deterministic generation of realistic domain labels.
//!
//! SEACMA infrastructure uses machine-generated throw-away names
//! (`wduygininqbu.com`, `live6nmld10.club`, `findglo210.info`, …) while
//! publishers and benign advertisers use pronounceable word compounds. Both
//! styles are generated deterministically from hash words so any component
//! can re-derive a name from its coordinates without global state.

use crate::det::{det_hash, det_range};

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
    "st", "tr", "ch", "gl", "pl", "cr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io"];

const WORDS_A: &[&str] = &[
    "stream", "movie", "sport", "live", "free", "flix", "video", "play", "watch", "tube",
    "media", "game", "anime", "serie", "film", "tv", "cast", "gol", "futbol", "drama",
    "manga", "music", "song", "torrent", "down", "load", "file", "share", "host", "cloud",
    "blog", "news", "daily", "tech", "soft", "crack", "mod", "apk", "hack", "tips",
];
const WORDS_B: &[&str] = &[
    "hub", "zone", "land", "spot", "box", "center", "world", "city", "site", "point",
    "base", "place", "mania", "plus", "pro", "max", "hq", "online", "now", "club",
    "link", "gate", "portal", "arena", "star", "king", "nest", "wave", "verse", "dock",
];

/// TLD pools by "trust tier". Throw-away attack domains live in cheap TLDs.
pub const CHEAP_TLDS: &[&str] = &["club", "info", "xyz", "top", "site", "online", "icu", "pw"];
/// TLDs used by publishers and benign advertisers.
pub const COMMON_TLDS: &[&str] = &["com", "net", "org", "io", "tv", "me", "co"];

/// A random consonant-vowel gibberish label, like ad networks' rotating
/// code-hosting domains (`nsvf17p9`, `enynwkvdb`).
pub fn gibberish_label(words: &[u64], min_syllables: usize, max_syllables: usize) -> String {
    debug_assert!(min_syllables >= 1 && max_syllables >= min_syllables);
    let n = min_syllables as u64
        + det_range(&[det_hash(words), 0], (max_syllables - min_syllables + 1) as u64);
    let mut s = String::new();
    for i in 0..n {
        let h = det_hash(&[det_hash(words), 1, i]);
        s.push_str(CONSONANTS[(h % CONSONANTS.len() as u64) as usize]);
        s.push_str(VOWELS[((h >> 16) % VOWELS.len() as u64) as usize]);
    }
    // Many real throwaway names carry a numeric suffix (findglo210, relsta60).
    let h = det_hash(&[det_hash(words), 2]);
    if h % 3 != 0 {
        s.push_str(&format!("{}", h % 1000));
    }
    s
}

/// A pronounceable compound label for publishers/advertisers
/// (`streamhub`, `moviezone24`).
pub fn compound_label(words: &[u64]) -> String {
    let h = det_hash(words);
    let a = WORDS_A[(h % WORDS_A.len() as u64) as usize];
    let b = WORDS_B[((h >> 16) % WORDS_B.len() as u64) as usize];
    let mut s = format!("{a}{b}");
    if (h >> 32) % 4 == 0 {
        s.push_str(&format!("{}", (h >> 40) % 100));
    }
    s
}

/// A throw-away attack/TDS domain on a cheap TLD.
pub fn throwaway_domain(words: &[u64]) -> String {
    let label = gibberish_label(words, 2, 4);
    let tld = CHEAP_TLDS[(det_hash(&[det_hash(words), 3]) % CHEAP_TLDS.len() as u64) as usize];
    format!("{label}.{tld}")
}

/// A publisher/advertiser domain on a common TLD.
pub fn common_domain(words: &[u64]) -> String {
    let label = compound_label(words);
    let tld = COMMON_TLDS[(det_hash(&[det_hash(words), 4]) % COMMON_TLDS.len() as u64) as usize];
    format!("{label}.{tld}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(throwaway_domain(&[1, 2]), throwaway_domain(&[1, 2]));
        assert_eq!(common_domain(&[5]), common_domain(&[5]));
    }

    #[test]
    fn names_are_mostly_distinct() {
        let names: HashSet<String> = (0..1000).map(|i| throwaway_domain(&[7, i])).collect();
        assert!(names.len() > 950, "too many collisions: {}", names.len());
    }

    #[test]
    fn throwaway_uses_cheap_tld() {
        for i in 0..100 {
            let d = throwaway_domain(&[9, i]);
            let tld = d.rsplit('.').next().unwrap();
            assert!(CHEAP_TLDS.contains(&tld), "unexpected tld in {d}");
        }
    }

    #[test]
    fn common_uses_common_tld() {
        for i in 0..100 {
            let d = common_domain(&[11, i]);
            let tld = d.rsplit('.').next().unwrap();
            assert!(COMMON_TLDS.contains(&tld), "unexpected tld in {d}");
        }
    }

    #[test]
    fn labels_are_dns_safe() {
        for i in 0..200 {
            let d = throwaway_domain(&[13, i]);
            assert!(
                d.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'),
                "non-dns char in {d}"
            );
            assert!(d.len() < 64);
        }
    }

    #[test]
    fn gibberish_syllable_bounds() {
        for i in 0..50 {
            let l = gibberish_label(&[15, i], 2, 2);
            // 2 syllables of at most 4 chars each + up to 3 digits.
            assert!(l.len() >= 4 && l.len() <= 11, "odd length {}: {l}", l.len());
        }
    }
}
