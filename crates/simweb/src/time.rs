//! Simulated time.
//!
//! All temporal behaviour in the ecosystem — attack-domain rotation, GSB
//! detection latency, milking cadence ("once every 15 minutes" for 14 days),
//! the 12-day lookup tail and the "after 2 months" final lookup — runs on a
//! virtual clock measured in minutes, so a multi-week measurement executes
//! in seconds of wall time.

use seacma_util::impl_json_newtype;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in minutes since the world epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// One simulated minute.
pub const MINUTE: SimDuration = SimDuration(1);
/// One simulated hour.
pub const HOUR: SimDuration = SimDuration(60);
/// One simulated day.
pub const DAY: SimDuration = SimDuration(24 * 60);

impl SimTime {
    /// The world epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Minutes since the epoch.
    pub fn minutes(self) -> u64 {
        self.0
    }

    /// Whole days since the epoch.
    pub fn days(self) -> u64 {
        self.0 / DAY.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Builds a duration from minutes.
    pub const fn from_minutes(m: u64) -> Self {
        SimDuration(m)
    }

    /// Builds a duration from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 60)
    }

    /// Builds a duration from days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 24 * 60)
    }

    /// The duration in minutes.
    pub fn minutes(self) -> u64 {
        self.0
    }

    /// The duration in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / DAY.0;
        let h = (self.0 % DAY.0) / 60;
        let m = self.0 % 60;
        write!(f, "d{d}+{h:02}:{m:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= DAY.0 {
            write!(f, "{:.1}d", self.as_days())
        } else if self.0 >= 60 {
            write!(f, "{:.1}h", self.0 as f64 / 60.0)
        } else {
            write!(f, "{}m", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::EPOCH + SimDuration::from_days(2) + HOUR * 3;
        assert_eq!(t.minutes(), 2 * 1440 + 180);
        assert_eq!(t.days(), 2);
        assert_eq!((t - SimTime::EPOCH).minutes(), t.minutes());
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.since(b).minutes(), 0);
        assert_eq!(b.since(a).minutes(), 100);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime(0).to_string(), "d0+00:00");
        assert_eq!((SimTime::EPOCH + DAY + HOUR + MINUTE).to_string(), "d1+01:01");
        assert_eq!(SimDuration::from_minutes(45).to_string(), "45m");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.0h");
        assert_eq!(SimDuration::from_days(7).to_string(), "7.0d");
    }

    #[test]
    fn duration_constructors_consistent() {
        assert_eq!(SimDuration::from_days(1), DAY);
        assert_eq!(SimDuration::from_hours(24), DAY);
        assert_eq!(SimDuration::from_minutes(60), HOUR);
        assert_eq!(DAY.as_days(), 1.0);
    }
}
impl_json_newtype!(SimTime);
impl_json_newtype!(SimDuration);
