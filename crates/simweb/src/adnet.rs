//! Low-tier ad-network models.
//!
//! The 11 seed networks of Table 3 plus the three networks the paper later
//! discovered through "unknown" attribution (Ero Advertising, Yllix,
//! AdCenter). Each network is calibrated with: the number of rotating
//! domains hosting its ad-serving JS (Table 3 col 2), the fraction of its
//! ad clicks that lead to SE attacks (col 5), its relative traffic volume
//! (col 3), its cloaking policy and its anti-bot behaviour.

use seacma_util::{impl_json_newtype, impl_json_struct};

use crate::client::{ClientProfile, Vantage};
use crate::det::{det_hash, str_word};
use crate::names::gibberish_label;
use crate::url::Url;

/// Identifier of an ad network within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdNetworkId(pub u16);

/// Static description of one ad network.
#[derive(Debug, Clone, PartialEq)]
pub struct AdNetworkSpec {
    /// Network id (index into the world's network table).
    pub id: AdNetworkId,
    /// Network name.
    pub name: String,
    /// Whether the network is part of the initial seed list (Table 3) or
    /// one of the "unknown" networks discoverable via attribution (§4.4).
    pub seed_listed: bool,
    /// Size of the rotating pool of domains hosting the network's JS and
    /// click handlers (Table 3, col 2). Ad-blocker evasion: the more
    /// domains, the harder to filter.
    pub code_domain_pool: u32,
    /// Invariant URL token present in all of this network's ad-serving
    /// URLs — what the paper's manual analysis extracts for attribution
    /// and PublicWWW reversal (§3.1).
    pub url_invariant: String,
    /// Invariant JS variable name appearing in the obfuscated loader
    /// snippet embedded on publisher pages.
    pub js_invariant: String,
    /// Probability that an ad click resolves to an SE campaign
    /// (Table 3, col 5).
    pub se_rate: f64,
    /// Relative click-traffic volume (Table 3, col 3, normalized
    /// downstream).
    pub volume_weight: f64,
    /// Serves only benign ads to non-residential IP space (Propeller and
    /// Clickadu in the paper).
    pub cloaks_nonresidential: bool,
    /// Refuses SEACMA ads when `navigator.webdriver` is visible.
    pub checks_webdriver: bool,
    /// Whether stock AdBlock Plus filter lists block the network
    /// (only Clicksor in the paper's test, §4.4).
    pub blocked_by_adblock: bool,
    /// Focused on adult publishers (Ero Advertising).
    pub adult_focused: bool,
    /// Routes demand through an ad-exchange hop (syndication, §3.5: "a
    /// variety of complications … such as ad exchange networks and ad
    /// syndication"). Adds one more redirect to the chain.
    pub uses_exchange: bool,
}

impl AdNetworkSpec {
    /// The network's ad-serving domain for rotation slot `slot`.
    pub fn code_domain(&self, world_seed: u64, slot: u32) -> String {
        let label = gibberish_label(
            &[world_seed, 0xAD_C0DE, u64::from(self.id.0), u64::from(slot)],
            2,
            3,
        );
        // Low-tier networks spread across cheap and common TLDs.
        let tlds = ["com", "net", "xyz", "club", "bid", "online"];
        let t = det_hash(&[world_seed, 0xAD_71D, u64::from(self.id.0), u64::from(slot)]);
        format!("{label}.{}", tlds[(t % tlds.len() as u64) as usize])
    }

    /// Which rotation slot is active for a given publisher/time bucket —
    /// the domain seen by a visitor. Rotates daily, sharded by publisher,
    /// so crawls observe many domains per network (517 for RevenueHits…).
    pub fn active_slot(&self, world_seed: u64, publisher_word: u64, day: u64) -> u32 {
        if self.code_domain_pool <= 1 {
            return 0;
        }
        (det_hash(&[world_seed, 0x5107, u64::from(self.id.0), publisher_word, day])
            % u64::from(self.code_domain_pool)) as u32
    }

    /// Builds the click URL armed on a publisher page: fetching it (after a
    /// user click) enters this network's redirect chain. The query encodes
    /// the decision coordinates (publisher zone and click ordinal) so that
    /// resolution is a pure function of the URL + client + time.
    pub fn click_url(&self, world_seed: u64, publisher_word: u64, day: u64, click: u32) -> Url {
        let slot = self.active_slot(world_seed, publisher_word, day);
        let host = self.code_domain(world_seed, slot);
        Url::http(
            host,
            format!("{}?z={:x}&c={}", self.url_invariant, publisher_word & 0xffff_ffff, click),
        )
    }

    /// The obfuscated loader snippet a publisher embeds for this network.
    /// The networks ship several obfuscator versions, so the code skeleton,
    /// variable junk and string encodings all differ across publishers —
    /// only the JS invariant variable and the serving path survive (what
    /// the paper's manual analysis, and our miner, extract).
    pub fn loader_snippet(&self, world_seed: u64, publisher_word: u64) -> String {
        let junk = det_hash(&[world_seed, 0x0b_f5ca7e, u64::from(self.id.0), publisher_word]);
        let j1 = junk & 0xffff;
        let j2 = (junk >> 16) & 0xffff;
        let j3 = (junk >> 32) & 0xffff;
        match junk % 3 {
            0 => format!(
                "(function(){{var _0x{j1:x}=['\\x{j2:x}'];var {inv}={{z:0x{j3:x}}};\
                 var s=d.createElement('script');s.src='//'+h{j1}+'{url}';\
                 d.body.appendChild(s);}})();",
                inv = self.js_invariant,
                url = self.url_invariant,
            ),
            1 => format!(
                "!function(e,t){{e[{q}{inv}{q}]=t;var n=e.createElement(\"script\");\
                 n.async=!0,n.src=atob(\"{j2:x}\")+\"{url}?r={j3:x}\",\
                 e.head.appendChild(n)}}(document,{{zid:{j1}}});",
                q = '\'',
                inv = self.js_invariant,
                url = self.url_invariant,
            ),
            _ => format!(
                "var {inv};(()=>{{let k_{j1:x}=[{j2},{j3}];{inv}=k_{j1:x};\
                 import('//'+window.__h{j3:x}+'{url}').catch(()=>{{}})}})();",
                inv = self.js_invariant,
                url = self.url_invariant,
            ),
        }
    }

    /// Whether this network will serve an SE ad to `client` at all
    /// (cloaking and anti-bot gates; §3.2 "Implementation Challenges").
    pub fn serves_se_to(&self, client: &ClientProfile) -> bool {
        if self.cloaks_nonresidential && client.vantage != Vantage::Residential {
            return false;
        }
        if self.checks_webdriver && client.webdriver_visible {
            return false;
        }
        true
    }

    /// Stable word for deterministic hashing.
    pub fn word(&self) -> u64 {
        str_word(&self.name)
    }
}

/// Builds the full roster: 11 seed networks calibrated to Table 3, plus the
/// three discoverable "unknown" networks.
pub fn standard_networks() -> Vec<AdNetworkSpec> {
    struct Row(&'static str, u32, f64, f64, bool, bool, bool, bool);
    //        name       pool  se     vol    cloak  webdrv adblk  adult
    #[rustfmt::skip]
    let seed_rows = [
        Row("RevenueHits", 517, 0.1967, 15635.0, false, false, false, false),
        Row("AdSterra",    578, 0.5062, 15102.0, false, true,  false, false),
        Row("PopCash",       2, 0.6427,  9734.0, false, false, false, false),
        Row("Propeller",     4, 0.4229,  8206.0, true,  true,  false, false),
        Row("PopAds",        3, 0.1874,  4658.0, false, false, false, false),
        Row("Clickadu",     10, 0.3014,  2814.0, true,  false, false, false),
        Row("AdCash",       14, 0.5624,  1698.0, false, false, false, false),
        Row("HilltopAds",   46, 0.0643,  1198.0, false, false, false, false),
        Row("PopMyAds",      1, 0.0863,  1194.0, false, false, false, false),
        Row("AdMaven",      39, 0.2460,   496.0, false, false, false, false),
        Row("Clicksor",      4, 0.0435,   276.0, false, false, true,  false),
    ];
    // The unknown networks deliver 5,488 of 28,923 SE attacks (19 %). Their
    // combined SE volume is tuned via volume × se_rate.
    #[rustfmt::skip]
    let hidden_rows = [
        Row("EroAdvertising", 22, 0.45, 6000.0, false, false, false, true),
        Row("Yllix",           6, 0.35, 4500.0, false, false, false, false),
        Row("AdCenter",        3, 0.40, 3500.0, false, false, false, false),
    ];

    // Hand-picked invariants in the style of the real networks' obfuscated
    // loaders: a URL path fragment and a JS variable name that survive the
    // domain rotation (paper §3.1).
    const INVARIANTS: [(&str, &str); 14] = [
        ("/rhits/serve.php", "_rh_zone_cfg"),
        ("/banners/asd.php", "_astr_slots"),
        ("/pcash/pop.js", "_pc_popunder"),
        ("/prplr/ntfc.php", "_prop_zoneid"),
        ("/pads/watch.php", "_pa_freq_cap"),
        ("/cadu/tag.min.js", "_cku_inline"),
        ("/acash/rotator.php", "_ach_rot_q"),
        ("/htops/dlvr.php", "_ht_delivery"),
        ("/pmads/under.js", "_pma_under"),
        ("/amvn/push.php", "_amv_pushcfg"),
        ("/cksr/show.php", "_csr_showad"),
        ("/eroadv/frame.php", "_ero_frames"),
        ("/ylx/go.php", "_ylx_gateway"),
        ("/adctr/route.php", "_actr_route"),
    ];

    // The high-volume networks resell inventory through exchanges.
    const EXCHANGE_USERS: [&str; 3] = ["AdSterra", "RevenueHits", "AdCash"];

    let mut out = Vec::new();
    for (i, r) in seed_rows.iter().chain(hidden_rows.iter()).enumerate() {
        let seed_listed = i < seed_rows.len();
        out.push(AdNetworkSpec {
            id: AdNetworkId(i as u16),
            name: r.0.to_string(),
            seed_listed,
            code_domain_pool: r.1,
            url_invariant: INVARIANTS[i].0.to_string(),
            js_invariant: INVARIANTS[i].1.to_string(),
            se_rate: r.2,
            volume_weight: r.3,
            cloaks_nonresidential: r.4,
            checks_webdriver: r.5,
            blocked_by_adblock: r.6,
            adult_focused: r.7,
            uses_exchange: EXCHANGE_USERS.contains(&r.0),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UaProfile;

    #[test]
    fn roster_has_eleven_seed_and_three_hidden() {
        let nets = standard_networks();
        assert_eq!(nets.len(), 14);
        assert_eq!(nets.iter().filter(|n| n.seed_listed).count(), 11);
        assert_eq!(nets.iter().filter(|n| !n.seed_listed).count(), 3);
    }

    #[test]
    fn invariants_are_unique() {
        use std::collections::HashSet;
        let nets = standard_networks();
        let urls: HashSet<_> = nets.iter().map(|n| n.url_invariant.clone()).collect();
        let js: HashSet<_> = nets.iter().map(|n| n.js_invariant.clone()).collect();
        assert_eq!(urls.len(), nets.len(), "url invariants collide");
        assert_eq!(js.len(), nets.len(), "js invariants collide");
    }

    #[test]
    fn only_clicksor_is_adblocked() {
        let nets = standard_networks();
        let blocked: Vec<_> =
            nets.iter().filter(|n| n.blocked_by_adblock).map(|n| n.name.as_str()).collect();
        assert_eq!(blocked, vec!["Clicksor"]);
    }

    #[test]
    fn cloakers_are_propeller_and_clickadu() {
        let nets = standard_networks();
        let cloakers: Vec<_> = nets
            .iter()
            .filter(|n| n.cloaks_nonresidential)
            .map(|n| n.name.as_str())
            .collect();
        assert_eq!(cloakers, vec!["Propeller", "Clickadu"]);
    }

    #[test]
    fn cloaking_gates_se_serving() {
        let nets = standard_networks();
        let prop = nets.iter().find(|n| n.name == "Propeller").unwrap();
        let resi = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential);
        let inst = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Institutional);
        let tor = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::TorExit);
        assert!(prop.serves_se_to(&resi));
        assert!(!prop.serves_se_to(&inst));
        assert!(!prop.serves_se_to(&tor));
    }

    #[test]
    fn webdriver_check_gates_se_serving() {
        let nets = standard_networks();
        let adsterra = nets.iter().find(|n| n.name == "AdSterra").unwrap();
        let stealthy = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential);
        let naive = ClientProfile::naive(UaProfile::ChromeMac, Vantage::Residential);
        assert!(adsterra.serves_se_to(&stealthy));
        assert!(!adsterra.serves_se_to(&naive));
        // Networks without the check don't care.
        let pc = nets.iter().find(|n| n.name == "PopCash").unwrap();
        assert!(pc.serves_se_to(&naive));
    }

    #[test]
    fn code_domains_rotate_within_pool() {
        let nets = standard_networks();
        let rh = nets.iter().find(|n| n.name == "RevenueHits").unwrap();
        let mut seen = std::collections::HashSet::new();
        for pubw in 0..200u64 {
            for day in 0..7 {
                seen.insert(rh.active_slot(1, pubw, day));
            }
        }
        assert!(seen.len() > 300, "pool barely used: {}", seen.len());
        assert!(seen.iter().all(|&s| s < rh.code_domain_pool));
        // Single-domain network always slot 0.
        let pma = nets.iter().find(|n| n.name == "PopMyAds").unwrap();
        assert_eq!(pma.active_slot(1, 99, 3), 0);
    }

    #[test]
    fn click_url_carries_invariant() {
        let nets = standard_networks();
        let n = &nets[0];
        let u = n.click_url(1, 42, 0, 2);
        assert!(u.contains(&n.url_invariant), "{u}");
        assert!(u.query.contains("c=2"));
    }

    #[test]
    fn loader_snippet_contains_js_invariant() {
        let nets = standard_networks();
        let n = nets.iter().find(|n| n.name == "PopAds").unwrap();
        let s = n.loader_snippet(1, 7);
        assert!(s.contains(&n.js_invariant));
        assert!(s.contains(&n.url_invariant));
        // Junk differs per publisher; invariant does not.
        let s2 = n.loader_snippet(1, 8);
        assert_ne!(s, s2);
        assert!(s2.contains(&n.js_invariant));
    }

    #[test]
    fn code_domains_deterministic_and_distinct() {
        let nets = standard_networks();
        let n = &nets[1];
        assert_eq!(n.code_domain(1, 5), n.code_domain(1, 5));
        assert_ne!(n.code_domain(1, 5), n.code_domain(1, 6));
    }
}
impl_json_newtype!(AdNetworkId);
impl_json_struct!(AdNetworkSpec {
    id,
    name,
    seed_listed,
    code_domain_pool,
    url_invariant,
    js_invariant,
    se_rate,
    volume_weight,
    cloaks_nonresidential,
    checks_webdriver,
    blocked_by_adblock,
    adult_focused,
    uses_exchange,
});
