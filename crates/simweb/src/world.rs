//! The generated web ecosystem and its hosting logic.
//!
//! [`World::generate`] builds the full cast — ad networks, campaigns,
//! publishers, benign advertisers, clustering confounders — from a single
//! seed. [`World::fetch`] then resolves any URL for a given client profile
//! and simulated time, emitting exactly one hop (page or redirect) per
//! call. Responses are pure functions of `(seed, url, client, time)`.

use std::collections::HashMap;

use seacma_util::{impl_json_enum, impl_json_struct};

use crate::adnet::{standard_networks, AdNetworkId, AdNetworkSpec};
use crate::campaign::{CampaignId, SeCampaign, SeCategory};
use crate::client::{ClientProfile, UaProfile};
use crate::det::{det_bool, det_f64, det_hash, det_range, det_weighted, str_word};
use crate::host::{HostResponse, LiteResponse, RedirectKind};
use crate::names::{common_domain, gibberish_label, throwaway_domain};
use crate::page::{ClickAction, Element, ElementKind, Page};
use crate::payload::FilePayload;
use crate::publisher::{PublisherId, PublisherSite, SiteCategory};
use crate::time::SimTime;
use crate::url::Url;
use crate::visual::VisualTemplate;

/// Parameters of world generation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed; one seed ⇒ byte-identical world and measurements.
    pub seed: u64,
    /// Number of publisher sites that embed at least one *seed-listed* ad
    /// network (the PublicWWW-reversible pool; paper: 93,427).
    pub n_publishers: u32,
    /// Additional publishers that embed only hidden networks (discovered
    /// later via the new-ad-network loop; paper: 8,981).
    pub n_hidden_only_publishers: u32,
    /// Number of benign advertiser sites.
    pub n_advertisers: u32,
    /// Multiplier on the paper's per-category campaign counts (1.0 ⇒ 108
    /// campaigns).
    pub campaign_scale: f64,
    /// Probability that a benign ad click lands on a clustering confounder
    /// (parked page, stock-image adult lure, URL-shortener interstitial).
    pub confounder_rate: f64,
    /// Probability that a landing-page load fails blank (the paper's one
    /// spurious cluster).
    pub error_rate: f64,
    /// Fraction of publishers whose ad code is gone by crawl time (stale
    /// search-index entries; drives the visited-vs-productive gap).
    pub stale_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EAC_A201,
            n_publishers: 8000,
            n_hidden_only_publishers: 800,
            n_advertisers: 400,
            campaign_scale: 1.0,
            confounder_rate: 0.08,
            error_rate: 0.0015,
            stale_fraction: 0.35,
        }
    }
}

/// A clustering confounder hosted on many unrelated domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Confounder {
    Parked { provider: u16 },
    StockAdult { image: u16 },
    Shortener { service: u16 },
}

/// Number of distinct parking-provider layouts (the paper found 11 parked
/// clusters).
pub const PARKED_PROVIDERS: u16 = 11;
/// Number of stock adult images (6 clusters in the paper).
pub const STOCK_IMAGES: u16 = 6;
/// Number of shortener services × layout variants (4 clusters).
pub const SHORTENER_SERVICES: u16 = 4;

/// The generated ecosystem.
///
/// ```
/// use seacma_simweb::{ClientProfile, UaProfile, Vantage, SimTime, World, WorldConfig};
///
/// let world = World::generate(WorldConfig {
///     n_publishers: 50,
///     n_hidden_only_publishers: 5,
///     n_advertisers: 10,
///     ..Default::default()
/// });
/// let client = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential);
/// let publisher = world.publishers().iter().find(|p| !p.stale).unwrap();
/// let page = world
///     .fetch(&publisher.url(), &client, SimTime::EPOCH)
///     .page()
///     .expect("publishers serve pages")
///     .clone();
/// assert!(!page.ad_click_chain.is_empty(), "ad listeners are armed");
/// ```
pub struct World {
    config: WorldConfig,
    networks: Vec<AdNetworkSpec>,
    campaigns: Vec<SeCampaign>,
    publishers: Vec<PublisherSite>,
    advertiser_domains: Vec<String>,
    advertiser_weights: Vec<f64>,
    pub_by_domain: HashMap<String, PublisherId>,
    net_by_code_domain: HashMap<String, AdNetworkId>,
    campaign_by_tds: HashMap<String, CampaignId>,
    campaign_by_landing: HashMap<String, CampaignId>,
    advertiser_by_domain: HashMap<String, u32>,
    confounder_by_domain: HashMap<String, Confounder>,
    /// Sorted confounder domains for deterministic weighted picks.
    confounder_domains: Vec<String>,
    /// Ad-exchange hosts (syndication hop between network and TDS).
    exchange_domains: Vec<String>,
    /// Per-UA SE inventory columns, indexed by [`UaProfile::index`]:
    /// the campaign indices whose category targets that UA, with their
    /// serving weights in the same order. Precomputed at generation so
    /// the per-click campaign draw borrows two slices instead of
    /// filtering and re-weighting the whole inventory per ad click.
    se_inventory: Vec<(Vec<u32>, Vec<f64>)>,
}

impl World {
    /// Generates a world from the given configuration.
    pub fn generate(config: WorldConfig) -> World {
        let seed = config.seed;
        let networks = standard_networks();

        // --- campaigns -----------------------------------------------------
        let mut campaigns = Vec::new();
        for cat in SeCategory::ALL {
            let count =
                ((f64::from(cat.paper_campaign_count()) * config.campaign_scale).round() as u32)
                    .max(1);
            for k in 0..count {
                let id = CampaignId(campaigns.len() as u32);
                let cid = u64::from(id.0);
                let milkable = det_f64(&[seed, 0x317B, cid]) < cat.milkable_fraction();
                let tds_domain = milkable.then(|| {
                    // TDS domains live on .info/.club style cheap TLDs but
                    // persist for the whole measurement.
                    throwaway_domain(&[seed, 0x7D5_D0, cid])
                });
                let landing_path = format!(
                    "/{}/idx.php",
                    gibberish_label(&[seed, 0x1A_7D1F, cid], 2, 3)
                );
                campaigns.push(SeCampaign {
                    id,
                    category: cat,
                    skin: k as u16,
                    family: 1000 + cid,
                    tds_domain,
                    tds_path: format!("/{}", gibberish_label(&[seed, 0x7D5_A7, cid], 1, 2)),
                    landing_path,
                    weight: 0.5 + det_f64(&[seed, 0x3E16, cid]),
                });
            }
        }

        // --- publishers ----------------------------------------------------
        let cat_weights: Vec<f64> = SiteCategory::ALL.iter().map(|c| c.weight()).collect();
        let seed_ids: Vec<AdNetworkId> =
            networks.iter().filter(|n| n.seed_listed).map(|n| n.id).collect();
        let seed_vols: Vec<f64> =
            networks.iter().filter(|n| n.seed_listed).map(|n| n.volume_weight).collect();
        let hidden_ids: Vec<AdNetworkId> =
            networks.iter().filter(|n| !n.seed_listed).map(|n| n.id).collect();

        let total_pubs = config.n_publishers + config.n_hidden_only_publishers;
        let mut publishers = Vec::with_capacity(total_pubs as usize);
        let mut pub_by_domain = HashMap::with_capacity(total_pubs as usize);
        for i in 0..total_pubs {
            let pid = u64::from(i);
            // Retry on name collision: domains must be unique.
            let mut attempt = 0u64;
            let domain = loop {
                let d = common_domain(&[seed, 0x9B_B1, pid, attempt]);
                if !pub_by_domain.contains_key(&d) {
                    break d;
                }
                attempt += 1;
            };
            let category =
                SiteCategory::ALL[det_weighted(&[seed, 0xCA7, pid], &cat_weights)];
            // Paper §4.3: 52 of 11,341 SEACMA publishers in the top 10,000,
            // 4 in the top 1,000.
            let rank = if det_f64(&[seed, 0x9A_2A, pid]) < 0.006 {
                Some(1 + det_range(&[seed, 0x9A_2B, pid], 10_000) as u32)
            } else {
                None
            };
            let hidden_only = i >= config.n_publishers;
            let mut nets = Vec::new();
            if hidden_only {
                nets.push(pick_hidden(&networks, &hidden_ids, category, &[seed, 0x41D, pid]));
            } else {
                // 1–3 seed networks, volume-weighted; greedy sites stack
                // several (paper §3.2).
                let n_nets = 1 + det_weighted(&[seed, 0x92E, pid], &[0.55, 0.33, 0.12]);
                for j in 0..n_nets {
                    let idx =
                        det_weighted(&[seed, 0x92F, pid, j as u64], &seed_vols);
                    let id = seed_ids[idx];
                    if !nets.contains(&id) {
                        nets.push(id);
                    }
                }
                // Some seed-pool publishers additionally run a hidden
                // network — the source of "unknown" attributions.
                if det_f64(&[seed, 0x930, pid]) < 0.30 {
                    let h = pick_hidden(&networks, &hidden_ids, category, &[seed, 0x931, pid]);
                    if !nets.contains(&h) {
                        nets.push(h);
                    }
                }
            }
            let site = PublisherSite {
                id: PublisherId(i),
                domain: domain.clone(),
                category,
                rank,
                networks: nets,
                stale: det_f64(&[seed, 0x57A1E, pid]) < config.stale_fraction,
            };
            pub_by_domain.insert(domain, site.id);
            publishers.push(site);
        }

        // --- benign advertisers ---------------------------------------------
        let mut advertiser_domains = Vec::with_capacity(config.n_advertisers as usize);
        let mut advertiser_by_domain = HashMap::new();
        let mut advertiser_weights = Vec::with_capacity(config.n_advertisers as usize);
        for i in 0..config.n_advertisers {
            let mut attempt = 0u64;
            let domain = loop {
                let d = common_domain(&[seed, 0xAD_BE, u64::from(i), attempt]);
                if !advertiser_by_domain.contains_key(&d) && !pub_by_domain.contains_key(&d) {
                    break d;
                }
                attempt += 1;
            };
            advertiser_by_domain.insert(domain.clone(), i);
            advertiser_domains.push(domain);
            // Zipf-ish: a few advertisers absorb most benign clicks, which
            // is what makes the worst-case ethics cost (~1,209 hits on one
            // domain) emerge.
            advertiser_weights.push(1.0 / f64::from(i + 1).powf(0.9));
        }

        // --- ad network code domains ----------------------------------------
        let mut net_by_code_domain = HashMap::new();
        for n in &networks {
            for slot in 0..n.code_domain_pool {
                net_by_code_domain.insert(n.code_domain(seed, slot), n.id);
            }
        }

        // --- campaign lookup tables ------------------------------------------
        let mut campaign_by_tds = HashMap::new();
        let mut campaign_by_landing = HashMap::new();
        for c in &campaigns {
            if let Some(d) = &c.tds_domain {
                campaign_by_tds.insert(d.clone(), c.id);
            }
            let prev = campaign_by_landing.insert(c.landing_path.clone(), c.id);
            assert!(prev.is_none(), "landing-path collision between campaigns");
        }

        // --- confounder domains ----------------------------------------------
        let mut confounder_by_domain = HashMap::new();
        for i in 0..260u64 {
            let d = throwaway_domain(&[seed, 0x9A_12D, i]);
            confounder_by_domain
                .insert(d, Confounder::Parked { provider: (i % u64::from(PARKED_PROVIDERS)) as u16 });
        }
        for i in 0..60u64 {
            let d = throwaway_domain(&[seed, 0x57_0C4, i]);
            confounder_by_domain
                .insert(d, Confounder::StockAdult { image: (i % u64::from(STOCK_IMAGES)) as u16 });
        }
        for i in 0..48u64 {
            let d = throwaway_domain(&[seed, 0x5407, i]);
            confounder_by_domain
                .insert(d, Confounder::Shortener { service: (i % u64::from(SHORTENER_SERVICES)) as u16 });
        }

        let mut confounder_domains: Vec<String> = confounder_by_domain.keys().cloned().collect();
        confounder_domains.sort();

        // --- ad exchanges ------------------------------------------------------
        let exchange_domains: Vec<String> = (0..6u64)
            .map(|i| {
                format!("{}.com", gibberish_label(&[seed, 0xE8_C4A, i], 2, 3))
            })
            .collect();

        // --- per-UA SE inventory columns ---------------------------------------
        // Exactly the sequence `pick_campaign` used to build per click:
        // campaigns filtered by category targeting in inventory order,
        // weighted by traffic share × weight / scaled category size. The
        // weights are computed once here with the same expression, so the
        // weighted draw consumes bit-identical `f64`s.
        let se_inventory: Vec<(Vec<u32>, Vec<f64>)> = UaProfile::ALL
            .iter()
            .map(|&ua| {
                let idx: Vec<u32> = campaigns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.category.targets(ua))
                    .map(|(i, _)| i as u32)
                    .collect();
                let weights: Vec<f64> = idx
                    .iter()
                    .map(|&i| {
                        let c = &campaigns[i as usize];
                        let cat_n =
                            c.category.paper_campaign_count() as f64 * config.campaign_scale;
                        c.category.traffic_share() * c.weight / cat_n.max(1.0)
                    })
                    .collect();
                (idx, weights)
            })
            .collect();
        debug_assert!(
            UaProfile::ALL.iter().enumerate().all(|(i, ua)| ua.index() as usize == i),
            "inventory columns are indexed by UaProfile::index"
        );

        World {
            config,
            networks,
            campaigns,
            publishers,
            advertiser_domains,
            advertiser_weights,
            pub_by_domain,
            net_by_code_domain,
            campaign_by_tds,
            campaign_by_landing,
            advertiser_by_domain,
            confounder_by_domain,
            confounder_domains,
            exchange_domains,
            se_inventory,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// All ad networks (seed-listed first).
    pub fn networks(&self) -> &[AdNetworkSpec] {
        &self.networks
    }

    /// All SE campaigns (ground truth).
    pub fn campaigns(&self) -> &[SeCampaign] {
        &self.campaigns
    }

    /// All publisher sites.
    pub fn publishers(&self) -> &[PublisherSite] {
        &self.publishers
    }

    /// Looks up a publisher by domain.
    pub fn publisher_by_domain(&self, domain: &str) -> Option<&PublisherSite> {
        self.pub_by_domain.get(domain).map(|id| &self.publishers[id.0 as usize])
    }

    /// Looks up a campaign by id.
    pub fn campaign(&self, id: CampaignId) -> &SeCampaign {
        &self.campaigns[id.0 as usize]
    }

    /// The ad network owning a code domain, if any (ground truth the
    /// attribution step must recover from URL patterns alone).
    pub fn network_of_code_domain(&self, domain: &str) -> Option<AdNetworkId> {
        self.net_by_code_domain.get(domain).copied()
    }

    /// Ground truth: the campaign whose *current or past* attack domain is
    /// `domain` near time `t`, if any. Used only for evaluation, never by
    /// the pipeline itself.
    pub fn campaign_of_attack_domain(&self, domain: &str, t: SimTime) -> Option<CampaignId> {
        for c in &self.campaigns {
            let e_now = c.epoch(t);
            let lo = e_now.saturating_sub(SeCampaign::PARKED_GRACE_EPOCHS);
            for e in lo..=e_now {
                for shard in 0..c.category.parallel_shards() {
                    if c.attack_domain_at_epoch(self.seed(), e, shard) == domain {
                        return Some(c.id);
                    }
                }
            }
        }
        None
    }

    /// The publisher page source (markup + ad loader snippets) as indexed
    /// by the PublicWWW-style search engine. Time-independent.
    pub fn publisher_source(&self, id: PublisherId) -> String {
        let p = &self.publishers[id.0 as usize];
        let mut s = format!("<html><title>{}</title>\n", p.domain);
        for nid in &p.networks {
            let n = &self.networks[nid.0 as usize];
            s.push_str(&n.loader_snippet(self.seed(), p.word()));
            s.push('\n');
        }
        s.push_str("</html>\n");
        s
    }

    /// Resolves one hop of `url` for `client` at time `t`.
    pub fn fetch(&self, url: &Url, client: &ClientProfile, t: SimTime) -> HostResponse {
        // Transient blank loads (spurious-cluster source) can hit any
        // document fetch.
        let uw = url.det_word();
        if det_bool(&[self.seed(), 0xE44, uw, t.minutes() / 30], self.config.error_rate) {
            return HostResponse::Page(Box::new(Page::bare(
                url.clone(),
                "",
                VisualTemplate::LoadError,
            )));
        }

        if let Some(&pid) = self.pub_by_domain.get(&url.host) {
            return self.serve_publisher(pid, url, client, t);
        }
        if let Some(&nid) = self.net_by_code_domain.get(&url.host) {
            return self.serve_ad_click(nid, url, client, t);
        }
        if let Some(&cid) = self.campaign_by_tds.get(&url.host) {
            return self.serve_tds(cid, url, client, t);
        }
        if let Some(&cid) = self.campaign_by_landing.get(&url.path) {
            return self.serve_attack(cid, url, client, t);
        }
        if self.exchange_domains.contains(&url.host) {
            return self.serve_exchange(url, client, t);
        }
        if let Some(&adv) = self.advertiser_by_domain.get(&url.host) {
            return self.serve_advertiser(adv, url);
        }
        if let Some(&conf) = self.confounder_by_domain.get(&url.host) {
            return self.serve_confounder(conf, url);
        }
        HostResponse::NxDomain
    }

    /// Resolves one hop of `url` like [`fetch`](Self::fetch) with the
    /// document body elided: the same routing, the same per-document error
    /// draw, the same redirect targets — but handlers that would
    /// synthesize a page return [`LiteResponse::Doc`] without building it.
    /// This is the `HEAD`-request view of the ecosystem; the milker's
    /// no-op re-visits (~98 % of its sessions) only need it to learn the
    /// landing domain. `LiteResponse::of(&fetch(…)) == fetch_lite(…)` for
    /// every URL is pinned by a property test below.
    pub fn fetch_lite(&self, url: &Url, client: &ClientProfile, t: SimTime) -> LiteResponse {
        self.fetch_lite_ttl(url, client, t).0
    }

    /// [`fetch_lite`](Self::fetch_lite) plus a validity horizon: the
    /// returned classification (and redirect target, if any) is guaranteed
    /// to be what `fetch_lite` would return for **every** `t' ∈ [t, h)`.
    /// The simulated hosting layer genuinely knows how long its responses
    /// stay valid — the error draw rotates on 30-minute buckets, ad
    /// inventory on 2-hour buckets, attack domains on campaign epochs —
    /// so this is the ecosystem's honest `Cache-Control` header. Repeat
    /// probers (the milker re-visits each source ~1,300 times) can skip
    /// re-resolution inside the window; the horizon's soundness is pinned
    /// by a property test.
    pub fn fetch_lite_ttl(
        &self,
        url: &Url,
        client: &ClientProfile,
        t: SimTime,
    ) -> (LiteResponse, SimTime) {
        const FOREVER: SimTime = SimTime(u64::MAX);
        // The transient-error draw re-rolls every 30 minutes; with a zero
        // error rate it never fires and constrains nothing.
        let err_h = if self.config.error_rate > 0.0 {
            SimTime((t.minutes() / 30 + 1) * 30)
        } else {
            FOREVER
        };
        if self.transient_error(url, t) {
            return (LiteResponse::Doc, err_h); // transient blank load
        }
        let (resp, stable_h) = self.fetch_lite_stable(url, client, t);
        (resp, err_h.min(stable_h))
    }

    /// Whether the hosting layer's transient-failure draw fires for a
    /// document fetch of `url` at `t` — the blank-load branch every
    /// [`fetch`](Self::fetch) runs first. Exposed so repeat probers can
    /// re-check only this draw (it re-rolls on 30-minute buckets) against
    /// a memoized redirect chain whose stable classification
    /// ([`fetch_lite_stable`](Self::fetch_lite_stable)) is still valid.
    pub fn transient_error(&self, url: &Url, t: SimTime) -> bool {
        det_bool(
            &[self.seed(), 0xE44, url.det_word(), t.minutes() / 30],
            self.config.error_rate,
        )
    }

    /// [`fetch_lite`](Self::fetch_lite) **as if the transient-error draw
    /// never fired**, plus the validity horizon of that error-free view:
    /// classification and redirect target are guaranteed unchanged for
    /// every `t' ∈ [t, h)` at which no transient error fires. Combined
    /// with [`transient_error`](Self::transient_error) this factors
    /// `fetch_lite_ttl` into its long-lived part (ad-inventory buckets,
    /// campaign epochs — hours) and its fast-rolling part (the 30-minute
    /// error draw), so a prober can memoize the chain on the former and
    /// re-roll only the latter.
    pub fn fetch_lite_stable(
        &self,
        url: &Url,
        client: &ClientProfile,
        t: SimTime,
    ) -> (LiteResponse, SimTime) {
        const FOREVER: SimTime = SimTime(u64::MAX);
        let (resp, selector_h) = if self.pub_by_domain.contains_key(&url.host) {
            (LiteResponse::Doc, FOREVER)
        } else if let Some(&nid) = self.net_by_code_domain.get(&url.host) {
            // Ad clicks only ever redirect or refuse; no body to elide.
            // Inventory rotates on 2-hour buckets (`t/120` in the serving
            // draws), so the redirect choice holds until the next one.
            let bucket_h = SimTime((t.minutes() / 120 + 1) * 120);
            (LiteResponse::of(&self.serve_ad_click(nid, url, client, t)), bucket_h)
        } else if let Some(&cid) = self.campaign_by_tds.get(&url.host) {
            (LiteResponse::of(&self.serve_tds(cid, url, client, t)), FOREVER)
        } else if let Some(&cid) = self.campaign_by_landing.get(&url.path) {
            // Live or parked epochs both serve a document (attack page or
            // registrar parking page); only a fully expired domain NXes.
            // Either way the verdict can only flip at an epoch boundary.
            let c = self.campaign(cid);
            let resp = match Self::attack_epoch_match(c, self.seed(), &url.host, t) {
                Some(_) => LiteResponse::Doc,
                None => LiteResponse::NxDomain,
            };
            (resp, c.epoch_start(c.epoch(t) + 1))
        } else if self.exchange_domains.contains(&url.host) {
            (LiteResponse::of(&self.serve_exchange(url, client, t)), FOREVER)
        } else if self.advertiser_by_domain.contains_key(&url.host)
            || self.confounder_by_domain.contains_key(&url.host)
        {
            (LiteResponse::Doc, FOREVER)
        } else {
            (LiteResponse::NxDomain, FOREVER)
        };

        // A redirect into a campaign's rotating landing path (from the
        // TDS, an exchange bid response or a direct ad click) is minted
        // fresh each epoch — it expires at the campaign's next rotation.
        let target_h = match &resp {
            LiteResponse::Redirect { to, .. } => match self.campaign_by_landing.get(&to.path) {
                Some(&cid) => {
                    let c = self.campaign(cid);
                    c.epoch_start(c.epoch(t) + 1)
                }
                None => FOREVER,
            },
            _ => FOREVER,
        };
        (resp, selector_h.min(target_h))
    }

    /// Conservative content-validity horizon for a **direct publisher
    /// load**: when `url`'s host is a publisher domain, returns `h` such
    /// that `fetch(url, client, t')` is bit-identical to
    /// `fetch(url, client, t)` for every client and every `t' ∈ [t, h)`.
    /// Publisher hosts always answer a fetch with a document (the content
    /// page, or the transient blank page when the error draw fires), so
    /// that one response determines an entire zero-hop page load —
    /// repeat visitors (the crawler reloads each publisher between ad
    /// interactions) can replay the previous load inside the window.
    ///
    /// Publisher serving varies with time only through the ad networks'
    /// daily slot rotation (`t.days()` in the handler) and the 30-minute
    /// transient-error re-roll in [`fetch`](Self::fetch); day boundaries
    /// are themselves 30-minute boundaries, so the next 30-minute
    /// boundary bounds both. Non-publisher URLs return `None` — no
    /// validity is claimed for them. Soundness is pinned by a property
    /// test alongside the `fetch_lite_ttl` horizon's.
    pub fn publisher_content_horizon(&self, url: &Url, t: SimTime) -> Option<SimTime> {
        self.pub_by_domain
            .contains_key(&url.host)
            .then(|| SimTime((t.minutes() / 30 + 1) * 30))
    }

    /// The most recent epoch within the parking grace window in which
    /// `host` was one of `c`'s attack domains, if any.
    fn attack_epoch_match(c: &SeCampaign, seed: u64, host: &str, t: SimTime) -> Option<u64> {
        let e_now = c.epoch(t);
        let lo = e_now.saturating_sub(SeCampaign::PARKED_GRACE_EPOCHS);
        for e in (lo..=e_now).rev() {
            for shard in 0..c.category.parallel_shards() {
                if c.attack_domain_at_epoch(seed, e, shard) == host {
                    return Some(e);
                }
            }
        }
        None
    }

    // --- hosting handlers ----------------------------------------------------

    fn serve_publisher(
        &self,
        pid: PublisherId,
        url: &Url,
        _client: &ClientProfile,
        t: SimTime,
    ) -> HostResponse {
        let p = &self.publishers[pid.0 as usize];
        let seed = self.seed();
        let pw = p.word();
        // Stale entries in the search index: the live page carries no ad
        // code any more.
        let networks: &[crate::adnet::AdNetworkId] = if p.stale { &[] } else { &p.networks };

        // Content elements: a grid of thumbnails/iframes of varying size.
        let n_els = 4 + det_range(&[seed, 0xE15, pw], 6) as usize;
        let mut elements = Vec::with_capacity(n_els + 1);
        for j in 0..n_els {
            let h = det_hash(&[seed, 0xE16, pw, j as u64]);
            let kind = if h % 4 == 0 { ElementKind::Iframe } else { ElementKind::Image };
            elements.push(Element {
                kind,
                width: 120 + (h >> 8) as u32 % 600,
                height: 90 + (h >> 24) as u32 % 400,
                action: ClickAction::None,
            });
        }
        // The transparent full-page overlay div injected by pop-under
        // networks (Fig. 1 of the paper): present iff the site runs at
        // least one network, rendered as a page-sized element.
        if !networks.is_empty() {
            elements.push(Element {
                kind: ElementKind::Div,
                width: 1366,
                height: 768,
                action: ClickAction::None,
            });
        }

        // Ad listeners: click k triggers network k mod n. Greedy sites thus
        // serve several networks' pop-ups in sequence (§3.2).
        let mut chain = Vec::new();
        for k in 0..(networks.len() * 2) {
            let n = &self.networks[networks[k % networks.len()].0 as usize];
            chain.push(ClickAction::OpenTab(n.click_url(seed, pw, t.days(), k as u32)));
        }

        let scripts = networks
            .iter()
            .map(|nid| {
                let n = &self.networks[nid.0 as usize];
                let slot = n.active_slot(seed, pw, t.days());
                crate::page::Script {
                    src: Url::http(n.code_domain(seed, slot), format!("{}.js", n.url_invariant)),
                    source: n.loader_snippet(seed, pw),
                }
            })
            .collect();

        let mut page = Page::bare(
            url.clone(),
            p.domain.clone(),
            VisualTemplate::PublisherHome { style: pw },
        );
        page.elements = elements;
        page.scripts = scripts;
        page.ad_click_chain = chain;
        HostResponse::Page(Box::new(page))
    }

    fn serve_ad_click(
        &self,
        nid: AdNetworkId,
        url: &Url,
        client: &ClientProfile,
        t: SimTime,
    ) -> HostResponse {
        let n = &self.networks[nid.0 as usize];
        // Script fetches (the loader itself) just serve JS — modelled as a
        // refusal to navigate (no document).
        if url.query.contains("t=js") {
            return HostResponse::Refused;
        }
        let seed = self.seed();
        let qw = str_word(&url.query);
        // Ad rotation: the same click URL serves different inventory over
        // time (2-hour buckets). This is why upstream TDS URLs milk
        // reliably while re-querying an ad network's click URL does not.
        // Every draw below salts this fixed-width base — stack arrays,
        // since this runs once per simulated ad click.
        let [cw0, cw1, cw2] = client.det_words();
        let words = [seed, 0xC11C_0, u64::from(nid.0), qw, t.minutes() / 120, cw0, cw1, cw2];

        let serves_se = n.serves_se_to(client) && det_bool(&words, n.se_rate);
        if serves_se {
            if let Some(c) = self.pick_campaign(n, client, &words) {
                let shard =
                    det_range(&[seed, 0x54A2D, u64::from(c.id.0), qw], u64::from(c.category.parallel_shards()))
                        as u8;
                if n.uses_exchange {
                    // Syndication: one more hop through an exchange whose
                    // bid-response URL encodes the winning creative.
                    let xd = &self.exchange_domains
                        [det_range(&[seed, 0xE8_C4B, qw], self.exchange_domains.len() as u64) as usize];
                    let b = u64::from(c.id.0) ^ (seed & 0xFFFF);
                    return HostResponse::Redirect {
                        to: Url::http(xd.clone(), format!("/xch/rtb?b={b:x}&s={shard}")),
                        kind: RedirectKind::Http302,
                    };
                }
                return match c.tds_url(shard) {
                    Some(tds) => HostResponse::Redirect { to: tds, kind: RedirectKind::Http302 },
                    None => HostResponse::Redirect {
                        to: c.attack_url(seed, t, shard),
                        kind: RedirectKind::JsLocation,
                    },
                };
            }
        }
        // Benign path: confounder or advertiser. Each decision below draws
        // from a freshly-salted hash — reusing the branch-selection hash
        // for the pick would confine picks to the slice of hash space
        // that survived the branch.
        let [w0, w1, w2, w3, w4, w5, w6, w7] = words;
        let benign = [w0, w1, w2, w3, w4, w5, w6, w7, 0xBE19];
        if det_bool(&benign, self.config.confounder_rate) {
            let pick = [w0, w1, w2, w3, w4, w5, w6, w7, 0xBE19, 0xC0F];
            let d = &self.confounder_domains
                [det_range(&pick, self.confounder_domains.len() as u64) as usize];
            return HostResponse::Redirect {
                to: Url::http(d.clone(), "/"),
                kind: RedirectKind::Http302,
            };
        }
        let pick = [w0, w1, w2, w3, w4, w5, w6, w7, 0xBE19, 0xADF];
        let adv = det_weighted(&pick, &self.advertiser_weights);
        HostResponse::Redirect {
            to: Url::http(self.advertiser_domains[adv].clone(), "/offer"),
            kind: RedirectKind::Http302,
        }
    }

    /// Picks a campaign compatible with the client, weighted by category
    /// traffic share × campaign weight. Returns `None` when no campaign
    /// targets this platform (e.g. nothing may remain for some desktop
    /// draws in a lottery-heavy slice).
    ///
    /// The eligibility filter and weight column depend only on the UA, so
    /// both are precomputed per UA at generation ([`World::generate`]) and
    /// borrowed here — the per-click cost is one salted hash and a
    /// weighted scan, no allocation.
    fn pick_campaign(
        &self,
        n: &AdNetworkSpec,
        client: &ClientProfile,
        words: &[u64; 8],
    ) -> Option<&SeCampaign> {
        let _ = n; // all networks draw from the global campaign inventory
        let (eligible, weights) = &self.se_inventory[client.ua.index() as usize];
        if eligible.is_empty() {
            return None;
        }
        let [w0, w1, w2, w3, w4, w5, w6, w7] = *words;
        let w = [w0, w1, w2, w3, w4, w5, w6, w7, 0x91C4];
        Some(&self.campaigns[eligible[det_weighted(&w, weights)] as usize])
    }

    /// Resolves an exchange bid-response URL: decode the winning campaign
    /// and forward to its TDS (or straight to the attack page).
    fn serve_exchange(&self, url: &Url, _client: &ClientProfile, t: SimTime) -> HostResponse {
        if url.path != "/xch/rtb" {
            return HostResponse::NxDomain;
        }
        let mut cid: Option<u64> = None;
        let mut shard: u8 = 0;
        for kv in url.query.split('&') {
            if let Some(v) = kv.strip_prefix("b=") {
                cid = u64::from_str_radix(v, 16).ok().map(|b| b ^ (self.seed() & 0xFFFF));
            }
            if let Some(v) = kv.strip_prefix("s=") {
                shard = v.parse().unwrap_or(0);
            }
        }
        let Some(cid) = cid else { return HostResponse::NxDomain };
        if cid >= self.campaigns.len() as u64 {
            return HostResponse::NxDomain;
        }
        let c = &self.campaigns[cid as usize];
        let shard = shard % c.category.parallel_shards().max(1);
        match c.tds_url(shard) {
            Some(tds) => HostResponse::Redirect { to: tds, kind: RedirectKind::Http302 },
            None => HostResponse::Redirect {
                to: c.attack_url(self.seed(), t, shard),
                kind: RedirectKind::JsLocation,
            },
        }
    }

    fn serve_tds(
        &self,
        cid: CampaignId,
        url: &Url,
        _client: &ClientProfile,
        t: SimTime,
    ) -> HostResponse {
        let c = self.campaign(cid);
        // TDS paths are stable; an unknown path on the TDS domain 404s.
        if url.path != c.tds_path {
            return HostResponse::NxDomain;
        }
        let shard: u8 = url
            .query
            .split('&')
            .find_map(|kv| kv.strip_prefix("s="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let shard = shard % c.category.parallel_shards().max(1);
        HostResponse::Redirect {
            to: c.attack_url(self.seed(), t, shard),
            kind: RedirectKind::JsSetTimeout,
        }
    }

    fn serve_attack(
        &self,
        cid: CampaignId,
        url: &Url,
        client: &ClientProfile,
        t: SimTime,
    ) -> HostResponse {
        let c = self.campaign(cid);
        let seed = self.seed();
        // Validate the domain against current and recent epochs.
        let e_now = c.epoch(t);
        match Self::attack_epoch_match(c, seed, &url.host, t) {
            Some(e) if e == e_now => HostResponse::Page(Box::new(self.attack_page(c, url, client, t))),
            Some(_) => {
                // Expired epoch: throw-away domain dropped; registrar
                // parking page takes over.
                let provider = (str_word(&url.e2ld()) % u64::from(PARKED_PROVIDERS)) as u16;
                HostResponse::Page(Box::new(Page::bare(
                    url.clone(),
                    "domain parked",
                    VisualTemplate::Parked { provider },
                )))
            }
            None => HostResponse::NxDomain,
        }
    }

    fn attack_page(&self, c: &SeCampaign, url: &Url, client: &ClientProfile, t: SimTime) -> Page {
        let seed = self.seed();
        let mut page = Page::bare(url.clone(), c.category.name(), c.template());
        page.locking = c.category.lock_tactics().to_vec();
        page.notification_prompt = matches!(c.category, SeCategory::ChromeNotifications);
        page.scam_phone = c.scam_phone(seed, t);
        page.survey_gateway = c.survey_gateway(seed, t);
        // Polymorphism granularity: every rotated attack domain serves a
        // freshly-packed binary per platform, but repeat visits to one
        // domain return the same file — so milked-file counts track
        // discovered domains (paper: 9,476 files vs 2,042 new domains
        // across per-UA milking sources).
        let _ = t;
        let payload = c.category.serves_download().then(|| {
            FilePayload::serve(
                c.family,
                c.payload_format(client.ua),
                &[seed, str_word(&url.host), client.ua.index()],
            )
        });
        // One big call-to-action element; interacting with it is what the
        // milker does to elicit downloads / permission grants.
        let action = if let Some(p) = payload {
            page.auto_download = Some(p);
            ClickAction::Download(p)
        } else if page.notification_prompt {
            ClickAction::AllowNotifications
        } else {
            ClickAction::None
        };
        page.elements = vec![Element {
            kind: ElementKind::Button,
            width: 400,
            height: 120,
            action,
        }];
        page
    }

    fn serve_advertiser(&self, adv: u32, url: &Url) -> HostResponse {
        let mut page = Page::bare(
            url.clone(),
            format!("advertiser {adv}"),
            VisualTemplate::BenignLanding { style: det_hash(&[self.seed(), 0xAD_57, u64::from(adv)]) },
        );
        page.elements = vec![Element {
            kind: ElementKind::Image,
            width: 728,
            height: 90,
            action: ClickAction::None,
        }];
        HostResponse::Page(Box::new(page))
    }

    fn serve_confounder(&self, conf: Confounder, url: &Url) -> HostResponse {
        let visual = match conf {
            Confounder::Parked { provider } => VisualTemplate::Parked { provider },
            Confounder::StockAdult { image } => VisualTemplate::StockAdult { image },
            Confounder::Shortener { service } => VisualTemplate::ShortenerFrame { service },
        };
        let mut page = Page::bare(url.clone(), "…", visual);
        if let Confounder::Shortener { .. } = conf {
            // "Skip ad" eventually navigates to an advertiser.
            let adv = det_range(&[self.seed(), 0x5C1B, str_word(&url.host)], self.advertiser_domains.len() as u64)
                as usize;
            page.elements = vec![Element {
                kind: ElementKind::Button,
                width: 160,
                height: 48,
                action: ClickAction::Navigate(Url::http(
                    self.advertiser_domains[adv].clone(),
                    "/offer",
                )),
            }];
        }
        HostResponse::Page(Box::new(page))
    }
}

/// Picks a hidden network appropriate to the publisher's category
/// (Ero Advertising only runs on adult sites).
fn pick_hidden(
    networks: &[AdNetworkSpec],
    hidden_ids: &[AdNetworkId],
    category: SiteCategory,
    words: &[u64],
) -> AdNetworkId {
    let eligible: Vec<AdNetworkId> = hidden_ids
        .iter()
        .copied()
        .filter(|id| {
            let n = &networks[id.0 as usize];
            !n.adult_focused || category.is_adult()
        })
        .collect();
    *crate::det::det_pick(words, &eligible)
}
impl_json_struct!(WorldConfig {
    seed,
    n_publishers,
    n_hidden_only_publishers,
    n_advertisers,
    campaign_scale,
    confounder_rate,
    error_rate,
    stale_fraction,
});
impl_json_enum!(Confounder {
    Parked { provider: u16 },
    StockAdult { image: u16 },
    Shortener { service: u16 },
});
