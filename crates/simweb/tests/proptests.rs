//! Property-based tests over the simulated-web primitives.

use proptest::prelude::*;
use seacma_simweb::det::{det_f64, det_hash, det_range, det_weighted};
use seacma_simweb::{e2ld, SimDuration, SimTime, Url};

fn arb_host() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..4)
        .prop_map(|labels| labels.join("."))
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_.-]{1,8}", 0..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// Url display → parse round-trips.
    #[test]
    fn url_roundtrip(host in arb_host(), path in arb_path(), q in "[a-z0-9=&]{0,12}") {
        let mut p = path;
        if !q.is_empty() {
            p.push('?');
            p.push_str(&q);
        }
        let u = Url::http(host, p);
        let s = u.to_string();
        let back: Url = s.parse().expect("display form must parse");
        prop_assert_eq!(back, u);
    }

    /// e2LD is idempotent and a suffix of the input host.
    #[test]
    fn e2ld_idempotent_and_suffix(host in arb_host()) {
        let a = e2ld(&host);
        prop_assert_eq!(e2ld(&a), a.clone());
        prop_assert!(host.ends_with(&a) || host == a);
    }

    /// Subdomains never change the e2LD of a registrable (≥ 2 label) host.
    #[test]
    fn e2ld_ignores_subdomains(host in arb_host(), sub in "[a-z]{1,6}") {
        prop_assume!(host.contains('.'));
        let base = e2ld(&host);
        prop_assert_eq!(e2ld(&format!("{sub}.{host}")), base);
    }

    /// same_site is reflexive and symmetric.
    #[test]
    fn same_site_symmetry(a in arb_host(), b in arb_host()) {
        prop_assert!(seacma_simweb::domain::same_site(&a, &a));
        prop_assert_eq!(
            seacma_simweb::domain::same_site(&a, &b),
            seacma_simweb::domain::same_site(&b, &a)
        );
    }

    /// det_hash has no accidental word-order collisions on random input.
    #[test]
    fn det_hash_order_sensitive(a: u64, b: u64) {
        prop_assume!(a != b);
        prop_assert_ne!(det_hash(&[a, b]), det_hash(&[b, a]));
    }

    /// det_range always lands in range and det_f64 in [0,1).
    #[test]
    fn det_bounds(words in proptest::collection::vec(any::<u64>(), 1..6), n in 1u64..10_000) {
        prop_assert!(det_range(&words, n) < n);
        let x = det_f64(&words);
        prop_assert!((0.0..1.0).contains(&x));
    }

    /// det_weighted never picks a zero-weight index.
    #[test]
    fn det_weighted_skips_zeros(seed: u64, zero_at in 0usize..4) {
        let mut weights = [1.0f64; 4];
        weights[zero_at] = 0.0;
        for i in 0..50u64 {
            let pick = det_weighted(&[seed, i], &weights);
            prop_assert_ne!(pick, zero_at);
        }
    }

    /// SimTime arithmetic is associative with durations.
    #[test]
    fn time_arithmetic(t in 0u64..1_000_000, a in 0u64..10_000, b in 0u64..10_000) {
        let base = SimTime(t);
        let left = base + SimDuration(a) + SimDuration(b);
        let right = base + (SimDuration(a) + SimDuration(b));
        prop_assert_eq!(left, right);
        prop_assert_eq!((left - base).minutes(), a + b);
    }

    /// Throwaway and common domain generators always emit parseable hosts
    /// whose e2LD equals themselves (single registrable label + TLD).
    #[test]
    fn generated_domains_are_registrable(words in proptest::collection::vec(any::<u64>(), 1..4)) {
        let d1 = seacma_simweb::names::throwaway_domain(&words);
        let d2 = seacma_simweb::names::common_domain(&words);
        for d in [d1, d2] {
            prop_assert_eq!(e2ld(&d), d.clone(), "generator must emit apex domains");
            let u = Url::http(d, "/x");
            prop_assert!(u.to_string().parse::<Url>().is_ok());
        }
    }
}

mod serde_roundtrips {
    use seacma_simweb::{
        visual::VisualTemplate, ClientProfile, Page, SeCategory, UaProfile, Url, Vantage,
    };

    #[test]
    fn page_json_roundtrip() {
        let mut page = Page::bare(
            Url::http("evil.club", "/x/idx.php?k=1"),
            "Technical Support",
            VisualTemplate::TechSupport { skin: 3 },
        );
        page.scam_phone = Some("+1-888-555-0100".into());
        let json = serde_json::to_string(&page).unwrap();
        let back: Page = serde_json::from_str(&json).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn enums_json_roundtrip() {
        for cat in SeCategory::ALL {
            let json = serde_json::to_string(&cat).unwrap();
            assert_eq!(serde_json::from_str::<SeCategory>(&json).unwrap(), cat);
        }
        let c = ClientProfile::stealthy(UaProfile::ChromeAndroid, Vantage::Residential);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ClientProfile>(&json).unwrap(), c);
    }
}
