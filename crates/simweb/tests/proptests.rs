//! Property-based tests over the simulated-web primitives, on the in-tree
//! deterministic harness (`seacma_util::prop`). Each `forall!` case is a
//! pure function of its case index — a failure report names the case,
//! which is a complete reproduction recipe.

use seacma_util::forall;
use seacma_util::prop::{Rng, DIGITS, LOWER, LOWER_DIGITS};

use seacma_simweb::det::{det_f64, det_hash, det_range, det_weighted};
use seacma_simweb::{e2ld, SimDuration, SimTime, Url};

/// `[a-z][a-z0-9]{0,8}` labels, 1–3 of them, dot-joined.
fn gen_host(rng: &mut Rng) -> String {
    let labels = rng.range(1, 4);
    (0..labels)
        .map(|_| {
            let mut label = rng.string_of(LOWER, 1, 1);
            label.push_str(&rng.string_of(LOWER_DIGITS, 0, 8));
            label
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// `/` plus 0–3 `[a-zA-Z0-9_.-]{1,8}` segments.
fn gen_path(rng: &mut Rng) -> String {
    const SEG: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    let segs = rng.vec_of(0, 3, |r| r.string_of(SEG, 1, 8));
    format!("/{}", segs.join("/"))
}

/// Url display → parse round-trips.
#[test]
fn url_roundtrip() {
    forall!(|rng| {
        let host = gen_host(rng);
        let mut p = gen_path(rng);
        let q = rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789=&", 0, 12);
        if !q.is_empty() {
            p.push('?');
            p.push_str(&q);
        }
        let u = Url::http(host, p);
        let s = u.to_string();
        let back: Url = s.parse().expect("display form must parse");
        assert_eq!(back, u);
    });
}

/// e2LD is idempotent and a suffix of the input host.
#[test]
fn e2ld_idempotent_and_suffix() {
    forall!(|rng| {
        let host = gen_host(rng);
        let a = e2ld(&host);
        assert_eq!(e2ld(&a), a);
        assert!(host.ends_with(&a) || host == a);
    });
}

/// Subdomains never change the e2LD of a registrable (≥ 2 label) host.
#[test]
fn e2ld_ignores_subdomains() {
    forall!(|rng| {
        let host = gen_host(rng);
        if !host.contains('.') {
            return;
        }
        let sub = rng.string_of(LOWER, 1, 6);
        let base = e2ld(&host);
        assert_eq!(e2ld(&format!("{sub}.{host}")), base);
    });
}

/// same_site is reflexive and symmetric.
#[test]
fn same_site_symmetry() {
    forall!(|rng| {
        let a = gen_host(rng);
        let b = gen_host(rng);
        assert!(seacma_simweb::domain::same_site(&a, &a));
        assert_eq!(
            seacma_simweb::domain::same_site(&a, &b),
            seacma_simweb::domain::same_site(&b, &a)
        );
    });
}

/// det_hash has no accidental word-order collisions on random input.
#[test]
fn det_hash_order_sensitive() {
    forall!(|rng| {
        let a = rng.u64();
        let b = rng.u64();
        if a == b {
            return;
        }
        assert_ne!(det_hash(&[a, b]), det_hash(&[b, a]));
    });
}

/// det_range always lands in range and det_f64 in [0,1).
#[test]
fn det_bounds() {
    forall!(|rng| {
        let words = rng.vec_of(1, 5, Rng::u64);
        let n = rng.range_u64(1, 10_000);
        assert!(det_range(&words, n) < n);
        let x = det_f64(&words);
        assert!((0.0..1.0).contains(&x));
    });
}

/// det_weighted never picks a zero-weight index.
#[test]
fn det_weighted_skips_zeros() {
    forall!(|rng| {
        let seed = rng.u64();
        let zero_at = rng.range(0, 4);
        let mut weights = [1.0f64; 4];
        weights[zero_at] = 0.0;
        for i in 0..50u64 {
            let pick = det_weighted(&[seed, i], &weights);
            assert_ne!(pick, zero_at);
        }
    });
}

/// SimTime arithmetic is associative with durations.
#[test]
fn time_arithmetic() {
    forall!(|rng| {
        let t = rng.range_u64(0, 1_000_000);
        let a = rng.range_u64(0, 10_000);
        let b = rng.range_u64(0, 10_000);
        let base = SimTime(t);
        let left = base + SimDuration(a) + SimDuration(b);
        let right = base + (SimDuration(a) + SimDuration(b));
        assert_eq!(left, right);
        assert_eq!((left - base).minutes(), a + b);
    });
}

/// Throwaway and common domain generators always emit parseable hosts
/// whose e2LD equals themselves (single registrable label + TLD).
#[test]
fn generated_domains_are_registrable() {
    forall!(|rng| {
        let words = rng.vec_of(1, 3, Rng::u64);
        let d1 = seacma_simweb::names::throwaway_domain(&words);
        let d2 = seacma_simweb::names::common_domain(&words);
        for d in [d1, d2] {
            assert_eq!(e2ld(&d), d, "generator must emit apex domains");
            let u = Url::http(d, "/x");
            assert!(u.to_string().parse::<Url>().is_ok());
        }
    });
}

/// Digit-heavy hosts exercise the label edge cases too.
#[test]
fn e2ld_handles_numeric_labels() {
    forall!(|rng| {
        let host = format!("{}.{}", rng.string_of(DIGITS, 1, 4), gen_host(rng));
        let a = e2ld(&host);
        assert_eq!(e2ld(&a), a);
    });
}

mod json_roundtrips {
    use seacma_simweb::{
        visual::VisualTemplate, ClientProfile, Page, SeCategory, UaProfile, Url, Vantage,
    };
    use seacma_util::json;

    #[test]
    fn page_json_roundtrip() {
        let mut page = Page::bare(
            Url::http("evil.club", "/x/idx.php?k=1"),
            "Technical Support",
            VisualTemplate::TechSupport { skin: 3 },
        );
        page.scam_phone = Some("+1-888-555-0100".into());
        let text = json::to_string(&page);
        let back: Page = json::from_str(&text).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn enums_json_roundtrip() {
        for cat in SeCategory::ALL {
            let text = json::to_string(&cat);
            assert_eq!(json::from_str::<SeCategory>(&text).unwrap(), cat);
        }
        let c = ClientProfile::stealthy(UaProfile::ChromeAndroid, Vantage::Residential);
        let text = json::to_string(&c);
        assert_eq!(json::from_str::<ClientProfile>(&text).unwrap(), c);
    }
}
