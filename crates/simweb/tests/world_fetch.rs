//! End-to-end tests of the world hosting logic: publisher → ad click →
//! TDS → attack page chains, cloaking, domain rotation and parking.

use seacma_simweb::{
    ClientProfile, HostResponse, Page, SeCategory, SimTime, UaProfile, Url, Vantage, World,
    WorldConfig, DAY,
};

fn world() -> World {
    World::generate(WorldConfig {
        seed: 7,
        n_publishers: 400,
        n_hidden_only_publishers: 40,
        n_advertisers: 30,
        campaign_scale: 0.5,
        ..Default::default()
    })
}

fn resident() -> ClientProfile {
    ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential)
}

/// Follows redirects until a page is served (or hop budget exhausted).
fn follow(world: &World, mut url: Url, client: &ClientProfile, t: SimTime) -> Option<(Url, Page)> {
    for _ in 0..8 {
        match world.fetch(&url, client, t) {
            HostResponse::Page(p) => return Some((url, *p)),
            HostResponse::Redirect { to, .. } => url = to,
            HostResponse::NxDomain | HostResponse::Refused => return None,
        }
    }
    None
}

#[test]
fn world_generation_is_deterministic() {
    let a = world();
    let b = world();
    assert_eq!(a.publishers().len(), b.publishers().len());
    for (pa, pb) in a.publishers().iter().zip(b.publishers()) {
        assert_eq!(pa, pb);
    }
    assert_eq!(a.campaigns(), b.campaigns());
}

#[test]
fn publisher_page_has_ads_and_scripts() {
    let w = world();
    let p = w.publishers().iter().find(|p| !p.stale).unwrap();
    let resp = w.fetch(&p.url(), &resident(), SimTime::EPOCH);
    let page = resp.page().expect("publisher must serve a page");
    assert!(!page.ad_click_chain.is_empty(), "ad listeners must be armed");
    assert_eq!(page.scripts.len(), p.networks.len());
    assert!(!page.elements.is_empty());
    // The loader sources carry the network JS invariants.
    for (nid, script) in p.networks.iter().zip(&page.scripts) {
        let n = &w.networks()[nid.0 as usize];
        assert!(script.source.contains(&n.js_invariant));
    }
}

#[test]
fn ad_clicks_eventually_reach_an_se_attack() {
    let w = world();
    let client = resident();
    let t = SimTime::EPOCH;
    let mut attacks = 0;
    let mut landings = 0;
    for p in w.publishers().iter().take(300) {
        let page = match w.fetch(&p.url(), &client, t) {
            HostResponse::Page(p) => p,
            _ => continue,
        };
        for action in &page.ad_click_chain {
            let target = match action {
                seacma_simweb::ClickAction::OpenTab(u) => u.clone(),
                seacma_simweb::ClickAction::Navigate(u) => u.clone(),
                _ => continue,
            };
            if let Some((final_url, landing)) = follow(&w, target, &client, t) {
                landings += 1;
                if landing.visual.is_attack() {
                    attacks += 1;
                    // Ground truth must agree.
                    assert!(
                        w.campaign_of_attack_domain(&final_url.host, t).is_some(),
                        "attack page on unknown domain {final_url}"
                    );
                }
            }
        }
    }
    assert!(landings > 100, "only {landings} landings");
    let rate = attacks as f64 / landings as f64;
    // Aggregate SE rate should be in the ballpark of Table 3 (≈ 33 %
    // overall for residential stealthy clients).
    assert!((0.15..0.60).contains(&rate), "SE rate {rate} out of band ({attacks}/{landings})");
}

#[test]
fn cloaked_networks_serve_no_se_from_institutional_space() {
    let w = world();
    let inst = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Institutional);
    let t = SimTime::EPOCH;
    let cloakers: Vec<_> =
        w.networks().iter().filter(|n| n.cloaks_nonresidential).map(|n| n.id).collect();
    let mut checked = 0;
    for p in w.publishers() {
        for (k, nid) in p.networks.iter().enumerate() {
            if !cloakers.contains(nid) {
                continue;
            }
            let n = &w.networks()[nid.0 as usize];
            let click = n.click_url(w.seed(), p.word(), 0, k as u32);
            if let Some((_, landing)) = follow(&w, click, &inst, t) {
                checked += 1;
                assert!(
                    !landing.visual.is_attack(),
                    "cloaker {} served SE attack to institutional client",
                    n.name
                );
            }
        }
    }
    assert!(checked > 50, "only {checked} cloaked clicks checked");
}

#[test]
fn tds_urls_keep_yielding_fresh_attack_domains() {
    let w = world();
    let client = resident();
    let c = w
        .campaigns()
        .iter()
        .find(|c| c.tds_domain.is_some() && c.category == SeCategory::FakeSoftware)
        .expect("some milkable fake-software campaign");
    let tds = c.tds_url(0).unwrap();
    let mut domains = std::collections::HashSet::new();
    let mut t = SimTime::EPOCH;
    for _ in 0..(14 * 24 * 4) {
        if let HostResponse::Redirect { to, .. } = w.fetch(&tds, &client, t) {
            domains.insert(to.host.clone());
            // The redirect target must serve the campaign's attack page.
            let resp = w.fetch(&to, &client, t);
            let page = resp.page().expect("fresh attack domain must resolve");
            assert_eq!(page.visual, c.template());
        }
        t += seacma_simweb::SimDuration::from_minutes(15);
    }
    // FakeSoftware rotates every 10h ⇒ ~34 domains in 14 days.
    assert!(
        (25..=45).contains(&domains.len()),
        "{} domains milked in 14 days",
        domains.len()
    );
}

#[test]
fn expired_attack_domains_park_then_vanish() {
    let w = world();
    let client = resident();
    let c = &w.campaigns()[0];
    let t0 = SimTime::EPOCH + DAY;
    let url = c.attack_url(w.seed(), t0, 0);
    // Live now.
    assert!(w.fetch(&url, &client, t0).page().is_some());
    // One rotation later: parked placeholder.
    let t1 = t0 + c.category.rotation_period() + seacma_simweb::HOUR;
    let resp = w.fetch(&url, &client, t1);
    let page = resp.page().expect("grace period serves parking page");
    assert!(
        matches!(page.visual, seacma_simweb::visual::VisualTemplate::Parked { .. }),
        "expected parked page, got {:?}",
        page.visual
    );
    // Far beyond the grace period: NXDOMAIN.
    let t2 = t0 + c.category.rotation_period() * 40;
    assert!(matches!(w.fetch(&url, &client, t2), HostResponse::NxDomain));
}

#[test]
fn lottery_campaigns_only_serve_mobile() {
    let w = world();
    let t = SimTime::EPOCH;
    let desktop = resident();
    // Walk many ad clicks with a desktop UA; none may land on Lottery.
    for p in w.publishers().iter().take(200) {
        let page = match w.fetch(&p.url(), &desktop, t) {
            HostResponse::Page(p) => p,
            _ => continue,
        };
        for action in &page.ad_click_chain {
            if let seacma_simweb::ClickAction::OpenTab(u) = action {
                if let Some((_, landing)) = follow(&w, u.clone(), &desktop, t) {
                    assert!(
                        !matches!(
                            landing.visual,
                            seacma_simweb::visual::VisualTemplate::Lottery { .. }
                        ),
                        "desktop client reached a lottery page"
                    );
                }
            }
        }
    }
}

#[test]
fn stale_publishers_serve_no_ads() {
    let w = world();
    let client = resident();
    let p = w.publishers().iter().find(|p| p.stale).expect("some stale publishers");
    let resp = w.fetch(&p.url(), &client, SimTime::EPOCH);
    let page = resp.page().expect("stale publishers still serve content");
    assert!(page.ad_click_chain.is_empty(), "stale site must arm no ads");
    assert!(page.scripts.is_empty());
    // But the search index still carries its (stale) snippets.
    assert!(!w.publisher_source(p.id).is_empty());
}

#[test]
fn fetch_is_a_pure_function() {
    let w = world();
    let client = resident();
    let t = SimTime(1234);
    for p in w.publishers().iter().take(20) {
        let a = w.fetch(&p.url(), &client, t);
        let b = w.fetch(&p.url(), &client, t);
        assert_eq!(a, b);
    }
}

#[test]
fn unknown_domains_nx() {
    let w = world();
    let u = Url::http("no-such-domain-anywhere.example", "/");
    assert!(matches!(w.fetch(&u, &resident(), SimTime::EPOCH), HostResponse::NxDomain));
}

#[test]
fn attack_pages_carry_category_behaviours() {
    let w = world();
    let client = ClientProfile::stealthy(UaProfile::Ie10Windows, Vantage::Residential);
    let t = SimTime::EPOCH;
    for c in w.campaigns() {
        if !c.category.targets(client.ua) {
            continue;
        }
        let url = c.attack_url(w.seed(), t, 0);
        let resp = w.fetch(&url, &client, t);
        let page = match resp.page() {
            Some(p) => p.clone(),
            None => continue, // transient load-error injection
        };
        if matches!(page.visual, seacma_simweb::visual::VisualTemplate::LoadError) {
            continue;
        }
        assert_eq!(page.visual, c.template());
        match c.category {
            SeCategory::FakeSoftware | SeCategory::Scareware => {
                assert!(page.auto_download.is_some(), "{:?} must serve a download", c.category);
                assert!(page.is_locking() || c.category == SeCategory::FakeSoftware);
            }
            SeCategory::ChromeNotifications => {
                assert!(page.notification_prompt);
            }
            SeCategory::TechnicalSupport => {
                assert!(page.is_locking(), "tech-support pages lock the browser");
            }
            _ => {}
        }
    }
}

#[test]
fn downloads_are_polymorphic_per_domain_but_stable_per_visit() {
    let w = world();
    let client = ClientProfile::stealthy(UaProfile::Ie10Windows, Vantage::Residential);
    let c = w
        .campaigns()
        .iter()
        .find(|c| c.category == SeCategory::FakeSoftware)
        .unwrap();
    let mut per_domain: std::collections::HashMap<String, std::collections::HashSet<u128>> =
        std::collections::HashMap::new();
    let mut t = SimTime::EPOCH;
    for _ in 0..(14 * 48) {
        let url = c.attack_url(w.seed(), t, 0);
        if let HostResponse::Page(p) = w.fetch(&url, &client, t) {
            if let Some(d) = p.auto_download {
                per_domain.entry(url.host.clone()).or_default().insert(d.sha);
            }
        }
        t += seacma_simweb::SimDuration::from_minutes(30);
    }
    assert!(per_domain.len() > 10, "rotation should yield many domains");
    // Stable per domain…
    for (d, hashes) in &per_domain {
        assert_eq!(hashes.len(), 1, "domain {d} served several hashes");
    }
    // …but fresh across domains.
    let all: std::collections::HashSet<u128> =
        per_domain.values().flatten().copied().collect();
    assert!(
        all.len() as f64 > per_domain.len() as f64 * 0.8,
        "binaries must differ across rotated domains"
    );
}

#[test]
fn exchange_networks_add_a_syndication_hop() {
    let w = world();
    let client = resident();
    let t = SimTime::EPOCH;
    let exchange_net = w.networks().iter().find(|n| n.uses_exchange).unwrap();
    let direct_net = w
        .networks()
        .iter()
        .find(|n| !n.uses_exchange && n.seed_listed && !n.cloaks_nonresidential)
        .unwrap();

    let count_hops = |net: &seacma_simweb::AdNetworkSpec| -> Option<usize> {
        // Find a click that resolves to an SE chain and count its hops.
        for i in 0..400u64 {
            let mut url = net.click_url(w.seed(), i * 37, 0, 0);
            let mut hops = 0;
            loop {
                match w.fetch(&url, &client, t) {
                    HostResponse::Redirect { to, .. } => {
                        hops += 1;
                        url = to;
                    }
                    HostResponse::Page(p) if p.visual.is_attack() => return Some(hops),
                    _ => break,
                }
            }
        }
        None
    };

    let xh = count_hops(exchange_net).expect("exchange network serves SE");
    let dh = count_hops(direct_net).expect("direct network serves SE");
    assert!(xh > dh, "exchange chain ({xh} hops) must be longer than direct ({dh})");
    assert!(xh >= 3, "click -> exchange -> tds -> attack");
}

/// `fetch_lite` must classify every URL exactly as `fetch` does — same
/// error draws, same redirect targets, same NX/refusal verdicts — across
/// every host class the router knows (publishers, ad clicks, exchanges,
/// TDS, live/parked/expired attack domains, advertisers, confounders,
/// unknown hosts). The milker's no-op ticks ride on this equivalence.
#[test]
fn fetch_lite_classifies_exactly_like_fetch() {
    use seacma_simweb::LiteResponse;

    let w = World::generate(WorldConfig {
        seed: 7,
        n_publishers: 200,
        n_hidden_only_publishers: 20,
        n_advertisers: 30,
        campaign_scale: 0.5,
        error_rate: 0.03, // exercise the transient-blank-load draw
        ..Default::default()
    });

    // A URL bag covering every routing branch: seeds plus every hop
    // reachable from them by redirects.
    let mut bag: Vec<Url> = Vec::new();
    for p in w.publishers().iter().take(40) {
        bag.push(p.url());
    }
    for n in w.networks() {
        bag.push(n.click_url(w.seed(), 11, 0, 0));
        bag.push(n.click_url(w.seed(), 12, 3, 1));
    }
    for c in w.campaigns() {
        if let Some(tds) = c.tds_url(0) {
            bag.push(tds);
        }
        bag.push(Url::http(c.tds_domain.clone().unwrap_or_default(), "/not-the-tds-path"));
        // Live, soon-to-be-parked and long-expired epochs.
        for day in [0u64, 3, 40] {
            bag.push(c.attack_url(w.seed(), SimTime::EPOCH + DAY * day, 0));
        }
    }
    bag.push(Url::http("no-such-host.example", "/"));
    bag.push(Url::http("", "/"));
    let clients = [
        ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential),
        ClientProfile::stealthy(UaProfile::ChromeAndroid, Vantage::Cloud),
    ];

    seacma_util::forall!(400, |rng| {
        let mut url = rng.pick(&bag).clone();
        let client = rng.pick(&clients);
        let t = SimTime(rng.below(45 * 24 * 60));
        // Walk the chain so intermediate hops (exchange bid responses,
        // rotated attack URLs) are compared too.
        for _ in 0..8 {
            let full = w.fetch(&url, client, t);
            assert_eq!(
                w.fetch_lite(&url, client, t),
                LiteResponse::of(&full),
                "lite/full divergence at {url} t={t}"
            );
            match full {
                HostResponse::Redirect { to, .. } => url = to,
                _ => break,
            }
        }
    });
}

/// The validity horizon returned by `fetch_lite_ttl` must be sound: the
/// classification and redirect target may not change anywhere inside
/// `[t, h)`. Sampled densely across every host class, including worlds
/// with transient errors (30-minute re-rolls) and ad-click rotation
/// (2-hour buckets).
#[test]
fn fetch_lite_ttl_horizon_is_sound() {
    let w = World::generate(WorldConfig {
        seed: 13,
        n_publishers: 150,
        n_hidden_only_publishers: 10,
        n_advertisers: 20,
        campaign_scale: 0.5,
        error_rate: 0.05,
        ..Default::default()
    });
    let mut bag: Vec<Url> = Vec::new();
    for n in w.networks() {
        bag.push(n.click_url(w.seed(), 21, 0, 0));
    }
    for c in w.campaigns() {
        if let Some(tds) = c.tds_url(0) {
            bag.push(tds);
        }
        for day in [0u64, 2, 30] {
            bag.push(c.attack_url(w.seed(), SimTime::EPOCH + DAY * day, 0));
        }
    }
    bag.push(w.publishers()[0].url());
    bag.push(Url::http("no-such-host.example", "/"));
    let client = ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential);

    seacma_util::forall!(300, |rng| {
        let url = rng.pick(&bag);
        let t = SimTime(rng.below(40 * 24 * 60));
        let (resp, h) = w.fetch_lite_ttl(url, &client, t);
        // The publisher horizon claims full-response identity; here only
        // its None side is in scope (the Some side has a dedicated test
        // below).
        if w.publisher_by_domain(&url.host).is_none() {
            assert_eq!(w.publisher_content_horizon(url, t), None);
        }
        assert_eq!(resp, w.fetch_lite(url, &client, t), "ttl variant must match fetch_lite");
        assert!(h > t, "horizon must lie strictly in the future");
        // Sample instants inside the window, biased toward its edges.
        let span = h.minutes().saturating_sub(t.minutes()).min(30 * 24 * 60);
        for probe in [
            t,
            SimTime(t.minutes() + rng.below(span.max(1))),
            SimTime(t.minutes() + span - 1),
        ] {
            assert_eq!(
                w.fetch_lite(url, &client, probe),
                resp,
                "classification changed inside [{t}, {h}) at {probe} for {url}"
            );
        }
        // The stable factoring: `fetch_lite_ttl` is `fetch_lite_stable`
        // overridden by the transient-error draw, and the stable view
        // holds for its own (longer) horizon at every error-free instant.
        let (sresp, sh) = w.fetch_lite_stable(url, &client, t);
        assert!(sh >= h, "stable horizon can only be longer");
        if w.transient_error(url, t) {
            assert_eq!(resp, seacma_simweb::LiteResponse::Doc);
        } else {
            assert_eq!(resp, sresp, "error-free ttl must equal the stable view");
        }
        let sspan = sh.minutes().saturating_sub(t.minutes()).min(30 * 24 * 60);
        for probe in
            [t, SimTime(t.minutes() + rng.below(sspan.max(1))), SimTime(t.minutes() + sspan - 1)]
        {
            assert_eq!(
                w.fetch_lite_stable(url, &client, probe).0,
                sresp,
                "stable view changed inside [{t}, {sh}) at {probe} for {url}"
            );
        }
    });
}

/// `publisher_content_horizon` promises bit-identical **full** responses
/// (document included) across its window, for every client — the
/// contract the browser's memoized publisher reload leans on. Sampled
/// in a world with transient errors so the 30-minute re-roll is live,
/// with probes biased toward the window edges and one probe just past
/// the horizon to show the bound is tight where a boundary flips state.
#[test]
fn publisher_content_horizon_is_sound() {
    let w = World::generate(WorldConfig {
        seed: 17,
        n_publishers: 120,
        n_hidden_only_publishers: 10,
        n_advertisers: 20,
        campaign_scale: 0.5,
        error_rate: 0.08,
        ..Default::default()
    });
    let clients = [
        ClientProfile::stealthy(UaProfile::ChromeMac, Vantage::Residential),
        ClientProfile::stealthy(UaProfile::ChromeAndroid, Vantage::Cloud),
    ];

    seacma_util::forall!(300, |rng| {
        let p = &w.publishers()[rng.below(w.publishers().len() as u64) as usize];
        let url = p.url();
        let t = SimTime(rng.below(40 * 24 * 60));
        let h = w
            .publisher_content_horizon(&url, t)
            .expect("publisher URLs always get a horizon");
        assert!(h > t, "horizon must lie strictly in the future");
        let client = rng.pick(&clients);
        let reference = w.fetch(&url, client, t);
        assert!(
            matches!(reference, HostResponse::Page(_)),
            "publisher hosts always serve a document"
        );
        let span = h.minutes() - t.minutes();
        for probe in [t, SimTime(t.minutes() + rng.below(span)), SimTime(h.minutes() - 1)] {
            assert_eq!(
                w.fetch(&url, client, probe),
                reference,
                "response changed inside [{t}, {h}) at {probe} for {url}"
            );
        }
    });
}
