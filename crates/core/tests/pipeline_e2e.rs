//! End-to-end pipeline test: discovery → clustering → attribution →
//! milking → new-network feedback, with shape checks against the paper.

use seacma_core::report;
use seacma_core::{Pipeline, PipelineConfig};
use seacma_simweb::SeCategory;

fn run() -> (Pipeline, seacma_core::PipelineRun) {
    let pipeline = Pipeline::new(PipelineConfig::small(0xE2E));
    let run = pipeline.run_to_completion();
    (pipeline, run)
}

#[test]
fn full_pipeline_shape() {
    let (pipeline, run) = run();
    let d = &run.discovery;

    // Stage ②: the reversed pool covers exactly the seed-network pubs.
    assert_eq!(
        d.institutional_pool.len() + d.residential_pool.len(),
        pipeline.config().world.n_publishers as usize
    );
    assert!(!d.residential_pool.is_empty(), "some sites run cloaking networks");

    // Stage ③: landings accumulated.
    assert!(d.crawl.landing_count() > 300, "landings {}", d.crawl.landing_count());
    let with = d.crawl.publishers_with_landings();
    let visited = d.crawl.publishers_visited();
    assert!(with * 10 > visited * 3, "too few ad-bearing sites: {with}/{visited}");

    // Stage ⑤: clusters exist; campaigns dominated by SE labels.
    assert!(d.clusters.campaigns.len() >= 15, "clusters {}", d.clusters.campaigns.len());
    let se = d.labels.iter().filter(|l| l.is_campaign()).count();
    let benign = d.labels.len() - se;
    assert!(se > benign, "SE campaigns must dominate: {se} vs {benign}");

    // Nearly all categories discovered (Technical Support carries only
    // 1.6 % of SE traffic and can drop below MinPts at test scale).
    let found = SeCategory::ALL
        .iter()
        .filter(|&&cat| d.labels.iter().any(|l| l.category() == Some(cat)))
        .count();
    assert!(found >= 5, "only {found}/6 categories discovered");

    // Stage ⑦: most SE attacks attributed to seed networks, a solid
    // minority unknown (paper: 81% / 19%).
    let landings: Vec<_> = d.landings().collect();
    let se_attacks: Vec<usize> = (0..landings.len())
        .filter(|&i| landings[i].truth_is_attack)
        .collect();
    let unknown = se_attacks
        .iter()
        .filter(|&&i| d.attributions[i] == seacma_graph::Attribution::Unknown)
        .count();
    let frac_unknown = unknown as f64 / se_attacks.len() as f64;
    assert!(
        (0.05..0.40).contains(&frac_unknown),
        "unknown fraction {frac_unknown} ({unknown}/{})",
        se_attacks.len()
    );

    // Milking: sources validated, domains discovered, sessions counted.
    assert!(!run.sources.is_empty(), "no milking sources validated");
    assert!(
        run.milking.discoveries.len() > run.sources.len(),
        "milking must discover more domains than sources ({} vs {})",
        run.milking.discoveries.len(),
        run.sources.len()
    );
    assert!(run.milking.sessions > 1000);

    // GSB: low at discovery, higher at the end, lag > 7 days.
    assert!(run.milking.gsb_init_rate() < 0.10);
    assert!(run.milking.gsb_final_rate() > run.milking.gsb_init_rate());
    if let Some(lag) = run.milking.mean_gsb_lag_days() {
        assert!(lag > 3.0, "mean lag {lag}");
    }

    // Tracking: the crawl replayed through the configured epoch count,
    // the milking feed reached the tracker, and campaigns got journaled.
    let t = &run.tracking;
    assert_eq!(t.crawl_epochs.len(), pipeline.config().crawl_track_epochs);
    assert_eq!(
        t.tracker.epoch() as usize,
        t.crawl_epochs.len() + t.milking_epochs.len()
    );
    assert!(t.crawl_epochs.iter().any(|s| !s.events.is_empty()));
    let milked: u32 = t.milking_epochs.iter().map(|s| s.ingested).sum();
    assert!(milked > 0, "milking discoveries must reach the tracker");
    assert!(t.tracker.ledger().campaigns().count() >= 10);

    // New-network discovery fires.
    assert!(run.new_networks.unknown_attacks > 0);
    assert!(
        !run.new_networks.new_patterns.is_empty(),
        "hidden networks must be discoverable"
    );
    assert!(run.new_networks.new_publishers > 0, "pool expansion expected");
    let names: Vec<&str> =
        run.new_networks.new_patterns.iter().map(|p| p.name.as_str()).collect();
    assert!(
        names.iter().any(|n| ["EroAdvertising", "Yllix", "AdCenter"].contains(n)),
        "expected a real hidden network, got {names:?}"
    );
}

#[test]
fn tables_render_consistently() {
    let (pipeline, run) = run();
    let world = pipeline.world();
    let d = &run.discovery;

    // Table 1.
    let t1 = report::table1(world, d);
    assert_eq!(t1.len(), 6);
    let total_campaigns: usize = t1.iter().map(|r| r.campaigns).sum();
    assert_eq!(
        total_campaigns,
        d.labels.iter().filter(|l| l.is_campaign()).count()
    );
    let fs = t1.iter().find(|r| r.category == SeCategory::FakeSoftware).unwrap();
    assert!(fs.se_attacks > 0 && fs.attack_domains > 0);
    // Registration campaigns evade GSB entirely (Table 1: 0 %).
    let reg = t1.iter().find(|r| r.category == SeCategory::Registration).unwrap();
    assert_eq!(reg.gsb_domain_pct, 0.0);
    assert_eq!(reg.gsb_campaign_pct, 0.0);
    let rendered = report::render_table1(&t1);
    assert!(rendered.contains("Fake Software"));
    assert!(rendered.contains("TOTAL"));

    // Table 2.
    let t2 = report::table2(world, d, 20);
    assert!(!t2.is_empty());
    assert!(t2.windows(2).all(|w| w[0].publishers >= w[1].publishers));
    assert!(report::render_table2(&t2).contains("# Publisher Domains"));

    // Table 3.
    let t3 = report::table3(world, d);
    assert_eq!(t3.len(), 12, "11 seed networks + Unknown");
    let known_se: usize = t3
        .iter()
        .filter(|r| r.network != "Unknown")
        .map(|r| r.se_pages)
        .sum();
    assert!(known_se > 0);
    let rendered = report::render_table3(&t3);
    assert!(rendered.contains("Unknown"));

    // Table 4.
    let t4 = report::table4(&d.labels, &run.milking);
    assert_eq!(t4.len(), 6, "5 groups + total");
    let total = t4.last().unwrap();
    assert_eq!(total.group, "Total");
    assert_eq!(
        total.domains,
        t4[..5].iter().map(|r| r.domains).sum::<usize>()
    );
    assert!(total.gsb_final_pct >= total.gsb_init_pct);
    assert!(report::render_table4(&t4).contains("GSB-final"));

    // Cluster breakdown: SE campaigns plus several benign confounder kinds.
    let breakdown = report::ClusterBreakdown::over(&d.labels);
    assert_eq!(breakdown.total(), d.labels.len());
    assert!(breakdown.parked + breakdown.stock + breakdown.shortener > 0);

    // Ethics.
    let ethics = report::EthicsReport::over(d);
    assert!(ethics.legit_domains > 0);
    assert!(ethics.mean_clicks > 0.0);
    assert!(ethics.worst_cost_usd() >= ethics.mean_cost_usd());
}

#[test]
fn pipeline_runs_are_reproducible() {
    let a = Pipeline::new(PipelineConfig::small(42)).run_to_completion();
    let b = Pipeline::new(PipelineConfig::small(42)).run_to_completion();
    assert_eq!(a.discovery.crawl, b.discovery.crawl);
    assert_eq!(a.discovery.labels, b.discovery.labels);
    assert_eq!(a.milking.discoveries, b.milking.discoveries);
    assert_eq!(a.new_networks, b.new_networks);
    assert_eq!(a.tracking.tracker.to_json(), b.tracking.tracker.to_json());
}

#[test]
fn different_seeds_differ() {
    let a = Pipeline::new(PipelineConfig::small(1)).run_to_completion();
    let b = Pipeline::new(PipelineConfig::small(2)).run_to_completion();
    assert_ne!(a.discovery.crawl, b.discovery.crawl);
}
