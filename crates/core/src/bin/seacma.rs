//! `seacma` — command-line front end to the measurement pipeline.
//!
//! ```text
//! seacma discover [opts]          discovery phase + tables 1–3
//! seacma track    [opts]          full run incl. milking + table 4
//! seacma export   [opts] --out D  full run + release-dataset dump
//! seacma mine     [opts]          automatic invariant mining (stage ①)
//! seacma gallery  --out D         campaign screenshot gallery (PGM)
//!
//! options: --seed N  --publishers N  --scale F  --milk-days N  --quick
//! ```

use std::path::PathBuf;
use std::process::exit;

use seacma_core::export::export_run;
use seacma_core::invariants::mine_world_patterns;
use seacma_core::pipeline::DiscoverySummary;
use seacma_core::report::{self, ClusterBreakdown};
use seacma_core::{Pipeline, PipelineConfig};
use seacma_crawler::CrawlSchedule;
use seacma_simweb::{SimDuration, WorldConfig};

struct Opts {
    seed: u64,
    publishers: u32,
    scale: f64,
    milk_days: u64,
    quick: bool,
    out: PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            seed: 0x5EAC_A201,
            publishers: 3000,
            scale: 1.0,
            milk_days: 14,
            quick: false,
            out: PathBuf::from("seacma-out"),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: seacma <discover|track|export|mine|gallery> \
         [--seed N] [--publishers N] [--scale F] [--milk-days N] [--quick] [--out DIR]"
    );
    exit(2)
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => o.seed = parse_u64(val()),
            "--publishers" => o.publishers = parse_u64(val()) as u32,
            "--scale" => o.scale = val().parse().unwrap_or_else(|_| usage()),
            "--milk-days" => o.milk_days = parse_u64(val()),
            "--quick" => o.quick = true,
            "--out" => o.out = PathBuf::from(val()),
            _ => usage(),
        }
    }
    o
}

fn parse_u64(s: &str) -> u64 {
    s.strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| s.parse())
        .unwrap_or_else(|_| usage())
}

fn config(o: &Opts) -> PipelineConfig {
    if o.quick {
        let mut c = PipelineConfig::small(o.seed);
        c.milking.duration = SimDuration::from_days(o.milk_days.min(3));
        return c;
    }
    let mut c = PipelineConfig {
        world: WorldConfig {
            seed: o.seed,
            n_publishers: o.publishers,
            n_hidden_only_publishers: o.publishers / 10,
            campaign_scale: o.scale,
            ..Default::default()
        },
        schedule: CrawlSchedule { lanes: 4, ..Default::default() },
        ..Default::default()
    };
    c.milking.duration = SimDuration::from_days(o.milk_days);
    c
}

fn cmd_discover(o: &Opts) {
    let pipeline = Pipeline::new(config(o));
    let d = pipeline.discover();
    let s = DiscoverySummary::over(&d);
    println!(
        "pool {} | visited {} | productive {} | landings {}",
        s.pool_size, s.visited, s.with_landings, s.landings
    );
    let b = ClusterBreakdown::over(&d.labels);
    println!(
        "clusters: {} SE campaigns + {} benign ({} θc-passing total)\n",
        b.se_campaigns,
        b.benign(),
        b.total()
    );
    println!("{}", report::render_table1(&report::table1(pipeline.world(), &d)));
    println!("{}", report::render_table2(&report::table2(pipeline.world(), &d, 20)));
    println!("{}", report::render_table3(&report::table3(pipeline.world(), &d)));
}

fn cmd_track(o: &Opts) {
    let pipeline = Pipeline::new(config(o));
    let run = pipeline.run_to_completion();
    println!(
        "sources {} | sessions {} | new domains {} | files {}",
        run.sources.len(),
        run.milking.sessions,
        run.milking.discoveries.len(),
        run.milking.files.len()
    );
    println!("{}", report::render_table4(&report::table4(&run.discovery.labels, &run.milking)));
    if let Some(lag) = run.milking.mean_gsb_lag_days() {
        println!("mean GSB lag: {lag:.1} days");
    }
    if !run.milking.scam_phones.is_empty() {
        println!("scam phones: {:?}", run.milking.scam_phones.iter().map(|(p, _, _)| p).collect::<Vec<_>>());
    }
    println!(
        "new networks: {:?} (+{} publishers)",
        run.new_networks.new_patterns.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
        run.new_networks.new_publishers
    );
}

fn cmd_export(o: &Opts) {
    let pipeline = Pipeline::new(config(o));
    let run = pipeline.run_to_completion();
    match export_run(&pipeline, &run, &o.out) {
        Ok(s) => println!(
            "exported {} landings, {} campaigns, {} screenshots to {}",
            s.landings,
            s.campaigns,
            s.screenshots,
            o.out.display()
        ),
        Err(e) => {
            eprintln!("export failed: {e}");
            exit(1);
        }
    }
}

fn cmd_mine(o: &Opts) {
    let pipeline = Pipeline::new(config(o));
    for (name, mined) in mine_world_patterns(pipeline.world(), 5) {
        println!(
            "{name}: js={:?} url={:?}",
            mined.js_token.as_deref().unwrap_or("-"),
            mined.url_token.as_deref().unwrap_or("-")
        );
    }
}

fn cmd_gallery(o: &Opts) {
    use seacma_simweb::visual::VisualTemplate;
    std::fs::create_dir_all(&o.out).expect("create out dir");
    let items: [(&str, VisualTemplate); 6] = [
        ("fake_software", VisualTemplate::FakeSoftware { skin: 3 }),
        ("registration", VisualTemplate::Registration { skin: 1 }),
        ("lottery", VisualTemplate::Lottery { skin: 0 }),
        ("chrome_notifications", VisualTemplate::ChromeNotification { skin: 0 }),
        ("scareware", VisualTemplate::Scareware { skin: 2 }),
        ("tech_support", VisualTemplate::TechSupport { skin: 0 }),
    ];
    for (name, t) in items {
        let path = o.out.join(format!("{name}.pgm"));
        std::fs::write(&path, t.render(o.seed).to_pgm()).expect("write pgm");
        println!("wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage() };
    let opts = parse(rest);
    match cmd.as_str() {
        "discover" => cmd_discover(&opts),
        "track" => cmd_track(&opts),
        "export" => cmd_export(&opts),
        "mine" => cmd_mine(&opts),
        "gallery" => cmd_gallery(&opts),
        _ => usage(),
    }
}
