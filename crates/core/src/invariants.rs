//! Automatic invariant-pattern mining.
//!
//! §3.1 of the paper: ad networks "heavily obfuscate their code and
//! frequently change the domain names from which the JS code is fetched",
//! but "it was possible to identify a number of invariant features, such
//! as a specific URL path name, URL structure, or JS variable names that
//! are reused across different versions of JS code snippets belonging to
//! the same ad network". The authors derived each pattern manually in
//! ~15 minutes; §5 notes "one can easily find an invariance feature upon
//! inspecting multiple code snippets from different pages using this ad
//! network" — which is precisely an algorithmic task.
//!
//! This module automates it: given a handful of loader snippets (or ad
//! URLs) known to belong to one network, [`common_tokens`] extracts the
//! maximal substrings shared by *all* samples, filters boilerplate shared
//! with *other* networks' samples, and returns candidate invariants
//! ranked by discriminative length.

use std::collections::HashSet;

use seacma_graph::NetworkPattern;
use seacma_simweb::Url;

/// Minimum invariant length considered meaningful (shorter strings are
/// too likely to match unrelated code).
pub const MIN_TOKEN_LEN: usize = 5;

/// Returns the maximal substrings of length ≥ `min_len` present in
/// *every* sample, longest first. Case-sensitive, byte-oriented.
pub fn common_tokens(samples: &[&str], min_len: usize) -> Vec<String> {
    let Some(shortest) = samples.iter().min_by_key(|s| s.len()) else {
        return Vec::new();
    };
    if shortest.len() < min_len {
        return Vec::new();
    }
    // Binary search the longest length L for which some window of the
    // shortest sample occurs in all samples, then collect all maximal
    // common windows down to min_len.
    let occurs_everywhere = |tok: &str| samples.iter().all(|s| s.contains(tok));

    let mut found: Vec<String> = Vec::new();
    let bytes = shortest.as_bytes();
    // Enumerate candidate windows from longest to shortest; skip windows
    // contained in an already-found token (maximality).
    let mut len = shortest.len();
    while len >= min_len {
        for start in 0..=(bytes.len() - len) {
            let Some(tok) = shortest.get(start..start + len) else {
                continue; // respect UTF-8 boundaries
            };
            if found.iter().any(|f| f.contains(tok)) {
                continue;
            }
            if occurs_everywhere(tok) {
                found.push(tok.to_string());
            }
        }
        len -= 1;
    }
    found
}

/// Drops tokens that also appear in any counterexample (other networks'
/// snippets) — what makes an invariant *discriminative* rather than
/// generic JS boilerplate.
pub fn discriminative_tokens(
    samples: &[&str],
    counterexamples: &[&str],
    min_len: usize,
) -> Vec<String> {
    common_tokens(samples, min_len)
        .into_iter()
        .filter(|tok| !counterexamples.iter().any(|c| c.contains(tok.as_str())))
        .collect()
}

/// A mined network signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPattern {
    /// Best JS-source invariant (longest discriminative token).
    pub js_token: Option<String>,
    /// Best URL invariant mined from the network's ad-serving URLs.
    pub url_token: Option<String>,
}

impl MinedPattern {
    /// Converts into an attribution pattern under the given name, when a
    /// URL token was mined.
    pub fn into_network_pattern(self, name: impl Into<String>) -> Option<NetworkPattern> {
        self.url_token.map(|url_invariant| NetworkPattern { name: name.into(), url_invariant })
    }
}

/// Mines a network signature from labeled samples.
///
/// `snippets`/`urls` are samples from the target network;
/// `other_snippets`/`other_urls` come from different networks and serve
/// as counterexamples.
pub fn mine_pattern(
    snippets: &[&str],
    other_snippets: &[&str],
    urls: &[Url],
    other_urls: &[Url],
) -> MinedPattern {
    let js_token =
        discriminative_tokens(snippets, other_snippets, MIN_TOKEN_LEN).into_iter().next();
    let url_strings: Vec<String> = urls.iter().map(|u| u.path_and_query()).collect();
    let url_refs: Vec<&str> = url_strings.iter().map(String::as_str).collect();
    let other_strings: Vec<String> = other_urls.iter().map(|u| u.path_and_query()).collect();
    let other_refs: Vec<&str> = other_strings.iter().map(String::as_str).collect();
    let url_token = discriminative_tokens(&url_refs, &other_refs, MIN_TOKEN_LEN)
        .into_iter()
        .next();
    MinedPattern { js_token, url_token }
}

/// Mines seed patterns for every seed-listed network in a world, from
/// `samples_per_network` publisher snippets each — the automated stand-in
/// for the paper's manual stage ①. Returns `(network name, mined)` pairs.
pub fn mine_world_patterns(
    world: &seacma_simweb::World,
    samples_per_network: usize,
) -> Vec<(String, MinedPattern)> {
    let seed = world.seed();
    let mut out = Vec::new();
    let nets: Vec<_> = world.networks().iter().filter(|n| n.seed_listed).collect();
    for n in &nets {
        // Collect snippets from publishers that embed this network.
        let mut snippets = Vec::new();
        let mut urls = Vec::new();
        for p in world.publishers() {
            if snippets.len() >= samples_per_network {
                break;
            }
            if p.networks.contains(&n.id) {
                snippets.push(n.loader_snippet(seed, p.word()));
                urls.push(n.click_url(seed, p.word(), 0, 0));
            }
        }
        // Counterexamples: one snippet from each *other* network.
        let mut others = Vec::new();
        let mut other_urls = Vec::new();
        for m in &nets {
            if m.id != n.id {
                others.push(m.loader_snippet(seed, 0x07E2));
                other_urls.push(m.click_url(seed, 0x07E2, 0, 0));
            }
        }
        let snippet_refs: Vec<&str> = snippets.iter().map(String::as_str).collect();
        let other_refs: Vec<&str> = others.iter().map(String::as_str).collect();
        let mined = mine_pattern(&snippet_refs, &other_refs, &urls, &other_urls);
        out.push((n.name.clone(), mined));
    }
    out
}

/// Convenience: checks that a mined token set recovers the same publisher
/// pool as a reference token (used in evaluation).
pub fn pools_match(world: &seacma_simweb::World, mined: &str, reference: &str) -> bool {
    let search = seacma_simweb::search::SourceSearch::new(world);
    let a: HashSet<_> = search.search(mined).into_iter().collect();
    let b: HashSet<_> = search.search(reference).into_iter().collect();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_tokens_finds_shared_core() {
        let samples = ["xx_pop_cfg_yy123", "zz_pop_cfg_qq", "_pop_cfg_"];
        let toks = common_tokens(&samples, 5);
        assert!(toks.iter().any(|t| t == "_pop_cfg_"), "got {toks:?}");
    }

    #[test]
    fn common_tokens_empty_cases() {
        assert!(common_tokens(&[], 5).is_empty());
        assert!(common_tokens(&["abc"], 5).is_empty());
        assert!(common_tokens(&["abcdefgh", "12345678"], 5).is_empty());
    }

    #[test]
    fn tokens_are_maximal() {
        let samples = ["AAAinvariantBBB", "CCCinvariantDDD"];
        let toks = common_tokens(&samples, 5);
        assert_eq!(toks, vec!["invariant".to_string()]);
    }

    #[test]
    fn discriminative_filter_drops_boilerplate() {
        let samples = ["function(){_net_a_cfg}", "function(){_net_a_cfg;x}"];
        let counter = ["function(){_net_b_cfg}"];
        let toks = discriminative_tokens(&samples, &counter, 5);
        assert!(toks.iter().any(|t| t.contains("_net_a_cfg")), "got {toks:?}");
        assert!(
            toks.iter().all(|t| !"function(){_net_b_cfg}".contains(t.as_str())),
            "boilerplate leaked: {toks:?}"
        );
    }

    #[test]
    fn mined_pattern_conversion() {
        let m = MinedPattern { js_token: None, url_token: Some("/pads/".into()) };
        let p = m.into_network_pattern("PopAds").unwrap();
        assert_eq!(p.url_invariant, "/pads/");
        let none = MinedPattern { js_token: Some("x".into()), url_token: None };
        assert!(none.into_network_pattern("X").is_none());
    }

    #[test]
    fn utf8_samples_do_not_panic() {
        let samples = ["héllo_wörld_invariant_é", "xx_invariant_é yy"];
        let toks = common_tokens(&samples, 5);
        assert!(toks.iter().any(|t| t.contains("_invariant_")));
    }
}
