//! Cluster ground-truth labeling.
//!
//! The paper determined, for each of its 130 clusters, whether it
//! represents a SEACMA campaign (108 did) by visual inspection, page
//! interaction and external checks (§4.3). In the reproduction that manual
//! step is replaced by consulting the simulator's ground truth: the visual
//! template of a cluster's members tells us whether the cluster is an SE
//! campaign (and of which category) or one of the benign confounders.

use seacma_util::impl_json_enum;

use seacma_crawler::LandingRecord;
use seacma_simweb::visual::VisualTemplate;
use seacma_simweb::{ClientProfile, SeCategory, World};
use seacma_vision::cluster::ScreenshotCluster;

/// Kinds of non-SEACMA clusters the paper found among its 22 benign ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenignKind {
    /// Parked/expired domains sharing a registrar placeholder (11 in the
    /// paper).
    Parked,
    /// Stock-image adult lure pages (6).
    StockImages,
    /// Ad-based URL-shortener interstitials (4).
    UrlShortener,
    /// Failed/blank page loads (1 spurious cluster).
    SpuriousLoadError,
    /// Ordinary benign advertiser content that happened to cluster.
    OtherBenign,
}

/// Ground-truth label of one screenshot cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterLabel {
    /// A SEACMA campaign of the given category.
    Campaign(SeCategory),
    /// Not an SE campaign.
    Benign(BenignKind),
}

impl ClusterLabel {
    /// Whether the cluster is a SEACMA campaign.
    pub fn is_campaign(self) -> bool {
        matches!(self, ClusterLabel::Campaign(_))
    }

    /// The category, when a campaign.
    pub fn category(self) -> Option<SeCategory> {
        match self {
            ClusterLabel::Campaign(c) => Some(c),
            ClusterLabel::Benign(_) => None,
        }
    }
}

/// Labels one cluster by re-fetching its representative landing (the
/// stand-in for the paper's visual inspection) and majority-voting over
/// member ground truth.
pub fn label_cluster(
    world: &World,
    cluster: &ScreenshotCluster,
    landings: &[&LandingRecord],
) -> ClusterLabel {
    // Majority vote over members' attack ground truth.
    let attacks = cluster
        .members
        .iter()
        .filter(|&&m| landings[m].truth_is_attack)
        .count();
    if attacks * 2 > cluster.members.len() {
        // Category via the representative; if the representative happens
        // to be a stray non-attack member (e.g. a blank load absorbed
        // into the cluster), fall back to the first member that resolves.
        let rep = landings[cluster.representative];
        if let Some(cat) = category_of(world, rep) {
            return ClusterLabel::Campaign(cat);
        }
        for &m in &cluster.members {
            if let Some(cat) = category_of(world, landings[m]) {
                return ClusterLabel::Campaign(cat);
            }
        }
    }
    // Benign: classify by the representative's template.
    let rep = landings[cluster.representative];
    let kind = match visual_of(world, rep) {
        Some(VisualTemplate::Parked { .. }) => BenignKind::Parked,
        Some(VisualTemplate::StockAdult { .. }) => BenignKind::StockImages,
        Some(VisualTemplate::ShortenerFrame { .. }) => BenignKind::UrlShortener,
        Some(VisualTemplate::LoadError) => BenignKind::SpuriousLoadError,
        _ => BenignKind::OtherBenign,
    };
    ClusterLabel::Benign(kind)
}

/// The category of the campaign whose attack domain served this landing,
/// if any (ground truth).
pub fn category_of(world: &World, landing: &LandingRecord) -> Option<SeCategory> {
    world
        .campaign_of_attack_domain(&landing.landing_url.host, landing.t)
        .map(|cid| world.campaign(cid).category)
}

/// Re-fetches the landing at its original time to recover the template the
/// crawler saw (used only for labeling, mirroring manual inspection).
pub fn visual_of(world: &World, landing: &LandingRecord) -> Option<VisualTemplate> {
    let client = ClientProfile::stealthy(landing.ua, landing.vantage);
    world
        .fetch(&landing.landing_url, &client, landing.t)
        .page()
        .map(|p| p.visual)
}

/// Labels every cluster of a clustering result.
pub fn label_clusters(
    world: &World,
    clusters: &[ScreenshotCluster],
    landings: &[&LandingRecord],
) -> Vec<ClusterLabel> {
    clusters.iter().map(|c| label_cluster(world, c, landings)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_accessors() {
        let a = ClusterLabel::Campaign(SeCategory::Scareware);
        assert!(a.is_campaign());
        assert_eq!(a.category(), Some(SeCategory::Scareware));
        let b = ClusterLabel::Benign(BenignKind::Parked);
        assert!(!b.is_campaign());
        assert_eq!(b.category(), None);
    }
}
impl_json_enum!(BenignKind {
    Parked,
    StockImages,
    UrlShortener,
    SpuriousLoadError,
    OtherBenign,
});
impl_json_enum!(ClusterLabel {
    Campaign(SeCategory),
    Benign(BenignKind),
});
