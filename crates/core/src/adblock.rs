//! The ad-blocker experiment (§4.4).
//!
//! The paper tested the latest Chrome + AdBlock Plus against the 11 seed
//! networks: only Clicksor's ads stopped displaying; the other ten kept
//! serving malicious ads. The mechanism is domain-list coverage: filter
//! lists enumerate known ad-serving domains, and networks that rotate
//! across hundreds of domains stay ahead of the list. This module builds
//! an EasyList-like filter (full coverage only of networks whose serving
//! infrastructure is static, plus stale entries for the rotators) and
//! measures, per network, the fraction of live click URLs it blocks.

use std::collections::HashSet;

use seacma_util::impl_json_struct;

use seacma_simweb::{SimTime, Url, World};

/// A domain-based ad filter list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterList {
    domains: HashSet<String>,
}

impl FilterList {
    /// Builds the EasyList-like snapshot for a world: every serving domain
    /// of list-covered (non-rotating) networks, plus the first few slots —
    /// the long-lived, publicly known entries — of each rotating network.
    pub fn easylist(world: &World) -> FilterList {
        let mut domains = HashSet::new();
        for n in world.networks() {
            let covered_slots = if n.blocked_by_adblock {
                n.code_domain_pool // full coverage
            } else {
                // Stale coverage: the handful of domains that have been
                // around long enough to be reported.
                (n.code_domain_pool / 50).min(3)
            };
            for slot in 0..covered_slots {
                domains.insert(n.code_domain(world.seed(), slot));
            }
        }
        FilterList { domains }
    }

    /// Number of filter entries.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Whether the list blocks a URL.
    pub fn blocks(&self, url: &Url) -> bool {
        self.domains.contains(&url.host)
    }
}

/// Per-network result of the ad-blocker experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AdblockResult {
    /// Network name.
    pub network: String,
    /// Click URLs sampled.
    pub sampled: usize,
    /// Fraction of sampled click URLs the filter list blocked.
    pub blocked_fraction: f64,
}

impl AdblockResult {
    /// The paper's binary verdict: a network is "blocked" when
    /// effectively all of its ads stop displaying.
    pub fn effectively_blocked(&self) -> bool {
        self.blocked_fraction > 0.95
    }
}

/// Runs the experiment: sample live click URLs per seed network across
/// publishers and days, and measure list coverage.
pub fn adblock_experiment(world: &World, t: SimTime, samples_per_network: usize) -> Vec<AdblockResult> {
    let list = FilterList::easylist(world);
    world
        .networks()
        .iter()
        .filter(|n| n.seed_listed)
        .map(|n| {
            let mut blocked = 0usize;
            for i in 0..samples_per_network {
                let pub_word = seacma_simweb::det::det_hash(&[0xAB_7E57, i as u64]);
                let url = n.click_url(world.seed(), pub_word, t.days() + (i % 5) as u64, 0);
                if list.blocks(&url) {
                    blocked += 1;
                }
            }
            AdblockResult {
                network: n.name.clone(),
                sampled: samples_per_network,
                blocked_fraction: blocked as f64 / samples_per_network.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            n_publishers: 20,
            n_hidden_only_publishers: 0,
            n_advertisers: 5,
            ..Default::default()
        })
    }

    #[test]
    fn only_clicksor_is_effectively_blocked() {
        let w = world();
        let results = adblock_experiment(&w, SimTime::EPOCH, 200);
        assert_eq!(results.len(), 11);
        let blocked: Vec<&str> = results
            .iter()
            .filter(|r| r.effectively_blocked())
            .map(|r| r.network.as_str())
            .collect();
        assert_eq!(blocked, vec!["Clicksor"], "paper: only Clicksor stops displaying");
    }

    #[test]
    fn rotating_networks_mostly_evade() {
        let w = world();
        let results = adblock_experiment(&w, SimTime::EPOCH, 200);
        let rh = results.iter().find(|r| r.network == "RevenueHits").unwrap();
        assert!(rh.blocked_fraction < 0.10, "RevenueHits blocked {}", rh.blocked_fraction);
    }

    #[test]
    fn filterlist_has_entries_for_everything() {
        let w = world();
        let list = FilterList::easylist(&w);
        assert!(!list.is_empty());
        // Clicksor fully covered: all 4 domains present.
        let clicksor = w.networks().iter().find(|n| n.name == "Clicksor").unwrap();
        for slot in 0..clicksor.code_domain_pool {
            let u = Url::http(clicksor.code_domain(w.seed(), slot), "/cksr/show.php");
            assert!(list.blocks(&u));
        }
    }
}
impl_json_struct!(FilterList { domains });
impl_json_struct!(AdblockResult { network, sampled, blocked_fraction });
