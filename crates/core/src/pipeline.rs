//! The end-to-end pipeline (Figure 2).

use seacma_util::impl_json_struct;
use seacma_util::sym::{SharedArena, Sym};

use seacma_blacklist::{GsbService, VirusTotal};
use seacma_crawler::{CrawlDataset, CrawlFarm, LandingRecord};
use seacma_graph::{Attribution, Attributor, NetworkPattern};
use seacma_milker::{
    validate_candidates, Milker, MilkingCandidate, MilkingOutcome, MilkingSource,
};
use seacma_simweb::search::SourceSearch;
use seacma_simweb::{det, PublisherId, SimTime, UaProfile, Vantage, World, DAY};
use seacma_tracker::{CampaignTracker, EpochSummary, TrackerConfig};
use seacma_vision::cluster::{cluster_sym_columns_parallel, ScreenshotClusters, ScreenshotPoint};
use seacma_vision::dhash::Dhash;

use crate::config::PipelineConfig;
use crate::label::{label_clusters, ClusterLabel};
use crate::newnet::{discover_networks, NewNetworkDiscovery};

/// Output of the crawl phase alone (stages ②–③): the reversed pools and
/// the merged dataset, before clustering. Produced by
/// [`Pipeline::crawl_phase`], consumed by [`Pipeline::cluster_phase`] —
/// the split exists so the end-to-end bench can time the two phases
/// separately; [`Pipeline::discover`] composes them.
pub struct CrawlPhase {
    /// Seed publisher pool from pattern reversal, institutional part.
    pub institutional_pool: Vec<PublisherId>,
    /// Residential pool (publishers embedding cloaking networks).
    pub residential_pool: Vec<PublisherId>,
    /// How many residential publishers were actually visited.
    pub residential_visited: usize,
    /// The merged crawl dataset.
    pub crawl: CrawlDataset,
}

/// Output of the discovery phase (stages ①–⑤ + ⑦).
pub struct DiscoveryOutput {
    /// The world-level symbol arena every crawl-record domain symbol
    /// resolves against (a handle to the pipeline's arena).
    pub arena: SharedArena,
    /// Seed publisher pool from pattern reversal, institutional part.
    pub institutional_pool: Vec<PublisherId>,
    /// Residential pool (publishers embedding cloaking networks).
    pub residential_pool: Vec<PublisherId>,
    /// How many residential publishers were actually visited.
    pub residential_visited: usize,
    /// The merged crawl dataset.
    pub crawl: CrawlDataset,
    /// Clustering result over all landing screenshots.
    pub clusters: ScreenshotClusters,
    /// Ground-truth labels, one per campaign cluster (same order as
    /// `clusters.campaigns`).
    pub labels: Vec<ClusterLabel>,
    /// Attribution verdict per landing index (aligned with the flattened
    /// landing order used for clustering).
    pub attributions: Vec<Attribution>,
}

impl DiscoveryOutput {
    /// Landings in the flattened order used by clustering/attribution.
    /// Borrowing iterator — callers that need random access collect it.
    pub fn landings(&self) -> impl Iterator<Item = &LandingRecord> {
        self.crawl.landings()
    }

    /// Indices of clusters labeled as SEACMA campaigns.
    pub fn campaign_cluster_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_campaign())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Output of the tracking phase: the live tracker plus every closed
/// epoch's summary, split by which pipeline stage drove it.
pub struct TrackingOutput {
    /// The tracker after all crawl and milking epochs — live campaign
    /// state, ready for snapshotting ([`CampaignTracker::to_json`]) or
    /// further ingest.
    pub tracker: CampaignTracker,
    /// Epoch summaries from replaying the crawl landings.
    pub crawl_epochs: Vec<EpochSummary>,
    /// Epoch summaries from the milking discoveries (one per virtual day
    /// with discoveries, plus trailing quiet days so dormancy shows).
    pub milking_epochs: Vec<EpochSummary>,
}

/// A complete measurement run.
pub struct PipelineRun {
    /// Discovery-phase output.
    pub discovery: DiscoveryOutput,
    /// Validated milking sources.
    pub sources: Vec<MilkingSource>,
    /// Milking + GSB + VT measurement output.
    pub milking: MilkingOutcome,
    /// New-ad-network discovery from unknown attributions.
    pub new_networks: NewNetworkDiscovery,
    /// Campaign tracking across crawl + milking epochs.
    pub tracking: TrackingOutput,
}

/// The pipeline driver.
///
/// ```no_run
/// use seacma_core::{Pipeline, PipelineConfig};
///
/// let pipeline = Pipeline::new(PipelineConfig::small(42));
/// let run = pipeline.run_to_completion();
/// println!(
///     "{} campaigns discovered, {} domains milked",
///     run.discovery.labels.iter().filter(|l| l.is_campaign()).count(),
///     run.milking.discoveries.len(),
/// );
/// ```
pub struct Pipeline {
    config: PipelineConfig,
    world: World,
    arena: SharedArena,
}

impl Pipeline {
    /// Generates the world and prepares the pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        let world = World::generate(config.world.clone());
        Self { config, world, arena: SharedArena::new() }
    }

    /// The generated world (the "live web" of the measurement).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The world-level symbol arena: every domain string a crawl record,
    /// cluster column or tracker point carries is a symbol into this
    /// arena. Interning only happens at deterministic sequential points
    /// (crawl-farm assembly, tracker ingest), so its content is a pure
    /// function of the configuration.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The seed ad-network invariant patterns (stage ①). In the paper
    /// these took ~15 manual minutes per network to derive; here they are
    /// the seed-listed networks' published invariants.
    pub fn seed_patterns(&self) -> Vec<NetworkPattern> {
        self.world
            .networks()
            .iter()
            .filter(|n| n.seed_listed)
            .map(|n| NetworkPattern { name: n.name.clone(), url_invariant: n.url_invariant.clone() })
            .collect()
    }

    /// Stage ②: reverse the seed patterns into a publisher pool and split
    /// it by cloaking-network presence (Propeller/Clickadu sites must be
    /// crawled from residential space).
    pub fn reverse_publishers(&self) -> (Vec<PublisherId>, Vec<PublisherId>) {
        let search = SourceSearch::new(&self.world);
        let js_patterns: Vec<String> = self
            .world
            .networks()
            .iter()
            .filter(|n| n.seed_listed)
            .map(|n| n.js_invariant.clone())
            .collect();
        let pats: Vec<&str> = js_patterns.iter().map(String::as_str).collect();
        let pool = search.search_any(&pats);

        let cloaker_patterns: Vec<String> = self
            .world
            .networks()
            .iter()
            .filter(|n| n.cloaks_nonresidential)
            .map(|n| n.js_invariant.clone())
            .collect();
        let cloaker_pats: Vec<&str> = cloaker_patterns.iter().map(String::as_str).collect();
        let cloaked: std::collections::HashSet<PublisherId> =
            search.search_any(&cloaker_pats).into_iter().collect();

        let mut institutional = Vec::new();
        let mut residential = Vec::new();
        for pid in pool {
            if cloaked.contains(&pid) {
                residential.push(pid);
            } else {
                institutional.push(pid);
            }
        }
        (institutional, residential)
    }

    /// Stages ②–③ only: reversal plus both vantage crawls. The crawl
    /// phase of the end-to-end bench; [`Pipeline::cluster_phase`]
    /// completes it into a [`DiscoveryOutput`].
    pub fn crawl_phase(&self) -> CrawlPhase {
        let (institutional_pool, residential_pool) = self.reverse_publishers();

        // Residential bandwidth cap (paper: 11,182 of 34,068 visited).
        let n_res = ((residential_pool.len() as f64) * self.config.residential_visit_fraction)
            .round() as usize;
        let residential_sample: Vec<PublisherId> = residential_pool
            .iter()
            .copied()
            .filter(|p| {
                det::det_f64(&[self.world.seed(), 0x2E5, u64::from(p.0)])
                    < self.config.residential_visit_fraction
            })
            .take(n_res.max(1))
            .collect();

        let farm = CrawlFarm::new(&self.world, self.config.workers, self.config.crawl);
        let mut crawl = farm.crawl(
            &institutional_pool,
            &self.config.uas,
            Vantage::Institutional,
            self.config.schedule,
            &self.arena,
        );
        let residential_visited = residential_sample.len();
        // The residential pool is crawled concurrently (the paper's
        // laptops ran alongside the servers).
        crawl.merge(farm.crawl(
            &residential_sample,
            &self.config.uas,
            Vantage::Residential,
            self.config.schedule,
            &self.arena,
        ));
        CrawlPhase { institutional_pool, residential_pool, residential_visited, crawl }
    }

    /// Stages ④–⑤ + ⑦ over a finished crawl: clustering, labeling,
    /// attribution.
    pub fn cluster_phase(&self, phase: CrawlPhase) -> DiscoveryOutput {
        let CrawlPhase { institutional_pool, residential_pool, residential_visited, crawl } =
            phase;
        // Stage ④–⑤: perceptual hashing + clustering + θc filter. The
        // crawl records already carry `(dhash, e2LD-symbol)`, so the
        // clustering input is two parallel columns — no string copies.
        let landings: Vec<&LandingRecord> = crawl.landings().collect();
        let dhashes: Vec<Dhash> = landings.iter().map(|l| l.dhash).collect();
        let e2lds: Vec<Sym> = landings.iter().map(|l| l.landing_e2ld).collect();
        // Indexed + parallel clustering: same labels as the sequential
        // naive path (the index is exact and workers only precompute
        // neighbour lists), so sharing `config.workers` with the crawl
        // farm cannot change any downstream table.
        let clusters = cluster_sym_columns_parallel(
            &dhashes,
            &e2lds,
            &self.arena.read(),
            self.config.clustering,
            self.config.workers,
        );

        // Ground-truth labeling (the paper's manual step).
        let labels = label_clusters(&self.world, &clusters.campaigns, &landings);

        // Stage ⑦: attribution of every landing via seed patterns over
        // the ad-loading chain (the click URL carries the invariant).
        let attributor = Attributor::new(self.seed_patterns());
        let attributions: Vec<Attribution> = landings
            .iter()
            .map(|l| attributor.attribute_urls(l.chain_urls().into_iter()))
            .collect();

        DiscoveryOutput {
            arena: self.arena.clone(),
            institutional_pool,
            residential_pool,
            residential_visited,
            crawl,
            clusters,
            labels,
            attributions,
        }
    }

    /// Stages ②–⑤ + ⑦: reversal, crawling (both vantage pools),
    /// clustering, labeling, attribution.
    pub fn discover(&self) -> DiscoveryOutput {
        self.cluster_phase(self.crawl_phase())
    }

    /// Phase ⑧ (tracking, this repo's extension of §5): replay the crawl
    /// landings through the campaign tracker in `crawl_track_epochs`
    /// contiguous prefix batches of the flattened landing order.
    ///
    /// Contiguous prefixes are load-bearing: batch DBSCAN numbering is
    /// input-order-sensitive, so feeding the tracker the same order the
    /// batch clustering saw makes the final epoch's live snapshot equal
    /// [`DiscoveryOutput::clusters`] **bit for bit** (the incremental
    /// exactness property) — no downstream table can change.
    pub fn track(&self, discovery: &DiscoveryOutput) -> (CampaignTracker, Vec<EpochSummary>) {
        // The tracker shares the world arena, so crawl-record symbols feed
        // it directly — no string materialization on the replay hot path.
        let mut tracker = CampaignTracker::with_arena(self.tracker_config(), self.arena.clone());
        let mut summaries = Vec::new();
        for batch in self.crawl_epoch_sym_batches(discovery) {
            for (dhash, e2ld) in batch {
                tracker.ingest_sym(dhash, e2ld);
            }
            summaries.push(tracker.end_epoch());
        }
        debug_assert_eq!(
            tracker.clusters(),
            discovery.clusters,
            "incremental tracker must reproduce the batch discovery clustering"
        );
        (tracker, summaries)
    }

    /// The tracker parameters this pipeline tracks (and the resident
    /// daemon serves) with: the batch clustering knobs plus the lifecycle
    /// ledger's dormancy windows. Exactness between the daemon's live
    /// snapshots and the offline batch pipeline requires both sides to use
    /// exactly this configuration.
    pub fn tracker_config(&self) -> TrackerConfig {
        TrackerConfig { params: self.config.clustering, ledger: self.config.track_ledger }
    }

    /// Pipeline-as-library entry point for epoch schedulers: the per-epoch
    /// point batches the crawl replay ([`Pipeline::track`]) ingests, in
    /// ingestion order. Feeding these batches to any epoch-driven consumer
    /// (a [`CampaignTracker`], the `seacma-daemon` resident process)
    /// reproduces the tracking phase's crawl epochs exactly — the final
    /// boundary snapshot equals [`DiscoveryOutput::clusters`] bit for bit.
    pub fn crawl_epoch_batches(&self, discovery: &DiscoveryOutput) -> Vec<Vec<ScreenshotPoint>> {
        let arena = self.arena.read();
        discovery
            .crawl
            .landing_epochs(self.config.crawl_track_epochs)
            .into_iter()
            .map(|chunk| {
                chunk
                    .into_iter()
                    .map(|l| ScreenshotPoint::new(l.dhash, arena.resolve(l.landing_e2ld)))
                    .collect()
            })
            .collect()
    }

    /// The per-epoch crawl batches as `(dhash, e2LD-symbol)` column pairs
    /// — the zero-string variant of [`Pipeline::crawl_epoch_batches`] for
    /// consumers sharing the world arena ([`Pipeline::track`], the e2e
    /// bench). Symbols resolve via [`Pipeline::arena`].
    pub fn crawl_epoch_sym_batches(&self, discovery: &DiscoveryOutput) -> Vec<Vec<(Dhash, Sym)>> {
        discovery
            .crawl
            .landing_epochs(self.config.crawl_track_epochs)
            .into_iter()
            .map(|chunk| chunk.into_iter().map(|l| (l.dhash, l.landing_e2ld)).collect())
            .collect()
    }

    /// Pipeline-as-library entry point for epoch schedulers: one point
    /// batch per virtual day of the milking window (quiet days included),
    /// exactly as [`Pipeline::track_milking`] ingests them.
    pub fn milking_epoch_batches(
        &self,
        sources: &[MilkingSource],
        milking: &MilkingOutcome,
        start: SimTime,
    ) -> Vec<Vec<ScreenshotPoint>> {
        let feed = seacma_milker::trackfeed::discovery_points(&self.world, sources, milking);
        let days = self.config.milking.duration.minutes().div_ceil(DAY.minutes()).max(1);
        seacma_milker::trackfeed::epoch_batches(&feed, start, days)
    }

    /// The per-epoch milking batches as `(dhash, e2LD-symbol)` column
    /// pairs — the zero-string variant of
    /// [`Pipeline::milking_epoch_batches`]. Discovered domains are
    /// interned into the world arena here (a sequential point, so symbol
    /// assignment is deterministic).
    pub fn milking_epoch_sym_batches(
        &self,
        sources: &[MilkingSource],
        milking: &MilkingOutcome,
        start: SimTime,
    ) -> Vec<Vec<(Dhash, Sym)>> {
        let feed = seacma_milker::trackfeed::discovery_sym_points(
            &self.world,
            sources,
            milking,
            &self.arena,
        );
        let days = self.config.milking.duration.minutes().div_ceil(DAY.minutes()).max(1);
        seacma_milker::trackfeed::epoch_batches(&feed, start, days)
    }

    /// Feeds the milking discoveries back into the tracker, closing one
    /// epoch per virtual day of the milking window. Quiet days close too:
    /// campaigns that stop rotating (or were never milkable) sit still
    /// through them, which is exactly what drives the ledger's dormancy
    /// and death transitions.
    ///
    /// The replay runs on the symbol fast path, so `tracker` must share
    /// the world arena (as the tracker from [`Pipeline::track`] does); a
    /// consumer with a private arena (a resumed snapshot) ingests the
    /// same points via [`Pipeline::milking_epoch_batches`] instead.
    pub fn track_milking(
        &self,
        tracker: &mut CampaignTracker,
        sources: &[MilkingSource],
        milking: &MilkingOutcome,
        start: SimTime,
    ) -> Vec<EpochSummary> {
        debug_assert!(
            tracker.arena().ptr_eq(&self.arena),
            "sym-path milking replay requires a tracker sharing the world arena"
        );
        let mut summaries = Vec::new();
        for batch in self.milking_epoch_sym_batches(sources, milking, start) {
            for (dhash, e2ld) in batch {
                tracker.ingest_sym(dhash, e2ld);
            }
            summaries.push(tracker.end_epoch());
        }
        summaries
    }

    /// Stage ⑥ prep: extract per-campaign-cluster milking candidates from
    /// the crawl records and validate them (§4.2's pilot).
    ///
    /// Candidates come from **live tracker state** — the cluster set,
    /// membership and visual representatives are the tracker's current
    /// snapshot, not the frozen discovery clustering. Right after the
    /// crawl replay the two agree exactly (the gate in
    /// [`Pipeline::track`]), but anything ingested since — milking
    /// feedback, a resumed snapshot — is reflected here and not there.
    pub fn milking_sources(
        &self,
        discovery: &DiscoveryOutput,
        tracker: &CampaignTracker,
        t: SimTime,
    ) -> Vec<MilkingSource> {
        let landings: Vec<&LandingRecord> = discovery.landings().collect();
        let live = tracker.clusters();
        let mut candidates = Vec::new();
        for (ci, cluster) in live.campaigns.iter().enumerate() {
            // Ground-truth labels are aligned with the discovery clusters;
            // live clusters keep that alignment until post-crawl ingest
            // reorders them, at which point unlabeled clusters are skipped.
            if !discovery.labels.get(ci).is_some_and(|l| l.is_campaign()) {
                continue;
            }
            // Members index the tracker's ingest order, which starts with
            // the flattened crawl landings; later (milking-fed) members
            // have no crawl record to harvest a milkable URL from.
            let Some(rep) = landings.get(cluster.representative) else { continue };
            let reference = rep.dhash;
            for &m in &cluster.members {
                let Some(l) = landings.get(m).copied() else { continue };
                if let Some(url) = &l.milkable_candidate {
                    candidates.push(MilkingCandidate {
                        url: url.clone(),
                        ua: l.ua,
                        cluster: ci,
                        reference,
                    });
                }
            }
        }
        // Interleave UAs within each cluster before the source cap bites:
        // landings arrive in UA-pass order, and without mixing, the first
        // `max_milking_sources` candidates would nearly all carry the
        // first pass's UA (and so milk only one platform's payloads).
        // `Url::det_word()` equals `str_word(&url.to_string())` (pinned in
        // `seacma-simweb`), so the shuffle key is unchanged — but the sort
        // no longer materializes the textual URL per comparison.
        candidates.sort_by_key(|c| {
            (c.cluster, det::det_hash(&[c.url.det_word(), c.ua.index()]))
        });
        let mut sources = validate_candidates(&self.world, candidates, t);
        sources.truncate(self.config.max_milking_sources);
        sources
    }

    /// Stage ⑥: the milking experiment.
    pub fn milk(
        &self,
        sources: &[MilkingSource],
        start: SimTime,
        vt: &mut VirusTotal,
    ) -> MilkingOutcome {
        let mut gsb = GsbService::new(&self.world);
        // Parallel simulate/merge milking shares `config.workers` with the
        // crawl farm and the clustering stage; like those stages, its
        // output is byte-identical at any worker count, so no downstream
        // table can change.
        Milker::new(&self.world, self.config.milking).run_parallel(
            sources,
            &mut gsb,
            vt,
            start,
            self.config.workers,
        )
    }

    /// The full measurement: discovery, crawl-epoch tracking, source
    /// validation against live tracker state, milking (fed back into the
    /// tracker day by day) and the new-network feedback loop.
    pub fn run_to_completion(&self) -> PipelineRun {
        let discovery = self.discover();
        let (mut tracker, crawl_epochs) = self.track(&discovery);
        // Milking starts right after the last crawl pass.
        let crawl_end = discovery
            .crawl
            .visits
            .iter()
            .map(|v| v.started)
            .max()
            .unwrap_or(SimTime::EPOCH)
            + seacma_simweb::HOUR;
        let sources = self.milking_sources(&discovery, &tracker, crawl_end);
        let mut vt = VirusTotal::new(self.world.seed() ^ 0x7A);
        let milking = self.milk(&sources, crawl_end, &mut vt);
        let milking_epochs = self.track_milking(&mut tracker, &sources, &milking, crawl_end);
        let new_networks = discover_networks(&self.world, &discovery);
        PipelineRun {
            discovery,
            sources,
            milking,
            new_networks,
            tracking: TrackingOutput { tracker, crawl_epochs, milking_epochs },
        }
    }
}

/// Crawl end time helper shared by reports.
pub fn crawl_end(crawl: &CrawlDataset) -> SimTime {
    crawl.visits.iter().map(|v| v.started).max().unwrap_or(SimTime::EPOCH)
}

/// Pick the UA set actually exercised in a dataset (for reporting).
pub fn uas_used(crawl: &CrawlDataset) -> Vec<UaProfile> {
    let mut uas: Vec<UaProfile> = crawl.visits.iter().map(|v| v.ua).collect();
    uas.sort_by_key(|u| u.index());
    uas.dedup();
    uas
}

#[derive(Debug, Clone)]
/// Summary counters for the discovery phase (used by Figure-2 output).
pub struct DiscoverySummary {
    /// Publishers in the reversed pool.
    pub pool_size: usize,
    /// Publishers visited.
    pub visited: usize,
    /// Publishers whose clicks produced third-party landings.
    pub with_landings: usize,
    /// Landing pages captured.
    pub landings: usize,
    /// Clusters before θc filtering.
    pub clusters_total: usize,
    /// Candidate campaign clusters (θc survivors).
    pub campaign_clusters: usize,
    /// Clusters labeled as SEACMA campaigns.
    pub se_campaigns: usize,
}

impl DiscoverySummary {
    /// Computes the summary.
    pub fn over(d: &DiscoveryOutput) -> Self {
        Self {
            pool_size: d.institutional_pool.len() + d.residential_pool.len(),
            visited: d.crawl.publishers_visited(),
            with_landings: d.crawl.publishers_with_landings(),
            landings: d.crawl.landing_count(),
            clusters_total: d.clusters.total_clusters(),
            campaign_clusters: d.clusters.campaigns.len(),
            se_campaigns: d.labels.iter().filter(|l| l.is_campaign()).count(),
        }
    }
}
impl_json_struct!(DiscoverySummary {
    pool_size,
    visited,
    with_landings,
    landings,
    clusters_total,
    campaign_clusters,
    se_campaigns,
});
