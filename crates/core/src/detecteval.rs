//! Evaluation observations for the online detector.
//!
//! Bridges the pipeline's crawl records to `seacma-detect`: every landing
//! the crawl captured becomes one [`EvalObservation`] — the page-load
//! observation the detector would have been handed online (fused dhash +
//! cheap structural signals) plus the world's ground truth (attack or
//! benign, and which campaign). The `detect_eval` bench scores a served
//! [`Detector`](seacma_detect::Detector) against these to report
//! precision/recall on campaigns the index has seen **and** on campaigns
//! held out of the feed entirely — the generalization claim the
//! feature-threshold fallback stage exists for.
//!
//! Observations are emitted in the flattened landing order, the same
//! order [`Pipeline::crawl_epoch_batches`](crate::Pipeline::crawl_epoch_batches)
//! chunks into epochs — element `i` here describes point `i` of the
//! tracker feed, which is what lets the bench split the feed by ground-truth
//! campaign without re-deriving the mapping.

use seacma_detect::{PageObservation, PageSignals};
use seacma_graph::chain_third_party_e2lds;
use seacma_simweb::{ClientProfile, World};
use seacma_util::impl_json_struct;

use seacma_crawler::LandingRecord;

use crate::pipeline::DiscoveryOutput;

/// One landing as the detector would observe it online, plus the world's
/// ground truth about it.
///
/// ```
/// use seacma_core::detecteval::EvalObservation;
/// use seacma_detect::{PageObservation, PageSignals};
/// use seacma_util::json;
/// use seacma_vision::dhash::Dhash;
///
/// let e = EvalObservation {
///     obs: PageObservation { dhash: Dhash(7), signals: PageSignals::default() },
///     truth_attack: true,
///     truth_campaign: Some(3),
/// };
/// let text = json::to_string(&e);
/// assert_eq!(json::from_str::<EvalObservation>(&text).unwrap(), e);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalObservation {
    /// The page-load observation: fused dhash + structural signals.
    pub obs: PageObservation,
    /// Ground truth: the landing rendered an SE attack template.
    pub truth_attack: bool,
    /// Ground truth: the world campaign whose attack domain served the
    /// landing, when one did.
    pub truth_campaign: Option<u32>,
}

impl_json_struct!(EvalObservation { obs, truth_attack, truth_campaign });

/// The structural signals of one crawled landing: chain counts from the
/// record's redirect hops and involved-URL set, document tells from
/// re-fetching the landing URL at the recorded click time with the
/// recorded client profile (deterministic — the simulated web serves the
/// same document for the same `(url, client, t)`).
pub fn landing_signals(world: &World, l: &LandingRecord) -> PageSignals {
    let landing_e2ld = l.landing_url.e2ld();
    let third = chain_third_party_e2lds(&l.involved_urls, &landing_e2ld);
    let client = ClientProfile::stealthy(l.ua, l.vantage);
    match world.fetch(&l.landing_url, &client, l.t).page() {
        Some(page) => PageSignals::from_counts(l.hops.len() as u32, third, page),
        // Transient blank load on the re-fetch: chain counts still stand,
        // document tells read as absent.
        None => PageSignals {
            redirect_hops: l.hops.len() as u32,
            third_party_e2lds: third,
            ..PageSignals::default()
        },
    }
}

/// Every crawled landing as an [`EvalObservation`], in flattened landing
/// order (parallel to the tracker feed's point order).
pub fn eval_observations(world: &World, discovery: &DiscoveryOutput) -> Vec<EvalObservation> {
    discovery
        .landings()
        .map(|l| EvalObservation {
            obs: PageObservation { dhash: l.dhash, signals: landing_signals(world, l) },
            truth_attack: l.truth_is_attack,
            truth_campaign: world
                .campaign_of_attack_domain(&l.landing_url.host, l.t)
                .map(|c| c.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};

    fn tiny_pipeline() -> Pipeline {
        let mut c = PipelineConfig::small(7);
        c.world.n_publishers = 120;
        c.world.n_hidden_only_publishers = 10;
        c.world.n_advertisers = 15;
        Pipeline::new(c)
    }

    #[test]
    fn observations_parallel_the_landing_order() {
        let pipeline = tiny_pipeline();
        let discovery = pipeline.discover();
        let evals = eval_observations(pipeline.world(), &discovery);
        assert_eq!(evals.len(), discovery.crawl.landing_count());
        for (e, l) in evals.iter().zip(discovery.landings()) {
            assert_eq!(e.obs.dhash, l.dhash);
            assert_eq!(e.truth_attack, l.truth_is_attack);
        }
    }

    #[test]
    fn both_truth_classes_present_and_deterministic() {
        let pipeline = tiny_pipeline();
        let discovery = pipeline.discover();
        let evals = eval_observations(pipeline.world(), &discovery);
        assert!(evals.iter().any(|e| e.truth_attack), "no attack landings in the tiny world");
        assert!(evals.iter().any(|e| !e.truth_attack), "no benign landings in the tiny world");
        assert!(evals.iter().any(|e| e.truth_campaign.is_some()));
        assert_eq!(evals, eval_observations(pipeline.world(), &discovery));
    }
}
