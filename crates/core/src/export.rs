//! Dataset export.
//!
//! The paper releases "all browser logs and screenshots related to the SE
//! attacks" collected during the study, to support research on SE
//! defenses and user training. This module serializes a measurement run
//! into that release format:
//!
//! * `landings.jsonl` — one JSON record per landing page (URLs, redirect
//!   chain, hashes, attribution inputs),
//! * `campaigns.json` — the discovered campaign clusters with labels,
//! * `milking.json` — discoveries, timelines and harvested intel,
//! * `screenshots/` — one PGM per campaign-cluster representative.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use seacma_util::json::{self, ToJson, Value};
use seacma_util::sym::SymbolArena;

use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_crawler::LandingRecord;
use seacma_simweb::Vantage;

use crate::pipeline::{Pipeline, PipelineRun};

/// Summary of what was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportSummary {
    /// Landing records exported.
    pub landings: usize,
    /// Campaign clusters exported.
    pub campaigns: usize,
    /// Screenshot files written.
    pub screenshots: usize,
}

/// Exports a full run under `dir`.
pub fn export_run(
    pipeline: &Pipeline,
    run: &PipelineRun,
    dir: &Path,
) -> std::io::Result<ExportSummary> {
    fs::create_dir_all(dir.join("screenshots"))?;
    let landings: Vec<_> = run.discovery.landings().collect();

    // landings.jsonl — record symbols are resolved back to domain strings
    // so the release stays self-contained (readable without the run's
    // symbol table).
    let arena = run.discovery.arena.read();
    let mut f = fs::File::create(dir.join("landings.jsonl"))?;
    for l in &landings {
        json::to_writer(&mut f, &landing_json(l, &arena))?;
        f.write_all(b"\n")?;
    }

    // campaigns.json
    let campaigns: Vec<Value> = run
        .discovery
        .clusters
        .campaigns
        .iter()
        .enumerate()
        .map(|(i, c)| campaign_record(i, &run.discovery.labels[i], c))
        .collect();
    fs::write(dir.join("campaigns.json"), json::to_vec_pretty(&campaigns))?;

    // milking.json
    fs::write(dir.join("milking.json"), json::to_vec_pretty(&run.milking))?;

    // screenshots: re-render each campaign representative at its original
    // (url, time) coordinates.
    let mut shots = 0usize;
    for (i, c) in run.discovery.clusters.campaigns.iter().enumerate() {
        let rep = landings[c.representative];
        let cfg = BrowserConfig::instrumented(rep.ua, Vantage::Residential);
        let mut session = BrowserSession::new(pipeline.world(), cfg, rep.t);
        if let Ok(loaded) = session.navigate(&rep.landing_url) {
            fs::write(
                dir.join("screenshots").join(format!("cluster{i:03}.pgm")),
                loaded
                    .screenshot
                    .bitmap()
                    .expect("instrumented sessions capture full screenshots")
                    .to_pgm(),
            )?;
            shots += 1;
        }
    }

    Ok(ExportSummary { landings: landings.len(), campaigns: campaigns.len(), screenshots: shots })
}

/// One `landings.jsonl` line: the record's JSON with both arena symbols
/// replaced by the domain strings they stand for.
fn landing_json(l: &LandingRecord, arena: &SymbolArena) -> Value {
    let mut v = l.to_json();
    if let Value::Obj(pairs) = &mut v {
        for (k, field) in pairs.iter_mut() {
            match k.as_str() {
                "publisher_domain" => *field = Value::Str(arena.resolve(l.publisher_domain).into()),
                "landing_e2ld" => *field = Value::Str(arena.resolve(l.landing_e2ld).into()),
                _ => {}
            }
        }
    }
    v
}

/// One `campaigns.json` entry: the cluster's label, membership and
/// representative, in a fixed field order so exports are byte-stable.
fn campaign_record(
    index: usize,
    label: &crate::label::ClusterLabel,
    cluster: &seacma_vision::cluster::ScreenshotCluster,
) -> Value {
    Value::Obj(vec![
        ("index".to_string(), index.to_json()),
        ("label".to_string(), label.to_json()),
        ("members".to_string(), cluster.members.to_json()),
        ("domains".to_string(), cluster.domains.to_json()),
        ("representative".to_string(), cluster.representative.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;

    use std::collections::{BTreeSet, HashMap};

    use seacma_blacklist::ScanReport;
    use seacma_crawler::LandingRecord;
    use seacma_milker::{DomainDiscovery, MilkedFile, MilkingOutcome};
    use seacma_simweb::payload::{FileFormat, FilePayload};
    use seacma_simweb::{
        host::RedirectKind, PublisherId, SeCategory, SimTime, UaProfile, Url, Vantage,
    };
    use seacma_util::sym::Sym;
    use seacma_vision::cluster::ScreenshotCluster;
    use seacma_vision::dhash::Dhash;

    use crate::label::{BenignKind, ClusterLabel};

    fn roundtrip<T: ToJson + json::FromJson + PartialEq + std::fmt::Debug>(x: &T) {
        let compact = json::to_string(x);
        assert_eq!(&json::from_str::<T>(&compact).expect("compact parses"), x);
        let pretty = json::to_string_pretty(x);
        assert_eq!(&json::from_str::<T>(&pretty).expect("pretty parses"), x);
    }

    /// The in-repo `LandingRecord` shape survives serialize → parse
    /// exactly, including nested tuple arrays and optionals. (Domain
    /// symbols serialize as bare numbers here; the release format resolves
    /// them — see `landing_lines_resolve_arena_symbols`.)
    #[test]
    fn landing_record_roundtrip() {
        let rec = LandingRecord {
            publisher: PublisherId(7),
            publisher_domain: Sym(0),
            ua: UaProfile::ChromeAndroid,
            vantage: Vantage::Residential,
            click_ordinal: 2,
            landing_url: Url::http("evil.club", "/l/x.php?a=1&b=2"),
            landing_e2ld: Sym(1),
            dhash: Dhash(u128::MAX - 5),
            hops: vec![
                (
                    Url::http("pub.example", "/"),
                    Url::http("adnet.example", "/r"),
                    RedirectKind::Http302,
                ),
                (
                    Url::http("adnet.example", "/r"),
                    Url::http("evil.club", "/l/x.php?a=1&b=2"),
                    RedirectKind::JsLocation,
                ),
            ],
            involved_urls: vec![
                Url::http("pub.example", "/"),
                Url::http("adnet.example", "/tag.js"),
            ],
            milkable_candidate: Some(Url::http("adnet.example", "/r")),
            t: SimTime(123_456),
            truth_is_attack: true,
        };
        roundtrip(&rec);
        let none = LandingRecord { milkable_candidate: None, ..rec };
        roundtrip(&none);
    }

    /// The release format resolves record symbols to strings, and the
    /// writer escapes every hostile class those strings can carry.
    #[test]
    fn landing_lines_resolve_arena_symbols() {
        let mut arena = SymbolArena::new();
        // Exercise every escape class the writer must handle.
        let hostile = "we\"ird\\pub\n\tdomain \u{1}π☂.example";
        let rec = LandingRecord {
            publisher: PublisherId(7),
            publisher_domain: arena.intern(hostile),
            ua: UaProfile::ChromeAndroid,
            vantage: Vantage::Residential,
            click_ordinal: 2,
            landing_url: Url::http("evil.club", "/l/x.php?a=1&b=2"),
            landing_e2ld: arena.intern("evil.club"),
            dhash: Dhash(u128::MAX - 5),
            hops: Vec::new(),
            involved_urls: vec![Url::http("pub.example", "/")],
            milkable_candidate: None,
            t: SimTime(123_456),
            truth_is_attack: true,
        };
        let line = json::to_string(&landing_json(&rec, &arena));
        let parsed = json::parse(&line).expect("resolved line parses");
        assert_eq!(parsed.get("publisher_domain").and_then(Value::as_str), Some(hostile));
        assert_eq!(parsed.get("landing_e2ld").and_then(Value::as_str), Some("evil.club"));
        // Untouched fields keep the record's own serialization.
        assert_eq!(parsed.get("click_ordinal"), rec.to_json().get("click_ordinal"));
    }

    /// The `campaigns.json` entry shape: `campaign_record` output parses
    /// back to an identical `Value`, and labels round-trip as typed enums.
    #[test]
    fn campaign_record_roundtrip() {
        let cluster = ScreenshotCluster {
            members: vec![0, 3, 9],
            domains: BTreeSet::from(["a.top".to_string(), "b.club".to_string()]),
            representative: 3,
        };
        for label in [
            ClusterLabel::Campaign(SeCategory::TechnicalSupport),
            ClusterLabel::Benign(BenignKind::Parked),
        ] {
            let record = campaign_record(4, &label, &cluster);
            let text = json::to_string_pretty(&record);
            assert_eq!(json::parse(&text).expect("record parses"), record);
            roundtrip(&label);
        }
        roundtrip(&cluster);
    }

    /// The `milking.json` shape: maps with non-string keys, tuple vecs,
    /// optional timestamps, u128 content hashes.
    #[test]
    fn milking_outcome_roundtrip() {
        let report = ScanReport {
            sha: u128::MAX / 3,
            detections: 14,
            total_engines: 68,
            label: Some("trojan.fake\"flash\"".into()),
            scanned_at: SimTime(99),
        };
        let outcome = MilkingOutcome {
            sessions: 42,
            discoveries: vec![
                DomainDiscovery {
                    domain: "fresh1.top".into(),
                    landing_url: Url::http("fresh1.top", "/idx"),
                    source_idx: 0,
                    cluster: 1,
                    first_seen: SimTime(10),
                    gsb_listed_at_discovery: false,
                    gsb_listed_at: Some(SimTime(4_000)),
                },
                DomainDiscovery {
                    domain: "fresh2.club".into(),
                    landing_url: Url::http("fresh2.club", "/idx"),
                    source_idx: 1,
                    cluster: 1,
                    first_seen: SimTime(20),
                    gsb_listed_at_discovery: true,
                    gsb_listed_at: None,
                },
            ],
            files: vec![MilkedFile {
                payload: FilePayload { family: 3, sha: 1 << 100, format: FileFormat::Pe },
                page: Url::http("fresh1.top", "/dl"),
                t: SimTime(15),
                known_at_submit: false,
                initial: report.clone(),
                final_report: Some(ScanReport { detections: 31, ..report }),
            }],
            timelines: HashMap::from([
                (0, vec![(SimTime(10), "fresh1.top".to_string())]),
                (3, vec![(SimTime(11), "a.top".to_string()), (SimTime(12), "b.top".to_string())]),
            ]),
            scam_phones: vec![("+1-888-555-0100".into(), SimTime(30), 1)],
            survey_gateways: vec![(Url::http("gw.example", "/s?q=1"), SimTime(31), 2)],
            notification_grants: vec![(Url::http("push.example", "/"), SimTime(32), 0)],
        };
        roundtrip(&outcome);
    }

    /// Float-bearing summary values (rates, lags) keep their exact bits
    /// through the writer — integral floats keep a `.0` marker so they
    /// re-parse as floats.
    #[test]
    fn float_fields_roundtrip() {
        let summary = Value::Obj(vec![
            ("gsb_init_rate".to_string(), 0.127f64.to_json()),
            ("mean_lag_days".to_string(), 2.0f64.to_json()),
            ("tiny".to_string(), 1e-12f64.to_json()),
        ]);
        let text = json::to_string(&summary);
        assert!(text.contains("2.0"), "integral float must keep .0: {text}");
        assert_eq!(json::parse(&text).unwrap(), summary);
        assert_eq!(json::from_str::<f64>(&json::to_string(&0.127f64)).unwrap(), 0.127);
    }

    #[test]
    fn export_writes_release_files() {
        let mut config = PipelineConfig::small(3);
        config.world.n_publishers = 150;
        config.world.n_hidden_only_publishers = 15;
        config.milking.duration = seacma_simweb::SimDuration::from_days(1);
        config.milking.lookup_tail = seacma_simweb::SimDuration::from_days(1);
        let pipeline = Pipeline::new(config);
        let run = pipeline.run_to_completion();
        let dir = std::env::temp_dir().join(format!("seacma-export-{}", std::process::id()));
        let summary = export_run(&pipeline, &run, &dir).expect("export ok");
        assert!(summary.landings > 0);
        assert_eq!(summary.campaigns, run.discovery.clusters.campaigns.len());
        assert!(dir.join("landings.jsonl").exists());
        assert!(dir.join("campaigns.json").exists());
        assert!(dir.join("milking.json").exists());
        // jsonl parses back.
        let text = std::fs::read_to_string(dir.join("landings.jsonl")).unwrap();
        for line in text.lines().take(5) {
            let v = json::parse(line).unwrap();
            assert!(v.get("landing_url").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
