//! Dataset export.
//!
//! The paper releases "all browser logs and screenshots related to the SE
//! attacks" collected during the study, to support research on SE
//! defenses and user training. This module serializes a measurement run
//! into that release format:
//!
//! * `landings.jsonl` — one JSON record per landing page (URLs, redirect
//!   chain, hashes, attribution inputs),
//! * `campaigns.json` — the discovered campaign clusters with labels,
//! * `milking.json` — discoveries, timelines and harvested intel,
//! * `screenshots/` — one PGM per campaign-cluster representative.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_simweb::Vantage;

use crate::pipeline::{Pipeline, PipelineRun};

/// Summary of what was written.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExportSummary {
    /// Landing records exported.
    pub landings: usize,
    /// Campaign clusters exported.
    pub campaigns: usize,
    /// Screenshot files written.
    pub screenshots: usize,
}

/// Exports a full run under `dir`.
pub fn export_run(
    pipeline: &Pipeline,
    run: &PipelineRun,
    dir: &Path,
) -> std::io::Result<ExportSummary> {
    fs::create_dir_all(dir.join("screenshots"))?;
    let landings = run.discovery.landings();

    // landings.jsonl
    let mut f = fs::File::create(dir.join("landings.jsonl"))?;
    for l in &landings {
        serde_json::to_writer(&mut f, l)?;
        f.write_all(b"\n")?;
    }

    // campaigns.json
    #[derive(Serialize)]
    struct CampaignOut<'a> {
        index: usize,
        label: &'a crate::label::ClusterLabel,
        members: &'a [usize],
        domains: Vec<&'a str>,
        representative: usize,
    }
    let campaigns: Vec<CampaignOut> = run
        .discovery
        .clusters
        .campaigns
        .iter()
        .enumerate()
        .map(|(i, c)| CampaignOut {
            index: i,
            label: &run.discovery.labels[i],
            members: &c.members,
            domains: c.domains.iter().map(String::as_str).collect(),
            representative: c.representative,
        })
        .collect();
    fs::write(dir.join("campaigns.json"), serde_json::to_vec_pretty(&campaigns)?)?;

    // milking.json
    fs::write(dir.join("milking.json"), serde_json::to_vec_pretty(&run.milking)?)?;

    // screenshots: re-render each campaign representative at its original
    // (url, time) coordinates.
    let mut shots = 0usize;
    for (i, c) in run.discovery.clusters.campaigns.iter().enumerate() {
        let rep = landings[c.representative];
        let cfg = BrowserConfig::instrumented(rep.ua, Vantage::Residential);
        let mut session = BrowserSession::new(pipeline.world(), cfg, rep.t);
        if let Ok(loaded) = session.navigate(&rep.landing_url) {
            fs::write(
                dir.join("screenshots").join(format!("cluster{i:03}.pgm")),
                loaded.screenshot.to_pgm(),
            )?;
            shots += 1;
        }
    }

    Ok(ExportSummary { landings: landings.len(), campaigns: campaigns.len(), screenshots: shots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;

    #[test]
    fn export_writes_release_files() {
        let mut config = PipelineConfig::small(3);
        config.world.n_publishers = 150;
        config.world.n_hidden_only_publishers = 15;
        config.milking.duration = seacma_simweb::SimDuration::from_days(1);
        config.milking.lookup_tail = seacma_simweb::SimDuration::from_days(1);
        let pipeline = Pipeline::new(config);
        let run = pipeline.run_to_completion();
        let dir = std::env::temp_dir().join(format!("seacma-export-{}", std::process::id()));
        let summary = export_run(&pipeline, &run, &dir).expect("export ok");
        assert!(summary.landings > 0);
        assert_eq!(summary.campaigns, run.discovery.clusters.campaigns.len());
        assert!(dir.join("landings.jsonl").exists());
        assert!(dir.join("campaigns.json").exists());
        assert!(dir.join("milking.json").exists());
        // jsonl parses back.
        let text = std::fs::read_to_string(dir.join("landings.jsonl")).unwrap();
        for line in text.lines().take(5) {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("landing_url").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
