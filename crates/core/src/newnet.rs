//! New ad-network discovery from unknown attributions (§3.6, §4.4).
//!
//! SE attacks whose involved URLs match no seed pattern are "unknown". The
//! paper's analysts eyeballed 50 such logs, spotted recurring URL
//! artifacts, identified the networks behind them (Ero Advertising, Yllix,
//! AdCenter) and re-queried PublicWWW — gaining 8,981 new publishers in
//! under an hour. This module automates the same loop: mine recurring
//! path tokens from unknown-attack URL sets, lift each token to a network
//! identity, and re-run the source search.

use std::collections::HashMap;

use seacma_util::impl_json_struct;

use seacma_graph::{Attribution, NetworkPattern};
use seacma_simweb::search::SourceSearch;
use seacma_simweb::World;

use crate::pipeline::DiscoveryOutput;

/// How many unknown attacks a path token must recur in before it is
/// considered a network invariant (the paper sampled 50 logs; recurring
/// artifacts stood out immediately).
pub const MIN_TOKEN_SUPPORT: usize = 5;

/// Result of the discovery loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NewNetworkDiscovery {
    /// Unknown SE attacks examined.
    pub unknown_attacks: usize,
    /// Newly identified networks with their mined invariants.
    pub new_patterns: Vec<NetworkPattern>,
    /// Additional publishers found by re-querying the source search with
    /// the new invariants (the crawl-pool expansion).
    pub new_publishers: usize,
}

/// Runs the discovery loop over a finished discovery phase.
pub fn discover_networks(world: &World, discovery: &DiscoveryOutput) -> NewNetworkDiscovery {
    let landings: Vec<_> = discovery.landings().collect();

    // Collect the involved URLs of unknown *SE* attacks.
    let mut token_support: HashMap<String, usize> = HashMap::new();
    let mut token_host: HashMap<String, String> = HashMap::new();
    let mut unknown_attacks = 0usize;
    for (i, att) in discovery.attributions.iter().enumerate() {
        if *att != Attribution::Unknown || !landings[i].truth_is_attack {
            continue;
        }
        unknown_attacks += 1;
        for url in landings[i].chain_urls() {
            // Mine the leading path segment as the candidate artifact
            // (e.g. `/eroadv/` from `/eroadv/frame.php`).
            if let Some(token) = leading_segment(&url.path) {
                *token_support.entry(token.clone()).or_default() += 1;
                token_host.entry(token).or_insert_with(|| url.host.clone());
            }
        }
    }

    // Tokens that recur across many unknown attacks and belong to no seed
    // network are new-network invariants.
    let seed_invariants: Vec<&str> = world
        .networks()
        .iter()
        .filter(|n| n.seed_listed)
        .map(|n| n.url_invariant.as_str())
        .collect();
    let mut new_patterns = Vec::new();
    let mut tokens: Vec<(String, usize)> = token_support
        .into_iter()
        .filter(|(t, support)| {
            *support >= MIN_TOKEN_SUPPORT
                && !seed_invariants.iter().any(|inv| inv.starts_with(t.as_str()))
                && !is_generic_token(t)
        })
        .collect();
    tokens.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (token, _) in tokens {
        // "Identify the network" — the paper used search engines on the
        // artifact; our stand-in resolves the hosting domain against the
        // ecosystem's ownership records. Artifacts that don't resolve to
        // an ad-serving host (e.g. a single campaign's landing path that
        // recurred) are discarded, as an analyst would.
        let Some(name) = token_host
            .get(&token)
            .and_then(|h| world.network_of_code_domain(h))
            .map(|id| world.networks()[id.0 as usize].name.clone())
        else {
            continue;
        };
        if new_patterns.iter().any(|p: &NetworkPattern| p.name == name) {
            continue;
        }
        new_patterns.push(NetworkPattern { name, url_invariant: token });
    }

    // Re-query the source search with the new networks' JS invariants to
    // expand the publisher pool.
    let search = SourceSearch::new(world);
    let mut expansion: std::collections::HashSet<seacma_simweb::PublisherId> =
        std::collections::HashSet::new();
    let known_pool: std::collections::HashSet<_> = discovery
        .institutional_pool
        .iter()
        .chain(&discovery.residential_pool)
        .copied()
        .collect();
    for p in &new_patterns {
        if let Some(net) = world.networks().iter().find(|n| n.name == p.name) {
            for pid in search.search(&net.js_invariant) {
                if !known_pool.contains(&pid) {
                    expansion.insert(pid);
                }
            }
        }
    }

    NewNetworkDiscovery {
        unknown_attacks,
        new_patterns,
        new_publishers: expansion.len(),
    }
}

/// Extracts the leading path segment (`/seg/`) of a URL path.
fn leading_segment(path: &str) -> Option<String> {
    let rest = path.strip_prefix('/')?;
    let end = rest.find('/')?;
    if end == 0 {
        return None;
    }
    Some(format!("/{}/", &rest[..end]))
}

/// Path segments too generic to be network invariants (attack landing
/// paths and publisher content live here).
fn is_generic_token(t: &str) -> bool {
    // Attack landing paths are gibberish per campaign and never recur
    // across campaigns; TDS paths are single-segment. The only generic
    // collision risk is the shared "/offer" advertiser path.
    t == "/offer/" || t == "/landing/"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_segment_extraction() {
        assert_eq!(leading_segment("/eroadv/frame.php"), Some("/eroadv/".into()));
        assert_eq!(leading_segment("/x"), None);
        assert_eq!(leading_segment("nope"), None);
        assert_eq!(leading_segment("//x"), None);
    }

    #[test]
    fn generic_tokens_filtered() {
        assert!(is_generic_token("/offer/"));
        assert!(!is_generic_token("/eroadv/"));
    }
}
impl_json_struct!(NewNetworkDiscovery { unknown_attacks, new_patterns, new_publishers });
