//! Report generators: Tables 1–4, the cluster breakdown, the §6 ethics
//! cost analysis and plain-text table rendering.

use std::collections::{BTreeMap, HashMap, HashSet};

use seacma_util::impl_json_struct;

use seacma_blacklist::GsbService;
use seacma_graph::Attribution;
use seacma_milker::MilkingOutcome;
use seacma_simweb::categorize::Categorizer;
use seacma_simweb::{SeCategory, SimDuration, SimTime, SiteCategory, World};

use crate::label::{BenignKind, ClusterLabel};
use crate::pipeline::{crawl_end, DiscoveryOutput};

/// How long after the crawl the Table-1 GSB lookups are anchored (the
/// paper kept checking domains throughout the study).
pub const TABLE1_LOOKUP_DELAY: SimDuration = SimDuration::from_days(12);

// ---------------------------------------------------------------------------
// Table 1 — SE ad campaign statistics
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// SE category.
    pub category: SeCategory,
    /// SE attack instances observed.
    pub se_attacks: usize,
    /// Distinct attack domains.
    pub attack_domains: usize,
    /// Campaigns (clusters) of the category.
    pub campaigns: usize,
    /// Percent of attack domains GSB listed.
    pub gsb_domain_pct: f64,
    /// Percent of campaigns with ≥ 1 listed domain.
    pub gsb_campaign_pct: f64,
}

/// Builds Table 1 from a discovery output.
pub fn table1(world: &World, discovery: &DiscoveryOutput) -> Vec<Table1Row> {
    let landings: Vec<_> = discovery.landings().collect();
    let lookup_t = crawl_end(&discovery.crawl) + TABLE1_LOOKUP_DELAY;
    let mut gsb = GsbService::new(world);

    // Sample observation time per domain (anchors GSB ground truth).
    let arena = discovery.arena.read();
    let mut domain_seen_at: HashMap<&str, SimTime> = HashMap::new();
    for l in &landings {
        domain_seen_at.entry(arena.resolve(l.landing_e2ld)).or_insert(l.t);
    }

    let mut rows = Vec::new();
    for cat in SeCategory::ALL {
        let mut se_attacks = 0usize;
        let mut domains: HashSet<&str> = HashSet::new();
        let mut campaigns = 0usize;
        let mut campaigns_detected = 0usize;
        for (ci, cluster) in discovery.clusters.campaigns.iter().enumerate() {
            if discovery.labels[ci] != ClusterLabel::Campaign(cat) {
                continue;
            }
            campaigns += 1;
            se_attacks += cluster.len();
            let mut any_listed = false;
            for d in &cluster.domains {
                domains.insert(d.as_str());
                let t_seen = domain_seen_at.get(d.as_str()).copied().unwrap_or(lookup_t);
                if gsb.listing_time(d, t_seen).is_some_and(|at| at <= lookup_t) {
                    any_listed = true;
                }
            }
            if any_listed {
                campaigns_detected += 1;
            }
        }
        let listed_domains = domains
            .iter()
            .filter(|d| {
                let t_seen = domain_seen_at.get(*d).copied().unwrap_or(lookup_t);
                gsb.listing_time(d, t_seen).is_some_and(|at| at <= lookup_t)
            })
            .count();
        rows.push(Table1Row {
            category: cat,
            se_attacks,
            attack_domains: domains.len(),
            campaigns,
            gsb_domain_pct: pct(listed_domains, domains.len()),
            gsb_campaign_pct: pct(campaigns_detected, campaigns),
        });
    }
    rows
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.name().to_string(),
                r.se_attacks.to_string(),
                r.attack_domains.to_string(),
                r.campaigns.to_string(),
                format!("{:.1}%", r.gsb_domain_pct),
                format!("{:.1}%", r.gsb_campaign_pct),
            ]
        })
        .collect();
    let total_attacks: usize = rows.iter().map(|r| r.se_attacks).sum();
    let total_domains: usize = rows.iter().map(|r| r.attack_domains).sum();
    let total_campaigns: usize = rows.iter().map(|r| r.campaigns).sum();
    body.push(vec![
        "TOTAL".into(),
        total_attacks.to_string(),
        total_domains.to_string(),
        total_campaigns.to_string(),
        String::new(),
        String::new(),
    ]);
    render_text_table(
        &["Category", "# SE Attacks", "# Attack Domains", "# Campaigns", "GSB% dom", "GSB% camp"],
        &body,
    )
}

// ---------------------------------------------------------------------------
// Table 2 — publisher categories
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Site category.
    pub category: SiteCategory,
    /// SEACMA-hosting publisher domains in the category.
    pub publishers: usize,
    /// Percent of all SEACMA-hosting publishers.
    pub pct: f64,
}

/// Builds Table 2: categories of publishers that hosted at least one SE
/// attack landing.
pub fn table2(world: &World, discovery: &DiscoveryOutput, top_n: usize) -> Vec<Table2Row> {
    let landings: Vec<_> = discovery.landings().collect();
    let categorizer = Categorizer::new(world);
    // Publishers hosting SEACMA ads: those whose clicks landed on a
    // campaign-cluster member.
    let arena = discovery.arena.read();
    let mut hosts: HashSet<&str> = HashSet::new();
    for (ci, cluster) in discovery.clusters.campaigns.iter().enumerate() {
        if !discovery.labels[ci].is_campaign() {
            continue;
        }
        for &m in &cluster.members {
            hosts.insert(arena.resolve(landings[m].publisher_domain));
        }
    }
    let total = hosts.len();
    let mut counts: BTreeMap<SiteCategory, usize> = BTreeMap::new();
    for h in hosts {
        *counts.entry(categorizer.categorize(h)).or_default() += 1;
    }
    let mut rows: Vec<Table2Row> = counts
        .into_iter()
        .map(|(category, publishers)| Table2Row {
            category,
            publishers,
            pct: pct(publishers, total),
        })
        .collect();
    rows.sort_by(|a, b| b.publishers.cmp(&a.publishers));
    rows.truncate(top_n);
    rows
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.category.name().to_string(), r.publishers.to_string(), format!("{:.2}", r.pct)]
        })
        .collect();
    render_text_table(&["Category", "# Publisher Domains", "% of Total"], &body)
}

// ---------------------------------------------------------------------------
// Table 3 — SE attacks per ad network
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Network name ("Unknown" for unmatched SE attacks).
    pub network: String,
    /// Distinct ad-serving domains observed for the network.
    pub network_domains: usize,
    /// Landing pages reached through the network's ads.
    pub landing_pages: usize,
    /// SE attack pages among them.
    pub se_pages: usize,
    /// Percent SE.
    pub se_pct: f64,
}

/// Builds Table 3 from discovery attributions.
pub fn table3(world: &World, discovery: &DiscoveryOutput) -> Vec<Table3Row> {
    let landings: Vec<_> = discovery.landings().collect();
    let mut landing_count: HashMap<&str, usize> = HashMap::new();
    let mut se_count: HashMap<&str, usize> = HashMap::new();
    let mut domains: HashMap<&str, HashSet<String>> = HashMap::new();
    let mut unknown_se = 0usize;

    // Which landings are members of SE campaign clusters (the pipeline's
    // own notion of "SE attack page").
    let mut is_se = vec![false; landings.len()];
    for (ci, cluster) in discovery.clusters.campaigns.iter().enumerate() {
        if discovery.labels[ci].is_campaign() {
            for &m in &cluster.members {
                is_se[m] = true;
            }
        }
    }

    for (i, att) in discovery.attributions.iter().enumerate() {
        match att {
            Attribution::Known(name) => {
                let name = name.as_str();
                *landing_count.entry(name_ref(world, name)).or_default() += 1;
                if is_se[i] {
                    *se_count.entry(name_ref(world, name)).or_default() += 1;
                }
                // Ad-serving domains seen for this network.
                if let Some(net) = world.networks().iter().find(|n| n.name == name) {
                    let entry = domains.entry(name_ref(world, name)).or_default();
                    for u in &landings[i].involved_urls {
                        if u.contains(&net.url_invariant) {
                            entry.insert(u.host.clone());
                        }
                    }
                }
            }
            Attribution::Unknown => {
                if is_se[i] {
                    unknown_se += 1;
                }
            }
        }
    }

    let mut rows: Vec<Table3Row> = world
        .networks()
        .iter()
        .filter(|n| n.seed_listed)
        .map(|n| {
            let name = n.name.as_str();
            let lp = landing_count.get(name).copied().unwrap_or(0);
            let se = se_count.get(name).copied().unwrap_or(0);
            Table3Row {
                network: n.name.clone(),
                network_domains: domains.get(name).map_or(0, HashSet::len),
                landing_pages: lp,
                se_pages: se,
                se_pct: pct(se, lp),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.landing_pages.cmp(&a.landing_pages));
    rows.push(Table3Row {
        network: "Unknown".into(),
        network_domains: 0,
        landing_pages: 0,
        se_pages: unknown_se,
        se_pct: 0.0,
    });
    rows
}

fn name_ref<'w>(world: &'w World, name: &str) -> &'w str {
    world
        .networks()
        .iter()
        .find(|n| n.name == name)
        .map(|n| n.name.as_str())
        .expect("attributed name must exist")
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                if r.network == "Unknown" { "-".into() } else { r.network_domains.to_string() },
                if r.network == "Unknown" { "-".into() } else { r.landing_pages.to_string() },
                r.se_pages.to_string(),
                if r.network == "Unknown" { "-".into() } else { format!("{:.2}%", r.se_pct) },
            ]
        })
        .collect();
    render_text_table(
        &["Ad network", "# Net domains", "# Landing Pages", "# SE Attack Pages", "% SE"],
        &body,
    )
}

// ---------------------------------------------------------------------------
// Table 4 — milking
// ---------------------------------------------------------------------------

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Category group (Scareware and Technical Support are merged, as in
    /// the paper).
    pub group: String,
    /// New domains discovered by milking.
    pub domains: usize,
    /// Percent listed by GSB at discovery.
    pub gsb_init_pct: f64,
    /// Percent listed by the end of all lookups.
    pub gsb_final_pct: f64,
}

/// Builds Table 4 from a milking outcome plus the cluster labels that map
/// each source's cluster to a category.
pub fn table4(labels: &[ClusterLabel], milking: &MilkingOutcome) -> Vec<Table4Row> {
    let group_of = |cat: SeCategory| -> &'static str {
        match cat {
            SeCategory::FakeSoftware => "Fake Software",
            SeCategory::LotteryGift => "Lottery/Gift",
            SeCategory::ChromeNotifications => "Chrome Notifications",
            SeCategory::Registration => "Registration",
            SeCategory::Scareware | SeCategory::TechnicalSupport => "Tech Support/Scareware",
        }
    };
    let order = [
        "Fake Software",
        "Lottery/Gift",
        "Chrome Notifications",
        "Registration",
        "Tech Support/Scareware",
    ];
    let mut domains: HashMap<&str, usize> = HashMap::new();
    let mut init: HashMap<&str, usize> = HashMap::new();
    let mut fin: HashMap<&str, usize> = HashMap::new();
    let mut total = (0usize, 0usize, 0usize);
    for d in &milking.discoveries {
        let Some(cat) = labels.get(d.cluster).and_then(|l| l.category()) else {
            continue;
        };
        let g = group_of(cat);
        *domains.entry(g).or_default() += 1;
        if d.gsb_listed_at_discovery {
            *init.entry(g).or_default() += 1;
        }
        if d.gsb_listed_at.is_some() {
            *fin.entry(g).or_default() += 1;
        }
        total.0 += 1;
        total.1 += usize::from(d.gsb_listed_at_discovery);
        total.2 += usize::from(d.gsb_listed_at.is_some());
    }
    let mut rows: Vec<Table4Row> = order
        .iter()
        .map(|g| {
            let n = domains.get(g).copied().unwrap_or(0);
            Table4Row {
                group: g.to_string(),
                domains: n,
                gsb_init_pct: pct(init.get(g).copied().unwrap_or(0), n),
                gsb_final_pct: pct(fin.get(g).copied().unwrap_or(0), n),
            }
        })
        .collect();
    rows.push(Table4Row {
        group: "Total".into(),
        domains: total.0,
        gsb_init_pct: pct(total.1, total.0),
        gsb_final_pct: pct(total.2, total.0),
    });
    rows
}

/// Renders Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.clone(),
                r.domains.to_string(),
                format!("{:.2}%", r.gsb_init_pct),
                format!("{:.2}%", r.gsb_final_pct),
            ]
        })
        .collect();
    render_text_table(&["SE Category", "# Domains", "GSB-init", "GSB-final"], &body)
}

// ---------------------------------------------------------------------------
// Cluster breakdown (§4.3)
// ---------------------------------------------------------------------------

/// Counts of cluster kinds (the paper's "130 clusters → 108 campaigns +
/// 22 benign (11 parked, 6 stock, 4 shortener, 1 spurious)").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterBreakdown {
    /// Campaign clusters.
    pub se_campaigns: usize,
    /// Parked-domain clusters.
    pub parked: usize,
    /// Stock-image clusters.
    pub stock: usize,
    /// Shortener clusters.
    pub shortener: usize,
    /// Spurious load-error clusters.
    pub spurious: usize,
    /// Other benign clusters.
    pub other: usize,
}

impl ClusterBreakdown {
    /// Tallies the labels.
    pub fn over(labels: &[ClusterLabel]) -> Self {
        let mut b = ClusterBreakdown::default();
        for l in labels {
            match l {
                ClusterLabel::Campaign(_) => b.se_campaigns += 1,
                ClusterLabel::Benign(BenignKind::Parked) => b.parked += 1,
                ClusterLabel::Benign(BenignKind::StockImages) => b.stock += 1,
                ClusterLabel::Benign(BenignKind::UrlShortener) => b.shortener += 1,
                ClusterLabel::Benign(BenignKind::SpuriousLoadError) => b.spurious += 1,
                ClusterLabel::Benign(BenignKind::OtherBenign) => b.other += 1,
            }
        }
        b
    }

    /// Total clusters labeled.
    pub fn total(&self) -> usize {
        self.se_campaigns + self.benign()
    }

    /// Total benign clusters.
    pub fn benign(&self) -> usize {
        self.parked + self.stock + self.shortener + self.spurious + self.other
    }
}

// ---------------------------------------------------------------------------
// Ethics cost analysis (§6)
// ---------------------------------------------------------------------------

/// The §6 advertiser-cost estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EthicsReport {
    /// Assumed CPM in USD (paper: $4).
    pub cpm_usd: f64,
    /// Distinct legitimate (non-SE) advertiser domains reached.
    pub legit_domains: usize,
    /// Total clicks that landed on legitimate domains.
    pub legit_clicks: usize,
    /// Worst-case domain and its visit count.
    pub worst: Option<(String, usize)>,
    /// Mean clicks per legitimate domain.
    pub mean_clicks: f64,
}

impl EthicsReport {
    /// Builds the report over a discovery output.
    pub fn over(discovery: &DiscoveryOutput) -> EthicsReport {
        let arena = discovery.arena.read();
        let mut per_domain: HashMap<&str, usize> = HashMap::new();
        for l in discovery.crawl.landings() {
            if !l.truth_is_attack {
                *per_domain.entry(arena.resolve(l.landing_e2ld)).or_default() += 1;
            }
        }
        let legit_clicks: usize = per_domain.values().sum();
        let worst = per_domain
            .iter()
            .max_by_key(|(d, n)| (**n, std::cmp::Reverse(*d)))
            .map(|(d, n)| (d.to_string(), *n));
        let legit_domains = per_domain.len();
        EthicsReport {
            cpm_usd: 4.0,
            legit_domains,
            legit_clicks,
            worst,
            mean_clicks: if legit_domains == 0 {
                0.0
            } else {
                legit_clicks as f64 / legit_domains as f64
            },
        }
    }

    /// Estimated worst-case cost to a single advertiser, USD.
    pub fn worst_cost_usd(&self) -> f64 {
        self.worst.as_ref().map_or(0.0, |(_, n)| *n as f64 * self.cpm_usd / 1000.0)
    }

    /// Estimated mean cost per advertiser, USD.
    pub fn mean_cost_usd(&self) -> f64 {
        self.mean_clicks * self.cpm_usd / 1000.0
    }
}

// ---------------------------------------------------------------------------
// Analysis extraction (feeds the seacma-report Analysis implementations)
// ---------------------------------------------------------------------------

/// GSB listing lags across a milking outcome, in fractional virtual days,
/// ascending. Domains GSB never listed are excluded — count them with
/// [`gsb_unlisted`]; together the two cover every discovery exactly once.
pub fn gsb_lag_days(milking: &MilkingOutcome) -> Vec<f64> {
    let mut lags: Vec<f64> = milking
        .discoveries
        .iter()
        .filter_map(|d| d.gsb_lag())
        .map(|lag| lag.minutes() as f64 / (24.0 * 60.0))
        .collect();
    lags.sort_by(f64::total_cmp);
    lags
}

/// Number of milked domains GSB never listed (the paper's blacklist-gap
/// headline; the complement of [`gsb_lag_days`]).
pub fn gsb_unlisted(milking: &MilkingOutcome) -> usize {
    milking.discoveries.iter().filter(|d| d.gsb_listed_at.is_none()).count()
}

/// Campaign-cluster sizes (screenshot counts per θc-surviving cluster),
/// descending — the raw series behind the cluster-size distribution.
pub fn cluster_sizes(discovery: &DiscoveryOutput) -> Vec<u32> {
    let mut sizes: Vec<u32> =
        discovery.clusters.campaigns.iter().map(|c| c.len() as u32).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

// ---------------------------------------------------------------------------
// CSV rendering (machine-readable exports of the same tables)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// ASCII histograms (figure-style terminal output)
// ---------------------------------------------------------------------------

/// Renders a horizontal ASCII histogram of `values` over `bins` equal-width
/// buckets spanning `[min, max]`. Used for the GSB-lag distribution.
pub fn render_histogram(values: &[f64], bins: usize, min: f64, max: f64, unit: &str) -> String {
    if values.is_empty() || bins == 0 || max <= min {
        return String::from("(no data)\n");
    }
    let width = (max - min) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &n) in counts.iter().enumerate() {
        let lo = min + i as f64 * width;
        let hi = lo + width;
        let bar = "█".repeat(n * 40 / peak);
        out.push_str(&format!("{lo:>7.1}–{hi:<7.1} {unit} |{bar} {n}\n"));
    }
    out
}

/// Escapes one CSV field.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders rows of fields as CSV with a header line.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.iter().map(|h| csv_field(h)).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| csv_field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Table 1 as CSV.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    render_csv(
        &["category", "se_attacks", "attack_domains", "campaigns", "gsb_domain_pct", "gsb_campaign_pct"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.category.name().to_string(),
                    r.se_attacks.to_string(),
                    r.attack_domains.to_string(),
                    r.campaigns.to_string(),
                    format!("{:.2}", r.gsb_domain_pct),
                    format!("{:.2}", r.gsb_campaign_pct),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Table 3 as CSV.
pub fn table3_csv(rows: &[Table3Row]) -> String {
    render_csv(
        &["network", "network_domains", "landing_pages", "se_pages", "se_pct"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.network_domains.to_string(),
                    r.landing_pages.to_string(),
                    r.se_pages.to_string(),
                    format!("{:.2}", r.se_pct),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Table 4 as CSV.
pub fn table4_csv(rows: &[Table4Row]) -> String {
    render_csv(
        &["group", "domains", "gsb_init_pct", "gsb_final_pct"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.group.clone(),
                    r.domains.to_string(),
                    format!("{:.2}", r.gsb_init_pct),
                    format!("{:.2}", r.gsb_final_pct),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------------
// Text-table rendering
// ---------------------------------------------------------------------------

/// Renders an aligned plain-text table.
pub fn render_text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = |w: &Vec<usize>| -> String {
        let mut s = String::from("+");
        for width in w {
            s.push_str(&"-".repeat(width + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let mut out = sep(&widths);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&sep(&widths));
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&sep(&widths));
    out
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let t = render_text_table(
            &["A", "Bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "ragged table:\n{t}");
        assert!(t.contains("| 333 | 4"));
    }

    #[test]
    fn histogram_renders_and_handles_edges() {
        let h = render_histogram(&[1.0, 2.0, 2.5, 39.0], 4, 0.0, 40.0, "d");
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('█'));
        assert_eq!(render_histogram(&[], 4, 0.0, 1.0, "d"), "(no data)\n");
        assert_eq!(render_histogram(&[1.0], 0, 0.0, 1.0, "d"), "(no data)\n");
        // Out-of-range values clamp into the last bucket.
        let h2 = render_histogram(&[100.0], 2, 0.0, 10.0, "d");
        assert!(h2.lines().last().unwrap().ends_with('1'));
    }

    #[test]
    fn csv_escaping() {
        let out = render_csv(&["a", "b"], &[vec!["x,y".into(), "q\"z".into()]]);
        assert_eq!(out, "a,b\n\"x,y\",\"q\"\"z\"\n");
    }

    #[test]
    fn table_csvs_have_headers_and_rows() {
        let rows = vec![Table4Row {
            group: "Fake Software".into(),
            domains: 10,
            gsb_init_pct: 1.0,
            gsb_final_pct: 20.0,
        }];
        let csv = table4_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "group,domains,gsb_init_pct,gsb_final_pct");
        assert_eq!(lines.next().unwrap(), "Fake Software,10,1.00,20.00");
    }

    #[test]
    fn pct_safe_on_zero() {
        assert_eq!(pct(0, 0), 0.0);
        assert_eq!(pct(1, 4), 25.0);
    }

    #[test]
    fn breakdown_tallies() {
        use seacma_simweb::SeCategory;
        let labels = [
            ClusterLabel::Campaign(SeCategory::FakeSoftware),
            ClusterLabel::Campaign(SeCategory::Scareware),
            ClusterLabel::Benign(BenignKind::Parked),
            ClusterLabel::Benign(BenignKind::UrlShortener),
            ClusterLabel::Benign(BenignKind::SpuriousLoadError),
        ];
        let b = ClusterBreakdown::over(&labels);
        assert_eq!(b.se_campaigns, 2);
        assert_eq!(b.benign(), 3);
        assert_eq!(b.total(), 5);
    }
}
impl_json_struct!(Table1Row {
    category,
    se_attacks,
    attack_domains,
    campaigns,
    gsb_domain_pct,
    gsb_campaign_pct,
});
impl_json_struct!(Table2Row { category, publishers, pct });
impl_json_struct!(Table3Row { network, network_domains, landing_pages, se_pages, se_pct });
impl_json_struct!(Table4Row { group, domains, gsb_init_pct, gsb_final_pct });
impl_json_struct!(ClusterBreakdown { se_campaigns, parked, stock, shortener, spurious, other });
impl_json_struct!(EthicsReport { cpm_usd, legit_domains, legit_clicks, worst, mean_clicks });
