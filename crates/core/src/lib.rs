//! # seacma-core
//!
//! The end-to-end SEACMA discovery-and-tracking pipeline — Figure 2 of
//! *"What You See is NOT What You Get: Discovering and Tracking Social
//! Engineering Attack Campaigns"* (Vadrevu & Perdisci, IMC 2019) — plus
//! the report generators that reproduce every table of the evaluation.
//!
//! Pipeline stages (circled numbers are the paper's):
//!
//! 1. **Seed ad networks** ① — the 11 low-tier networks with manually
//!    derived invariant patterns.
//! 2. **Publisher reversal** ② — a PublicWWW-style source search turns
//!    the invariants into a crawlable publisher pool, split into the
//!    institutional pool and the residential pool (sites running cloaking
//!    networks).
//! 3. **Crawling** ③ — the parallel crawler farm visits every publisher
//!    with four Browser/OS profiles, clicking size-ranked elements and
//!    recording landings.
//! 4. **Screenshot hashing** ④ and **clustering** ⑤ — 128-bit dhash +
//!    DBSCAN over `(dhash, e2LD)` pairs, θc domain filter.
//! 5. **Campaign tracking (milking)** ⑥ — milkable-URL extraction from
//!    backtracking graphs, source validation, 14-day milking with GSB and
//!    VirusTotal measurement.
//! 6. **Ad attribution** ⑦ — invariant matching over involved-URL sets;
//!    unknown attacks feed the new-ad-network discovery loop that widens
//!    the publisher pool.
//!
//! Use [`Pipeline`] to run stages individually or
//! [`Pipeline::run_to_completion`] for the whole measurement. [`report`]
//! renders Tables 1–4, the cluster breakdown, the AdBlock experiment and
//! the ethics cost analysis.

#![deny(missing_docs)]

pub mod adblock;
pub mod config;
pub mod detecteval;
pub mod export;
pub mod invariants;
pub mod label;
pub mod newnet;
pub mod parking;
pub mod pipeline;
pub mod report;

pub use config::PipelineConfig;
pub use label::{BenignKind, ClusterLabel};
pub use pipeline::{DiscoveryOutput, Pipeline, PipelineRun, TrackingOutput};

// Re-export the workspace API surface so downstream users (examples,
// benches) can depend on `seacma-core` alone.
pub use seacma_blacklist as blacklist;
pub use seacma_browser as browser;
pub use seacma_crawler as crawler;
pub use seacma_detect as detect;
pub use seacma_graph as graph;
pub use seacma_milker as milker;
pub use seacma_simweb as simweb;
pub use seacma_tracker as tracker;
pub use seacma_vision as vision;
