//! Pipeline configuration.

use seacma_util::impl_json_struct;

use seacma_crawler::{CrawlPolicy, CrawlSchedule};
use seacma_milker::MilkingConfig;
use seacma_simweb::{UaProfile, WorldConfig};
use seacma_tracker::LedgerConfig;
use seacma_vision::cluster::ClusterParams;

/// Everything that parameterizes one end-to-end measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// World generation parameters (seed, scale).
    pub world: WorldConfig,
    /// Per-visit crawl budgets.
    pub crawl: CrawlPolicy,
    /// Virtual-time crawl schedule (lanes × session length fixes the
    /// crawl span, which must cover several campaign rotation periods for
    /// the θc filter to see multi-domain campaigns).
    pub schedule: CrawlSchedule,
    /// Browser/OS profiles to crawl with (paper: all four).
    pub uas: Vec<UaProfile>,
    /// Worker threads for the parallel stages — crawl farm, screenshot
    /// clustering and the milking simulate phase (0 ⇒ available
    /// parallelism). All three are byte-identical at any worker count.
    pub workers: usize,
    /// Fraction of the residential (cloaking-network) pool actually
    /// visited — the paper managed 11,182 of 34,068 sites over
    /// residential links.
    pub residential_visit_fraction: f64,
    /// Clustering parameters (dhash DBSCAN + θc).
    pub clustering: ClusterParams,
    /// Milking cadence and measurement windows.
    pub milking: MilkingConfig,
    /// Cap on milking sources (paper ran 505 `(URL, UA)` pairs).
    pub max_milking_sources: usize,
    /// Epochs the crawl phase is replayed through the campaign tracker as
    /// (contiguous prefix chunks of the flattened landing order, so the
    /// final tracker snapshot equals the batch discovery clustering).
    pub crawl_track_epochs: usize,
    /// Dormancy/death thresholds for the campaign lifecycle ledger.
    pub track_ledger: LedgerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            crawl: CrawlPolicy::default(),
            schedule: CrawlSchedule::default(),
            uas: UaProfile::ALL.to_vec(),
            workers: 0,
            residential_visit_fraction: 0.33,
            clustering: ClusterParams::default(),
            milking: MilkingConfig::default(),
            max_milking_sources: 505,
            crawl_track_epochs: 4,
            track_ledger: LedgerConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A reduced configuration for fast tests and examples: a few hundred
    /// publishers, two UAs, short milking.
    pub fn small(seed: u64) -> Self {
        Self {
            world: WorldConfig {
                seed,
                n_publishers: 600,
                n_hidden_only_publishers: 60,
                n_advertisers: 40,
                campaign_scale: 0.3,
                ..Default::default()
            },
            uas: vec![UaProfile::ChromeMac, UaProfile::ChromeAndroid],
            // Few publishers ⇒ stretch the schedule so the crawl still
            // spans several rotation periods.
            schedule: CrawlSchedule {
                lanes: 2,
                session_len: seacma_simweb::SimDuration::from_minutes(20),
                ..Default::default()
            },
            milking: MilkingConfig {
                duration: seacma_simweb::SimDuration::from_days(3),
                lookup_tail: seacma_simweb::SimDuration::from_days(2),
                ..Default::default()
            },
            max_milking_sources: 120,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = PipelineConfig::default();
        assert_eq!(c.uas.len(), 4);
        assert_eq!(c.max_milking_sources, 505);
        assert_eq!(c.clustering.theta_c, 5);
        assert_eq!(c.milking.period.minutes(), 15);
        assert_eq!(c.milking.duration.minutes(), 14 * 24 * 60);
    }

    #[test]
    fn small_config_is_smaller() {
        let s = PipelineConfig::small(1);
        let d = PipelineConfig::default();
        assert!(s.world.n_publishers < d.world.n_publishers);
        assert!(s.milking.duration < d.milking.duration);
    }
}
impl_json_struct!(PipelineConfig {
    world,
    crawl,
    schedule,
    uas,
    workers,
    residential_visit_fraction,
    clustering,
    milking,
    max_milking_sources,
    crawl_track_epochs,
    track_ledger,
});
