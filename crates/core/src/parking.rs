//! Automatic parked-domain filtering.
//!
//! The paper found that 11 of its 22 benign clusters were parked or
//! inaccessible domains and noted: "Most of these domains could be
//! automatically filtered out using parking detection algorithms \[38\].
//! We leave adding this automated filtering component to future work."
//! This module implements that component, following the structural cues
//! of Vissers et al. (NDSS'15): parking pages are script-light, carry no
//! interactive application content, show placeholder titles and the same
//! skeleton across unrelated domains.
//!
//! The detector re-visits a cluster's representative landing and scores
//! structural features — it never consults the simulator's ground truth.

use seacma_util::impl_json_struct;

use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_crawler::LandingRecord;
use seacma_simweb::{ElementKind, Page, Vantage, World};
use seacma_vision::cluster::ScreenshotCluster;

/// Structural features extracted from a landing page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParkingFeatures {
    /// Page includes no scripts at all (live sites — publishers, ads,
    /// attacks — always load something).
    pub no_scripts: bool,
    /// Page has no interactive elements (buttons, iframes).
    pub no_interactive: bool,
    /// Title matches the placeholder vocabulary of parking providers.
    pub placeholder_title: bool,
    /// The page arms no listeners of any kind (no ad chain, no download,
    /// no permission prompt).
    pub inert: bool,
}

impl ParkingFeatures {
    /// Extracts features from a page.
    pub fn of(page: &Page) -> ParkingFeatures {
        let interactive = page
            .elements
            .iter()
            .any(|e| matches!(e.kind, ElementKind::Button | ElementKind::Iframe));
        let title = page.title.to_ascii_lowercase();
        ParkingFeatures {
            no_scripts: page.scripts.is_empty(),
            no_interactive: !interactive,
            placeholder_title: ["parked", "for sale", "expired", "coming soon"]
                .iter()
                .any(|kw| title.contains(kw)),
            inert: page.ad_click_chain.is_empty()
                && page.auto_download.is_none()
                && !page.notification_prompt,
        }
    }

    /// Score in `[0, 4]`; ≥ 3 classifies as parked.
    pub fn score(&self) -> u32 {
        u32::from(self.no_scripts)
            + u32::from(self.no_interactive)
            + u32::from(self.placeholder_title)
            + u32::from(self.inert)
    }

    /// Final verdict.
    pub fn is_parked(&self) -> bool {
        self.score() >= 3
    }
}

/// Runs the parking detector on a cluster by probing its representative
/// and two more members (robustness against one odd member).
pub fn cluster_is_parked(
    world: &World,
    cluster: &ScreenshotCluster,
    landings: &[&LandingRecord],
) -> bool {
    let mut probes = vec![cluster.representative];
    probes.extend(cluster.members.iter().copied().take(2));
    probes.dedup();
    let mut votes = 0usize;
    let mut checked = 0usize;
    for &m in &probes {
        let l = landings[m];
        let cfg = BrowserConfig::instrumented(l.ua, Vantage::Residential);
        let mut session = BrowserSession::new(world, cfg, l.t);
        if let Ok(loaded) = session.navigate(&l.landing_url) {
            checked += 1;
            if ParkingFeatures::of(&loaded.page).is_parked() {
                votes += 1;
            }
        }
    }
    // Unreachable pages ("inaccessible domains" in the paper) also count
    // as filterable.
    checked == 0 || votes * 2 > checked
}

/// Applies the detector to every campaign cluster, returning a parallel
/// `is_parked` vector.
pub fn detect_parked_clusters(
    world: &World,
    clusters: &[ScreenshotCluster],
    landings: &[&LandingRecord],
) -> Vec<bool> {
    clusters.iter().map(|c| cluster_is_parked(world, c, landings)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::visual::VisualTemplate;
    use seacma_simweb::{Page, Url};

    #[test]
    fn placeholder_page_scores_parked() {
        let page = Page::bare(
            Url::http("chenehubio464.top", "/"),
            "domain parked",
            VisualTemplate::Parked { provider: 1 },
        );
        let f = ParkingFeatures::of(&page);
        assert!(f.no_scripts && f.placeholder_title && f.inert);
        assert!(f.is_parked());
    }

    #[test]
    fn attack_page_scores_live() {
        let mut page = Page::bare(
            Url::http("evil.club", "/x/idx.php"),
            "Technical Support",
            VisualTemplate::TechSupport { skin: 1 },
        );
        page.elements.push(seacma_simweb::Element {
            kind: ElementKind::Button,
            width: 400,
            height: 120,
            action: seacma_simweb::ClickAction::None,
        });
        let f = ParkingFeatures::of(&page);
        assert!(!f.is_parked(), "attack pages must not be filtered: {f:?}");
    }

    #[test]
    fn publisher_page_scores_live() {
        let mut page = Page::bare(
            Url::http("streamhub.tv", "/"),
            "streamhub.tv",
            VisualTemplate::PublisherHome { style: 5 },
        );
        page.scripts.push(seacma_simweb::page::Script {
            src: Url::http("cdn.net", "/tag.js"),
            source: "x".into(),
        });
        page.ad_click_chain.push(seacma_simweb::ClickAction::None);
        assert!(!ParkingFeatures::of(&page).is_parked());
    }
}
impl_json_struct!(ParkingFeatures { no_scripts, no_interactive, placeholder_title, inert });
