//! Property suite for the report composer's determinism contract:
//! byte-identical HTML across repeated runs, stability under analysis
//! registration order, complete section coverage and self-containment —
//! over randomized (but seeded) input bundles.

use seacma_core::tracker::LifeState;
use seacma_report::{
    compose_html, standard_analyses, Analysis, BenchPoint, CampaignObs, ReportInputs,
};
use seacma_util::forall;
use seacma_util::prop::Rng;

/// Builds a randomized-but-valid input bundle from a property rng.
fn arbitrary_inputs(rng: &mut Rng) -> ReportInputs {
    let mut inputs = ReportInputs::new(rng.u64());
    inputs.epoch = rng.below(40) as u32;
    let states =
        [LifeState::Active, LifeState::Dormant, LifeState::Dead, LifeState::Merged];
    for id in 0..rng.below(30) as u32 {
        let birth = rng.below(20) as u32;
        inputs.campaigns.push(CampaignObs {
            id,
            state: *rng.pick(&states),
            qualified: rng.bool(0.5),
            members: rng.range_u64(3, 200) as u32,
            domains: rng.range_u64(1, 40) as u32,
            birth_epoch: birth,
            last_growth_epoch: birth + rng.below(15) as u32,
        });
    }
    for _ in 0..rng.below(50) {
        inputs.cluster_sizes.push(rng.range_u64(3, 300) as u32);
    }
    inputs.cluster_sizes.sort_unstable_by(|a, b| b.cmp(a));
    for _ in 0..rng.below(80) {
        inputs.gsb_lag_days.push(rng.f64_range(0.0, 120.0));
    }
    inputs.gsb_lag_days.sort_by(f64::total_cmp);
    inputs.gsb_unlisted = rng.below(200);
    for i in 0..rng.below(5) {
        inputs.bench.push(BenchPoint {
            series: format!("s{i}"),
            name: format!("bench/{i}"),
            metric: "median_ms".to_string(),
            value: rng.f64_range(0.0, 1e4),
        });
    }
    inputs
}

#[test]
fn html_is_byte_identical_across_repeated_runs() {
    forall!(40, |rng| {
        let inputs = arbitrary_inputs(rng);
        let a = compose_html("r", &standard_analyses(), &inputs);
        let b = compose_html("r", &standard_analyses(), &inputs);
        assert_eq!(a, b);
    });
}

#[test]
fn html_is_stable_under_registration_order() {
    forall!(25, |rng| {
        let inputs = arbitrary_inputs(rng);
        let reference = compose_html("r", &standard_analyses(), &inputs);
        // A seeded Fisher-Yates shuffle of the registration order.
        let mut shuffled = standard_analyses();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.below(i as u64 + 1) as usize);
        }
        assert_eq!(compose_html("r", &shuffled, &inputs), reference);
    });
}

#[test]
fn every_section_id_is_present() {
    forall!(25, |rng| {
        let inputs = arbitrary_inputs(rng);
        let html = compose_html("r", &standard_analyses(), &inputs);
        for a in standard_analyses() {
            let anchor = format!("<section id=\"{}\">", a.id());
            assert!(html.contains(&anchor), "missing section {}", a.id());
            assert!(html.contains(&format!("href=\"#{}\"", a.id())), "missing TOC entry");
        }
    });
}

#[test]
fn html_stays_self_contained_for_arbitrary_inputs() {
    forall!(25, |rng| {
        let mut inputs = arbitrary_inputs(rng);
        // Hostile strings must be escaped, never break self-containment.
        inputs.bench.push(BenchPoint {
            series: "<script>alert(1)</script>".to_string(),
            name: "<img src=\"http://evil\">".to_string(),
            metric: "median_ms".to_string(),
            value: 1.0,
        });
        let html = compose_html("r", &standard_analyses(), &inputs);
        for banned in ["<script", "<link", "<img", "@import"] {
            assert!(!html.contains(banned), "found banned token {banned:?}");
        }
        assert!(html.contains("&lt;script&gt;"), "hostile markup must appear escaped");
    });
}

#[test]
fn ansi_plain_projection_matches_table_text() {
    forall!(25, |rng| {
        let inputs = arbitrary_inputs(rng);
        for a in standard_analyses() {
            let table = a.compute(&inputs);
            let lines = a.render_ansi(&table);
            let plain: Vec<String> = lines.iter().skip(1).map(|l| l.plain()).collect();
            let expected: Vec<String> =
                table.render_text().lines().map(str::to_string).collect();
            assert_eq!(plain, expected, "{}", a.id());
        }
    });
}
