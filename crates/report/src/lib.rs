//! Deterministic analysis reports and dashboard primitives for SEACMA.
//!
//! This crate turns measurement outputs (pipeline runs, daemon snapshots,
//! checked-in bench artifacts) into two kinds of renderings of the SAME
//! computed tables:
//!
//! 1. A single self-contained HTML report ([`compose_html`]) — inline CSS,
//!    no scripts, no external assets, byte-identical across runs at a
//!    fixed seed.
//! 2. Std-only ANSI terminal lines ([`ansi`]) for the `seacmad` live
//!    dashboard — no ratatui, no curses, just SGR escapes.
//!
//! The unit of extension is the [`Analysis`] trait: implement `compute`
//! (inputs → [`Table`]) and reuse the default HTML/ANSI projections. The
//! six shipped analyses live in [`analyses`] and are assembled by
//! [`standard_analyses`].
//!
//! ```
//! use seacma_report::{compose_html, standard_analyses, ReportInputs};
//!
//! // An empty input bundle still renders a complete, valid report —
//! // every analysis shows its deterministic "(no data)" row.
//! let html = compose_html("Empty report", &standard_analyses(), &ReportInputs::new(42));
//! assert!(html.contains("(no data)"));
//! assert_eq!(html, compose_html("Empty report", &standard_analyses(), &ReportInputs::new(42)));
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyses;
pub mod analysis;
pub mod ansi;
pub mod html;
pub mod inputs;
pub mod table;

pub use analyses::{
    AdnetAttribution, BenchTrajectory, BlacklistLag, CampaignGrowth, ClusterSizeDistribution,
    OnlineDetection,
};
pub use analysis::{compose_html, standard_analyses, Analysis};
pub use inputs::{load_bench_dir, BenchPoint, CampaignObs, ReportInputs};
pub use table::{Cell, Table};
