//! Deterministic, self-contained HTML rendering.
//!
//! One report is ONE file: inline CSS, no scripts, no external assets of
//! any kind — `<link>`, `<script src>`, `<img>` and web fonts are all
//! banned (the property suite greps for them). Given equal sections the
//! composer emits byte-identical documents: there are no timestamps,
//! random ids or map-ordered iterations anywhere on this path.

use crate::table::Table;

/// Escapes a string for HTML text/attribute context.
///
/// ```
/// use seacma_report::html::escape;
///
/// assert_eq!(escape("a<b & \"c\""), "a&lt;b &amp; &quot;c&quot;");
/// assert_eq!(escape("plain"), "plain");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// One rendered report section: an anchor id, a heading and a body
/// fragment (already-escaped HTML).
///
/// ```
/// use seacma_report::html::Section;
///
/// let s = Section::new("blacklist-lag", "Blacklist lag", "<p>CDF</p>".to_string());
/// assert_eq!(s.id, "blacklist-lag");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Anchor id (`<section id=...>`); also the table id by convention.
    pub id: String,
    /// Section heading.
    pub title: String,
    /// Body HTML fragment (trusted: produced by this crate's renderers).
    pub html: String,
}

impl Section {
    /// Creates a section. `id` and `title` are escaped at render time.
    pub fn new(id: impl Into<String>, title: impl Into<String>, html: String) -> Self {
        Self { id: id.into(), title: title.into(), html }
    }
}

/// Renders a [`Table`] as an HTML fragment: an optional note paragraph
/// followed by a `<table>` with right-aligned numeric cells.
///
/// ```
/// use seacma_report::{Cell, Table};
/// use seacma_report::html::table_html;
///
/// let mut t = Table::new("t", "T", &["name", "n"]);
/// t.push([Cell::text("a&b"), Cell::UInt(2)]);
/// let html = table_html(&t, "note");
/// assert!(html.contains("<td class=\"num\">2</td>"));
/// assert!(html.contains("a&amp;b"));
/// ```
pub fn table_html(table: &Table, note: &str) -> String {
    let mut out = String::new();
    if !note.is_empty() {
        out.push_str("<p class=\"note\">");
        out.push_str(&escape(note));
        out.push_str("</p>\n");
    }
    out.push_str("<table>\n<thead><tr>");
    for c in table.columns() {
        out.push_str("<th>");
        out.push_str(&escape(c));
        out.push_str("</th>");
    }
    out.push_str("</tr></thead>\n<tbody>\n");
    for row in table.rows() {
        out.push_str("<tr>");
        for cell in row {
            if cell.is_numeric() {
                out.push_str("<td class=\"num\">");
            } else {
                out.push_str("<td>");
            }
            out.push_str(&escape(&cell.render()));
            out.push_str("</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody>\n</table>\n");
    out
}

/// The report's single inline stylesheet. Plain system fonts — loading a
/// web font would break the self-containment contract.
const CSS: &str = "\
body{font:14px/1.5 -apple-system,'Segoe UI',sans-serif;margin:2rem auto;max-width:60rem;\
padding:0 1rem;color:#1a1a1a;background:#fff}\
h1{font-size:1.5rem;border-bottom:2px solid #1a1a1a;padding-bottom:.3rem}\
h2{font-size:1.15rem;margin-top:2rem}\
table{border-collapse:collapse;margin:.7rem 0}\
th,td{border:1px solid #bbb;padding:.25rem .6rem;text-align:left}\
th{background:#f0f0f0}\
td.num{text-align:right;font-variant-numeric:tabular-nums}\
p.note{color:#444;max-width:46rem}\
nav ul{list-style:none;padding-left:0}\
nav li{display:inline-block;margin-right:1.2rem}\
a{color:#0a4da0;text-decoration:none}\
a:hover{text-decoration:underline}\
footer{margin-top:3rem;color:#666;border-top:1px solid #bbb;padding-top:.5rem}";

/// Composes the final self-contained document: title, intro paragraph,
/// table-of-contents, every section in the given order, and a footer.
/// Pure function of its arguments — equal inputs give byte-identical
/// output.
///
/// ```
/// use seacma_report::html::{render_document, Section};
///
/// let doc = render_document(
///     "SEACMA report",
///     "seed 42",
///     &[Section::new("s1", "First", "<p>x</p>".to_string())],
/// );
/// assert!(doc.starts_with("<!DOCTYPE html>"));
/// assert!(doc.contains("<section id=\"s1\">"));
/// assert!(doc.contains("href=\"#s1\""));
/// assert!(!doc.contains("<script"));
/// ```
pub fn render_document(title: &str, intro: &str, sections: &[Section]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>");
    out.push_str(&escape(title));
    out.push_str("</title>\n<style>");
    out.push_str(CSS);
    out.push_str("</style>\n</head>\n<body>\n<h1>");
    out.push_str(&escape(title));
    out.push_str("</h1>\n<p>");
    out.push_str(&escape(intro));
    out.push_str("</p>\n<nav><ul>\n");
    for s in sections {
        out.push_str("<li><a href=\"#");
        out.push_str(&escape(&s.id));
        out.push_str("\">");
        out.push_str(&escape(&s.title));
        out.push_str("</a></li>\n");
    }
    out.push_str("</ul></nav>\n");
    for s in sections {
        out.push_str("<section id=\"");
        out.push_str(&escape(&s.id));
        out.push_str("\">\n<h2>");
        out.push_str(&escape(&s.title));
        out.push_str("</h2>\n");
        out.push_str(&s.html);
        out.push_str("</section>\n");
    }
    out.push_str("<footer>seacma-report — deterministic analysis report; \
regenerate with the same seed for byte-identical output.</footer>\n</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    #[test]
    fn document_is_self_contained() {
        let doc = render_document("t", "i", &[Section::new("a", "A", String::new())]);
        for banned in ["<script", "<link", "<img", "src=", "http://", "https://", "@import"] {
            assert!(!doc.contains(banned), "found banned token {banned:?}");
        }
    }

    #[test]
    fn sections_render_in_given_order() {
        let doc = render_document(
            "t",
            "i",
            &[
                Section::new("b", "B", String::new()),
                Section::new("a", "A", String::new()),
            ],
        );
        let b = doc.find("<section id=\"b\">").unwrap();
        let a = doc.find("<section id=\"a\">").unwrap();
        assert!(b < a, "composer must not reorder what it is given");
    }

    #[test]
    fn table_html_escapes_and_aligns() {
        let mut t = Table::new("x", "X", &["<col>", "n"]);
        t.push([Cell::text("<i>"), Cell::fixed(1.5, 1)]);
        let html = table_html(&t, "a<b");
        assert!(html.contains("&lt;col&gt;"));
        assert!(html.contains("&lt;i&gt;"));
        assert!(html.contains("a&lt;b"));
        assert!(html.contains("<td class=\"num\">1.5</td>"));
    }
}
