//! The six shipped analyses.
//!
//! Each one is a zero-sized [`Analysis`] implementation pairing a paper
//! view with a machine-checkable table:
//!
//! * [`CampaignGrowth`] — lifetime histogram with growth stats (§5).
//! * [`BlacklistLag`] — GSB detection-lag CDF over milked domains (§4.2).
//! * [`AdnetAttribution`] — per-ad-network SE attribution (Table 3).
//! * [`ClusterSizeDistribution`] — campaign cluster sizes (§4.3).
//! * [`BenchTrajectory`] — the checked-in `BENCH_*.json` numbers.
//! * [`OnlineDetection`] — detector precision/recall and serving rates
//!   from `BENCH_detect.json` (DESIGN.md §2j).

use crate::analysis::Analysis;
use crate::inputs::ReportInputs;
use crate::table::{Cell, Table};

/// Pushes the canonical "(no data)" row: the first column carries the
/// marker, every other column a dash. Analyses emit it instead of an
/// empty table so reports over partial inputs stay byte-stable and
/// grep-able.
fn push_no_data(t: &mut Table) {
    let mut row = vec![Cell::text("(no data)")];
    row.resize(t.columns().len(), Cell::text("-"));
    t.push(row);
}

/// Inclusive histogram buckets shared by the growth and cluster-size
/// analyses. The last bound is open-ended.
const BUCKETS: [(u32, u32); 6] = [
    (1, 1),
    (2, 2),
    (3, 4),
    (5, 8),
    (9, 16),
    (17, u32::MAX),
];

fn bucket_label(lo: u32, hi: u32) -> String {
    if hi == u32::MAX {
        format!("{lo}+")
    } else if lo == hi {
        lo.to_string()
    } else {
        format!("{lo}-{hi}")
    }
}

/// Campaign growth & lifetime histogram: how long campaigns keep growing
/// (in tracking epochs) and how big they get while they do. Computed over
/// the lifecycle ledger's records — the paper's §5 longitudinal view.
///
/// ```
/// use seacma_report::{Analysis, CampaignGrowth, ReportInputs};
///
/// let t = CampaignGrowth.compute(&ReportInputs::new(1));
/// assert_eq!(t.id(), "campaign-growth");
/// assert_eq!(t.rows()[0][0].render(), "(no data)");
/// ```
pub struct CampaignGrowth;

impl Analysis for CampaignGrowth {
    fn id(&self) -> &'static str {
        "campaign-growth"
    }
    fn title(&self) -> &'static str {
        "Campaign growth & lifetime"
    }
    fn note(&self) -> &'static str {
        "Lifetime = epochs from birth through the last growth epoch, inclusive, per \
         lifecycle-ledger record (merged identities excluded). Members/domains are the \
         campaign's final size — the paper's §5 growth-and-death view."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t = Table::new(
            self.id(),
            self.title(),
            &["lifetime (epochs)", "campaigns", "qualified", "mean members", "max members", "mean domains"],
        );
        let live: Vec<_> = inputs
            .campaigns
            .iter()
            .filter(|c| c.state != seacma_core::tracker::LifeState::Merged)
            .collect();
        if live.is_empty() {
            push_no_data(&mut t);
            return t;
        }
        for (lo, hi) in BUCKETS {
            let in_bucket: Vec<_> =
                live.iter().filter(|c| (lo..=hi).contains(&c.lifetime_epochs())).collect();
            if in_bucket.is_empty() {
                continue;
            }
            let n = in_bucket.len() as u64;
            let members: u64 = in_bucket.iter().map(|c| u64::from(c.members)).sum();
            let domains: u64 = in_bucket.iter().map(|c| u64::from(c.domains)).sum();
            t.push([
                Cell::text(bucket_label(lo, hi)),
                Cell::UInt(n),
                Cell::UInt(in_bucket.iter().filter(|c| c.qualified).count() as u64),
                Cell::fixed(members as f64 / n as f64, 1),
                Cell::UInt(in_bucket.iter().map(|c| u64::from(c.members)).max().unwrap_or(0)),
                Cell::fixed(domains as f64 / n as f64, 1),
            ]);
        }
        t
    }
}

/// Blacklist-lag CDF: how far Google Safe Browsing trails the milker on
/// freshly rotated attack domains (§4.2's headline gap).
///
/// ```
/// use seacma_report::{Analysis, BlacklistLag, ReportInputs};
///
/// let mut inputs = ReportInputs::new(1);
/// inputs.gsb_lag_days = vec![0.5, 2.0, 9.0];
/// inputs.gsb_unlisted = 7;
/// let t = BlacklistLag.compute(&inputs);
/// let last = t.rows().last().unwrap();
/// assert_eq!(last[1].render(), "10"); // total = listed + never-listed
/// ```
pub struct BlacklistLag;

impl Analysis for BlacklistLag {
    fn id(&self) -> &'static str {
        "blacklist-lag"
    }
    fn title(&self) -> &'static str {
        "Blacklist (GSB) detection-lag CDF"
    }
    fn note(&self) -> &'static str {
        "Lag = GSB listing time minus the milker's first observation, per milked attack \
         domain. The cumulative share is over ALL milked domains, so the gap to 100% at \
         the bottom row is GSB's blind spot."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t =
            Table::new(self.id(), self.title(), &["GSB lag", "domains", "cumulative %"]);
        let total = inputs.gsb_lag_days.len() as u64 + inputs.gsb_unlisted;
        if total == 0 {
            push_no_data(&mut t);
            return t;
        }
        let pct = |n: u64| 100.0 * n as f64 / total as f64;
        for bound in [1.0, 3.0, 7.0, 14.0, 30.0, 60.0] {
            let n = inputs.gsb_lag_days.iter().filter(|&&d| d <= bound).count() as u64;
            t.push([
                Cell::text(format!("<= {bound:.0} days")),
                Cell::UInt(n),
                Cell::fixed(pct(n), 1),
            ]);
        }
        let listed = inputs.gsb_lag_days.len() as u64;
        t.push([Cell::text("ever listed"), Cell::UInt(listed), Cell::fixed(pct(listed), 1)]);
        t.push([Cell::text("never listed"), Cell::UInt(inputs.gsb_unlisted), Cell::fixed(pct(inputs.gsb_unlisted), 1)]);
        t.push([Cell::text("total milked domains"), Cell::UInt(total), Cell::fixed(100.0, 1)]);
        t
    }
}

/// Per-ad-network attribution: landing pages and SE attack pages reached
/// through each seed network (the paper's Table 3, served as an analysis
/// section).
///
/// ```
/// use seacma_report::{AdnetAttribution, Analysis, ReportInputs};
///
/// let t = AdnetAttribution.compute(&ReportInputs::new(1));
/// assert_eq!(t.id(), "adnet-attribution");
/// ```
pub struct AdnetAttribution;

impl Analysis for AdnetAttribution {
    fn id(&self) -> &'static str {
        "adnet-attribution"
    }
    fn title(&self) -> &'static str {
        "Ad-network attribution"
    }
    fn note(&self) -> &'static str {
        "Attribution of every crawled landing to a seed ad network via invariant URL \
         patterns over the ad-loading chain; the Unknown row feeds the new-network \
         discovery loop (paper Table 3)."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t = Table::new(
            self.id(),
            self.title(),
            &["ad network", "net domains", "landing pages", "SE pages", "% SE"],
        );
        if inputs.adnets.is_empty() {
            push_no_data(&mut t);
            return t;
        }
        for r in &inputs.adnets {
            t.push([
                Cell::text(r.network.clone()),
                Cell::UInt(r.network_domains as u64),
                Cell::UInt(r.landing_pages as u64),
                Cell::UInt(r.se_pages as u64),
                Cell::fixed(r.se_pct, 2),
            ]);
        }
        t
    }
}

/// Cluster-size distribution over the θc-surviving campaign clusters —
/// the §4.3 "how big is a campaign" view and the dashboard's shape-of-
/// the-index table.
///
/// ```
/// use seacma_report::{Analysis, ClusterSizeDistribution, ReportInputs};
///
/// let mut inputs = ReportInputs::new(1);
/// inputs.cluster_sizes = vec![20, 6, 6, 3];
/// let t = ClusterSizeDistribution.compute(&inputs);
/// let total = t.rows().last().unwrap();
/// assert_eq!(total[1].render(), "4");
/// ```
pub struct ClusterSizeDistribution;

impl Analysis for ClusterSizeDistribution {
    fn id(&self) -> &'static str {
        "cluster-size-distribution"
    }
    fn title(&self) -> &'static str {
        "Cluster-size distribution"
    }
    fn note(&self) -> &'static str {
        "Screenshot counts per campaign cluster after the θc domain filter (§4.3). \
         DBSCAN MinPts bounds the smallest possible cluster."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t =
            Table::new(self.id(), self.title(), &["cluster size", "clusters", "share %"]);
        if inputs.cluster_sizes.is_empty() {
            push_no_data(&mut t);
            return t;
        }
        let total = inputs.cluster_sizes.len() as u64;
        for (lo, hi) in BUCKETS {
            let n = inputs.cluster_sizes.iter().filter(|&&s| (lo..=hi).contains(&s)).count()
                as u64;
            if n == 0 {
                continue;
            }
            t.push([
                Cell::text(bucket_label(lo, hi)),
                Cell::UInt(n),
                Cell::fixed(100.0 * n as f64 / total as f64, 1),
            ]);
        }
        t.push([Cell::text("total clusters"), Cell::UInt(total), Cell::fixed(100.0, 1)]);
        t
    }
}

/// Bench trajectory: the checked-in `BENCH_*.json` measurements rendered
/// as one table, so the report carries the repo's own performance story
/// alongside the paper's.
///
/// ```
/// use seacma_report::{Analysis, BenchPoint, BenchTrajectory, ReportInputs};
///
/// let mut inputs = ReportInputs::new(1);
/// inputs.bench.push(BenchPoint {
///     series: "cluster".into(),
///     name: "cluster/indexed/10000".into(),
///     metric: "median_ms".into(),
///     value: 76.283,
/// });
/// let t = BenchTrajectory.compute(&inputs);
/// assert_eq!(t.rows()[0][3].render(), "76.283");
/// ```
pub struct BenchTrajectory;

impl Analysis for BenchTrajectory {
    fn id(&self) -> &'static str {
        "bench-trajectory"
    }
    fn title(&self) -> &'static str {
        "Bench trajectory"
    }
    fn note(&self) -> &'static str {
        "Measured medians (ms) and throughputs (QPS) from the repository's checked-in \
         BENCH_*.json artifacts — the scaling story of the clustering, crawling, \
         milking, tracking and query-serving fast paths."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t = Table::new(
            self.id(),
            self.title(),
            &["series", "benchmark", "metric", "value"],
        );
        if inputs.bench.is_empty() {
            push_no_data(&mut t);
            return t;
        }
        for p in &inputs.bench {
            t.push([
                Cell::text(p.series.clone()),
                Cell::text(p.name.clone()),
                Cell::text(p.metric.clone()),
                Cell::fixed(p.value, 3),
            ]);
        }
        t
    }
}

/// Online-detection quality and serving rates: the `seacma-detect`
/// evaluation from `BENCH_detect.json` — precision/recall on the seen and
/// held-out campaign splits plus per-verdict-kind throughput. The held-out
/// rows carry the generalization claim: campaigns the detector never
/// indexed, caught only by radius escalation and the feature score.
///
/// ```
/// use seacma_report::{Analysis, BenchPoint, OnlineDetection, ReportInputs};
///
/// let mut inputs = ReportInputs::new(1);
/// let t = OnlineDetection.compute(&inputs);
/// assert_eq!(t.rows()[0][0].render(), "(no data)");
///
/// inputs.bench.push(BenchPoint {
///     series: "detect".into(),
///     name: "held_out".into(),
///     metric: "recall".into(),
///     value: 0.4744,
/// });
/// let t = OnlineDetection.compute(&inputs);
/// assert_eq!(t.rows()[0][2].render(), "0.4744");
/// ```
pub struct OnlineDetection;

impl Analysis for OnlineDetection {
    fn id(&self) -> &'static str {
        "online-detection"
    }
    fn title(&self) -> &'static str {
        "Online detection"
    }
    fn note(&self) -> &'static str {
        "Per-page-load detector evaluation from BENCH_detect.json: precision/recall on \
         the seen split (campaigns in the live index) and the held-out split (campaigns \
         withheld from the feed — generalization via radius escalation and the \
         structural feature score), plus served QPS per verdict kind."
    }
    fn compute(&self, inputs: &ReportInputs) -> Table {
        let mut t = Table::new(
            self.id(),
            self.title(),
            &["metric", "split / verdict kind", "value"],
        );
        let detect: Vec<_> =
            inputs.bench.iter().filter(|p| p.series == "detect").collect();
        if detect.is_empty() {
            push_no_data(&mut t);
            return t;
        }
        for p in detect {
            let value = match p.metric.as_str() {
                "precision" | "recall" => Cell::fixed(p.value, 4),
                _ => Cell::fixed(p.value, 0),
            };
            t.push([Cell::text(p.metric.clone()), Cell::text(p.name.clone()), value]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_core::tracker::LifeState;

    fn campaign(lifetime: u32, members: u32, state: LifeState) -> crate::CampaignObs {
        crate::CampaignObs {
            id: 0,
            state,
            qualified: true,
            members,
            domains: 5,
            birth_epoch: 1,
            last_growth_epoch: lifetime, // birth 1 → lifetime epochs = lifetime
        }
    }

    #[test]
    fn growth_excludes_merged_and_buckets_lifetimes() {
        let mut inputs = ReportInputs::new(1);
        inputs.campaigns = vec![
            campaign(1, 10, LifeState::Active),
            campaign(3, 20, LifeState::Dormant),
            campaign(3, 40, LifeState::Dead),
            campaign(9, 99, LifeState::Merged),
        ];
        let t = CampaignGrowth.compute(&inputs);
        // Buckets present: "1" (1 campaign) and "3-4" (2 campaigns).
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[1][1].render(), "2");
        assert_eq!(t.rows()[1][3].render(), "30.0");
        assert_eq!(t.rows()[1][4].render(), "40");
    }

    #[test]
    fn lag_cdf_is_monotone() {
        let mut inputs = ReportInputs::new(1);
        inputs.gsb_lag_days = vec![0.2, 0.9, 5.0, 12.0, 40.0];
        inputs.gsb_unlisted = 5;
        let t = BlacklistLag.compute(&inputs);
        let cdf: Vec<f64> = t
            .rows()
            .iter()
            .take(6)
            .map(|r| r[2].render().parse::<f64>().unwrap())
            .collect();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "{cdf:?}");
        assert_eq!(t.rows()[6][1].render(), "5"); // ever listed
        assert_eq!(t.rows()[7][1].render(), "5"); // never listed
    }

    #[test]
    fn all_analyses_handle_empty_inputs() {
        let inputs = ReportInputs::new(0);
        for a in crate::standard_analyses() {
            let t = a.compute(&inputs);
            assert!(!t.rows().is_empty(), "{} must render a no-data row", a.id());
            assert_eq!(t.rows()[0][0].render(), "(no data)", "{}", a.id());
        }
    }
}
