//! The machine-checkable half of every analysis: a typed [`Table`].
//!
//! An [`Analysis`](crate::Analysis) first *computes* a `Table` — ids,
//! column headers and typed cells — and only then *renders* it to HTML or
//! ANSI. Keeping the two steps apart is what makes reports testable: the
//! property suites compare tables and rendered bytes independently, and
//! the determinism contract (same inputs ⇒ byte-identical report) reduces
//! to "cell formatting is a pure function".

use seacma_util::{impl_json_enum, impl_json_struct};

/// One typed table cell. Rendering is locale-free and deterministic:
/// [`Cell::Fixed`] always prints exactly `decimals` fraction digits.
///
/// ```
/// use seacma_report::Cell;
///
/// assert_eq!(Cell::text("Lottery/Gift").render(), "Lottery/Gift");
/// assert_eq!(Cell::UInt(108).render(), "108");
/// assert_eq!(Cell::fixed(7.25, 1).render(), "7.2");
/// assert_eq!(Cell::fixed(0.0, 2).render(), "0.00");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A verbatim string.
    Text(String),
    /// A non-negative integer.
    UInt(u64),
    /// A float rendered with a fixed number of fraction digits.
    Fixed {
        /// The value.
        value: f64,
        /// Fraction digits printed (`{:.N}` formatting).
        decimals: u8,
    },
}

impl Cell {
    /// A text cell.
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// A fixed-precision float cell.
    pub fn fixed(value: f64, decimals: u8) -> Self {
        Cell::Fixed { value, decimals }
    }

    /// Renders the cell to its canonical string form.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::UInt(n) => n.to_string(),
            Cell::Fixed { value, decimals } => format!("{value:.*}", usize::from(*decimals)),
        }
    }

    /// Whether the cell is numeric (right-aligned in renderers).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Cell::Text(_))
    }
}

/// A computed analysis table: a stable id, a human title, column headers
/// and typed rows. Row arity is enforced at push time, so renderers never
/// see ragged data.
///
/// ```
/// use seacma_report::{Cell, Table};
///
/// let mut t = Table::new("demo", "Demo", &["campaign", "domains"]);
/// t.push([Cell::text("fake-av"), Cell::UInt(17)]);
/// assert_eq!(t.rows().len(), 1);
/// assert_eq!(t.rows()[0][1].render(), "17");
/// // Canonical JSON — byte-stable across runs.
/// let json = seacma_util::json::to_string(&t);
/// assert!(json.starts_with(r#"{"id":"demo","#));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// An empty table with the given id, title and column headers.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's stable identifier (doubles as the HTML section id).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Appends a row. Panics if the arity does not match the headers —
    /// a programming error in the analysis, not a data condition.
    pub fn push(&mut self, row: impl Into<Vec<Cell>>) {
        let row = row.into();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {:?}: row arity {} != {} columns",
            self.id,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as an aligned plain-text grid (the ANSI layer
    /// styles these same strings; tests and docs paste them verbatim).
    pub fn render_text(&self) -> String {
        let headers: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(Cell::render).collect()).collect();
        seacma_core::report::render_text_table(&headers, &rows)
    }
}

impl_json_enum!(Cell {
    Text(String),
    UInt(u64),
    Fixed { value: f64, decimals: u8 },
});
impl_json_struct!(Table { id, title, columns, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rendering_is_stable() {
        assert_eq!(Cell::fixed(1.0 / 3.0, 3).render(), "0.333");
        assert_eq!(Cell::fixed(99.999, 1).render(), "100.0");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("x", "X", &["a", "b"]);
        t.push([Cell::UInt(1)]);
    }

    #[test]
    fn json_roundtrip() {
        use seacma_util::json;
        let mut t = Table::new("rt", "Round trip", &["k", "v"]);
        t.push([Cell::text("lag"), Cell::fixed(7.5, 2)]);
        t.push([Cell::text("n"), Cell::UInt(3)]);
        let s = json::to_string(&t);
        let back: Table = json::from_str(&s).unwrap();
        assert_eq!(back, t);
        assert_eq!(json::to_string(&back), s);
    }

    #[test]
    fn text_render_aligns() {
        let mut t = Table::new("a", "A", &["name", "count"]);
        t.push([Cell::text("x"), Cell::UInt(12345)]);
        let out = t.render_text();
        assert!(out.contains("| name"), "{out}");
        assert!(out.contains("12345"), "{out}");
    }
}
