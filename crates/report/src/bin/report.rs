//! `report` — generate the deterministic self-contained HTML analysis
//! report from a seeded end-to-end measurement.
//!
//! ```text
//! report [--seed N] [--out FILE] [--bench-dir DIR]
//! ```
//!
//! Runs the batch pipeline at `PipelineConfig::small(seed)`, extracts
//! [`ReportInputs`] from the run (plus any checked-in `BENCH_*.json`
//! artifacts under `--bench-dir`), and composes the six standard
//! analyses into one HTML file. Two invocations with equal arguments and
//! equal bench artifacts produce byte-identical files — `scripts/verify.sh`
//! diffs them. Operator notes go to stderr; the only file touched is
//! `--out`.

use std::path::PathBuf;
use std::process::ExitCode;

use seacma_core::{Pipeline, PipelineConfig};
use seacma_report::{compose_html, standard_analyses, ReportInputs};

struct Args {
    seed: u64,
    out: PathBuf,
    bench_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seed: 42, out: PathBuf::from("report.html"), bench_dir: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--bench-dir" => args.bench_dir = Some(PathBuf::from(value("--bench-dir")?)),
            "--help" | "-h" => {
                return Err("usage: report [--seed N] [--out FILE] [--bench-dir DIR]".to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("# running pipeline at seed {} (PipelineConfig::small)", args.seed);
    let pipeline = Pipeline::new(PipelineConfig::small(args.seed));
    let run = pipeline.run_to_completion();

    let mut inputs = ReportInputs::from_run(pipeline.world(), &run);
    if let Some(dir) = &args.bench_dir {
        inputs = inputs.with_bench_dir(dir);
        eprintln!("# loaded {} bench points from {}", inputs.bench.len(), dir.display());
    }
    eprintln!(
        "# inputs: {} campaigns, {} clusters, {} listed + {} unlisted milked domains, {} adnets",
        inputs.campaigns.len(),
        inputs.cluster_sizes.len(),
        inputs.gsb_lag_days.len(),
        inputs.gsb_unlisted,
        inputs.adnets.len(),
    );

    let html = compose_html("SEACMA analysis report", &standard_analyses(), &inputs);
    if let Err(e) = std::fs::write(&args.out, &html) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {} ({} bytes)", args.out.display(), html.len());
    ExitCode::SUCCESS
}
