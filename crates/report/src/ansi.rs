//! Std-only ANSI terminal primitives for the live dashboard.
//!
//! The hermetic build forbids ratatui, so this module is the in-tree
//! replacement: styled [`Span`]s composed into [`Line`]s, a table renderer
//! over [`Table`], and unicode block-character meters. Every line renders
//! two ways — [`Line::ansi`] with escape codes for a terminal and
//! [`Line::plain`] without, so tests and docs can assert on stable bytes.

use crate::table::Table;

/// Clears the screen and homes the cursor (start of a dashboard frame).
pub const CLEAR_SCREEN: &str = "\x1b[2J\x1b[H";

/// An ANSI SGR style, stored as the parameter string between `\x1b[` and
/// `m`. Styles are plain constants, so a [`Span`] is `Copy`-cheap to
/// build and the rendered bytes are a pure function of the span.
///
/// ```
/// use seacma_report::ansi::Style;
///
/// assert_eq!(Style::BOLD.wrap("x"), "\x1b[1mx\x1b[0m");
/// assert_eq!(Style::PLAIN.wrap("x"), "x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Style(pub &'static str);

impl Style {
    /// No styling; renders verbatim.
    pub const PLAIN: Style = Style("");
    /// Bold.
    pub const BOLD: Style = Style("1");
    /// Dim (separators, chrome).
    pub const DIM: Style = Style("2");
    /// Green — healthy / active.
    pub const GREEN: Style = Style("32");
    /// Yellow — dormant / warning.
    pub const YELLOW: Style = Style("33");
    /// Red — dead / alarming.
    pub const RED: Style = Style("31");
    /// Cyan — headings and counters.
    pub const CYAN: Style = Style("36");
    /// Bold cyan — frame titles.
    pub const TITLE: Style = Style("1;36");

    /// Wraps `text` in this style's escape codes (no-op for
    /// [`Style::PLAIN`]).
    pub fn wrap(self, text: &str) -> String {
        if self.0.is_empty() {
            text.to_string()
        } else {
            format!("\x1b[{}m{}\x1b[0m", self.0, text)
        }
    }
}

/// A styled run of text — the atom of dashboard rendering.
///
/// ```
/// use seacma_report::ansi::{Span, Style};
///
/// let s = Span::styled("42", Style::GREEN);
/// assert_eq!(s.plain(), "42");
/// assert_eq!(s.ansi(), "\x1b[32m42\x1b[0m");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The text content.
    pub text: String,
    /// The style applied when rendering with escapes.
    pub style: Style,
}

impl Span {
    /// An unstyled span.
    pub fn raw(text: impl Into<String>) -> Self {
        Self { text: text.into(), style: Style::PLAIN }
    }

    /// A styled span.
    pub fn styled(text: impl Into<String>, style: Style) -> Self {
        Self { text: text.into(), style }
    }

    /// The span without escape codes.
    pub fn plain(&self) -> String {
        self.text.clone()
    }

    /// The span with escape codes.
    pub fn ansi(&self) -> String {
        self.style.wrap(&self.text)
    }
}

/// One dashboard line: a sequence of spans.
///
/// ```
/// use seacma_report::ansi::{Line, Span, Style};
///
/// let l = Line(vec![Span::raw("epoch "), Span::styled("7", Style::BOLD)]);
/// assert_eq!(l.plain(), "epoch 7");
/// assert_eq!(l.ansi(), "epoch \x1b[1m7\x1b[0m");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Line(pub Vec<Span>);

impl Line {
    /// A line holding a single unstyled span.
    pub fn raw(text: impl Into<String>) -> Self {
        Line(vec![Span::raw(text)])
    }

    /// A line holding a single styled span.
    pub fn styled(text: impl Into<String>, style: Style) -> Self {
        Line(vec![Span::styled(text, style)])
    }

    /// The line without escape codes.
    pub fn plain(&self) -> String {
        self.0.iter().map(Span::plain).collect()
    }

    /// The line with escape codes.
    pub fn ansi(&self) -> String {
        self.0.iter().map(|s| s.ansi()).collect()
    }
}

/// A fixed-width horizontal meter: `filled` out of `total` as solid
/// blocks, padded with dots. `total == 0` renders an empty meter.
///
/// ```
/// use seacma_report::ansi::meter;
///
/// assert_eq!(meter(3, 4, 8), "██████··");
/// assert_eq!(meter(0, 0, 4), "····");
/// assert_eq!(meter(9, 4, 4), "████"); // clamped
/// ```
pub fn meter(filled: u64, total: u64, width: usize) -> String {
    let cells = if total == 0 {
        0
    } else {
        ((filled.min(total) as u128 * width as u128) / total as u128) as usize
    };
    let mut out = "█".repeat(cells);
    out.push_str(&"·".repeat(width - cells));
    out
}

/// Renders a [`Table`] as styled lines: a title line, a bold header row
/// and dim grid separators. The plain projection of these lines equals
/// [`Table::render_text`] prefixed with the title.
///
/// ```
/// use seacma_report::ansi::table_lines;
/// use seacma_report::{Cell, Table};
///
/// let mut t = Table::new("demo", "Demo", &["k", "v"]);
/// t.push([Cell::text("a"), Cell::UInt(1)]);
/// let lines = table_lines(&t);
/// assert_eq!(lines[0].plain(), "Demo");
/// assert!(lines.iter().any(|l| l.plain().contains("| a")));
/// ```
pub fn table_lines(table: &Table) -> Vec<Line> {
    let mut lines = vec![Line::styled(table.title().to_string(), Style::TITLE)];
    for (i, row) in table.render_text().lines().enumerate() {
        let style = if row.starts_with('+') {
            Style::DIM
        } else if i == 1 {
            // The header row sits between the first two grid separators.
            Style::BOLD
        } else {
            Style::PLAIN
        };
        lines.push(Line::styled(row.to_string(), style));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    #[test]
    fn plain_projection_matches_render_text() {
        let mut t = Table::new("x", "X", &["a"]);
        t.push([Cell::UInt(7)]);
        let plain: Vec<String> = table_lines(&t).iter().skip(1).map(Line::plain).collect();
        let expected: Vec<String> = t.render_text().lines().map(str::to_string).collect();
        assert_eq!(plain, expected);
    }

    #[test]
    fn meter_is_monotone() {
        let mut prev = 0;
        for f in 0..=10 {
            let m = meter(f, 10, 10);
            let blocks = m.chars().filter(|&c| c == '█').count();
            assert!(blocks >= prev);
            assert_eq!(m.chars().count(), 10);
            prev = blocks;
        }
    }

    #[test]
    fn ansi_codes_strip_back_to_plain() {
        let l = Line(vec![
            Span::styled("a", Style::RED),
            Span::raw("b"),
            Span::styled("c", Style::TITLE),
        ]);
        let ansi = l.ansi();
        let stripped: String = {
            // Tiny inline SGR stripper: drop ESC '[' ... 'm' runs.
            let mut out = String::new();
            let mut chars = ansi.chars();
            while let Some(c) = chars.next() {
                if c == '\x1b' {
                    for d in chars.by_ref() {
                        if d == 'm' {
                            break;
                        }
                    }
                } else {
                    out.push(c);
                }
            }
            out
        };
        assert_eq!(stripped, l.plain());
    }
}
