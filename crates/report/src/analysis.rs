//! The [`Analysis`] trait and the report composer.
//!
//! An analysis is compute-then-render: [`Analysis::compute`] turns
//! [`ReportInputs`] into a typed [`Table`] (the machine-checkable
//! artifact), and the render methods project that table into an HTML
//! [`Section`] or dashboard [`Line`]s. The default renders cover the
//! common table-shaped case; an analysis overrides them only to add
//! shape (meters, extra prose) on top of the same table.

use crate::ansi::{table_lines, Line};
use crate::html::{table_html, Section};
use crate::inputs::ReportInputs;
use crate::table::Table;

/// One report analysis: a stable id, a computation into a [`Table`], and
/// HTML/ANSI projections of that table.
///
/// ```
/// use seacma_report::{Analysis, Cell, ReportInputs, Table};
///
/// struct SeedEcho;
/// impl Analysis for SeedEcho {
///     fn id(&self) -> &'static str { "seed-echo" }
///     fn title(&self) -> &'static str { "Seed echo" }
///     fn compute(&self, inputs: &ReportInputs) -> Table {
///         let mut t = Table::new(self.id(), self.title(), &["seed"]);
///         t.push([Cell::UInt(inputs.seed)]);
///         t
///     }
/// }
///
/// let table = SeedEcho.compute(&ReportInputs::new(42));
/// let section = SeedEcho.render_html(&table);
/// assert_eq!(section.id, "seed-echo");
/// assert!(section.html.contains("<td class=\"num\">42</td>"));
/// assert_eq!(SeedEcho.render_ansi(&table)[0].plain(), "Seed echo");
/// ```
pub trait Analysis {
    /// Stable identifier — the HTML section anchor and the table id. Must
    /// be unique within a report; the composer asserts it.
    fn id(&self) -> &'static str;

    /// Human-readable section title.
    fn title(&self) -> &'static str;

    /// One sentence of context rendered above the table (paper mapping,
    /// units). Empty by default.
    fn note(&self) -> &'static str {
        ""
    }

    /// Computes the machine-checkable table from the inputs. Must be a
    /// pure function of `inputs` — the determinism gate diffs two runs.
    fn compute(&self, inputs: &ReportInputs) -> Table;

    /// Projects a computed table into an HTML section.
    fn render_html(&self, table: &Table) -> Section {
        Section::new(self.id(), self.title(), table_html(table, self.note()))
    }

    /// Projects a computed table into dashboard lines.
    fn render_ansi(&self, table: &Table) -> Vec<Line> {
        table_lines(table)
    }
}

/// Composes analyses into the final self-contained HTML document.
///
/// Sections are emitted in ascending [`Analysis::id`] order regardless of
/// registration order — the report's layout is part of its byte-identity
/// contract, and callers should not have to care how their analysis list
/// happened to be assembled. Duplicate ids are a programming error and
/// panic.
///
/// ```
/// use seacma_report::{compose_html, standard_analyses, ReportInputs};
///
/// let html = compose_html("SEACMA report", &standard_analyses(), &ReportInputs::new(42));
/// assert!(html.starts_with("<!DOCTYPE html>"));
/// assert!(html.contains("<section id=\"blacklist-lag\">"));
/// ```
pub fn compose_html(title: &str, analyses: &[Box<dyn Analysis>], inputs: &ReportInputs) -> String {
    let mut order: Vec<usize> = (0..analyses.len()).collect();
    order.sort_by_key(|&i| analyses[i].id());
    for pair in order.windows(2) {
        assert_ne!(
            analyses[pair[0]].id(),
            analyses[pair[1]].id(),
            "duplicate analysis id"
        );
    }
    let sections: Vec<Section> = order
        .iter()
        .map(|&i| {
            let a = &analyses[i];
            a.render_html(&a.compute(inputs))
        })
        .collect();
    let intro = format!(
        "Deterministic analysis report over the simulated SEACMA measurement at seed {} \
         ({} closed tracking epochs). Every section is computed by a seacma-report \
         `Analysis` and is a pure function of the measurement outputs.",
        inputs.seed, inputs.epoch
    );
    crate::html::render_document(title, &intro, &sections)
}

/// The standard report: the six shipped analyses, one instance each.
///
/// ```
/// use seacma_report::standard_analyses;
///
/// let ids: Vec<&str> = standard_analyses().iter().map(|a| a.id()).collect();
/// assert_eq!(
///     ids,
///     [
///         "campaign-growth",
///         "blacklist-lag",
///         "adnet-attribution",
///         "cluster-size-distribution",
///         "bench-trajectory",
///         "online-detection",
///     ],
/// );
/// ```
pub fn standard_analyses() -> Vec<Box<dyn Analysis>> {
    vec![
        Box::new(crate::analyses::CampaignGrowth),
        Box::new(crate::analyses::BlacklistLag),
        Box::new(crate::analyses::AdnetAttribution),
        Box::new(crate::analyses::ClusterSizeDistribution),
        Box::new(crate::analyses::BenchTrajectory),
        Box::new(crate::analyses::OnlineDetection),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    struct Fixed(&'static str);
    impl Analysis for Fixed {
        fn id(&self) -> &'static str {
            self.0
        }
        fn title(&self) -> &'static str {
            self.0
        }
        fn compute(&self, _inputs: &ReportInputs) -> Table {
            let mut t = Table::new(self.id(), self.title(), &["v"]);
            t.push([Cell::UInt(1)]);
            t
        }
    }

    #[test]
    fn composition_is_registration_order_independent() {
        let inputs = ReportInputs::new(1);
        let ab: Vec<Box<dyn Analysis>> = vec![Box::new(Fixed("a")), Box::new(Fixed("b"))];
        let ba: Vec<Box<dyn Analysis>> = vec![Box::new(Fixed("b")), Box::new(Fixed("a"))];
        assert_eq!(compose_html("t", &ab, &inputs), compose_html("t", &ba, &inputs));
    }

    #[test]
    #[should_panic(expected = "duplicate analysis id")]
    fn duplicate_ids_panic() {
        let dup: Vec<Box<dyn Analysis>> = vec![Box::new(Fixed("a")), Box::new(Fixed("a"))];
        compose_html("t", &dup, &ReportInputs::new(1));
    }
}
