//! The one input bundle every [`Analysis`](crate::Analysis) computes from.
//!
//! [`ReportInputs`] decouples analyses from where their data came from:
//! the `report` binary fills it from a full batch [`PipelineRun`], the
//! `seacmad` dashboard fills it from the daemon's live
//! `ReputationSnapshot`, and tests fill it by hand. Fields an origin
//! cannot provide stay empty and the corresponding analyses render their
//! deterministic "(no data)" row instead of failing.

use std::path::Path;

use seacma_core::report::{self as core_report, Table3Row};
use seacma_core::simweb::World;
use seacma_core::tracker::LifeState;
use seacma_core::PipelineRun;
use seacma_util::impl_json_struct;
use seacma_util::json::{self, Value};

/// One tracked campaign as the analyses see it: the lifecycle ledger's
/// record (or the daemon's served status) reduced to the numbers the
/// growth/lifetime histograms consume.
///
/// ```
/// use seacma_report::CampaignObs;
/// use seacma_core::tracker::LifeState;
///
/// let c = CampaignObs {
///     id: 3,
///     state: LifeState::Active,
///     qualified: true,
///     members: 41,
///     domains: 7,
///     birth_epoch: 2,
///     last_growth_epoch: 5,
/// };
/// assert_eq!(c.lifetime_epochs(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignObs {
    /// Stable ledger id.
    pub id: u32,
    /// Life state at observation.
    pub state: LifeState,
    /// Whether the domain count meets θc.
    pub qualified: bool,
    /// Screenshot count.
    pub members: u32,
    /// Distinct e2LD count.
    pub domains: u32,
    /// Epoch first observed.
    pub birth_epoch: u32,
    /// Last epoch the member count grew.
    pub last_growth_epoch: u32,
}

impl CampaignObs {
    /// Observed lifetime in epochs, birth through last growth, inclusive.
    pub fn lifetime_epochs(&self) -> u32 {
        self.last_growth_epoch - self.birth_epoch + 1
    }
}

/// One measurement harvested from a checked-in `BENCH_*.json` file.
///
/// ```
/// use seacma_report::BenchPoint;
///
/// let p = BenchPoint {
///     series: "cluster".into(),
///     name: "cluster/indexed/10000".into(),
///     metric: "median_ms".into(),
///     value: 76.28,
/// };
/// assert_eq!(p.series, "cluster");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Which file the point came from (`BENCH_<series>.json`).
    pub series: String,
    /// The benchmark's own name (e.g. `cluster/indexed/10000`).
    pub name: String,
    /// What `value` measures (`median_ms` or `qps`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

/// Everything the standard analyses consume, already extracted from
/// pipeline / tracker / daemon / bench artifacts.
///
/// ```
/// use seacma_report::ReportInputs;
///
/// let inputs = ReportInputs::new(42);
/// assert_eq!(inputs.seed, 42);
/// assert!(inputs.campaigns.is_empty()); // analyses render "(no data)"
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReportInputs {
    /// The world seed the measurement ran at (reproduction recipe).
    pub seed: u64,
    /// Closed epochs at observation (0 for a pure batch run).
    pub epoch: u32,
    /// Every tracked campaign's lifecycle observation.
    pub campaigns: Vec<CampaignObs>,
    /// Campaign-cluster sizes, descending.
    pub cluster_sizes: Vec<u32>,
    /// GSB listing lags over milked domains, fractional days, ascending.
    pub gsb_lag_days: Vec<f64>,
    /// Milked domains GSB never listed.
    pub gsb_unlisted: u64,
    /// Per-ad-network attribution rows (core's Table 3).
    pub adnets: Vec<Table3Row>,
    /// Bench trajectory points from `BENCH_*.json` files.
    pub bench: Vec<BenchPoint>,
}

impl ReportInputs {
    /// An empty bundle for the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            epoch: 0,
            campaigns: Vec::new(),
            cluster_sizes: Vec::new(),
            gsb_lag_days: Vec::new(),
            gsb_unlisted: 0,
            adnets: Vec::new(),
            bench: Vec::new(),
        }
    }

    /// Extracts the full bundle from a completed batch measurement: the
    /// ledger's campaign records, the discovery clustering, the milking
    /// outcome's GSB lags and the attribution table.
    pub fn from_run(world: &World, run: &PipelineRun) -> Self {
        let campaigns = run
            .tracking
            .tracker
            .ledger()
            .records()
            .iter()
            .map(|r| CampaignObs {
                id: r.id,
                state: r.state,
                qualified: r.campaign,
                members: r.members,
                domains: r.domains.len() as u32,
                birth_epoch: r.birth_epoch,
                last_growth_epoch: r.last_growth_epoch,
            })
            .collect();
        Self {
            seed: world.seed(),
            epoch: run.tracking.tracker.epoch(),
            campaigns,
            cluster_sizes: core_report::cluster_sizes(&run.discovery),
            gsb_lag_days: core_report::gsb_lag_days(&run.milking),
            gsb_unlisted: core_report::gsb_unlisted(&run.milking) as u64,
            adnets: core_report::table3(world, &run.discovery),
            bench: Vec::new(),
        }
    }

    /// Loads every `BENCH_*.json` under `dir` into [`ReportInputs::bench`]
    /// (see [`load_bench_dir`]). Missing directories load zero points.
    pub fn with_bench_dir(mut self, dir: &Path) -> Self {
        self.bench = load_bench_dir(dir);
        self
    }
}

/// Harvests bench trajectory points from the checked-in `BENCH_*.json`
/// files under `dir`, in sorted filename order (deterministic given the
/// same files). Four shapes are understood: the bench harness's array
/// form (`[{name, median_ns, ...}]` → one `median_ms` point per entry),
/// `BENCH_query.json`'s keyed form (`{"kinds": {name: {qps, ...}}}` → one
/// `qps` point per kind), `BENCH_detect.json`'s evaluation form
/// (`{"eval": {split: {precision, recall, ...}}}` → one `precision` and
/// one `recall` point per split), and `BENCH_e2e.json`'s phase form
/// (`{"phases": [{name, wall_ms, allocs, points, ...}]}` → one `wall_ms`
/// point per phase, plus `allocs` and `allocs_per_point` points when the
/// run counted allocations).
/// Unreadable files are skipped — a report must render from whatever
/// artifacts exist.
pub fn load_bench_dir(dir: &Path) -> Vec<BenchPoint> {
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(_) => return Vec::new(),
    };
    names.sort();
    let mut points = Vec::new();
    for name in names {
        let series = name.trim_start_matches("BENCH_").trim_end_matches(".json").to_string();
        let Ok(text) = std::fs::read_to_string(dir.join(&name)) else { continue };
        let Ok(value) = json::parse(&text) else { continue };
        match &value {
            Value::Arr(entries) => {
                for e in entries {
                    let (Some(bench_name), Some(median_ns)) = (
                        e.get("name").and_then(Value::as_str),
                        e.get("median_ns").and_then(Value::as_f64),
                    ) else {
                        continue;
                    };
                    points.push(BenchPoint {
                        series: series.clone(),
                        name: bench_name.to_string(),
                        metric: "median_ms".to_string(),
                        value: median_ns / 1e6,
                    });
                }
            }
            Value::Obj(_) => {
                if let Some(Value::Obj(splits)) = value.get("eval") {
                    for (split, stats) in splits {
                        for metric in ["precision", "recall"] {
                            if let Some(v) = stats.get(metric).and_then(Value::as_f64) {
                                points.push(BenchPoint {
                                    series: series.clone(),
                                    name: split.clone(),
                                    metric: metric.to_string(),
                                    value: v,
                                });
                            }
                        }
                    }
                }
                if let Some(Value::Obj(kinds)) = value.get("kinds") {
                    for (kind, stats) in kinds {
                        if let Some(qps) = stats.get("qps").and_then(Value::as_f64) {
                            points.push(BenchPoint {
                                series: series.clone(),
                                name: kind.clone(),
                                metric: "qps".to_string(),
                                value: qps,
                            });
                        }
                    }
                }
                if let Some(Value::Arr(phases)) = value.get("phases") {
                    for p in phases {
                        let (Some(phase), Some(wall_ms)) = (
                            p.get("name").and_then(Value::as_str),
                            p.get("wall_ms").and_then(Value::as_f64),
                        ) else {
                            continue;
                        };
                        points.push(BenchPoint {
                            series: series.clone(),
                            name: phase.to_string(),
                            metric: "wall_ms".to_string(),
                            value: wall_ms,
                        });
                        if let Some(allocs) = p.get("allocs").and_then(Value::as_f64) {
                            points.push(BenchPoint {
                                series: series.clone(),
                                name: phase.to_string(),
                                metric: "allocs".to_string(),
                                value: allocs,
                            });
                            // The per-point quotient is the hot-path diet
                            // number the allocation work optimizes — it
                            // stays comparable when the phase's point
                            // count changes between runs.
                            if let Some(n) = p.get("points").and_then(Value::as_f64) {
                                if n > 0.0 {
                                    points.push(BenchPoint {
                                        series: series.clone(),
                                        name: phase.to_string(),
                                        metric: "allocs_per_point".to_string(),
                                        value: allocs / n,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    points
}

impl_json_struct!(CampaignObs {
    id,
    state,
    qualified,
    members,
    domains,
    birth_epoch,
    last_growth_epoch,
});
impl_json_struct!(BenchPoint { series, name, metric, value });
impl_json_struct!(ReportInputs {
    seed,
    epoch,
    campaigns,
    cluster_sizes,
    gsb_lag_days,
    gsb_unlisted,
    adnets,
    bench,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_dir_loads_sorted_and_tolerates_absence(){
        assert!(load_bench_dir(Path::new("/nonexistent/dir")).is_empty());

        // All four shapes load, in sorted filename order: the array
        // form, the detect eval form, the e2e phase form, and the keyed
        // qps form.
        let dir = std::env::temp_dir()
            .join(format!("seacma-bench-inputs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_cluster.json"),
            r#"[{"name": "cluster/indexed/1000", "median_ns": 2500000.0}]"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_detect.json"),
            r#"{"eval": {
                "seen": {"precision": 1.0, "recall": 0.6410, "attacks": 39},
                "held_out": {"precision": 1.0, "recall": 0.4744}
            }, "kinds": {"campaign_hit": {"qps": 150249.0}}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_e2e.json"),
            r#"{"identity": true, "phases": [
                {"name": "crawl", "wall_ms": 120.5, "allocs": 4200, "points": 10},
                {"name": "cluster", "wall_ms": 8.25, "allocs": null, "points": 10}
            ]}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_query.json"),
            r#"{"kinds": {"hit": {"qps": 9000.0}}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_broken.json"), "not json").unwrap();
        std::fs::write(dir.join("NOTES.txt"), "ignored").unwrap();

        let points = load_bench_dir(&dir);
        std::fs::remove_dir_all(&dir).unwrap();
        let summary: Vec<(&str, &str, &str, f64)> = points
            .iter()
            .map(|p| (p.series.as_str(), p.name.as_str(), p.metric.as_str(), p.value))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("cluster", "cluster/indexed/1000", "median_ms", 2.5),
                ("detect", "seen", "precision", 1.0),
                ("detect", "seen", "recall", 0.6410),
                ("detect", "held_out", "precision", 1.0),
                ("detect", "held_out", "recall", 0.4744),
                ("detect", "campaign_hit", "qps", 150249.0),
                ("e2e", "crawl", "wall_ms", 120.5),
                ("e2e", "crawl", "allocs", 4200.0),
                ("e2e", "crawl", "allocs_per_point", 420.0),
                ("e2e", "cluster", "wall_ms", 8.25),
                ("query", "hit", "qps", 9000.0),
            ],
        );
    }

    #[test]
    fn inputs_json_roundtrip() {
        let mut i = ReportInputs::new(7);
        i.campaigns.push(CampaignObs {
            id: 0,
            state: LifeState::Dormant,
            qualified: true,
            members: 5,
            domains: 6,
            birth_epoch: 1,
            last_growth_epoch: 3,
        });
        i.bench.push(BenchPoint {
            series: "cluster".into(),
            name: "n".into(),
            metric: "median_ms".into(),
            value: 1.25,
        });
        let s = json::to_string(&i);
        let back: ReportInputs = json::from_str(&s).unwrap();
        assert_eq!(back, i);
    }
}
