//! Property suites for the resident daemon (ISSUE: the forall! gates).
//!
//! 1. Any query served mid-epoch against published snapshot `N` answers
//!    byte-identically to the offline **batch** pipeline's snapshot at
//!    epoch `N` (the two-implementation oracle in `seacma_daemon::offline`).
//! 2. Snapshot/resume under live concurrent query load stays
//!    byte-identical: the resumed daemon re-serializes to the same bytes
//!    and serves the same answers, and both runs stay identical when fed
//!    the same remaining epochs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use seacma_daemon::offline::replay_batches;
use seacma_daemon::{Daemon, ReputationSnapshot};
use seacma_tracker::{LedgerConfig, TrackerConfig};
use seacma_util::prop::Rng;
use seacma_util::{forall, json};
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;

/// A campaign-shaped corpus: most points are near-duplicates of a few
/// templates on rotating domains, the rest uniform noise.
fn synth(rng: &mut Rng, n: usize) -> Vec<ScreenshotPoint> {
    let centers: Vec<u128> = (0..rng.range(1, 4)).map(|_| rng.u128()).collect();
    (0..n)
        .map(|i| {
            if rng.bool(0.8) {
                let c = rng.below(centers.len() as u64) as usize;
                let mut h = centers[c];
                for _ in 0..rng.below(4) {
                    h ^= 1u128 << rng.below(128);
                }
                ScreenshotPoint::new(Dhash(h), format!("c{c}-{}.club", rng.below(8)))
            } else {
                ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.info"))
            }
        })
        .collect()
}

/// Contiguous random split of `corpus` into `epochs` batches (some may be
/// empty — quiet epochs must close too).
fn split_epochs(rng: &mut Rng, corpus: &[ScreenshotPoint], epochs: usize) -> Vec<Vec<ScreenshotPoint>> {
    let mut cuts: Vec<usize> = (0..epochs - 1).map(|_| rng.range(0, corpus.len() + 1)).collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(epochs);
    let mut prev = 0;
    for c in cuts {
        out.push(corpus[prev..c].to_vec());
        prev = c;
    }
    out.push(corpus[prev..].to_vec());
    out
}

/// A probe set exercising hits, misses and boundaries of a corpus.
fn probes(rng: &mut Rng, corpus: &[ScreenshotPoint]) -> (Vec<String>, Vec<Dhash>) {
    let mut urls: Vec<String> = corpus.iter().map(|p| format!("http://www.{}/lp", p.e2ld)).collect();
    urls.push("http://never-seen.example/x".into());
    urls.push("bare-host.club".into());
    let mut hashes: Vec<Dhash> = corpus.iter().map(|p| p.dhash).collect();
    for i in 0..corpus.len().min(16) {
        hashes.push(Dhash(corpus[i].dhash.0 ^ (1u128 << rng.below(128))));
    }
    hashes.push(Dhash(rng.u128()));
    (urls, hashes)
}

/// Serializes every probe's answer from one snapshot into one string, so
/// snapshot equivalence reduces to string equality.
fn answer_sheet(snap: &ReputationSnapshot, urls: &[String], hashes: &[Dhash]) -> String {
    let mut out = String::new();
    out.push_str(&format!("epoch={}\n", snap.epoch()));
    for u in urls {
        out.push_str(&json::to_string(&snap.lookup_url(u)));
        out.push('\n');
    }
    for &h in hashes {
        out.push_str(&json::to_string(&snap.nearest_campaign(h)));
        out.push('\n');
    }
    for id in 0..=(snap.statuses().len() as u32) {
        out.push_str(&json::to_string(&snap.campaign(id).cloned()));
        out.push('\n');
    }
    out
}

/// The empty boot snapshot — the oracle for queries before epoch 1.
fn empty_oracle(config: TrackerConfig) -> ReputationSnapshot {
    ReputationSnapshot::from_parts(0, Vec::new(), Vec::new(), Vec::new(), config.params.eps)
}

#[test]
fn mid_epoch_queries_match_offline_batch_answers() {
    forall!(10, |rng| {
        let config = TrackerConfig {
            ledger: LedgerConfig {
                quiet_window: rng.range(1, 3) as u32,
                death_window: rng.range(3, 5) as u32,
            },
            ..Default::default()
        };
        let n = rng.range(40, 120);
        let corpus = synth(rng, n);
        let epochs = rng.range(2, 5);
        let batches = split_epochs(rng, &corpus, epochs);
        let (urls, hashes) = probes(rng, &corpus);

        let oracle = replay_batches(config, &batches);
        let boot = empty_oracle(config);
        let oracle_at =
            |e: usize| if e == 0 { &boot } else { &oracle[e - 1] };

        let mut daemon = Daemon::new(config);
        let handle = daemon.handle();
        for (e, batch) in batches.iter().enumerate() {
            // Mid-epoch: ingest a strict prefix, then query. The served
            // snapshot must still answer as of the last closed boundary.
            let cut = rng.range(0, batch.len() + 1);
            daemon.ingest_all(batch[..cut].iter().cloned());
            let served = handle.snapshot();
            assert_eq!(served.epoch() as usize, e);
            assert_eq!(
                answer_sheet(&served, &urls, &hashes),
                answer_sheet(oracle_at(e), &urls, &hashes),
                "mid-epoch answers diverged from the batch oracle at epoch {e}"
            );

            daemon.ingest_all(batch[cut..].iter().cloned());
            daemon.close_epoch();
            assert_eq!(
                answer_sheet(&handle.snapshot(), &urls, &hashes),
                answer_sheet(oracle_at(e + 1), &urls, &hashes),
                "boundary answers diverged from the batch oracle at epoch {}",
                e + 1
            );
        }
    });
}

#[test]
fn concurrent_readers_always_see_a_published_oracle_state() {
    let mut rng = Rng::new(0x5EAC_DAE0);
    let config = TrackerConfig::default();
    let corpus = synth(&mut rng, 400);
    let batches = split_epochs(&mut rng, &corpus, 6);
    let (urls, hashes) = probes(&mut rng, &corpus);

    // Sheet per epoch (0 = boot), precomputed from the batch oracle.
    let mut sheets: Vec<String> =
        vec![answer_sheet(&empty_oracle(config), &urls, &hashes)];
    for snap in replay_batches(config, &batches) {
        sheets.push(answer_sheet(&snap, &urls, &hashes));
    }
    let sheets = Arc::new(sheets);

    let mut daemon = Daemon::new(config);
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for reader in 0..4 {
            let handle = daemon.handle();
            let urls = &urls;
            let hashes = &hashes;
            let sheets = Arc::clone(&sheets);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_epoch = 0u32;
                let mut rounds = 0u32;
                while !done.load(Ordering::Relaxed) || rounds == 0 {
                    // Whatever snapshot a reader grabs mid-write, it must
                    // be a published boundary, answer exactly like the
                    // batch oracle at that epoch, and never run backwards.
                    let snap = handle.snapshot();
                    let e = snap.epoch();
                    assert!(e >= last_epoch, "reader {reader} saw the epoch go backwards");
                    last_epoch = e;
                    assert_eq!(
                        answer_sheet(&snap, urls, hashes),
                        sheets[e as usize],
                        "reader {reader} saw a non-oracle state at epoch {e}"
                    );
                    rounds += 1;
                }
            });
        }
        // The single writer: epochs close while the readers are spinning.
        for batch in &batches {
            daemon.ingest_all(batch.iter().cloned());
            daemon.close_epoch();
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(daemon.epoch() as usize, batches.len());
}

#[test]
fn snapshot_resume_stays_byte_identical_under_live_queries() {
    forall!(6, |rng| {
        let config = TrackerConfig::default();
        let n = rng.range(40, 100);
        let corpus = synth(rng, n);
        let batches = split_epochs(rng, &corpus, 3);
        let (urls, hashes) = probes(rng, &corpus);

        let mut daemon = Daemon::new(config);
        // A reader hammering the handle for the whole scenario — snapshots
        // and resumes must not be perturbed by (or perturb) live loads.
        let live = daemon.handle();
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let live = live.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let snap = live.snapshot();
                        let _ = snap.lookup_url("http://c0-0.club/");
                        let _ = snap.nearest_campaign(Dhash(0));
                    }
                });
            }

            let mut resumed: Option<Daemon> = None;
            for (e, batch) in batches.iter().enumerate() {
                // Snapshot mid-epoch (open points included), resume, and
                // check byte identity plus answer identity right away.
                let cut = rng.range(0, batch.len() + 1);
                daemon.ingest_all(batch[..cut].iter().cloned());
                if let Some(r) = resumed.as_mut() {
                    r.ingest_all(batch[..cut].iter().cloned());
                }
                let frozen = daemon.to_json();
                let r = Daemon::from_json(&frozen).expect("snapshot parses");
                assert_eq!(r.to_json(), frozen, "resume must re-serialize identically");
                assert_eq!(
                    answer_sheet(&r.handle().snapshot(), &urls, &hashes),
                    answer_sheet(&live.snapshot(), &urls, &hashes),
                    "resumed daemon answers diverged at epoch {e}"
                );
                if resumed.is_none() {
                    resumed = Some(r);
                }

                daemon.ingest_all(batch[cut..].iter().cloned());
                daemon.close_epoch();
                if let Some(r) = resumed.as_mut() {
                    r.ingest_all(batch[cut..].iter().cloned());
                    r.close_epoch();
                }
            }
            // The earliest resumed daemon, fed the identical remainder,
            // ends byte-identical to the never-restarted one.
            let resumed = resumed.expect("at least one epoch ran");
            assert_eq!(resumed.to_json(), daemon.to_json());
            assert_eq!(
                answer_sheet(&resumed.handle().snapshot(), &urls, &hashes),
                answer_sheet(&live.snapshot(), &urls, &hashes),
            );
            done.store(true, Ordering::Relaxed);
        });
    });
}
