//! `seacmad` — the resident SEACMA reputation daemon.
//!
//! Boots a simulated measurement (or resumes a `--resume` snapshot), then
//! runs the epoch loop on a writer thread while the foreground serves a
//! line-oriented query REPL on stdin. One JSON answer per line on stdout;
//! operator notes go to stderr.
//!
//! ```text
//! cargo run --release -p seacma-daemon --bin seacmad -- [--seed N] [--epoch-ms MS] [--resume PATH]
//!
//! url <url-or-domain>    reputation of a URL / bare e2LD
//! dhash <32-hex>         nearest campaign to a screenshot hash
//! detect <32-hex> [hops] [e2lds] [sig,..]
//!                        score a page-load observation online
//! campaign <id>          lifecycle status of a ledger id
//! status                 daemon status (epoch, points, arena size, campaigns)
//! dash [frames]          live ANSI dashboard on stderr (refreshes per epoch)
//! snapshot <path>        write resumable state at the next epoch boundary
//! help                   list commands
//! quit                   shut down
//! ```
//!
//! The dashboard keeps stdout a clean one-JSON-answer-per-line transcript
//! by drawing on stderr; `dash 20` redraws for up to 20 epoch boundaries.

use std::io::{BufRead, Write as _};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use seacma_core::{Pipeline, PipelineConfig};
use seacma_daemon::dash::{render_frame, QueryCounters};
use seacma_daemon::Daemon;
use seacma_detect::{PageObservation, PageSignals};
use seacma_report::ansi::CLEAR_SCREEN;
use seacma_util::json;
use seacma_vision::dhash::Dhash;

/// Commands the REPL forwards to the writer thread; handled only at epoch
/// boundaries, so a snapshot is always a clean boundary state.
enum Command {
    Snapshot(String),
    Quit,
}

/// Every REPL command as `(syntax, description)`. This one table drives
/// the `--help` usage line, the `help` answer and the unknown-command
/// hint, so the three can never drift apart (they once did: `dash` and
/// `snapshot` were missing from `help`).
const COMMANDS: &[(&str, &str)] = &[
    ("url <url-or-e2ld>", "reputation verdict for a URL or bare domain"),
    ("dhash <32-hex>", "nearest campaign to a screenshot hash"),
    (
        "detect <32-hex> [hops] [e2lds] [sig,..]",
        "score a page-load observation (sigs: phone|survey|lock|notify|download)",
    ),
    ("campaign <id>", "lifecycle status of a ledger id"),
    ("status", "daemon status: epoch, resident points, arena size, qualified campaigns"),
    ("dash [frames]", "live ANSI dashboard on stderr, redrawn per epoch boundary"),
    ("snapshot <path>", "write resumable state at the next epoch boundary"),
    ("help", "this list"),
    ("quit", "shut down"),
];

/// The first word of each command syntax, comma-joined — the unknown-command hint.
fn command_names() -> String {
    let names: Vec<&str> =
        COMMANDS.iter().map(|&(s, _)| s.split_whitespace().next().unwrap_or(s)).collect();
    names.join(", ")
}

/// The `help` answer: the full command table as one JSON object.
fn help_json() -> String {
    let table = COMMANDS
        .iter()
        .map(|&(syntax, desc)| (syntax.to_string(), json::Value::Str(desc.to_string())))
        .collect();
    json::to_string(&json::Value::Obj(vec![("commands".to_string(), json::Value::Obj(table))]))
}

/// Parses the tail of a `detect` line — `[hops] [e2lds] [sig,..]` — into
/// the observation's cheap structural signals. Unknown signal tokens are
/// an error (a typo must not silently score as "signal absent").
fn parse_signals<'a>(
    mut parts: impl Iterator<Item = &'a str>,
) -> Result<PageSignals, String> {
    let mut signals = PageSignals::default();
    signals.redirect_hops = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    signals.third_party_e2lds = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    if let Some(sigs) = parts.next() {
        for s in sigs.split(',').filter(|s| !s.is_empty()) {
            match s {
                "phone" => signals.scam_phone = true,
                "survey" => signals.survey_gateway = true,
                "lock" => signals.locking = true,
                "notify" => signals.notification_prompt = true,
                "download" => signals.auto_download = true,
                other => return Err(format!("unknown signal {other:?} (phone|survey|lock|notify|download)")),
            }
        }
    }
    Ok(signals)
}

fn main() {
    let mut seed = 42u64;
    let mut epoch_ms = 500u64;
    let mut resume: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--epoch-ms" => {
                epoch_ms = args.next().and_then(|v| v.parse().ok()).unwrap_or(epoch_ms)
            }
            "--resume" => resume = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: seacmad [--seed N] [--epoch-ms MS] [--resume PATH]");
                eprintln!("queries on stdin:");
                for (syntax, desc) in COMMANDS {
                    eprintln!("  {syntax:<42} {desc}");
                }
                return;
            }
            other => {
                eprintln!("seacmad: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    // Boot: a fresh daemon over the simulated measurement, or a resumed
    // one (byte-identical to the process that wrote the snapshot).
    let pipeline = Pipeline::new(PipelineConfig::small(seed));
    let mut daemon = match &resume {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("seacmad: cannot read snapshot {path}: {e}");
                std::process::exit(1);
            });
            Daemon::from_json(&text).unwrap_or_else(|e| {
                eprintln!("seacmad: cannot parse snapshot {path}: {e}");
                std::process::exit(1);
            })
        }
        None => Daemon::new(pipeline.tracker_config()),
    };
    let handle = daemon.handle();
    eprintln!(
        "seacmad: booted at epoch {} (seed {seed}); crawling the simulated web...",
        daemon.epoch()
    );

    // The epoch feed: the pipeline's crawl replay batches. Skip epochs a
    // resumed daemon already closed, so resume + replay never double-feeds.
    let discovery = pipeline.discover();
    let batches: Vec<_> = pipeline
        .crawl_epoch_batches(&discovery)
        .into_iter()
        .skip(daemon.epoch() as usize)
        .collect();
    let epochs_total = daemon.epoch() + batches.len() as u32;
    eprintln!(
        "seacmad: {} landings queued in {} epochs ({epoch_ms} ms each); serving queries",
        batches.iter().map(Vec::len).sum::<usize>(),
        batches.len(),
    );

    let (tx, rx) = mpsc::channel::<Command>();
    let writer = std::thread::spawn(move || {
        let mut pending = batches.into_iter();
        loop {
            // Pace one epoch per tick; once the feed is drained, park on
            // the channel so snapshot/quit still work.
            let cmd = if pending.len() > 0 {
                rx.recv_timeout(Duration::from_millis(epoch_ms))
            } else {
                rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected)
            };
            match cmd {
                Ok(Command::Snapshot(path)) => {
                    match std::fs::write(&path, daemon.to_json()) {
                        Ok(()) => eprintln!(
                            "seacmad: snapshot written to {path} at epoch {}",
                            daemon.epoch()
                        ),
                        Err(e) => eprintln!("seacmad: snapshot to {path} failed: {e}"),
                    }
                }
                Ok(Command::Quit) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(batch) = pending.next() {
                        daemon.ingest_all(batch);
                        let summary = daemon.close_epoch();
                        eprintln!(
                            "seacmad: epoch {} closed ({} ingested, {} campaigns, {} events)",
                            summary.epoch,
                            summary.ingested,
                            summary.clusters.campaigns.len(),
                            summary.events.len(),
                        );
                    }
                }
            }
        }
    });

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut counters = QueryCounters::default();
    let started = Instant::now();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut parts = line.split_whitespace();
        let answer = match (parts.next(), parts.next()) {
            (Some("url"), Some(u)) => {
                counters.url += 1;
                json::to_string(&handle.url(u))
            }
            (Some("dhash"), Some(h)) => match Dhash::parse(h) {
                Some(d) => {
                    counters.dhash += 1;
                    json::to_string(&handle.dhash(d))
                }
                None => r#"{"error":"dhash wants 32 hex digits"}"#.to_string(),
            },
            (Some("detect"), Some(h)) => match Dhash::parse(h) {
                Some(dhash) => match parse_signals(parts) {
                    Ok(signals) => {
                        counters.detect += 1;
                        json::to_string(&handle.detect(&PageObservation { dhash, signals }))
                    }
                    Err(e) => format!(r#"{{"error":{}}}"#, json::to_string(&e)),
                },
                None => r#"{"error":"detect wants a 32-hex dhash first"}"#.to_string(),
            },
            (Some("campaign"), Some(id)) => match id.parse::<u32>() {
                Ok(id) => {
                    counters.campaign += 1;
                    json::to_string(&handle.campaign(id))
                }
                Err(_) => r#"{"error":"campaign wants a numeric id"}"#.to_string(),
            },
            (Some("status"), None) => {
                counters.status += 1;
                let snap = handle.snapshot();
                format!(
                    r#"{{"epoch":{},"points":{},"arena":{},"campaigns":{}}}"#,
                    snap.epoch(),
                    snap.resident_points(),
                    snap.arena_len(),
                    snap.statuses().iter().filter(|s| s.qualified).count(),
                )
            }
            (Some("dash"), frames) => {
                // Draw on stderr so stdout stays a clean query transcript.
                // With a frame budget > 1 the dashboard waits for epoch
                // boundaries and redraws, live-tailing the writer thread
                // through the shared QueryHandle.
                let budget: u32 = frames.and_then(|f| f.parse().ok()).unwrap_or(1);
                let mut rendered = 0u32;
                let mut last_epoch = 0u32;
                while rendered < budget {
                    let snap = handle.snapshot();
                    if rendered > 0 && snap.epoch() == last_epoch {
                        std::thread::sleep(Duration::from_millis((epoch_ms / 4).max(10)));
                        continue;
                    }
                    last_epoch = snap.epoch();
                    let frame = render_frame(
                        &snap,
                        &counters,
                        epochs_total,
                        Some(started.elapsed().as_secs_f64()),
                    );
                    let mut err = std::io::stderr().lock();
                    if budget > 1 {
                        let _ = write!(err, "{CLEAR_SCREEN}");
                    }
                    for l in &frame {
                        let _ = writeln!(err, "{}", l.ansi());
                    }
                    rendered += 1;
                    if last_epoch >= epochs_total {
                        break; // feed drained: no further boundary will come
                    }
                }
                format!(r#"{{"ok":"dash drew {rendered} frame(s) on stderr"}}"#)
            }
            (Some("snapshot"), Some(path)) => {
                let _ = tx.send(Command::Snapshot(path.to_string()));
                r#"{"ok":"snapshot queued for the next boundary"}"#.to_string()
            }
            (Some("help"), None) => help_json(),
            (Some("quit"), None) => break,
            (None, _) => continue,
            // A known command that missed the arms above wants different
            // arguments; anything else gets the one-line command hint.
            (Some(other), _) => {
                match COMMANDS.iter().find(|&&(s, _)| s.split_whitespace().next() == Some(other))
                {
                    Some((syntax, _)) => format!(r#"{{"error":"usage: {syntax}"}}"#),
                    None => {
                        let msg =
                            format!("unknown command {other:?}; commands: {}", command_names());
                        format!(r#"{{"error":{}}}"#, json::to_string(&msg))
                    }
                }
            }
        };
        let mut out = stdout.lock();
        let _ = writeln!(out, "{answer}");
        let _ = out.flush();
    }

    let _ = tx.send(Command::Quit);
    let _ = writer.join();
    eprintln!("seacmad: bye");
}
