//! The offline oracle: per-epoch reputation snapshots derived from the
//! **batch** pipeline primitives only.
//!
//! This module never touches the incremental code paths — points are
//! re-deduplicated from scratch, labels come from batch DBSCAN over a
//! freshly built [`HammingIndex`], and the lifecycle ledger is replayed
//! through its public [`observe`](CampaignLedger::observe) entry point.
//! Comparing the daemon's served answers against these snapshots is
//! therefore a genuine two-implementation exactness check, the same
//! methodology as the tracker's batch-vs-incremental gate.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use seacma_tracker::{CampaignLedger, ObservedCluster, TrackerConfig};
use seacma_util::sym::SymbolArena;
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dbscan::dbscan_with;
use seacma_vision::dhash::Dhash;
use seacma_vision::index::HammingIndex;

use crate::query::CampaignStatus;
use crate::snapshot::ReputationSnapshot;

/// Replays `batches` (one per epoch) through the batch pipeline and
/// returns the reputation snapshot after each epoch: element `e` is the
/// oracle for every query served between the close of epoch `e` and the
/// close of epoch `e + 1`.
///
/// ```
/// use seacma_daemon::{offline::replay_batches, Daemon};
/// use seacma_tracker::TrackerConfig;
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
/// use seacma_util::json;
///
/// let batch: Vec<ScreenshotPoint> = (0..12u32)
///     .map(|i| ScreenshotPoint::new(Dhash(0xFACE ^ (1 << (i % 3))), format!("evil{}.club", i % 6)))
///     .collect();
/// let oracle = replay_batches(TrackerConfig::default(), &[batch.clone()]);
///
/// let mut daemon = Daemon::new(TrackerConfig::default());
/// daemon.run_epochs([batch]);
/// let live = daemon.handle().snapshot();
/// assert_eq!(oracle[0].epoch(), live.epoch());
/// assert_eq!(
///     json::to_string(&live.lookup_domain("evil2.club")),
///     json::to_string(&oracle[0].lookup_domain("evil2.club")),
/// );
/// ```
pub fn replay_batches(
    config: TrackerConfig,
    batches: &[Vec<ScreenshotPoint>],
) -> Vec<ReputationSnapshot> {
    let mut ledger = CampaignLedger::new(config.ledger);
    // The replay's own private arena for the ledger's domain symbols —
    // persistent across epochs, like the tracker's, but never shared with
    // the incremental paths under test.
    let mut arena = SymbolArena::new();
    let mut all: Vec<ScreenshotPoint> = Vec::new();
    let mut snapshots = Vec::with_capacity(batches.len());
    for (e, batch) in batches.iter().enumerate() {
        all.extend(batch.iter().cloned());

        // Batch dedup, first-occurrence order (as `cluster_screenshots`).
        let mut uniq: Vec<ScreenshotPoint> = Vec::new();
        let mut originals: Vec<u32> = Vec::new(); // multiplicity per unique
        let mut seen: HashMap<(Dhash, &str), usize> = HashMap::new();
        for p in &all {
            match seen.entry((p.dhash, p.e2ld.as_str())) {
                Entry::Occupied(slot) => originals[*slot.get()] += 1,
                Entry::Vacant(slot) => {
                    slot.insert(uniq.len());
                    uniq.push(p.clone());
                    originals.push(1);
                }
            }
        }

        // Batch labels: fresh index, full DBSCAN over the whole prefix.
        let hashes: Vec<Dhash> = uniq.iter().map(|p| p.dhash).collect();
        let mut index = HammingIndex::build(&hashes, config.params.eps);
        let labels = dbscan_with(&mut index, config.params.min_pts);

        // Ledger observation input, grouped exactly as the tracker groups
        // it: ascending members, original-multiplicity weight, sorted
        // distinct domains.
        let n_clusters =
            labels.iter().filter_map(|l| l.cluster_id()).max().map_or(0, |m| m + 1);
        let mut observed: Vec<ObservedCluster> = (0..n_clusters)
            .map(|_| ObservedCluster { members: Vec::new(), weight: 0, domains: Vec::new() })
            .collect();
        let mut domain_sets: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); n_clusters];
        for (u, l) in labels.iter().enumerate() {
            if let Some(id) = l.cluster_id() {
                observed[id].members.push(u as u32);
                observed[id].weight += originals[u];
                domain_sets[id].insert(uniq[u].e2ld.as_str());
            }
        }
        for (o, ds) in observed.iter_mut().zip(domain_sets) {
            // BTreeSet iteration is string-sorted, matching the ledger's
            // domain-order invariant after interning.
            o.domains = ds.into_iter().map(|d| arena.intern(d)).collect();
        }
        ledger.observe(e as u32, &observed, uniq.len(), config.params.theta_c, &arena);

        let statuses =
            ledger.records().iter().map(|r| CampaignStatus::from_record(r, &arena)).collect();
        snapshots.push(ReputationSnapshot::from_parts(
            (e + 1) as u32,
            uniq,
            ledger.assignments().to_vec(),
            statuses,
            config.params.eps,
        ));
    }
    snapshots
}
