//! The virtual-time epoch scheduler.
//!
//! The daemon's write loop runs on the simulator's virtual clock, not wall
//! time: an epoch closes when the feed's virtual timestamps cross the next
//! boundary, exactly as the batch pipeline's tracking phase buckets its
//! feeds. Keeping the schedule virtual is what makes the resident process
//! byte-comparable to the offline run — both close the same epochs on the
//! same points regardless of how fast the host machine is.

use seacma_simweb::{SimDuration, SimTime};

/// Fixed-length epoch boundaries over virtual time.
///
/// Epoch `k` (0-based) covers `start + k·len <= t < start + (k+1)·len`;
/// [`advance`](EpochScheduler::advance) closes the current epoch and moves
/// to the next. The scheduler is pure bookkeeping — it never blocks — so
/// the daemon's writer drives it as fast as the feed allows.
///
/// ```
/// use seacma_daemon::EpochScheduler;
/// use seacma_simweb::{SimTime, DAY};
///
/// let mut sched = EpochScheduler::new(SimTime::EPOCH, DAY);
/// assert_eq!(sched.closed(), 0);
/// assert_eq!(sched.next_boundary(), SimTime::EPOCH + DAY);
/// assert_eq!(sched.epoch_of(SimTime(25 * 60)), 1);
/// sched.advance();
/// assert_eq!(sched.closed(), 1);
/// assert_eq!(sched.next_boundary(), SimTime::EPOCH + DAY * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochScheduler {
    start: SimTime,
    len: SimDuration,
    closed: u64,
}

impl EpochScheduler {
    /// A scheduler starting at `start` with epochs of length `len`
    /// (clamped to at least one virtual minute).
    pub fn new(start: SimTime, len: SimDuration) -> Self {
        let len = SimDuration::from_minutes(len.minutes().max(1));
        Self { start, len, closed: 0 }
    }

    /// The schedule's origin.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The epoch length.
    pub fn epoch_len(&self) -> SimDuration {
        self.len
    }

    /// Number of epochs closed so far — the epoch index the next close
    /// will carry, matching [`CampaignTracker::epoch`](seacma_tracker::CampaignTracker::epoch).
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// The virtual instant the current epoch ends: a point with
    /// `t < next_boundary()` belongs to the current (or an earlier) epoch.
    pub fn next_boundary(&self) -> SimTime {
        self.start + self.len * (self.closed + 1)
    }

    /// Which epoch a virtual instant falls into (times before `start`
    /// clamp to epoch 0 — `SimTime` subtraction saturates).
    pub fn epoch_of(&self, t: SimTime) -> u64 {
        (t - self.start).minutes() / self.len.minutes()
    }

    /// Closes the current epoch and returns the boundary of the next one.
    pub fn advance(&mut self) -> SimTime {
        self.closed += 1;
        self.next_boundary()
    }
}
