//! The resident daemon: one writer mutating the tracker, any number of
//! readers on published snapshots.

use std::sync::Arc;

use seacma_simweb::SimTime;
use seacma_tracker::{CampaignTracker, EpochSummary, TrackerConfig};
use seacma_util::json::JsonError;
use seacma_vision::cluster::ScreenshotPoint;

use crate::scheduler::EpochScheduler;
use crate::snapshot::{QueryHandle, ReputationSnapshot, SnapshotCell};

/// The resident SEACMA process core: owns the [`CampaignTracker`] (the
/// single writer) and publishes an immutable [`ReputationSnapshot`] at
/// every epoch boundary for concurrent readers.
///
/// The restart story is the tracker's byte-identical snapshot/resume:
/// [`Daemon::to_json`] is exactly [`CampaignTracker::to_json`], and
/// [`Daemon::from_json`] republishes the reputation snapshot on boot, so a
/// resumed daemon answers byte-identically to one that never restarted.
///
/// ```
/// use seacma_daemon::Daemon;
/// use seacma_tracker::TrackerConfig;
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut daemon = Daemon::new(TrackerConfig::default());
/// let batches: Vec<Vec<ScreenshotPoint>> = (0..2)
///     .map(|e| {
///         (0..12u32)
///             .map(|i| ScreenshotPoint::new(
///                 Dhash(0xFACE ^ (1 << ((e + i) % 3))),
///                 format!("evil{}.club", i % 6),
///             ))
///             .collect()
///     })
///     .collect();
/// let summaries = daemon.run_epochs(batches);
/// assert_eq!(summaries.len(), 2);
/// assert_eq!(daemon.handle().epoch(), 2);
///
/// // Restart: resume from the JSON snapshot, answers are identical.
/// let resumed = Daemon::from_json(&daemon.to_json()).unwrap();
/// assert_eq!(resumed.to_json(), daemon.to_json());
/// assert_eq!(resumed.handle().epoch(), 2);
/// ```
#[derive(Debug)]
pub struct Daemon {
    tracker: CampaignTracker,
    cell: Arc<SnapshotCell>,
}

impl Daemon {
    /// A fresh daemon with an empty epoch-0 snapshot published.
    pub fn new(config: TrackerConfig) -> Self {
        let tracker = CampaignTracker::new(config);
        let cell = Arc::new(SnapshotCell::new(ReputationSnapshot::build(&tracker)));
        Self { tracker, cell }
    }

    /// A cloneable query handle onto the published snapshots. Handles stay
    /// valid for the daemon's lifetime and across epoch swaps.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle::new(Arc::clone(&self.cell))
    }

    /// The live tracker (read access; the daemon is the single writer).
    pub fn tracker(&self) -> &CampaignTracker {
        &self.tracker
    }

    /// The number of epochs closed so far.
    pub fn epoch(&self) -> u32 {
        self.tracker.epoch()
    }

    /// Feeds one point into the current (open) epoch. Readers are
    /// unaffected until [`Daemon::close_epoch`] publishes the boundary.
    pub fn ingest(&mut self, point: ScreenshotPoint) {
        self.tracker.ingest(point);
    }

    /// Feeds a batch of points into the current epoch.
    pub fn ingest_all(&mut self, points: impl IntoIterator<Item = ScreenshotPoint>) {
        self.tracker.ingest_all(points);
    }

    /// Closes the current epoch and atomically publishes the new
    /// reputation snapshot. Queries in flight keep the previous snapshot;
    /// queries started after this call see the new one.
    pub fn close_epoch(&mut self) -> EpochSummary {
        let summary = self.tracker.end_epoch();
        self.cell.publish(ReputationSnapshot::build(&self.tracker));
        summary
    }

    /// Runs one epoch per batch: ingest, then close. This is the shape the
    /// pipeline's entry points produce
    /// ([`Pipeline::crawl_epoch_batches`](seacma_core::Pipeline::crawl_epoch_batches),
    /// [`Pipeline::milking_epoch_batches`](seacma_core::Pipeline::milking_epoch_batches)).
    pub fn run_epochs(
        &mut self,
        batches: impl IntoIterator<Item = Vec<ScreenshotPoint>>,
    ) -> Vec<EpochSummary> {
        batches
            .into_iter()
            .map(|batch| {
                self.ingest_all(batch);
                self.close_epoch()
            })
            .collect()
    }

    /// Drives a timestamped feed through the virtual-time scheduler until
    /// `until`: every boundary at or before `until` closes an epoch
    /// holding exactly the feed entries before it. The feed must be
    /// nondecreasing in time (the simulator's merge-sweep order).
    ///
    /// ```
    /// use seacma_daemon::{Daemon, EpochScheduler};
    /// use seacma_simweb::{SimTime, DAY};
    /// use seacma_tracker::TrackerConfig;
    /// use seacma_vision::cluster::ScreenshotPoint;
    /// use seacma_vision::dhash::Dhash;
    ///
    /// let mut daemon = Daemon::new(TrackerConfig::default());
    /// let mut sched = EpochScheduler::new(SimTime::EPOCH, DAY);
    /// let feed: Vec<(SimTime, ScreenshotPoint)> = (0..12u64)
    ///     .map(|i| (
    ///         SimTime(i * 200),
    ///         ScreenshotPoint::new(Dhash(0xFACE ^ (1 << (i % 3))), format!("evil{i}.club")),
    ///     ))
    ///     .collect();
    /// let summaries = daemon.run_feed(&feed, &mut sched, SimTime::EPOCH + DAY * 2);
    /// assert_eq!(summaries.len(), 2); // two whole virtual days closed
    /// assert_eq!(sched.closed(), 2);
    /// ```
    pub fn run_feed(
        &mut self,
        feed: &[(SimTime, ScreenshotPoint)],
        sched: &mut EpochScheduler,
        until: SimTime,
    ) -> Vec<EpochSummary> {
        let mut summaries = Vec::new();
        let mut next = 0usize;
        while sched.next_boundary() <= until {
            let boundary = sched.next_boundary();
            while next < feed.len() && feed[next].0 < boundary {
                self.ingest(feed[next].1.clone());
                next += 1;
            }
            summaries.push(self.close_epoch());
            sched.advance();
        }
        summaries
    }

    /// Serializes the daemon's full resumable state — exactly the
    /// tracker's canonical JSON ([`CampaignTracker::to_json`]), including
    /// any points of the open epoch.
    pub fn to_json(&self) -> String {
        self.tracker.to_json()
    }

    /// Boots a daemon from a [`Daemon::to_json`] snapshot and republishes
    /// the reputation snapshot. Resuming is byte-identical: the restored
    /// tracker re-serializes to the same bytes, and the republished
    /// snapshot answers every query exactly like the pre-restart one.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let tracker = CampaignTracker::from_json(text)?;
        let cell = Arc::new(SnapshotCell::new(ReputationSnapshot::build(&tracker)));
        Ok(Self { tracker, cell })
    }
}
