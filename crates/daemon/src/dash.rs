//! The live ANSI dashboard served by `seacmad`'s `dash` command.
//!
//! A dashboard frame is a pure function of three inputs — the latest
//! published [`ReputationSnapshot`], the REPL's [`QueryCounters`] and the
//! epoch-feed length — rendered into [`Line`]s with seacma-report's
//! std-only ANSI primitives (no ratatui; the hermetic build has no TUI
//! dependency to reach for). The frame reuses the same [`Analysis`]
//! implementations the HTML report ships: what the operator watches live
//! is literally the report's tables computed over the daemon's served
//! snapshot.
//!
//! ```
//! use seacma_daemon::dash::{render_frame, QueryCounters};
//! use seacma_daemon::ReputationSnapshot;
//! use seacma_tracker::{CampaignTracker, TrackerConfig};
//!
//! let snap = ReputationSnapshot::build(&CampaignTracker::new(TrackerConfig::default()));
//! let frame = render_frame(&snap, &QueryCounters::default(), 12, Some(1.5));
//! assert!(frame[0].plain().contains("seacmad"));
//! assert!(frame.iter().any(|l| l.plain().contains("epoch 0/12")));
//! ```

use seacma_report::ansi::{meter, Line, Span, Style};
use seacma_report::{Analysis, CampaignObs, ReportInputs};
use seacma_tracker::LifeState;

use crate::snapshot::ReputationSnapshot;

/// Width of the epoch progress meter, in cells.
const METER_WIDTH: usize = 40;

/// Cumulative per-kind query counts for the REPL session. The dashboard
/// derives totals and QPS from these; the REPL increments them as it
/// answers.
///
/// ```
/// use seacma_daemon::dash::QueryCounters;
///
/// let mut c = QueryCounters::default();
/// c.url += 2;
/// c.status += 1;
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// `url <u>` queries answered.
    pub url: u64,
    /// `dhash <h>` queries answered.
    pub dhash: u64,
    /// `detect <h> ...` page-load observations scored.
    pub detect: u64,
    /// `campaign <id>` queries answered.
    pub campaign: u64,
    /// `status` queries answered.
    pub status: u64,
}

impl QueryCounters {
    /// Total queries answered across all kinds.
    pub fn total(&self) -> u64 {
        self.url + self.dhash + self.detect + self.campaign + self.status
    }
}

/// Projects the daemon's served statuses into the analyses' input bundle:
/// campaigns map field-for-field, and qualified campaigns' member counts
/// stand in for cluster sizes (the snapshot serves exactly the clusters
/// that met θc).
pub fn snapshot_inputs(snapshot: &ReputationSnapshot) -> ReportInputs {
    let mut inputs = ReportInputs::new(0);
    inputs.epoch = snapshot.epoch();
    inputs.campaigns = snapshot
        .statuses()
        .iter()
        .map(|s| CampaignObs {
            id: s.id,
            state: s.state,
            qualified: s.qualified,
            members: s.members,
            domains: s.domains.len() as u32,
            birth_epoch: s.birth_epoch,
            last_growth_epoch: s.last_growth_epoch,
        })
        .collect();
    inputs.cluster_sizes = snapshot
        .statuses()
        .iter()
        .filter(|s| s.qualified)
        .map(|s| s.members)
        .collect();
    inputs.cluster_sizes.sort_unstable_by(|a, b| b.cmp(a));
    inputs
}

fn count_state(snapshot: &ReputationSnapshot, state: LifeState) -> u64 {
    snapshot.statuses().iter().filter(|s| s.state == state).count() as u64
}

/// Renders one dashboard frame: header, epoch progress meter, campaign
/// status counts, query counters (with QPS when a session duration is
/// known) and the report analyses computed over the snapshot. Pure
/// function of its arguments — tests assert on the plain projection.
pub fn render_frame(
    snapshot: &ReputationSnapshot,
    counters: &QueryCounters,
    epochs_total: u32,
    elapsed_secs: Option<f64>,
) -> Vec<Line> {
    let mut lines = Vec::new();
    lines.push(Line::styled("seacmad — live campaign dashboard", Style::TITLE));

    // Epoch progress.
    let epoch = snapshot.epoch();
    lines.push(Line(vec![
        Span::raw(format!("epoch {epoch}/{epochs_total}  ")),
        Span::styled(meter(u64::from(epoch), u64::from(epochs_total), METER_WIDTH), Style::CYAN),
        Span::raw(if epoch >= epochs_total { "  (feed drained)" } else { "" }),
    ]));

    // Campaign status counts.
    let qualified = snapshot.statuses().iter().filter(|s| s.qualified).count();
    lines.push(Line(vec![
        Span::raw(format!("campaigns {qualified} qualified  |  ")),
        Span::styled(format!("{} active", count_state(snapshot, LifeState::Active)), Style::GREEN),
        Span::raw("  "),
        Span::styled(
            format!("{} dormant", count_state(snapshot, LifeState::Dormant)),
            Style::YELLOW,
        ),
        Span::raw("  "),
        Span::styled(format!("{} dead", count_state(snapshot, LifeState::Dead)), Style::RED),
        Span::raw("  "),
        Span::styled(format!("{} merged", count_state(snapshot, LifeState::Merged)), Style::DIM),
    ]));

    // Query counters.
    let mut counter_spans = vec![
        Span::raw("queries "),
        Span::styled(counters.total().to_string(), Style::BOLD),
        Span::raw(format!(
            "  (url {} | dhash {} | detect {} | campaign {} | status {})",
            counters.url, counters.dhash, counters.detect, counters.campaign, counters.status
        )),
    ];
    if let Some(secs) = elapsed_secs {
        if secs > 0.0 {
            counter_spans.push(Span::styled(
                format!("  {:.1} q/s", counters.total() as f64 / secs),
                Style::CYAN,
            ));
        }
    }
    lines.push(Line(counter_spans));

    // Resident hot storage: the SoA point columns and the symbol arena.
    lines.push(Line(vec![
        Span::raw("memory "),
        Span::styled(snapshot.resident_points().to_string(), Style::BOLD),
        Span::raw(" resident points  |  arena "),
        Span::styled(snapshot.arena_len().to_string(), Style::BOLD),
        Span::raw(" symbols"),
    ]));
    lines.push(Line::default());

    // The report's own analyses over the served snapshot.
    let inputs = snapshot_inputs(snapshot);
    let analyses: [&dyn Analysis; 2] = [
        &seacma_report::CampaignGrowth,
        &seacma_report::ClusterSizeDistribution,
    ];
    for a in analyses {
        lines.extend(a.render_ansi(&a.compute(&inputs)));
        lines.push(Line::default());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_tracker::{CampaignTracker, TrackerConfig};
    use seacma_vision::cluster::ScreenshotPoint;
    use seacma_vision::dhash::Dhash;

    fn tracked_snapshot() -> ReputationSnapshot {
        let mut tracker = CampaignTracker::new(TrackerConfig::default());
        for i in 0..12u32 {
            tracker.ingest(ScreenshotPoint::new(
                Dhash(0xFACE ^ (1 << (i % 3))),
                format!("evil{}.club", i % 6),
            ));
        }
        tracker.end_epoch();
        ReputationSnapshot::build(&tracker)
    }

    #[test]
    fn frame_reflects_snapshot_and_counters() {
        let snap = tracked_snapshot();
        let mut counters = QueryCounters::default();
        counters.url = 3;
        counters.dhash = 2;
        let frame = render_frame(&snap, &counters, 10, Some(2.0));
        let text: Vec<String> = frame.iter().map(Line::plain).collect();
        assert!(text.iter().any(|l| l.contains("epoch 1/10")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("queries 5")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("2.5 q/s")), "{text:?}");
        let expected_mem = format!(
            "memory {} resident points  |  arena {} symbols",
            snap.resident_points(),
            snap.arena_len()
        );
        assert!(text.iter().any(|l| l.contains(&expected_mem)), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Campaign growth")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Cluster-size distribution")), "{text:?}");
    }

    #[test]
    fn frame_is_deterministic() {
        let snap = tracked_snapshot();
        let c = QueryCounters::default();
        assert_eq!(render_frame(&snap, &c, 10, None), render_frame(&snap, &c, 10, None));
    }

    #[test]
    fn snapshot_inputs_projects_statuses() {
        let snap = tracked_snapshot();
        let inputs = snapshot_inputs(&snap);
        assert_eq!(inputs.campaigns.len(), snap.statuses().len());
        assert_eq!(inputs.epoch, snap.epoch());
        let descending = inputs.cluster_sizes.windows(2).all(|w| w[0] >= w[1]);
        assert!(descending);
    }
}
