//! The reputation query API's answer types.
//!
//! Every answer is a pure function of one published
//! [`ReputationSnapshot`](crate::snapshot::ReputationSnapshot), and every
//! type here serializes to canonical JSON via `seacma-util` — equal answers
//! are byte-identical strings, which is how the exactness gates (the
//! property suites and `query_scaling`) compare the daemon against the
//! offline batch pipeline.

use seacma_tracker::{CampaignRecord, LifeState};
use seacma_util::sym::SymbolArena;
use seacma_util::{impl_json_enum, impl_json_struct};

/// The daemon's answer to a URL (or bare e2LD) reputation lookup.
///
/// ```
/// use seacma_daemon::UrlVerdict;
/// use seacma_tracker::LifeState;
/// use seacma_util::json;
///
/// let v = UrlVerdict::Tracked { campaign: 3, state: LifeState::Active, qualified: true };
/// assert_eq!(
///     json::to_string(&v),
///     r#"{"Tracked":{"campaign":3,"state":"Active","qualified":true}}"#,
/// );
/// assert_eq!(json::to_string(&UrlVerdict::Unknown), r#""Unknown""#);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrlVerdict {
    /// The e2LD was not part of any tracked campaign at the served epoch.
    Unknown,
    /// The e2LD belongs to a tracked campaign.
    Tracked {
        /// Stable ledger id of the campaign.
        campaign: u32,
        /// The campaign's life state at the served epoch.
        state: LifeState,
        /// Whether the campaign's domain count meets θc (a cluster below
        /// θc is tracked but not a qualified SEACMA campaign).
        qualified: bool,
    },
}

/// The nearest tracked campaign to a probe dhash, within the clustering
/// radius.
///
/// `distance` is the exact 128-bit Hamming distance to the closest
/// campaign-assigned point; ties break to the lowest point index, so the
/// answer is a pure function of the snapshot.
///
/// ```
/// use seacma_daemon::DhashMatch;
/// use seacma_tracker::LifeState;
/// use seacma_util::json;
///
/// let m = DhashMatch { campaign: 0, distance: 2, state: LifeState::Dormant, qualified: true };
/// let text = json::to_string(&m);
/// assert_eq!(json::from_str::<DhashMatch>(&text).unwrap(), m);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhashMatch {
    /// Stable ledger id of the matched campaign.
    pub campaign: u32,
    /// Hamming distance (bits) to the nearest assigned point.
    pub distance: u32,
    /// The campaign's life state at the served epoch.
    pub state: LifeState,
    /// Whether the campaign's domain count meets θc.
    pub qualified: bool,
}

/// A campaign's lifecycle summary as served by the status query — the
/// ledger's [`CampaignRecord`] minus its event journal (which grows
/// without bound and is served by the offline reports instead).
///
/// ```
/// use seacma_daemon::CampaignStatus;
/// use seacma_tracker::LifeState;
/// use seacma_util::json;
///
/// let s = CampaignStatus {
///     id: 7,
///     state: LifeState::Active,
///     qualified: true,
///     members: 41,
///     domains: vec!["evil0.club".into(), "evil1.club".into()],
///     birth_epoch: 2,
///     last_growth_epoch: 5,
/// };
/// let text = json::to_string(&s);
/// assert_eq!(json::from_str::<CampaignStatus>(&text).unwrap(), s);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Stable ledger id.
    pub id: u32,
    /// Current life state.
    pub state: LifeState,
    /// Whether the domain count meets θc.
    pub qualified: bool,
    /// Screenshot count at the last observation.
    pub members: u32,
    /// Distinct e2LDs at the last observation, sorted.
    pub domains: Vec<String>,
    /// Epoch the campaign was first observed.
    pub birth_epoch: u32,
    /// Last epoch the member count grew.
    pub last_growth_epoch: u32,
}

impl CampaignStatus {
    /// Projects a ledger record into its served status, resolving the
    /// record's domain symbols against `arena` — the one point where the
    /// serving path materializes domain strings, once per epoch close
    /// rather than once per epoch per campaign per domain.
    pub fn from_record(r: &CampaignRecord, arena: &SymbolArena) -> Self {
        Self {
            id: r.id,
            state: r.state,
            qualified: r.campaign,
            members: r.members,
            domains: r.domains.iter().map(|&d| arena.resolve(d).to_string()).collect(),
            birth_epoch: r.birth_epoch,
            last_growth_epoch: r.last_growth_epoch,
        }
    }
}

impl_json_enum!(UrlVerdict {
    Unknown,
    Tracked { campaign: u32, state: LifeState, qualified: bool },
});
impl_json_struct!(DhashMatch { campaign, distance, state, qualified });
impl_json_struct!(CampaignStatus {
    id,
    state,
    qualified,
    members,
    domains,
    birth_epoch,
    last_growth_epoch,
});
