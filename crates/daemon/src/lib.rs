//! # seacma-daemon — the resident SEACMA process with a reputation query API
//!
//! The batch pipeline (`seacma-core`) answers "what happened" after a
//! measurement finishes; operators also need "what is this URL *right
//! now*". This crate turns the crawl → cluster → milk → track loop into a
//! **resident process**: a single writer drives the incremental
//! [`CampaignTracker`](seacma_tracker::CampaignTracker) epoch by epoch on
//! a virtual-time schedule, and any number of reader threads serve
//! reputation queries concurrently — URL → campaign, dhash →
//! nearest campaign (via the exact banded Hamming index), campaign id →
//! lifecycle state.
//!
//! The architecture is epoch-swap over immutable snapshots:
//!
//! - [`Daemon::close_epoch`] freezes the tracker boundary into a
//!   [`ReputationSnapshot`] and publishes it into the [`SnapshotCell`]
//!   with a pointer swap — the only writer/reader synchronization point,
//!   held for nanoseconds;
//! - [`QueryHandle`] (cloneable, `Send + Sync`) answers every query
//!   lock-free against the snapshot it loaded, so reads **never block on
//!   an in-flight epoch** and a mid-epoch query answers exactly as of the
//!   last closed boundary;
//! - each snapshot also carries a frozen
//!   [`Detector`](seacma_detect::Detector) view, so
//!   [`QueryHandle::detect`] scores whole page-load observations (dhash +
//!   structural signals) online — the daemon's second workload class,
//!   gated byte-identical against `seacma-detect`'s naive-scan oracle;
//! - the restart story is the tracker's byte-identical snapshot/resume:
//!   [`Daemon::to_json`] / [`Daemon::from_json`] round-trip the full
//!   resumable state, under live query load, without a byte of drift.
//!
//! Exactness is checked the same way the tracker itself is gated: the
//! [`offline`] oracle rebuilds every epoch's snapshot from **batch**
//! primitives only, and the property suites plus the `query_scaling`
//! bench require the daemon's served answers to be byte-identical to the
//! oracle's before any throughput number is reported.
//!
//! ```
//! use seacma_daemon::{Daemon, UrlVerdict};
//! use seacma_tracker::TrackerConfig;
//! use seacma_vision::cluster::ScreenshotPoint;
//! use seacma_vision::dhash::Dhash;
//!
//! let mut daemon = Daemon::new(TrackerConfig::default());
//! let handle = daemon.handle(); // move clones of this to reader threads
//!
//! // One epoch: a campaign rotating 6 domains around one visual template.
//! daemon.ingest_all((0..12u32).map(|i| {
//!     ScreenshotPoint::new(Dhash(0xFACE ^ (1 << (i % 3))), format!("evil{}.club", i % 6))
//! }));
//! daemon.close_epoch();
//!
//! assert!(matches!(handle.url("http://evil4.club/win"), UrlVerdict::Tracked { .. }));
//! let hit = handle.dhash(Dhash(0xFACE ^ 0b11)).expect("within the eps ball");
//! assert_eq!(hit.campaign, 0);
//! assert!(handle.campaign(0).unwrap().qualified);
//! ```

#![deny(missing_docs)]

pub mod daemon;
pub mod dash;
pub mod offline;
pub mod query;
pub mod scheduler;
pub mod snapshot;

pub use daemon::Daemon;
pub use query::{CampaignStatus, DhashMatch, UrlVerdict};
pub use scheduler::EpochScheduler;
pub use snapshot::{QueryHandle, ReputationSnapshot, SnapshotCell};
