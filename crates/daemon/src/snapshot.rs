//! Immutable reputation snapshots and their atomic publication cell.
//!
//! The daemon's read path never blocks on an in-flight epoch: every epoch
//! close builds a fresh immutable [`ReputationSnapshot`] and publishes it
//! into the [`SnapshotCell`] with a pointer swap. Readers clone the `Arc`
//! under a read lock held for nanoseconds, then answer any number of
//! queries lock-free against the frozen snapshot — a query that started
//! against snapshot `N` keeps answering from snapshot `N` even while
//! snapshot `N + 1` is being built and published.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use seacma_simweb::domain::e2ld;
use seacma_simweb::Url;
use seacma_tracker::CampaignTracker;
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;
use seacma_vision::index::HammingIndex;

use crate::query::{CampaignStatus, DhashMatch, UrlVerdict};

/// One epoch boundary's frozen reputation state: the unique points, an
/// exact banded Hamming index over their hashes, the ledger's point
/// assignments, and per-campaign statuses.
///
/// All queries are read-only and a pure function of the snapshot, so the
/// same snapshot always returns byte-identical answers — the invariant the
/// offline oracle ([`crate::offline::replay_batches`]) checks against.
///
/// ```
/// use seacma_daemon::{ReputationSnapshot, UrlVerdict};
/// use seacma_tracker::{CampaignTracker, TrackerConfig};
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut tracker = CampaignTracker::new(TrackerConfig::default());
/// for i in 0..12u32 {
///     tracker.ingest(ScreenshotPoint::new(
///         Dhash(0xFACE ^ (1 << (i % 3))),
///         format!("evil{}.club", i % 6),
///     ));
/// }
/// tracker.end_epoch();
/// let snap = ReputationSnapshot::build(&tracker);
/// assert_eq!(snap.epoch(), 1);
/// assert!(matches!(snap.lookup_url("http://evil3.club/lp"), UrlVerdict::Tracked { .. }));
/// assert_eq!(snap.lookup_url("https://example.com/"), UrlVerdict::Unknown);
/// ```
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    epoch: u32,
    points: Vec<ScreenshotPoint>,
    index: HammingIndex,
    assignments: Vec<Option<u32>>,
    domains: HashMap<String, u32>,
    statuses: Vec<CampaignStatus>,
}

impl ReputationSnapshot {
    /// Freezes a tracker's state at its current epoch boundary.
    ///
    /// Points ingested since the last [`end_epoch`](CampaignTracker::end_epoch)
    /// appear in the index but are unassigned, so they cannot influence any
    /// answer — a snapshot built mid-epoch answers exactly like the one
    /// published at the last boundary.
    pub fn build(tracker: &CampaignTracker) -> Self {
        let points = tracker.unique_points().to_vec();
        let mut assignments = tracker.ledger().assignments().to_vec();
        assignments.resize(points.len(), None);
        let statuses =
            tracker.ledger().records().iter().map(CampaignStatus::from_record).collect();
        Self::from_parts(
            tracker.epoch(),
            points,
            assignments,
            statuses,
            tracker.config().params.eps,
        )
    }

    /// Assembles a snapshot from its constituent parts — the entry point
    /// the offline oracle shares with [`ReputationSnapshot::build`], so
    /// both sides derive the domain map and the Hamming index the same
    /// deterministic way.
    ///
    /// `assignments[i]` is the ledger id of `points[i]` (`None` = noise or
    /// not yet observed); `statuses` lists every ledger record in id order;
    /// `eps` is the clustering radius the index answers dhash queries for.
    /// The domain map assigns each e2LD of a non-merged record to the
    /// smallest claiming ledger id (records are scanned in id order).
    pub fn from_parts(
        epoch: u32,
        points: Vec<ScreenshotPoint>,
        assignments: Vec<Option<u32>>,
        statuses: Vec<CampaignStatus>,
        eps: f64,
    ) -> Self {
        debug_assert_eq!(points.len(), assignments.len());
        let hashes: Vec<Dhash> = points.iter().map(|p| p.dhash).collect();
        let index = HammingIndex::build(&hashes, eps);
        let mut domains = HashMap::new();
        for s in statuses.iter().filter(|s| !matches!(s.state, seacma_tracker::LifeState::Merged))
        {
            for d in &s.domains {
                domains.entry(d.clone()).or_insert(s.id);
            }
        }
        Self { epoch, points, index, assignments, domains, statuses }
    }

    /// The number of closed epochs this snapshot reflects.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The distinct `(dhash, e2LD)` points frozen into the snapshot.
    pub fn points(&self) -> &[ScreenshotPoint] {
        &self.points
    }

    /// Every ledger record's status, in id order.
    pub fn statuses(&self) -> &[CampaignStatus] {
        &self.statuses
    }

    /// The status of ledger id `id`, if it exists.
    pub fn campaign(&self, id: u32) -> Option<&CampaignStatus> {
        self.statuses.get(id as usize)
    }

    /// Reputation of a bare effective second-level domain.
    pub fn lookup_domain(&self, e2ld: &str) -> UrlVerdict {
        match self.domains.get(e2ld) {
            Some(&id) => {
                let s = &self.statuses[id as usize];
                UrlVerdict::Tracked { campaign: id, state: s.state, qualified: s.qualified }
            }
            None => UrlVerdict::Unknown,
        }
    }

    /// Reputation of a URL: parses it (falling back to treating the input
    /// as a bare hostname), reduces the host to its e2LD, and looks that
    /// up. The answer depends only on the e2LD — campaigns rotate hosts
    /// and paths freely, the e2LD is what the θc filter counts.
    pub fn lookup_url(&self, url: &str) -> UrlVerdict {
        let key = match url.parse::<Url>() {
            Ok(u) => u.e2ld(),
            Err(_) => e2ld(url.trim()),
        };
        self.lookup_domain(&key)
    }

    /// The nearest tracked campaign within the clustering radius of probe
    /// hash `h`: among assigned points in the `eps`-ball, the one with
    /// minimal `(distance, point index)`. `None` when no assigned point is
    /// within the radius — an unassigned (noise or mid-epoch) point never
    /// produces a match.
    pub fn nearest_campaign(&self, h: Dhash) -> Option<DhashMatch> {
        let mut scratch = Vec::new();
        self.index.neighbours_of_hash(h, &mut scratch);
        scratch
            .iter()
            .filter_map(|&q| {
                self.assignments[q]
                    .map(|id| ((h.0 ^ self.points[q].dhash.0).count_ones(), q, id))
            })
            .min_by_key(|&(d, q, _)| (d, q))
            .map(|(distance, _, id)| {
                let s = &self.statuses[id as usize];
                DhashMatch { campaign: id, distance, state: s.state, qualified: s.qualified }
            })
    }
}

/// The atomic publication cell: a single slot holding the current
/// [`ReputationSnapshot`] behind an `Arc`.
///
/// [`publish`](SnapshotCell::publish) takes the write lock only for the
/// pointer swap; [`load`](SnapshotCell::load) takes the read lock only to
/// clone the `Arc`. No query work happens under either lock, so readers
/// never block on an in-flight epoch and the writer never waits for
/// readers to finish a query.
///
/// ```
/// use seacma_daemon::{ReputationSnapshot, SnapshotCell};
/// use seacma_tracker::{CampaignTracker, TrackerConfig};
///
/// let tracker = CampaignTracker::new(TrackerConfig::default());
/// let cell = SnapshotCell::new(ReputationSnapshot::build(&tracker));
/// let before = cell.load();            // readers hold snapshot 0...
/// cell.publish(ReputationSnapshot::build(&tracker));
/// assert_eq!(before.epoch(), cell.load().epoch()); // ...swap does not touch it
/// ```
#[derive(Debug)]
pub struct SnapshotCell {
    slot: RwLock<Arc<ReputationSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: ReputationSnapshot) -> Self {
        Self { slot: RwLock::new(Arc::new(initial)) }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; queries run lock-free afterwards.
    pub fn load(&self) -> Arc<ReputationSnapshot> {
        self.slot.read().expect("snapshot cell poisoned").clone()
    }

    /// Atomically replaces the current snapshot. In-flight readers keep
    /// their `Arc` to the previous snapshot; new loads see `snapshot`.
    pub fn publish(&self, snapshot: ReputationSnapshot) {
        *self.slot.write().expect("snapshot cell poisoned") = Arc::new(snapshot);
    }
}

/// A cloneable, thread-safe handle serving reputation queries from the
/// latest published snapshot.
///
/// Each query loads the current snapshot once and answers from it, so a
/// single call is internally consistent; callers that need several answers
/// from the *same* epoch take [`QueryHandle::snapshot`] once and query
/// that.
///
/// ```
/// use seacma_daemon::{Daemon, UrlVerdict};
/// use seacma_tracker::TrackerConfig;
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut daemon = Daemon::new(TrackerConfig::default());
/// let handle = daemon.handle();        // clones can move to other threads
/// for i in 0..12u32 {
///     daemon.ingest(ScreenshotPoint::new(
///         Dhash(0xFACE ^ (1 << (i % 3))),
///         format!("evil{}.club", i % 6),
///     ));
/// }
/// assert_eq!(handle.epoch(), 0);       // mid-epoch points are not served yet
/// daemon.close_epoch();
/// assert_eq!(handle.epoch(), 1);
/// assert!(matches!(handle.url("http://evil0.club/"), UrlVerdict::Tracked { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct QueryHandle {
    cell: Arc<SnapshotCell>,
}

impl QueryHandle {
    /// A handle reading from `cell`.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        Self { cell }
    }

    /// The latest published snapshot, for multi-query consistency.
    pub fn snapshot(&self) -> Arc<ReputationSnapshot> {
        self.cell.load()
    }

    /// The number of closed epochs in the latest published snapshot.
    pub fn epoch(&self) -> u32 {
        self.snapshot().epoch()
    }

    /// URL reputation, per [`ReputationSnapshot::lookup_url`].
    pub fn url(&self, url: &str) -> UrlVerdict {
        self.snapshot().lookup_url(url)
    }

    /// Nearest-campaign lookup, per [`ReputationSnapshot::nearest_campaign`].
    pub fn dhash(&self, h: Dhash) -> Option<DhashMatch> {
        self.snapshot().nearest_campaign(h)
    }

    /// Campaign status, per [`ReputationSnapshot::campaign`].
    pub fn campaign(&self, id: u32) -> Option<CampaignStatus> {
        self.snapshot().campaign(id).cloned()
    }
}
