//! Immutable reputation snapshots and their atomic publication cell.
//!
//! The daemon's read path never blocks on an in-flight epoch: every epoch
//! close builds a fresh immutable [`ReputationSnapshot`] and publishes it
//! into the [`SnapshotCell`] with a pointer swap. Readers clone the `Arc`
//! under a read lock held for nanoseconds, then answer any number of
//! queries lock-free against the frozen snapshot — a query that started
//! against snapshot `N` keeps answering from snapshot `N` even while
//! snapshot `N + 1` is being built and published.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use seacma_detect::{Detector, DetectorConfig, PageObservation, Verdict};
use seacma_simweb::domain::e2ld;
use seacma_simweb::Url;
use seacma_tracker::CampaignTracker;
use seacma_util::sym::{SharedArena, Sym};
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;
use seacma_vision::index::HammingIndex;

use crate::query::{CampaignStatus, DhashMatch, UrlVerdict};

/// One epoch boundary's frozen reputation state: the unique points (held
/// as struct-of-arrays columns — the Hamming index owns the contiguous
/// dhash column, e2LDs are a symbol column into a shared arena), the
/// ledger's point assignments, and per-campaign statuses.
///
/// All queries are read-only and a pure function of the snapshot, so the
/// same snapshot always returns byte-identical answers — the invariant the
/// offline oracle ([`crate::offline::replay_batches`]) checks against.
///
/// ```
/// use seacma_daemon::{ReputationSnapshot, UrlVerdict};
/// use seacma_tracker::{CampaignTracker, TrackerConfig};
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut tracker = CampaignTracker::new(TrackerConfig::default());
/// for i in 0..12u32 {
///     tracker.ingest(ScreenshotPoint::new(
///         Dhash(0xFACE ^ (1 << (i % 3))),
///         format!("evil{}.club", i % 6),
///     ));
/// }
/// tracker.end_epoch();
/// let snap = ReputationSnapshot::build(&tracker);
/// assert_eq!(snap.epoch(), 1);
/// assert!(matches!(snap.lookup_url("http://evil3.club/lp"), UrlVerdict::Tracked { .. }));
/// assert_eq!(snap.lookup_url("https://example.com/"), UrlVerdict::Unknown);
/// ```
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    epoch: u32,
    /// Owns the contiguous dhash column.
    index: HammingIndex,
    /// e2LD symbol per point, parallel to the index's hash column.
    e2lds: Vec<Sym>,
    /// The arena `e2lds` and `domains` resolve against.
    arena: SharedArena,
    assignments: Vec<Option<u32>>,
    domains: HashMap<Sym, u32>,
    statuses: Vec<CampaignStatus>,
    /// The online detector's frozen view over the same columns: two more
    /// banded indexes (clustering radius + escalated radius) sharing the
    /// snapshot's assignment vector semantics.
    detector: Detector,
}

impl ReputationSnapshot {
    /// Freezes a tracker's state at its current epoch boundary.
    ///
    /// Points ingested since the last [`end_epoch`](CampaignTracker::end_epoch)
    /// appear in the index but are unassigned, so they cannot influence any
    /// answer — a snapshot built mid-epoch answers exactly like the one
    /// published at the last boundary.
    ///
    /// Publication is cheap: the tracker's live Hamming index and symbol
    /// column are cloned (no rebuild, no string copies) and the arena is
    /// shared by handle.
    pub fn build(tracker: &CampaignTracker) -> Self {
        let index = tracker.hamming_index().clone();
        let e2lds = tracker.e2ld_syms().to_vec();
        let arena = tracker.arena().clone();
        let mut assignments = tracker.ledger().assignments().to_vec();
        assignments.resize(e2lds.len(), None);
        let statuses: Vec<CampaignStatus> = {
            let resolver = arena.read();
            tracker
                .ledger()
                .records()
                .iter()
                .map(|r| CampaignStatus::from_record(r, &resolver))
                .collect()
        };
        let domains = domain_map(&arena, &statuses);
        let detector = Detector::from_columns(
            index.hashes(),
            &detect_assignments(&assignments, &statuses),
            DetectorConfig::for_eps(tracker.config().params.eps),
        );
        Self { epoch: tracker.epoch(), index, e2lds, arena, assignments, domains, statuses, detector }
    }

    /// Assembles a snapshot from its constituent parts — the entry point
    /// the offline oracle shares with [`ReputationSnapshot::build`], so
    /// both sides derive the domain map and the Hamming index the same
    /// deterministic way.
    ///
    /// `assignments[i]` is the ledger id of `points[i]` (`None` = noise or
    /// not yet observed); `statuses` lists every ledger record in id order;
    /// `eps` is the clustering radius the index answers dhash queries for.
    /// The domain map assigns each e2LD of a non-merged record to the
    /// smallest claiming ledger id (records are scanned in id order).
    pub fn from_parts(
        epoch: u32,
        points: Vec<ScreenshotPoint>,
        assignments: Vec<Option<u32>>,
        statuses: Vec<CampaignStatus>,
        eps: f64,
    ) -> Self {
        debug_assert_eq!(points.len(), assignments.len());
        let hashes: Vec<Dhash> = points.iter().map(|p| p.dhash).collect();
        let index = HammingIndex::build(&hashes, eps);
        let arena = SharedArena::new();
        let e2lds: Vec<Sym> = points.iter().map(|p| arena.intern(&p.e2ld)).collect();
        let domains = domain_map(&arena, &statuses);
        let detector = Detector::from_columns(
            &hashes,
            &detect_assignments(&assignments, &statuses),
            DetectorConfig::for_eps(eps),
        );
        Self { epoch, index, e2lds, arena, assignments, domains, statuses, detector }
    }

    /// The number of closed epochs this snapshot reflects.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The distinct `(dhash, e2LD)` points frozen into the snapshot,
    /// materialized from the columns. Query paths never call this; it
    /// exists for tests and offline comparison.
    pub fn points(&self) -> Vec<ScreenshotPoint> {
        let arena = self.arena.read();
        self.index
            .hashes()
            .iter()
            .zip(&self.e2lds)
            .map(|(&d, &s)| ScreenshotPoint::new(d, arena.resolve(s)))
            .collect()
    }

    /// Number of unique points resident in the snapshot.
    pub fn resident_points(&self) -> usize {
        self.e2lds.len()
    }

    /// Number of distinct strings in the snapshot's symbol arena. For a
    /// daemon-private tracker this equals the number of distinct e2LDs
    /// seen; for a pipeline-shared world arena it also counts publisher
    /// domains and other interned strings.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Every ledger record's status, in id order.
    pub fn statuses(&self) -> &[CampaignStatus] {
        &self.statuses
    }

    /// The status of ledger id `id`, if it exists.
    pub fn campaign(&self, id: u32) -> Option<&CampaignStatus> {
        self.statuses.get(id as usize)
    }

    /// Reputation of a bare effective second-level domain. The lookup
    /// never grows the arena: an unknown string simply has no symbol.
    pub fn lookup_domain(&self, e2ld: &str) -> UrlVerdict {
        match self.arena.lookup(e2ld).and_then(|s| self.domains.get(&s)) {
            Some(&id) => {
                let s = &self.statuses[id as usize];
                UrlVerdict::Tracked { campaign: id, state: s.state, qualified: s.qualified }
            }
            None => UrlVerdict::Unknown,
        }
    }

    /// Reputation of a URL: parses it (falling back to treating the input
    /// as a bare hostname), reduces the host to its e2LD, and looks that
    /// up. The answer depends only on the e2LD — campaigns rotate hosts
    /// and paths freely, the e2LD is what the θc filter counts.
    pub fn lookup_url(&self, url: &str) -> UrlVerdict {
        let key = match url.parse::<Url>() {
            Ok(u) => u.e2ld(),
            Err(_) => e2ld(url.trim()),
        };
        self.lookup_domain(&key)
    }

    /// The nearest tracked campaign within the clustering radius of probe
    /// hash `h`: among assigned points in the `eps`-ball, the one with
    /// minimal `(distance, point index)`. `None` when no assigned point is
    /// within the radius — an unassigned (noise or mid-epoch) point never
    /// produces a match.
    pub fn nearest_campaign(&self, h: Dhash) -> Option<DhashMatch> {
        let hashes = self.index.hashes();
        let mut scratch = Vec::new();
        self.index.neighbours_of_hash(h, &mut scratch);
        scratch
            .iter()
            .filter_map(|&q| {
                self.assignments[q].map(|id| ((h.0 ^ hashes[q].0).count_ones(), q, id))
            })
            .min_by_key(|&(d, q, _)| (d, q))
            .map(|(distance, _, id)| {
                let s = &self.statuses[id as usize];
                DhashMatch { campaign: id, distance, state: s.state, qualified: s.qualified }
            })
    }

    /// The snapshot's frozen online-detector view.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Scores one page-load observation against the frozen campaign
    /// index, per [`Detector::detect`]. A pure function of the snapshot:
    /// the same observation always returns a byte-identical verdict.
    pub fn detect(&self, obs: &PageObservation) -> Verdict {
        self.detector.detect(obs)
    }

    /// [`ReputationSnapshot::detect`] with a caller-owned scratch buffer —
    /// the allocation-free path the bench's hot loop drives.
    pub fn detect_with(&self, obs: &PageObservation, scratch: &mut Vec<usize>) -> Verdict {
        self.detector.detect_with(obs, scratch)
    }
}

/// The detector's assignment column: only **qualified** campaigns (θc
/// survivors) answer visual matches. A tracked-but-unqualified cluster is
/// not a SEACMA campaign under the paper's definition, and letting it
/// match would flag every popular benign landing template the crawl
/// happened to cluster.
fn detect_assignments(
    assignments: &[Option<u32>],
    statuses: &[CampaignStatus],
) -> Vec<Option<u32>> {
    assignments
        .iter()
        .map(|a| a.filter(|&id| statuses.get(id as usize).is_some_and(|s| s.qualified)))
        .collect()
}

/// Maps each e2LD of a non-merged record to the smallest claiming ledger
/// id (records scanned in id order). Interning here is idempotent: every
/// status domain came from an ingested point, so the arena never grows —
/// but even if a caller fed foreign statuses, growth would only add
/// unreferenced strings, never change an existing symbol.
fn domain_map(arena: &SharedArena, statuses: &[CampaignStatus]) -> HashMap<Sym, u32> {
    let mut domains = HashMap::new();
    for s in statuses.iter().filter(|s| !matches!(s.state, seacma_tracker::LifeState::Merged)) {
        for d in &s.domains {
            domains.entry(arena.intern(d)).or_insert(s.id);
        }
    }
    domains
}

/// The atomic publication cell: a single slot holding the current
/// [`ReputationSnapshot`] behind an `Arc`.
///
/// [`publish`](SnapshotCell::publish) takes the write lock only for the
/// pointer swap; [`load`](SnapshotCell::load) takes the read lock only to
/// clone the `Arc`. No query work happens under either lock, so readers
/// never block on an in-flight epoch and the writer never waits for
/// readers to finish a query.
///
/// ```
/// use seacma_daemon::{ReputationSnapshot, SnapshotCell};
/// use seacma_tracker::{CampaignTracker, TrackerConfig};
///
/// let tracker = CampaignTracker::new(TrackerConfig::default());
/// let cell = SnapshotCell::new(ReputationSnapshot::build(&tracker));
/// let before = cell.load();            // readers hold snapshot 0...
/// cell.publish(ReputationSnapshot::build(&tracker));
/// assert_eq!(before.epoch(), cell.load().epoch()); // ...swap does not touch it
/// ```
#[derive(Debug)]
pub struct SnapshotCell {
    slot: RwLock<Arc<ReputationSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: ReputationSnapshot) -> Self {
        Self { slot: RwLock::new(Arc::new(initial)) }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; queries run lock-free afterwards.
    pub fn load(&self) -> Arc<ReputationSnapshot> {
        self.slot.read().expect("snapshot cell poisoned").clone()
    }

    /// Atomically replaces the current snapshot. In-flight readers keep
    /// their `Arc` to the previous snapshot; new loads see `snapshot`.
    pub fn publish(&self, snapshot: ReputationSnapshot) {
        *self.slot.write().expect("snapshot cell poisoned") = Arc::new(snapshot);
    }
}

/// A cloneable, thread-safe handle serving reputation queries from the
/// latest published snapshot.
///
/// Each query loads the current snapshot once and answers from it, so a
/// single call is internally consistent; callers that need several answers
/// from the *same* epoch take [`QueryHandle::snapshot`] once and query
/// that.
///
/// ```
/// use seacma_daemon::{Daemon, UrlVerdict};
/// use seacma_tracker::TrackerConfig;
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut daemon = Daemon::new(TrackerConfig::default());
/// let handle = daemon.handle();        // clones can move to other threads
/// for i in 0..12u32 {
///     daemon.ingest(ScreenshotPoint::new(
///         Dhash(0xFACE ^ (1 << (i % 3))),
///         format!("evil{}.club", i % 6),
///     ));
/// }
/// assert_eq!(handle.epoch(), 0);       // mid-epoch points are not served yet
/// daemon.close_epoch();
/// assert_eq!(handle.epoch(), 1);
/// assert!(matches!(handle.url("http://evil0.club/"), UrlVerdict::Tracked { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct QueryHandle {
    cell: Arc<SnapshotCell>,
}

impl QueryHandle {
    /// A handle reading from `cell`.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        Self { cell }
    }

    /// The latest published snapshot, for multi-query consistency.
    pub fn snapshot(&self) -> Arc<ReputationSnapshot> {
        self.cell.load()
    }

    /// The number of closed epochs in the latest published snapshot.
    pub fn epoch(&self) -> u32 {
        self.snapshot().epoch()
    }

    /// URL reputation, per [`ReputationSnapshot::lookup_url`].
    pub fn url(&self, url: &str) -> UrlVerdict {
        self.snapshot().lookup_url(url)
    }

    /// Nearest-campaign lookup, per [`ReputationSnapshot::nearest_campaign`].
    pub fn dhash(&self, h: Dhash) -> Option<DhashMatch> {
        self.snapshot().nearest_campaign(h)
    }

    /// Campaign status, per [`ReputationSnapshot::campaign`].
    pub fn campaign(&self, id: u32) -> Option<CampaignStatus> {
        self.snapshot().campaign(id).cloned()
    }

    /// Online page-load detection, per [`ReputationSnapshot::detect`] —
    /// the daemon's second, harder workload class. Lock-free like every
    /// other query: the handle loads the published snapshot once and
    /// scores against its frozen detector.
    pub fn detect(&self, obs: &PageObservation) -> Verdict {
        self.snapshot().detect(obs)
    }
}
