//! A log-free browser for high-frequency re-visits.
//!
//! The milker re-visits each source every 15 virtual minutes for 14 days —
//! ~1,300 loads per source — and discards the instrumented event log of
//! every one of them (backtracking graphs are built during the crawl, not
//! during milking). [`QuietBrowser`] serves that workload: it follows the
//! exact redirect semantics of [`BrowserSession::navigate`](crate::session::BrowserSession::navigate) without
//! allocating log events, holds the per-source client profile once instead
//! of rebuilding it per visit, and caches the expensive clean pass of each
//! campaign creative's render so repeat screenshots pay only the
//! per-instance noise pass.
//!
//! Equivalence with the instrumented session (same final URL, same page,
//! same screenshot bits) is asserted by this module's tests; the milker's
//! thread-count-invariance suite pins it end to end.

use seacma_simweb::{ClientProfile, HostResponse, LiteResponse, Page, SimTime, Url, World};
use seacma_vision::bitmap::Bitmap;
use seacma_vision::dhash::Dhash;

use crate::render_cache::RenderCache;
use crate::session::{screenshot_seed, BrowserConfig, NavError, MAX_REDIRECTS};

/// A reusable, log-free browser bound to one client configuration.
///
/// One instance per milking source outlives all of the source's visits:
/// the client profile is computed once and the clean-render cache warms up
/// on the first screenshot of each creative. Fleets that run many quiet
/// browsers (the parallel milker, the tracker's milking feed) share one
/// [`RenderCache`] across all of them via
/// [`with_cache`](QuietBrowser::with_cache), so each creative's clean pass
/// is paid once per fleet rather than once per source.
pub struct QuietBrowser<'w> {
    world: &'w World,
    client: ClientProfile,
    cache: CacheRef<'w>,
    memo: Option<ProbeMemo>,
}

/// Owned-or-borrowed clean-render memo.
enum CacheRef<'w> {
    Owned(RenderCache),
    Shared(&'w RenderCache),
}

impl CacheRef<'_> {
    fn get(&self) -> &RenderCache {
        match self {
            CacheRef::Owned(c) => c,
            CacheRef::Shared(c) => c,
        }
    }
}

/// A cached probe chain: the error-free redirect chain of `start`, valid
/// on `[from, stable_until)` (the intersection of the stable validity
/// horizons of every hop, as declared by `World::fetch_lite_stable`).
///
/// Transient errors are NOT baked in: they re-roll on 30-minute buckets,
/// much faster than the chain itself changes (ad-inventory buckets are 2
/// hours, campaign epochs ~10). Instead the memo records the hop URLs and
/// re-evaluates only the error draw per bucket — the first erroring hop
/// serves a blank document and becomes the landing, exactly as a fresh
/// walk would stop there. Inside the stable window a probe therefore
/// allocates nothing, bucket rotations included.
struct ProbeMemo {
    start: Url,
    from: SimTime,
    stable_until: SimTime,
    /// The redirect chain, `start` first. Only the first `MAX_REDIRECTS`
    /// entries are ever fetched by a real walk (the hop budget), so only
    /// those are consulted by the per-bucket error re-roll.
    hops: Vec<Url>,
    /// Landing when no hop errors: index into `hops`, or `Err` for
    /// chains ending in NXDOMAIN/refusal or exhausting the hop budget.
    clean: Result<usize, ()>,
    /// The 30-minute bucket `landing` was resolved for.
    bucket: u64,
    /// Landing at `bucket`: index into `hops`, or `Err`.
    landing: Result<usize, ()>,
}

impl<'w> QuietBrowser<'w> {
    /// Builds a quiet browser with the given instrumentation config and a
    /// private clean-render cache.
    pub fn new(world: &'w World, config: BrowserConfig) -> Self {
        Self {
            world,
            client: config.client(),
            cache: CacheRef::Owned(RenderCache::new()),
            memo: None,
        }
    }

    /// Builds a quiet browser whose renders and hashes go through a
    /// shared [`RenderCache`] (bit-identical to the private-cache paths).
    pub fn with_cache(world: &'w World, config: BrowserConfig, cache: &'w RenderCache) -> Self {
        Self { world, client: config.client(), cache: CacheRef::Shared(cache), memo: None }
    }

    /// The client profile pages observe.
    pub fn client(&self) -> &ClientProfile {
        &self.client
    }

    /// Loads `url` at time `t`, following redirects exactly as
    /// [`BrowserSession::navigate`](crate::BrowserSession::navigate) does
    /// (same hop limit, same error mapping) but recording nothing.
    pub fn load(&self, url: &Url, t: SimTime) -> Result<(Url, Page), NavError> {
        let mut current = url.clone();
        for _ in 0..MAX_REDIRECTS {
            match self.world.fetch(&current, &self.client, t) {
                HostResponse::Redirect { to, .. } => current = to,
                HostResponse::Page(page) => return Ok((current, *page)),
                HostResponse::NxDomain => return Err(NavError::NxDomain(current)),
                HostResponse::Refused => return Err(NavError::Refused(current)),
            }
        }
        Err(NavError::TooManyRedirects(current))
    }

    /// Resolves where loading `url` at `t` would land — the final URL of
    /// the redirect chain — without synthesizing any document body (the
    /// `HEAD`-request view; see `World::fetch_lite`). Returns `Err` on
    /// exactly the chains where [`load`](Self::load) would: `probe` and
    /// `load` agree on the landing URL hop for hop because `fetch_lite`
    /// classifies every URL exactly as `fetch` does.
    ///
    /// This is the milker's fast path: ~98 % of milking sessions land on
    /// an already-seen domain and need nothing but this answer.
    pub fn probe(&self, url: &Url, t: SimTime) -> Result<Url, ()> {
        let mut current = url.clone();
        for _ in 0..MAX_REDIRECTS {
            match self.world.fetch_lite(&current, &self.client, t) {
                LiteResponse::Redirect { to, .. } => current = to,
                LiteResponse::Doc => return Ok(current),
                LiteResponse::NxDomain | LiteResponse::Refused => return Err(()),
            }
        }
        Err(())
    }

    /// [`probe`](Self::probe) behind the hosting layer's own cache
    /// headers: each hop of the chain declares how long its error-free
    /// answer stays valid (`World::fetch_lite_stable`), the chain is
    /// memoized for the intersection of those windows, and only the
    /// fast-rolling transient-error draw is re-evaluated — once per
    /// 30-minute bucket — against the recorded hops. Re-probing the same
    /// URL inside the window (the milker does ~40 consecutive ticks per
    /// rotation epoch) costs one comparison and allocates nothing.
    pub fn probe_cached(&mut self, url: &Url, t: SimTime) -> Result<&Url, ()> {
        let hit = self
            .memo
            .as_ref()
            .is_some_and(|m| m.from <= t && t < m.stable_until && m.start == *url);
        if !hit {
            let mut stable_until = SimTime(u64::MAX);
            let mut hops = vec![url.clone()];
            let mut clean: Result<usize, ()> = Err(());
            for _ in 0..MAX_REDIRECTS {
                let current = hops.last().expect("chain starts non-empty");
                let (resp, h) = self.world.fetch_lite_stable(current, &self.client, t);
                stable_until = stable_until.min(h);
                match resp {
                    LiteResponse::Redirect { to, .. } => {
                        hops.push(to);
                        continue;
                    }
                    LiteResponse::Doc => clean = Ok(hops.len() - 1),
                    LiteResponse::NxDomain | LiteResponse::Refused => clean = Err(()),
                }
                break;
            } // hop budget exhausted ⇒ clean stays Err, like `load`
            self.memo = Some(ProbeMemo {
                start: url.clone(),
                from: t,
                stable_until,
                hops,
                clean,
                // Poisoned so the first lookup below resolves the draw.
                bucket: u64::MAX,
                landing: Err(()),
            });
        }
        let m = self.memo.as_mut().expect("memo just filled");
        let bucket = t.minutes() / 30;
        if m.bucket != bucket {
            m.bucket = bucket;
            m.landing = m.clean;
            // A fresh walk draws the error check on every hop it fetches
            // (at most the hop budget) and stops at the first blank load.
            for (i, hop) in m.hops.iter().take(MAX_REDIRECTS).enumerate() {
                if self.world.transient_error(hop, t) {
                    m.landing = Ok(i);
                    break;
                }
            }
        }
        match m.landing {
            Ok(i) => Ok(&m.hops[i]),
            Err(()) => Err(()),
        }
    }

    /// Renders a screenshot of a loaded page, bit-identical to
    /// [`BrowserSession::render_screenshot`](crate::BrowserSession::render_screenshot)
    /// at clock `t`, reusing the cached clean render of the page's
    /// template (`render == render_from_clean ∘ render_clean` is asserted
    /// in seacma-simweb).
    pub fn render_screenshot(&self, url: &Url, page: &Page, t: SimTime) -> Bitmap {
        self.cache.get().render(page.visual, screenshot_seed(self.world, url, t))
    }

    /// The perceptual hash [`render_screenshot`](Self::render_screenshot)'s
    /// bitmap would hash to, without rendering it: the per-instance noise
    /// pass and the dhash downsample are fused into one sweep over the
    /// cached clean render (`VisualTemplate::dhash_from_clean`). This is
    /// all the milker's match check needs — it compares hashes, never
    /// pixels.
    pub fn screenshot_dhash(&self, url: &Url, page: &Page, t: SimTime) -> Dhash {
        self.cache.get().dhash(page.visual, screenshot_seed(self.world, url, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrowserSession;
    use seacma_simweb::{UaProfile, Vantage, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 11,
            n_publishers: 200,
            n_hidden_only_publishers: 20,
            n_advertisers: 20,
            campaign_scale: 0.3,
            // Non-zero so transient blank loads exercise both paths the
            // same way.
            error_rate: 0.02,
            ..Default::default()
        })
    }

    #[test]
    fn quiet_load_matches_instrumented_navigate() {
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        let quiet = QuietBrowser::new(&w, cfg);
        let mut urls: Vec<Url> = w
            .campaigns()
            .iter()
            .filter_map(|c| c.tds_url(0))
            .take(10)
            .collect();
        urls.extend(w.publishers().iter().take(10).map(|p| p.url()));
        for t in [SimTime(0), SimTime(55), SimTime(60 * 24 * 3)] {
            for url in &urls {
                let mut session = BrowserSession::new(&w, cfg, t);
                match (quiet.load(url, t), session.navigate(url)) {
                    (Ok((qu, qp)), Ok(loaded)) => {
                        assert_eq!(qu, loaded.url);
                        assert_eq!(qp, loaded.page);
                    }
                    (Err(qe), Err(se)) => assert_eq!(qe, se),
                    (q, s) => panic!("paths diverged at {url} t={t}: {q:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn probe_agrees_with_load_on_landing_and_failure() {
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        let quiet = QuietBrowser::new(&w, cfg);
        let mut urls: Vec<Url> = w.campaigns().iter().filter_map(|c| c.tds_url(0)).collect();
        urls.extend(w.publishers().iter().take(10).map(|p| p.url()));
        for hour in 0..48u64 {
            let t = SimTime(hour * 60);
            for url in &urls {
                match (quiet.probe(url, t), quiet.load(url, t)) {
                    (Ok(pu), Ok((lu, _))) => assert_eq!(pu, lu, "landing mismatch at {url} t={t}"),
                    (Err(()), Err(_)) => {}
                    (p, l) => panic!("probe/load diverged at {url} t={t}: {p:?} vs {l:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_probe_equals_fresh_probe_tick_by_tick() {
        // Milker-shaped access pattern: one URL re-probed every 15 minutes
        // for days, in a world with transient errors (30-minute re-rolls)
        // and domain rotation. The memoized path must agree with a fresh
        // chain walk at every single tick.
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        for url in w.campaigns().iter().filter_map(|c| c.tds_url(0)).take(6) {
            let mut cached = QuietBrowser::new(&w, cfg);
            let fresh = QuietBrowser::new(&w, cfg);
            let mut tick = 0u64;
            while tick < 4 * 24 * 60 {
                let t = SimTime(tick);
                assert_eq!(
                    cached.probe_cached(&url, t).ok().cloned(),
                    fresh.probe(&url, t).ok(),
                    "cached/fresh divergence at {url} t={t}"
                );
                tick += 15;
            }
        }
    }

    #[test]
    fn quiet_screenshots_are_bit_identical() {
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        let quiet = QuietBrowser::new(&w, cfg);
        let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
        let url = c.tds_url(0).unwrap();
        for t in [SimTime(0), SimTime(29), SimTime(30), SimTime(60 * 24)] {
            let (fu, page) = quiet.load(&url, t).expect("tds resolves");
            let session = BrowserSession::new(&w, cfg, t);
            // Cache cold on the first iteration, warm afterwards: both
            // must agree with the uncached session render.
            assert_eq!(
                quiet.render_screenshot(&fu, &page, t),
                session.render_screenshot(&fu, &page),
            );
        }
    }

    #[test]
    fn shared_cache_browsers_match_private_cache_browsers() {
        // A fleet sharing one RenderCache (the parallel milker's shape)
        // must produce the same pixels and hash bits as browsers that each
        // own their cache.
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        let cache = crate::RenderCache::new();
        let shared_a = QuietBrowser::with_cache(&w, cfg, &cache);
        let shared_b = QuietBrowser::with_cache(&w, cfg, &cache);
        let private = QuietBrowser::new(&w, cfg);
        for url in w.campaigns().iter().filter_map(|c| c.tds_url(0)).take(6) {
            for t in [SimTime(0), SimTime(60 * 24)] {
                if let Ok((fu, page)) = private.load(&url, t) {
                    let want = private.render_screenshot(&fu, &page, t);
                    assert_eq!(shared_a.render_screenshot(&fu, &page, t), want);
                    assert_eq!(
                        shared_b.screenshot_dhash(&fu, &page, t),
                        seacma_vision::dhash::dhash128(&want)
                    );
                }
            }
        }
    }

    #[test]
    fn screenshot_dhash_equals_hash_of_rendered_screenshot() {
        // The render-free hash path must produce exactly the bits the
        // milker would get by rendering and hashing — across campaign
        // creatives, benign pages and both cold and warm clean caches.
        let w = world();
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .without_screenshots();
        let quiet = QuietBrowser::new(&w, cfg);
        let mut urls: Vec<Url> = w.campaigns().iter().filter_map(|c| c.tds_url(0)).take(8).collect();
        urls.extend(w.publishers().iter().take(4).map(|p| p.url()));
        for t in [SimTime(0), SimTime(31), SimTime(60 * 24 * 5)] {
            for url in &urls {
                if let Ok((fu, page)) = quiet.load(url, t) {
                    let shot = quiet.render_screenshot(&fu, &page, t);
                    assert_eq!(
                        quiet.screenshot_dhash(&fu, &page, t),
                        seacma_vision::dhash::dhash128(&shot),
                        "hash path divergence at {url} t={t}"
                    );
                }
            }
        }
    }
}
