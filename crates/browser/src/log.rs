//! JSgraph-style fine-grained browser event logs.
//!
//! The paper's instrumented Chromium "continuously records fine-grained
//! details about events internal to the browser, such as calls to any JS
//! API, all JS code compiled and executed by the browser, all visited URLs
//! (including any redirections)" (§3.2). These logs — not HTML or network
//! traces — are what makes backtracking graphs and ad attribution possible,
//! because obfuscated ad code suppresses referrers (§3.4).

use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_simweb::{FilePayload, LockTactic, RedirectKind, Url};

/// Why a navigation started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NavCause {
    /// Address-bar / crawler-initiated load.
    Initial,
    /// A user (or crawler) click on page content.
    UserClick,
    /// A redirect of the given kind.
    Redirect(RedirectKind),
    /// `window.open` from another tab.
    WindowOpen,
}

/// One instrumented browser event.
#[derive(Debug, Clone, PartialEq)]
pub enum BrowserEvent {
    /// A navigation began toward `url`.
    NavigationStart {
        /// Navigation target.
        url: Url,
        /// What initiated it.
        cause: NavCause,
        /// URL of the document that initiated it, when any.
        initiator: Option<Url>,
    },
    /// A document finished loading.
    PageLoaded {
        /// Final URL of the document.
        url: Url,
        /// Document title.
        title: String,
    },
    /// The browser followed a redirect hop.
    Redirected {
        /// Source URL.
        from: Url,
        /// Target URL.
        to: Url,
        /// Mechanism (HTTP, meta refresh, JS…).
        kind: RedirectKind,
    },
    /// A document included a script.
    ScriptLoaded {
        /// Document URL.
        page: Url,
        /// Script source URL.
        src: Url,
    },
    /// A monitored JS API was invoked (the Blink–JS binding
    /// instrumentation logs *all* of them; we record the security-relevant
    /// subset the analyses consume).
    JsApiCall {
        /// Document URL.
        page: Url,
        /// API name, e.g. `window.alert`, `window.onbeforeunload`.
        api: String,
    },
    /// A page-locking tactic fired and was neutralized by the browser
    /// instrumentation.
    LockBypassed {
        /// Document URL.
        page: Url,
        /// The tactic bypassed.
        tactic: LockTactic,
    },
    /// A new tab opened.
    TabOpened {
        /// URL of the opener document.
        opener: Url,
        /// Initial URL of the new tab.
        url: Url,
    },
    /// Interaction triggered a file download.
    DownloadTriggered {
        /// Document URL.
        page: Url,
        /// The downloaded payload.
        payload: FilePayload,
    },
    /// The page requested push-notification permission.
    NotificationPrompt {
        /// Document URL.
        page: Url,
    },
}

/// An append-only event log for one browsing session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<BrowserEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: BrowserEvent) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[BrowserEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All redirect hops, in order.
    pub fn redirects(&self) -> impl Iterator<Item = (&Url, &Url, RedirectKind)> {
        self.events.iter().filter_map(|e| match e {
            BrowserEvent::Redirected { from, to, kind } => Some((from, to, *kind)),
            _ => None,
        })
    }

    /// All URLs that completed loading, in order.
    pub fn loaded_urls(&self) -> impl Iterator<Item = &Url> {
        self.events.iter().filter_map(|e| match e {
            BrowserEvent::PageLoaded { url, .. } => Some(url),
            _ => None,
        })
    }

    /// All downloads captured in the session.
    pub fn downloads(&self) -> impl Iterator<Item = (&Url, &FilePayload)> {
        self.events.iter().filter_map(|e| match e {
            BrowserEvent::DownloadTriggered { page, payload } => Some((page, payload)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(h: &str) -> Url {
        Url::http(h, "/")
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(BrowserEvent::NavigationStart {
            url: u("a.com"),
            cause: NavCause::Initial,
            initiator: None,
        });
        log.push(BrowserEvent::PageLoaded { url: u("a.com"), title: "A".into() });
        assert_eq!(log.len(), 2);
        assert_eq!(log.loaded_urls().count(), 1);
    }

    #[test]
    fn filtered_views() {
        let mut log = EventLog::new();
        log.push(BrowserEvent::Redirected {
            from: u("a.com"),
            to: u("b.com"),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: u("b.com"),
            to: u("c.club"),
            kind: RedirectKind::JsLocation,
        });
        log.push(BrowserEvent::DownloadTriggered {
            page: u("c.club"),
            payload: FilePayload::serve(1, seacma_simweb::FileFormat::Pe, &[0]),
        });
        let hops: Vec<_> = log.redirects().collect();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].1.host, "b.com");
        assert!(!hops[0].2.is_http() || hops[0].2 == RedirectKind::Http302);
        assert_eq!(log.downloads().count(), 1);
    }
}
impl_json_enum!(NavCause {
    Initial,
    UserClick,
    Redirect(RedirectKind),
    WindowOpen,
});
impl_json_enum!(BrowserEvent {
    NavigationStart { url: Url, cause: NavCause, initiator: Option<Url> },
    PageLoaded { url: Url, title: String },
    Redirected { from: Url, to: Url, kind: RedirectKind },
    ScriptLoaded { page: Url, src: Url },
    JsApiCall { page: Url, api: String },
    LockBypassed { page: Url, tactic: LockTactic },
    TabOpened { opener: Url, url: Url },
    DownloadTriggered { page: Url, payload: FilePayload },
    NotificationPrompt { page: Url },
});
impl_json_struct!(EventLog { events });
