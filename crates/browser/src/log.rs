//! JSgraph-style fine-grained browser event logs.
//!
//! The paper's instrumented Chromium "continuously records fine-grained
//! details about events internal to the browser, such as calls to any JS
//! API, all JS code compiled and executed by the browser, all visited URLs
//! (including any redirections)" (§3.2). These logs — not HTML or network
//! traces — are what makes backtracking graphs and ad attribution possible,
//! because obfuscated ad code suppresses referrers (§3.4).
//!
//! # Storage
//!
//! A session log references the same handful of URLs over and over (the
//! publisher page, a few click URLs, the redirect chain, the landing), so
//! the log stores events in a compact column form: every URL and string
//! (title, API name) is interned into a per-log [`Interner`] and events
//! carry dense `u32` ids. Appending an event whose strings were already
//! seen allocates nothing; each distinct URL is cloned exactly once per
//! log. The owned [`BrowserEvent`] form remains the construction and JSON
//! currency ([`EventLog::push`] accepts it, serialization round-trips
//! through it), while readers iterate borrowed [`EventRef`]s.

use seacma_util::json::{FromJson, JsonError, ToJson, Value};
use seacma_util::sym::Interner;
use seacma_util::impl_json_enum;

use seacma_simweb::{FilePayload, LockTactic, RedirectKind, Url};

/// Why a navigation started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NavCause {
    /// Address-bar / crawler-initiated load.
    Initial,
    /// A user (or crawler) click on page content.
    UserClick,
    /// A redirect of the given kind.
    Redirect(RedirectKind),
    /// `window.open` from another tab.
    WindowOpen,
}

/// One instrumented browser event, in owned form.
///
/// This is the construction and serialization currency; inside an
/// [`EventLog`] events live in a compact interned form and are read back
/// as [`EventRef`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum BrowserEvent {
    /// A navigation began toward `url`.
    NavigationStart {
        /// Navigation target.
        url: Url,
        /// What initiated it.
        cause: NavCause,
        /// URL of the document that initiated it, when any.
        initiator: Option<Url>,
    },
    /// A document finished loading.
    PageLoaded {
        /// Final URL of the document.
        url: Url,
        /// Document title.
        title: String,
    },
    /// The browser followed a redirect hop.
    Redirected {
        /// Source URL.
        from: Url,
        /// Target URL.
        to: Url,
        /// Mechanism (HTTP, meta refresh, JS…).
        kind: RedirectKind,
    },
    /// A document included a script.
    ScriptLoaded {
        /// Document URL.
        page: Url,
        /// Script source URL.
        src: Url,
    },
    /// A monitored JS API was invoked (the Blink–JS binding
    /// instrumentation logs *all* of them; we record the security-relevant
    /// subset the analyses consume).
    JsApiCall {
        /// Document URL.
        page: Url,
        /// API name, e.g. `window.alert`, `window.onbeforeunload`.
        api: String,
    },
    /// A page-locking tactic fired and was neutralized by the browser
    /// instrumentation.
    LockBypassed {
        /// Document URL.
        page: Url,
        /// The tactic bypassed.
        tactic: LockTactic,
    },
    /// A new tab opened.
    TabOpened {
        /// URL of the opener document.
        opener: Url,
        /// Initial URL of the new tab.
        url: Url,
    },
    /// Interaction triggered a file download.
    DownloadTriggered {
        /// Document URL.
        page: Url,
        /// The downloaded payload.
        payload: FilePayload,
    },
    /// The page requested push-notification permission.
    NotificationPrompt {
        /// Document URL.
        page: Url,
    },
}

/// One event as stored: URLs and strings are dense ids into the owning
/// log's interners, so the whole event is `Copy` and replaying a recorded
/// range (the session's reload memo) costs plain `Vec` pushes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CompactEvent {
    NavigationStart { url: u32, cause: NavCause, initiator: Option<u32> },
    PageLoaded { url: u32, title: u32 },
    Redirected { from: u32, to: u32, kind: RedirectKind },
    ScriptLoaded { page: u32, src: u32 },
    JsApiCall { page: u32, api: u32 },
    LockBypassed { page: u32, tactic: LockTactic },
    TabOpened { opener: u32, url: u32 },
    DownloadTriggered { page: u32, payload: FilePayload },
    NotificationPrompt { page: u32 },
}

/// One instrumented browser event, borrowed out of an [`EventLog`].
///
/// Mirrors [`BrowserEvent`] variant for variant with URL/string fields
/// borrowed from the log's interners; copyable scalars are by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventRef<'l> {
    /// A navigation began toward `url`.
    NavigationStart {
        /// Navigation target.
        url: &'l Url,
        /// What initiated it.
        cause: NavCause,
        /// URL of the document that initiated it, when any.
        initiator: Option<&'l Url>,
    },
    /// A document finished loading.
    PageLoaded {
        /// Final URL of the document.
        url: &'l Url,
        /// Document title.
        title: &'l str,
    },
    /// The browser followed a redirect hop.
    Redirected {
        /// Source URL.
        from: &'l Url,
        /// Target URL.
        to: &'l Url,
        /// Mechanism (HTTP, meta refresh, JS…).
        kind: RedirectKind,
    },
    /// A document included a script.
    ScriptLoaded {
        /// Document URL.
        page: &'l Url,
        /// Script source URL.
        src: &'l Url,
    },
    /// A monitored JS API was invoked.
    JsApiCall {
        /// Document URL.
        page: &'l Url,
        /// API name.
        api: &'l str,
    },
    /// A page-locking tactic fired and was neutralized.
    LockBypassed {
        /// Document URL.
        page: &'l Url,
        /// The tactic bypassed.
        tactic: LockTactic,
    },
    /// A new tab opened.
    TabOpened {
        /// URL of the opener document.
        opener: &'l Url,
        /// Initial URL of the new tab.
        url: &'l Url,
    },
    /// Interaction triggered a file download.
    DownloadTriggered {
        /// Document URL.
        page: &'l Url,
        /// The downloaded payload.
        payload: FilePayload,
    },
    /// The page requested push-notification permission.
    NotificationPrompt {
        /// Document URL.
        page: &'l Url,
    },
}

impl EventRef<'_> {
    /// The owned form of this event (allocates; used by serialization).
    pub fn to_owned(&self) -> BrowserEvent {
        match *self {
            EventRef::NavigationStart { url, cause, initiator } => BrowserEvent::NavigationStart {
                url: url.clone(),
                cause,
                initiator: initiator.cloned(),
            },
            EventRef::PageLoaded { url, title } => {
                BrowserEvent::PageLoaded { url: url.clone(), title: title.to_string() }
            }
            EventRef::Redirected { from, to, kind } => {
                BrowserEvent::Redirected { from: from.clone(), to: to.clone(), kind }
            }
            EventRef::ScriptLoaded { page, src } => {
                BrowserEvent::ScriptLoaded { page: page.clone(), src: src.clone() }
            }
            EventRef::JsApiCall { page, api } => {
                BrowserEvent::JsApiCall { page: page.clone(), api: api.to_string() }
            }
            EventRef::LockBypassed { page, tactic } => {
                BrowserEvent::LockBypassed { page: page.clone(), tactic }
            }
            EventRef::TabOpened { opener, url } => {
                BrowserEvent::TabOpened { opener: opener.clone(), url: url.clone() }
            }
            EventRef::DownloadTriggered { page, payload } => {
                BrowserEvent::DownloadTriggered { page: page.clone(), payload }
            }
            EventRef::NotificationPrompt { page } => {
                BrowserEvent::NotificationPrompt { page: page.clone() }
            }
        }
    }
}

/// An append-only event log for one browsing session.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Every distinct URL mentioned by an event, in first-seen order.
    urls: Interner<Url>,
    /// Every distinct title / API-name string, in first-seen order.
    strs: Interner<String>,
    events: Vec<CompactEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the log — events and both interner tables — while keeping
    /// their capacity. A cleared log is observationally identical to
    /// [`EventLog::new`] (ids restart from 0 as a pure function of the
    /// event sequence), which is what lets the crawl farm recycle one
    /// log's buffers across every visit a worker performs.
    pub fn clear(&mut self) {
        self.urls.clear();
        self.strs.clear();
        self.events.clear();
    }

    fn url(&self, id: u32) -> &Url {
        self.urls.resolve(id)
    }

    fn str(&self, id: u32) -> &str {
        self.strs.resolve(id)
    }

    /// Appends an owned event (test/replay convenience; the session's hot
    /// path uses the by-reference appenders below, which never clone an
    /// already-seen URL).
    pub fn push(&mut self, e: BrowserEvent) {
        match e {
            BrowserEvent::NavigationStart { url, cause, initiator } => {
                self.navigation_start(&url, cause, initiator.as_ref());
            }
            BrowserEvent::PageLoaded { url, title } => self.page_loaded(&url, &title),
            BrowserEvent::Redirected { from, to, kind } => self.redirected(&from, &to, kind),
            BrowserEvent::ScriptLoaded { page, src } => self.script_loaded(&page, &src),
            BrowserEvent::JsApiCall { page, api } => self.js_api_call(&page, &api),
            BrowserEvent::LockBypassed { page, tactic } => self.lock_bypassed(&page, tactic),
            BrowserEvent::TabOpened { opener, url } => self.tab_opened(&opener, &url),
            BrowserEvent::DownloadTriggered { page, payload } => {
                self.download_triggered(&page, payload);
            }
            BrowserEvent::NotificationPrompt { page } => self.notification_prompt(&page),
        }
    }

    /// Records a [`BrowserEvent::NavigationStart`].
    pub fn navigation_start(&mut self, url: &Url, cause: NavCause, initiator: Option<&Url>) {
        let url = self.urls.intern(url);
        let initiator = initiator.map(|i| self.urls.intern(i));
        self.events.push(CompactEvent::NavigationStart { url, cause, initiator });
    }

    /// Records a [`BrowserEvent::PageLoaded`].
    pub fn page_loaded(&mut self, url: &Url, title: &str) {
        let url = self.urls.intern(url);
        let title = self.strs.intern(title);
        self.events.push(CompactEvent::PageLoaded { url, title });
    }

    /// Records a [`BrowserEvent::Redirected`].
    pub fn redirected(&mut self, from: &Url, to: &Url, kind: RedirectKind) {
        let from = self.urls.intern(from);
        let to = self.urls.intern(to);
        self.events.push(CompactEvent::Redirected { from, to, kind });
    }

    /// Records a [`BrowserEvent::ScriptLoaded`].
    pub fn script_loaded(&mut self, page: &Url, src: &Url) {
        let page = self.urls.intern(page);
        let src = self.urls.intern(src);
        self.events.push(CompactEvent::ScriptLoaded { page, src });
    }

    /// Records a [`BrowserEvent::JsApiCall`].
    pub fn js_api_call(&mut self, page: &Url, api: &str) {
        let page = self.urls.intern(page);
        let api = self.strs.intern(api);
        self.events.push(CompactEvent::JsApiCall { page, api });
    }

    /// Records a [`BrowserEvent::LockBypassed`].
    pub fn lock_bypassed(&mut self, page: &Url, tactic: LockTactic) {
        let page = self.urls.intern(page);
        self.events.push(CompactEvent::LockBypassed { page, tactic });
    }

    /// Records a [`BrowserEvent::TabOpened`].
    pub fn tab_opened(&mut self, opener: &Url, url: &Url) {
        let opener = self.urls.intern(opener);
        let url = self.urls.intern(url);
        self.events.push(CompactEvent::TabOpened { opener, url });
    }

    /// Records a [`BrowserEvent::DownloadTriggered`].
    pub fn download_triggered(&mut self, page: &Url, payload: FilePayload) {
        let page = self.urls.intern(page);
        self.events.push(CompactEvent::DownloadTriggered { page, payload });
    }

    /// Records a [`BrowserEvent::NotificationPrompt`].
    pub fn notification_prompt(&mut self, page: &Url) {
        let page = self.urls.intern(page);
        self.events.push(CompactEvent::NotificationPrompt { page });
    }

    /// Re-appends the recorded events `range` (half-open indices into the
    /// event sequence) verbatim. Every referenced URL/string is already
    /// interned, so a replay allocates nothing beyond `Vec` growth — this
    /// is what makes the session's memoized page reload byte-identical to
    /// a fresh load for free.
    pub(crate) fn replay(&mut self, range: std::ops::Range<usize>) {
        self.events.reserve(range.len());
        for i in range {
            let e = self.events[i];
            self.events.push(e);
        }
    }

    /// All events in order, as borrowed views.
    pub fn events(&self) -> impl Iterator<Item = EventRef<'_>> {
        self.events.iter().map(|e| self.event_ref(e))
    }

    fn event_ref(&self, e: &CompactEvent) -> EventRef<'_> {
        match *e {
            CompactEvent::NavigationStart { url, cause, initiator } => EventRef::NavigationStart {
                url: self.url(url),
                cause,
                initiator: initiator.map(|i| self.url(i)),
            },
            CompactEvent::PageLoaded { url, title } => {
                EventRef::PageLoaded { url: self.url(url), title: self.str(title) }
            }
            CompactEvent::Redirected { from, to, kind } => {
                EventRef::Redirected { from: self.url(from), to: self.url(to), kind }
            }
            CompactEvent::ScriptLoaded { page, src } => {
                EventRef::ScriptLoaded { page: self.url(page), src: self.url(src) }
            }
            CompactEvent::JsApiCall { page, api } => {
                EventRef::JsApiCall { page: self.url(page), api: self.str(api) }
            }
            CompactEvent::LockBypassed { page, tactic } => {
                EventRef::LockBypassed { page: self.url(page), tactic }
            }
            CompactEvent::TabOpened { opener, url } => {
                EventRef::TabOpened { opener: self.url(opener), url: self.url(url) }
            }
            CompactEvent::DownloadTriggered { page, payload } => {
                EventRef::DownloadTriggered { page: self.url(page), payload }
            }
            CompactEvent::NotificationPrompt { page } => {
                EventRef::NotificationPrompt { page: self.url(page) }
            }
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All redirect hops, in order.
    pub fn redirects(&self) -> impl Iterator<Item = (&Url, &Url, RedirectKind)> {
        self.events.iter().filter_map(|e| match *e {
            CompactEvent::Redirected { from, to, kind } => {
                Some((self.url(from), self.url(to), kind))
            }
            _ => None,
        })
    }

    /// All URLs that completed loading, in order.
    pub fn loaded_urls(&self) -> impl Iterator<Item = &Url> {
        self.events.iter().filter_map(|e| match *e {
            CompactEvent::PageLoaded { url, .. } => Some(self.url(url)),
            _ => None,
        })
    }

    /// All downloads captured in the session.
    pub fn downloads(&self) -> impl Iterator<Item = (&Url, FilePayload)> {
        self.events.iter().filter_map(|e| match *e {
            CompactEvent::DownloadTriggered { page, payload } => Some((self.url(page), payload)),
            _ => None,
        })
    }
}

// Two logs are equal when they recorded the same event sequence. Interner
// ids are assigned in first-seen order — a pure function of that sequence
// — so comparing the compact columns is exact and never materializes an
// event.
impl PartialEq for EventLog {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.urls.items() == other.urls.items()
            && self.strs.items() == other.strs.items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(h: &str) -> Url {
        Url::http(h, "/")
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(BrowserEvent::NavigationStart {
            url: u("a.com"),
            cause: NavCause::Initial,
            initiator: None,
        });
        log.push(BrowserEvent::PageLoaded { url: u("a.com"), title: "A".into() });
        assert_eq!(log.len(), 2);
        assert_eq!(log.loaded_urls().count(), 1);
    }

    #[test]
    fn filtered_views() {
        let mut log = EventLog::new();
        log.push(BrowserEvent::Redirected {
            from: u("a.com"),
            to: u("b.com"),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: u("b.com"),
            to: u("c.club"),
            kind: RedirectKind::JsLocation,
        });
        log.push(BrowserEvent::DownloadTriggered {
            page: u("c.club"),
            payload: FilePayload::serve(1, seacma_simweb::FileFormat::Pe, &[0]),
        });
        let hops: Vec<_> = log.redirects().collect();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].1.host, "b.com");
        assert!(!hops[0].2.is_http() || hops[0].2 == RedirectKind::Http302);
        assert_eq!(log.downloads().count(), 1);
    }

    #[test]
    fn event_views_round_trip_owned_events() {
        // push → events() → to_owned must reproduce the pushed sequence
        // exactly, across every variant (interning is invisible to
        // readers).
        let pushed = vec![
            BrowserEvent::NavigationStart {
                url: u("a.com"),
                cause: NavCause::Redirect(RedirectKind::MetaRefresh),
                initiator: Some(u("b.com")),
            },
            BrowserEvent::PageLoaded { url: u("a.com"), title: "A".into() },
            BrowserEvent::ScriptLoaded { page: u("a.com"), src: u("cdn.com") },
            BrowserEvent::JsApiCall { page: u("a.com"), api: "window.alert".into() },
            BrowserEvent::LockBypassed { page: u("a.com"), tactic: LockTactic::ModalDialogLoop },
            BrowserEvent::TabOpened { opener: u("a.com"), url: u("c.club") },
            BrowserEvent::DownloadTriggered {
                page: u("c.club"),
                payload: FilePayload::serve(1, seacma_simweb::FileFormat::Pe, &[0]),
            },
            BrowserEvent::NotificationPrompt { page: u("c.club") },
        ];
        let mut log = EventLog::new();
        for e in &pushed {
            log.push(e.clone());
        }
        let back: Vec<BrowserEvent> = log.events().map(|e| e.to_owned()).collect();
        assert_eq!(back, pushed);
        // Equality sees through interning order too.
        let mut again = EventLog::new();
        for e in &pushed {
            again.push(e.clone());
        }
        assert_eq!(log, again);
    }

    #[test]
    fn json_shape_is_the_owned_event_array() {
        use seacma_util::json;
        let mut log = EventLog::new();
        log.push(BrowserEvent::PageLoaded { url: u("a.com"), title: "A".into() });
        log.push(BrowserEvent::JsApiCall { page: u("a.com"), api: "window.alert".into() });
        let text = json::to_string(&log);
        let v = json::parse(&text).expect("log serializes to valid json");
        assert!(v.get("events").is_some(), "external shape keeps the events field");
        let back: EventLog = json::from_str(&text).expect("log parses back");
        assert_eq!(back, log);
    }
}
impl_json_enum!(NavCause {
    Initial,
    UserClick,
    Redirect(RedirectKind),
    WindowOpen,
});
impl_json_enum!(BrowserEvent {
    NavigationStart { url: Url, cause: NavCause, initiator: Option<Url> },
    PageLoaded { url: Url, title: String },
    Redirected { from: Url, to: Url, kind: RedirectKind },
    ScriptLoaded { page: Url, src: Url },
    JsApiCall { page: Url, api: String },
    LockBypassed { page: Url, tactic: LockTactic },
    TabOpened { opener: Url, url: Url },
    DownloadTriggered { page: Url, payload: FilePayload },
    NotificationPrompt { page: Url },
});

// The JSON shape predates the compact storage and must stay stable: an
// object holding the owned event array. Serialization materializes each
// event; parsing re-interns them.
impl ToJson for EventLog {
    fn to_json(&self) -> Value {
        let events: Vec<BrowserEvent> = self.events().map(|e| e.to_owned()).collect();
        Value::Obj(vec![("events".to_string(), events.to_json())])
    }
}

impl FromJson for EventLog {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if v.as_object().is_none() {
            return Err(JsonError::expected("object for EventLog", v));
        }
        let events: Vec<BrowserEvent> = FromJson::from_json(
            v.get("events").ok_or_else(|| JsonError::missing_field("events"))?,
        )?;
        let mut log = EventLog::new();
        for e in events {
            log.push(e);
        }
        Ok(log)
    }
}
