//! A browsing session against the simulated web.
//!
//! One [`BrowserSession`] models one headless browser instance: a client
//! profile (UA emulation + vantage + automation fingerprint), an
//! instrumentation configuration (stealth patch, lock bypass), an event
//! log, and a virtual clock. Navigation follows redirect chains hop by
//! hop, logging everything the paper's instrumented Chromium logs.

use seacma_util::impl_json_struct;

use seacma_simweb::{
    det::det_hash,
    ClientProfile, ClickAction, HostResponse, LockTactic, Page, RedirectKind, SimDuration,
    SimTime, UaProfile, Url, Vantage, VisualTemplate, World,
};
use seacma_vision::bitmap::Bitmap;
use seacma_vision::dhash::{dhash128, Dhash};

use crate::log::{EventLog, NavCause};
use crate::render_cache::RenderCache;

/// Maximum redirect hops followed per navigation (matches browser
/// behaviour; the simulated chains are ≤ 4 hops).
pub const MAX_REDIRECTS: usize = 12;

/// What the session captures of each loaded page's appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenshotMode {
    /// Capture nothing per load (on-demand rendering stays available
    /// through [`BrowserSession::render_screenshot`]). High-frequency
    /// milking sessions run here.
    Off,
    /// Capture only the perceptual hash, through the fused noise+downsample
    /// pass — no pixel buffer is ever materialized. The crawl farm runs
    /// here: everything downstream of a crawl consumes dhashes, not pixels.
    Hash,
    /// Render the full pixel buffer per load (the paper's instrumented
    /// Chromium behaviour; required by dataset exports that write PGMs).
    Full,
}

/// Browser instrumentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrowserConfig {
    /// Emulated browser/OS.
    pub ua: UaProfile,
    /// IP vantage the session browses from.
    pub vantage: Vantage,
    /// Source-level stealth patch: hide `navigator.webdriver` from page
    /// JS. Stock DevTools automation leaves it visible (§3.2).
    pub stealth: bool,
    /// Source-level bypass of page-locking tactics (modal loops, auth
    /// storms, `onbeforeunload`). Without it the session wedges on
    /// aggressive SE pages.
    pub bypass_locks: bool,
    /// Per-load screenshot capture policy.
    pub screenshots: ScreenshotMode,
}

impl BrowserConfig {
    /// The fully instrumented crawler configuration used in the paper's
    /// measurements.
    pub fn instrumented(ua: UaProfile, vantage: Vantage) -> Self {
        Self { ua, vantage, stealth: true, bypass_locks: true, screenshots: ScreenshotMode::Full }
    }

    /// A stock automation tool (Selenium-like): detectable and lockable.
    pub fn stock_automation(ua: UaProfile, vantage: Vantage) -> Self {
        Self { ua, vantage, stealth: false, bypass_locks: false, screenshots: ScreenshotMode::Full }
    }

    /// Disables per-load screenshot capture (on-demand rendering stays
    /// available through [`BrowserSession::render_screenshot`]).
    pub fn without_screenshots(mut self) -> Self {
        self.screenshots = ScreenshotMode::Off;
        self
    }

    /// Captures only perceptual hashes per load — the render-free crawl
    /// fast path ([`ScreenshotMode::Hash`]).
    pub fn hash_screenshots(mut self) -> Self {
        self.screenshots = ScreenshotMode::Hash;
        self
    }

    /// The client profile pages observe.
    pub fn client(&self) -> ClientProfile {
        ClientProfile { ua: self.ua, vantage: self.vantage, webdriver_visible: !self.stealth }
    }
}

/// What a load captured of the page's appearance, per the session's
/// [`ScreenshotMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum Screenshot {
    /// Capture was off for this load.
    Skipped,
    /// The hash's inputs were captured; the fused pass runs on demand.
    /// Most loads in a crawl (publisher reloads, same-domain landings)
    /// never have their hash read, so deferring the pass — rather than
    /// hashing eagerly per load — is where the crawl fast path's time
    /// goes from: only recorded landings ever pay it.
    Deferred {
        /// Visual template of the loaded page.
        template: VisualTemplate,
        /// Instance-noise seed the capture would render with.
        seed: u64,
    },
    /// The full pixel buffer was rendered.
    Rendered(Bitmap),
}

impl Screenshot {
    /// The perceptual hash of this capture. For a `Rendered` buffer this
    /// hashes the pixels; for `Deferred` it runs the fused noise+downsample
    /// pass over the template's clean render — bit-identical by the
    /// `dhash_from_clean == dhash128 ∘ render` identity. A `Skipped`
    /// capture hashes to `Dhash(0)`, exactly what the placeholder 1×1
    /// bitmap of the pre-mode API hashed to (constant images hash to
    /// zero).
    pub fn dhash(&self) -> Dhash {
        self.dhash_via(None)
    }

    /// [`dhash`](Self::dhash), resolving a `Deferred` capture's clean
    /// render through `cache` when one is supplied (the crawl farm passes
    /// its crawl-wide [`RenderCache`], so each template's clean pass runs
    /// once per crawl, not once per recorded landing).
    pub fn dhash_via(&self, cache: Option<&RenderCache>) -> Dhash {
        match self {
            Screenshot::Skipped => Dhash(0),
            Screenshot::Deferred { template, seed } => match cache {
                Some(cache) => cache.dhash(*template, *seed),
                None => VisualTemplate::dhash_from_clean(&template.render_clean(), *seed),
            },
            Screenshot::Rendered(bm) => dhash128(bm),
        }
    }

    /// The pixel buffer, when one was rendered.
    pub fn bitmap(&self) -> Option<&Bitmap> {
        match self {
            Screenshot::Rendered(bm) => Some(bm),
            _ => None,
        }
    }
}

/// A successfully loaded document plus its screenshot capture.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedPage {
    /// Final URL after all redirects.
    pub url: Url,
    /// The document.
    pub page: Page,
    /// Screenshot capture, per the session's [`ScreenshotMode`].
    pub screenshot: Screenshot,
    /// Redirect hops traversed to get here: `(from, to, kind)`.
    pub hops: Vec<(Url, Url, RedirectKind)>,
}

/// Navigation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NavError {
    /// Domain did not resolve.
    NxDomain(Url),
    /// Server refused to serve a document.
    Refused(Url),
    /// Redirect chain exceeded [`MAX_REDIRECTS`].
    TooManyRedirects(Url),
    /// The session is wedged on a locking page (lock bypass disabled) and
    /// cannot navigate away.
    BrowserLocked,
}

impl std::fmt::Display for NavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NavError::NxDomain(u) => write!(f, "NXDOMAIN for {u}"),
            NavError::Refused(u) => write!(f, "refused: {u}"),
            NavError::TooManyRedirects(u) => write!(f, "too many redirects at {u}"),
            NavError::BrowserLocked => write!(f, "browser locked by page"),
        }
    }
}

impl std::error::Error for NavError {}

/// One live browser instance.
///
/// ```
/// use seacma_browser::{BrowserConfig, BrowserSession};
/// use seacma_simweb::{SimTime, UaProfile, Vantage, World, WorldConfig};
///
/// let world = World::generate(WorldConfig {
///     n_publishers: 30,
///     n_hidden_only_publishers: 0,
///     n_advertisers: 5,
///     error_rate: 0.0,
///     ..Default::default()
/// });
/// let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
/// let mut session = BrowserSession::new(&world, cfg, SimTime::EPOCH);
/// // Milkable TDS URLs redirect to the campaign's current attack domain;
/// // every hop lands in the instrumented log.
/// let campaign = world.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
/// let loaded = session.navigate(&campaign.tds_url(0).unwrap()).unwrap();
/// assert!(loaded.page.visual.is_attack());
/// assert_eq!(session.log().redirects().count(), loaded.hops.len());
/// ```
pub struct BrowserSession<'w> {
    world: &'w World,
    config: BrowserConfig,
    log: EventLog,
    clock: SimTime,
    /// Set when a locking page wedged the (non-bypassing) session.
    locked: bool,
    /// Shared clean-render memo, when the caller farms many sessions.
    cache: Option<&'w RenderCache>,
    /// The last direct load whose host vouched for a validity window —
    /// [`reload`](Self::reload) replays it instead of re-fetching.
    memo: Option<ReloadMemo>,
}

/// What [`BrowserSession::reload`] needs to reproduce a direct load
/// without touching the simulated network: the event range the load
/// appended (replayed verbatim from the log's interned storage), the
/// navigation outcome, and the lock state it left behind.
struct ReloadMemo {
    url: Url,
    /// Exclusive end of the host-declared validity window.
    until: SimTime,
    /// Half-open range of log events the load appended.
    events: std::ops::Range<usize>,
    outcome: Result<(), NavError>,
    locked_after: bool,
}

impl<'w> BrowserSession<'w> {
    /// Opens a browser at simulated time `start`.
    pub fn new(world: &'w World, config: BrowserConfig, start: SimTime) -> Self {
        Self {
            world,
            config,
            log: EventLog::new(),
            clock: start,
            locked: false,
            cache: None,
            memo: None,
        }
    }

    /// Opens a browser that renders and hashes screenshots through a
    /// shared [`RenderCache`]. Captures are bit-identical to the uncached
    /// session's — the cache only deduplicates the template-constant
    /// clean pass across sessions and worker threads.
    pub fn with_cache(
        world: &'w World,
        config: BrowserConfig,
        start: SimTime,
        cache: &'w RenderCache,
    ) -> Self {
        Self { cache: Some(cache), ..Self::new(world, config, start) }
    }

    /// Opens a browser whose event storage recycles `log`'s buffers: the
    /// log is cleared first (events and interner tables emptied, capacity
    /// kept), so the session is observationally identical to one opened
    /// with [`new`](Self::new)/[`with_cache`](Self::with_cache). The
    /// crawl farm hands each visit the previous visit's log this way,
    /// amortizing per-visit log allocations across a whole worker.
    pub fn with_scratch(
        world: &'w World,
        config: BrowserConfig,
        start: SimTime,
        cache: Option<&'w RenderCache>,
        mut log: EventLog,
    ) -> Self {
        log.clear();
        Self { world, config, log, clock: start, locked: false, cache, memo: None }
    }

    /// The session's instrumentation configuration.
    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the virtual clock (the crawler charges each page
    /// interaction a little wall time).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock = self.clock + d;
    }

    /// The accumulated event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Consumes the session, returning its log.
    pub fn into_log(self) -> EventLog {
        self.log
    }

    /// Whether the session is wedged on a locking page.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Re-opens the browser (what the crawler does after each
    /// interaction that navigated away — §3.2 — and the only way out of a
    /// wedged session). The log is preserved.
    pub fn reopen(&mut self) {
        self.locked = false;
    }

    /// Navigates to `url`, following redirects and logging every hop.
    ///
    /// When the simulated host vouches for the response's validity window
    /// ([`World::publisher_content_horizon`]), the load is memoized so a
    /// subsequent [`reload`](Self::reload) of the same URL inside the
    /// window replays it without re-fetching.
    pub fn navigate(&mut self, url: &Url) -> Result<LoadedPage, NavError> {
        if self.locked {
            // A wedged session refuses before any event is logged; there
            // is nothing to memoize.
            return Err(NavError::BrowserLocked);
        }
        let start = self.log.len();
        let result = self.navigate_caused(url, NavCause::Initial, None);
        self.memo = self.world.publisher_content_horizon(url, self.clock).map(|until| ReloadMemo {
            url: url.clone(),
            until,
            events: start..self.log.len(),
            outcome: result.as_ref().map(|_| ()).map_err(NavError::clone),
            locked_after: self.locked,
        });
        result
    }

    /// Reloads `url` for its side effects — log events, lock state,
    /// navigation outcome — discarding the document. Equivalent to
    /// `self.navigate(url).map(drop)`, byte for byte in the event log,
    /// but when the last [`navigate`](Self::navigate) hit the same URL
    /// inside its host-declared validity window, the recorded events are
    /// replayed from the log's interned storage instead of re-resolving
    /// and re-serving the page. This is the crawl loop's hot edge: the
    /// publisher page is reloaded after every ad interaction, and the
    /// replay allocates nothing beyond `Vec` growth.
    pub fn reload(&mut self, url: &Url) -> Result<(), NavError> {
        if self.locked {
            return Err(NavError::BrowserLocked);
        }
        if let Some(m) = &self.memo {
            if m.url == *url && self.clock < m.until {
                let (events, outcome, locked) =
                    (m.events.clone(), m.outcome.clone(), m.locked_after);
                self.log.replay(events);
                self.locked = locked;
                return outcome;
            }
        }
        self.navigate(url).map(drop)
    }

    /// Navigates with an explicit cause/initiator (used internally for
    /// clicks and tab opens).
    pub fn navigate_caused(
        &mut self,
        url: &Url,
        cause: NavCause,
        initiator: Option<&Url>,
    ) -> Result<LoadedPage, NavError> {
        if self.locked {
            return Err(NavError::BrowserLocked);
        }
        self.log.navigation_start(url, cause, initiator);

        let client = self.config.client();
        let mut current = url.clone();
        let mut hops = Vec::new();
        for _ in 0..MAX_REDIRECTS {
            match self.world.fetch(&current, &client, self.clock) {
                HostResponse::Redirect { to, kind } => {
                    self.log.redirected(&current, &to, kind);
                    if !kind.is_http() {
                        // JS redirections surface as API calls in the
                        // instrumented log.
                        let api = match kind {
                            RedirectKind::JsLocation => "window.location",
                            RedirectKind::JsPushState => "history.pushState",
                            RedirectKind::JsSetTimeout => "window.setTimeout",
                            RedirectKind::MetaRefresh => "meta.refresh",
                            _ => unreachable!("http kinds filtered above"),
                        };
                        self.log.js_api_call(&current, api);
                    }
                    hops.push((current, to.clone(), kind));
                    current = to;
                }
                HostResponse::Page(page) => {
                    return Ok(self.finish_load(*page, current, hops));
                }
                HostResponse::NxDomain => return Err(NavError::NxDomain(current)),
                HostResponse::Refused => return Err(NavError::Refused(current)),
            }
        }
        Err(NavError::TooManyRedirects(current))
    }

    fn finish_load(&mut self, page: Page, url: Url, hops: Vec<(Url, Url, RedirectKind)>) -> LoadedPage {
        self.log.page_loaded(&url, &page.title);
        for s in &page.scripts {
            self.log.script_loaded(&url, &s.src);
        }
        if page.notification_prompt {
            self.log.notification_prompt(&url);
        }
        for &tactic in &page.locking {
            let api = match tactic {
                LockTactic::ModalDialogLoop => "window.alert",
                LockTactic::AuthDialogStorm => "auth.dialog",
                LockTactic::OnBeforeUnload => "window.onbeforeunload",
            };
            self.log.js_api_call(&url, api);
            if self.config.bypass_locks {
                self.log.lock_bypassed(&url, tactic);
            }
        }
        if page.is_locking() && !self.config.bypass_locks {
            self.locked = true;
        }
        let screenshot = match self.config.screenshots {
            ScreenshotMode::Off => Screenshot::Skipped,
            ScreenshotMode::Hash => Screenshot::Deferred {
                template: page.visual,
                seed: screenshot_seed(self.world, &url, self.clock),
            },
            ScreenshotMode::Full => Screenshot::Rendered(self.render_screenshot(&url, &page)),
        };
        LoadedPage { url, page, screenshot, hops }
    }

    /// Renders a screenshot of a loaded page. Instance noise is keyed by
    /// (URL, time) so repeated visits to one campaign differ slightly, as
    /// real creatives do.
    pub fn render_screenshot(&self, url: &Url, page: &Page) -> Bitmap {
        let seed = screenshot_seed(self.world, url, self.clock);
        match self.cache {
            Some(cache) => cache.render(page.visual, seed),
            None => page.visual.render(seed),
        }
    }

    /// The perceptual hash [`render_screenshot`](Self::render_screenshot)
    /// would hash to, computed through the fused render-free pass (no
    /// pixel buffer). Bit-identity with render-then-hash is pinned by
    /// `seacma-simweb`'s split-render properties.
    pub fn hash_screenshot(&self, url: &Url, page: &Page) -> Dhash {
        let seed = screenshot_seed(self.world, url, self.clock);
        match self.cache {
            Some(cache) => cache.dhash(page.visual, seed),
            None => VisualTemplate::dhash_from_clean(&page.visual.render_clean(), seed),
        }
    }

    /// Clicks an element's action (or a page-level ad listener action),
    /// returning the landing page when the action navigates somewhere.
    ///
    /// `opener` is the URL of the page the click happens on.
    pub fn click(
        &mut self,
        opener: &Url,
        action: &ClickAction,
    ) -> Result<Option<LoadedPage>, NavError> {
        if self.locked {
            return Err(NavError::BrowserLocked);
        }
        match action {
            ClickAction::None => Ok(None),
            ClickAction::OpenTab(target) => {
                self.log.tab_opened(opener, target);
                self.navigate_caused(target, NavCause::WindowOpen, Some(opener)).map(Some)
            }
            ClickAction::Navigate(target) => self
                .navigate_caused(target, NavCause::UserClick, Some(opener))
                .map(Some),
            ClickAction::Download(payload) => {
                self.log.download_triggered(opener, *payload);
                Ok(None)
            }
            ClickAction::AllowNotifications => {
                self.log.js_api_call(opener, "Notification.requestPermission");
                Ok(None)
            }
        }
    }
}

/// Screenshot instance-noise seed for a page at `url` observed at `t`:
/// keyed by (world, URL, 30-minute window) so repeated visits within a
/// window render identically while visits across windows drift slightly.
/// Shared by [`BrowserSession::render_screenshot`] and the quiet milking
/// browser so the two paths can never disagree on a rendered pixel.
///
/// The URL word is [`Url::det_word`] — equal to
/// `str_word(&url.to_string())` by the pinned identity in `seacma-simweb`,
/// but computed without materializing the textual form, so this runs on
/// every captured load without allocating.
pub(crate) fn screenshot_seed(world: &World, url: &Url, t: SimTime) -> u64 {
    det_hash(&[world.seed(), 0x5C4EE, url.det_word(), t.minutes() / 30])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventRef;
    use seacma_simweb::{SeCategory, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 11,
            n_publishers: 200,
            n_hidden_only_publishers: 20,
            n_advertisers: 20,
            campaign_scale: 0.3,
            error_rate: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn navigate_logs_full_chain() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential),
            SimTime::EPOCH,
        );
        let p = &w.publishers()[0];
        let loaded = s.navigate(&p.url()).expect("publisher loads");
        assert_eq!(loaded.url, p.url());
        assert!(s.log().loaded_urls().count() >= 1);
        assert!(
            s.log().events().any(|e| matches!(e, EventRef::ScriptLoaded { .. })),
            "script loads must be logged"
        );
    }

    #[test]
    fn redirect_chains_are_recorded_with_kinds() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential),
            SimTime::EPOCH,
        );
        // TDS URL → JsSetTimeout redirect → attack page.
        let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
        let tds = c.tds_url(0).unwrap();
        let loaded = s.navigate(&tds).expect("tds resolves");
        assert_eq!(loaded.hops.len(), 1);
        assert_eq!(loaded.hops[0].2, RedirectKind::JsSetTimeout);
        // The JS navigation also shows up as an instrumented API call.
        assert!(s
            .log()
            .events()
            .any(|e| matches!(e, EventRef::JsApiCall { api, .. } if api == "window.setTimeout")));
    }

    #[test]
    fn stock_automation_wedges_on_locking_pages() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::stock_automation(UaProfile::Ie10Windows, Vantage::Residential),
            SimTime::EPOCH,
        );
        let c = w
            .campaigns()
            .iter()
            .find(|c| c.category == SeCategory::TechnicalSupport)
            .unwrap();
        let url = c.attack_url(w.seed(), SimTime::EPOCH, 0);
        let loaded = s.navigate(&url).expect("page loads before wedging");
        assert!(loaded.page.is_locking());
        assert!(s.is_locked());
        // Can't navigate away…
        let err = s.navigate(&w.publishers()[0].url()).unwrap_err();
        assert_eq!(err, NavError::BrowserLocked);
        // …until the crawler kills and reopens the browser.
        s.reopen();
        assert!(s.navigate(&w.publishers()[0].url()).is_ok());
    }

    #[test]
    fn instrumented_browser_bypasses_locks() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::Ie10Windows, Vantage::Residential),
            SimTime::EPOCH,
        );
        let c = w
            .campaigns()
            .iter()
            .find(|c| c.category == SeCategory::TechnicalSupport)
            .unwrap();
        let url = c.attack_url(w.seed(), SimTime::EPOCH, 0);
        s.navigate(&url).expect("page loads");
        assert!(!s.is_locked());
        assert!(s
            .log()
            .events()
            .any(|e| matches!(e, EventRef::LockBypassed { .. })));
        assert!(s.navigate(&w.publishers()[0].url()).is_ok());
    }

    #[test]
    fn click_opens_tab_and_logs_opener() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential),
            SimTime::EPOCH,
        );
        let p = w.publishers().iter().find(|p| !p.stale).unwrap();
        let loaded = s.navigate(&p.url()).unwrap();
        let action = loaded.page.ad_click_chain[0].clone();
        let landing = s.click(&loaded.url, &action).expect("click ok");
        assert!(landing.is_some(), "ad click must navigate somewhere");
        assert!(s
            .log()
            .events()
            .any(|e| matches!(e, EventRef::TabOpened { opener, .. } if *opener == p.url())));
    }

    #[test]
    fn download_click_is_captured_not_navigated() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::Ie10Windows, Vantage::Residential),
            SimTime::EPOCH,
        );
        let c = w
            .campaigns()
            .iter()
            .find(|c| c.category == SeCategory::FakeSoftware)
            .unwrap();
        let url = c.attack_url(w.seed(), SimTime::EPOCH, 0);
        let loaded = s.navigate(&url).unwrap();
        let dl = loaded.page.elements[0].action.clone();
        let res = s.click(&loaded.url, &dl).unwrap();
        assert!(res.is_none());
        assert_eq!(s.log().downloads().count(), 1);
    }

    #[test]
    fn screenshots_of_same_campaign_cluster_together() {
        use seacma_vision::dhash::hamming;
        let w = world();
        let client_cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
        let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
        let mut hashes = Vec::new();
        for k in 0..3u64 {
            let mut s = BrowserSession::new(&w, client_cfg, SimTime(k * 60));
            let tds = c.tds_url(0).unwrap();
            let loaded = s.navigate(&tds).unwrap();
            hashes.push(loaded.screenshot.dhash());
        }
        for pair in hashes.windows(2) {
            assert!(hamming(pair[0], pair[1]) <= 12);
        }
    }

    #[test]
    fn screenshot_modes_agree_on_the_hash() {
        // Off / Hash / Full captures of the same load must agree on the
        // perceptual hash (Skipped excepted), cached or not.
        let w = world();
        let base = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
        let cache = crate::RenderCache::new();
        let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
        let url = c.tds_url(0).unwrap();
        for t in [SimTime(0), SimTime(45)] {
            let full = BrowserSession::new(&w, base, t).navigate(&url).unwrap();
            let hash = BrowserSession::new(&w, base.hash_screenshots(), t)
                .navigate(&url)
                .unwrap();
            let cached = BrowserSession::with_cache(&w, base.hash_screenshots(), t, &cache)
                .navigate(&url)
                .unwrap();
            let cached_full = BrowserSession::with_cache(&w, base, t, &cache)
                .navigate(&url)
                .unwrap();
            assert!(matches!(hash.screenshot, Screenshot::Deferred { .. }));
            assert_eq!(full.screenshot.dhash(), hash.screenshot.dhash());
            assert_eq!(full.screenshot.dhash(), cached.screenshot.dhash());
            assert_eq!(full.screenshot, cached_full.screenshot, "cached render must be exact");
            let off = BrowserSession::new(&w, base.without_screenshots(), t)
                .navigate(&url)
                .unwrap();
            assert_eq!(off.screenshot, Screenshot::Skipped);
            assert_eq!(off.screenshot.bitmap(), None);
        }
    }

    #[test]
    fn screenshot_seed_matches_textual_hash() {
        // Regression pin for the zero-alloc seed: the interned-word form
        // must equal the original `str_word(&url.to_string())` round-trip
        // for every URL shape the crawl produces.
        use seacma_simweb::det::str_word;
        let w = world();
        let urls = [
            w.publishers()[0].url(),
            w.campaigns()[0].attack_url(w.seed(), SimTime::EPOCH, 0),
            Url::http("srv.adnet.com", "/banners/asd.php?z=1"),
        ];
        for url in &urls {
            for t in [SimTime(0), SimTime(29), SimTime(30), SimTime(1441)] {
                assert_eq!(
                    screenshot_seed(&w, url, t),
                    det_hash(&[w.seed(), 0x5C4EE, str_word(&url.to_string()), t.minutes() / 30]),
                    "seed diverged for {url} at {t:?}"
                );
            }
        }
    }

    #[test]
    fn reload_is_byte_identical_to_navigate() {
        // The memoized publisher reload must be indistinguishable — in
        // the event log, the outcome, and the lock state — from a fresh
        // navigate at the same instant, in a world where the 30-minute
        // transient-error draw is live (so replays that crossed a bucket
        // boundary would be caught) and with random advances that both
        // stay inside and cross the validity window.
        let noisy = World::generate(WorldConfig {
            seed: 23,
            n_publishers: 80,
            n_hidden_only_publishers: 5,
            n_advertisers: 10,
            campaign_scale: 0.4,
            error_rate: 0.12,
            ..Default::default()
        });
        let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
            .hash_screenshots();
        seacma_util::forall!(40, |rng| {
            let p = &noisy.publishers()[rng.below(noisy.publishers().len() as u64) as usize];
            let url = p.url();
            let t0 = SimTime(rng.below(10 * 24 * 60));
            let mut memo = BrowserSession::new(&noisy, cfg, t0);
            let mut fresh = BrowserSession::new(&noisy, cfg, t0);
            assert_eq!(memo.navigate(&url).is_ok(), fresh.navigate(&url).is_ok());
            for _ in 0..4 {
                let d = SimDuration::from_minutes(rng.below(25));
                memo.advance(d);
                fresh.advance(d);
                assert_eq!(memo.reload(&url), fresh.navigate(&url).map(drop));
                assert_eq!(memo.now(), fresh.now());
            }
            assert_eq!(memo.log(), fresh.log(), "memoized log diverged for {url}");
            assert_eq!(memo.is_locked(), fresh.is_locked());
        });
    }

    #[test]
    fn clock_advances_only_on_request() {
        let w = world();
        let mut s = BrowserSession::new(
            &w,
            BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential),
            SimTime(100),
        );
        assert_eq!(s.now(), SimTime(100));
        s.advance(SimDuration::from_minutes(2));
        assert_eq!(s.now(), SimTime(102));
    }
}
seacma_util::impl_json_enum!(ScreenshotMode { Off, Hash, Full });
impl_json_struct!(BrowserConfig { ua, vantage, stealth, bypass_locks, screenshots });
