//! # seacma-browser
//!
//! An *instrumented headless browser* model standing in for the paper's
//! customized Chromium (a re-implementation of JSgraph ported to Chromium
//! 64 with automated Blink–JS binding instrumentation, §3.2).
//!
//! The downstream pipeline never touches a rendering engine; it consumes
//! the browser's **logs** — navigations with their causes, script loads,
//! JS API calls, dialog bypasses, downloads — plus **screenshots**. This
//! crate produces exactly those artifacts while driving page loads against
//! a [`seacma_simweb::World`]:
//!
//! * [`BrowserSession::navigate`] follows every redirect mechanism the
//!   paper catalogues (HTTP 30x, meta refresh, `window.location`,
//!   `history.pushState`, `setTimeout` navigations) and records each hop
//!   with its cause — the raw material of backtracking graphs (§3.4).
//! * The **stealth patch** hides `navigator.webdriver` (the anti-bot check
//!   several ad networks run against DevTools automation).
//! * The **lock bypass** instrumentation neutralizes modal-dialog loops,
//!   auth-dialog storms and `onbeforeunload` traps; without it a session
//!   wedges on tech-support-scam pages exactly as stock automation does.
//! * Screenshots are rendered from the page's visual template with
//!   per-instance noise, as the clustering step expects — or, on the
//!   crawl fast path ([`session::ScreenshotMode::Hash`]), captured as
//!   perceptual hashes directly with no pixel buffer, through a shared
//!   clean-render memo ([`RenderCache`]).

#![deny(missing_docs)]

pub mod log;
pub mod quiet;
pub mod render_cache;
pub mod session;

pub use log::{BrowserEvent, EventLog, EventRef, NavCause};
pub use quiet::QuietBrowser;
pub use render_cache::RenderCache;
pub use session::{
    BrowserConfig, BrowserSession, LoadedPage, NavError, Screenshot, ScreenshotMode,
};
