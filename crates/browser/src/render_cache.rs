//! A farm-wide clean-render memo table.
//!
//! Rendering a page screenshot splits into a template-constant *clean*
//! pass (`VisualTemplate::render_clean` — procedural layout, campaign
//! decoration, background texture) and a cheap per-instance noise pass
//! (`render_from_clean` / the fused `dhash_from_clean`). A crawl visits
//! tens of thousands of pages drawn from a few hundred templates, so the
//! clean pass dominates — and it is pure, so one bitmap per template can
//! be shared by every worker thread of a crawl farm or milking fleet.
//!
//! [`RenderCache`] is that shared memo: a sharded `Mutex<HashMap>` keyed
//! by template, holding each clean render behind an [`Arc`] so readers
//! hold no lock while rendering or hashing from it. Exactness is
//! inherited from the split-render identities pinned in `seacma-simweb`
//! (`render == render_from_clean ∘ render_clean` and
//! `dhash_from_clean == dhash128 ∘ render_from_clean`), so cached and
//! uncached paths can never disagree on a pixel or a hash bit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use seacma_simweb::VisualTemplate;
use seacma_vision::bitmap::Bitmap;
use seacma_vision::dhash::Dhash;

/// Shard count: enough to keep eight-ish crawl workers from convoying on
/// one lock during the cold-start burst, cheap enough to sit in a
/// per-crawl struct.
const SHARDS: usize = 16;

/// A concurrent, append-only memo of clean template renders.
///
/// Cloneable handles are not needed — the farm owns one cache per crawl
/// and lends `&RenderCache` to its workers (the type is `Sync`); the
/// quiet milking browser can either own a private cache or borrow a
/// shared one.
pub struct RenderCache {
    shards: Vec<Mutex<HashMap<VisualTemplate, Arc<Bitmap>>>>,
    /// Fused-hash memo: screenshot seeds are keyed by (URL, 30-minute
    /// window), so every visit landing on one campaign creative inside
    /// one window produces the same `(template, seed)` pair — and a crawl
    /// pass sends many visits through each campaign per window. The memo
    /// turns those repeats into a lookup instead of a 10k-pixel fused
    /// pass. Exact by purity of `dhash_from_clean`.
    hashes: Vec<Mutex<HashMap<(VisualTemplate, u64), Dhash>>>,
}

impl RenderCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hashes: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The clean (noise-free) render of `template`, computed on first use
    /// and shared thereafter.
    pub fn clean(&self, template: VisualTemplate) -> Arc<Bitmap> {
        let shard = &self.shards[(template.key() % SHARDS as u64) as usize];
        let mut map = shard.lock().expect("render cache shard poisoned");
        Arc::clone(
            map.entry(template).or_insert_with(|| Arc::new(template.render_clean())),
        )
    }

    /// Renders `template` with per-instance noise keyed by
    /// `instance_seed`, bit-identical to `template.render(instance_seed)`.
    pub fn render(&self, template: VisualTemplate, instance_seed: u64) -> Bitmap {
        VisualTemplate::render_from_clean(&self.clean(template), instance_seed)
    }

    /// The perceptual hash [`render`](Self::render) would hash to, fused
    /// over the cached clean render with no bitmap materialized —
    /// bit-identical to `dhash128(&template.render(instance_seed))`.
    pub fn dhash(&self, template: VisualTemplate, instance_seed: u64) -> Dhash {
        let shard =
            &self.hashes[((template.key() ^ instance_seed) % SHARDS as u64) as usize];
        if let Some(d) =
            shard.lock().expect("hash cache shard poisoned").get(&(template, instance_seed))
        {
            return *d;
        }
        // Fused pass outside the lock; racing computations agree by purity.
        let d = VisualTemplate::dhash_from_clean(&self.clean(template), instance_seed);
        shard.lock().expect("hash cache shard poisoned").insert((template, instance_seed), d);
        d
    }

    /// Number of templates memoized so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("render cache shard poisoned").len()).sum()
    }

    /// Whether nothing has been rendered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for RenderCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RenderCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenderCache").field("templates", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_vision::dhash::dhash128;

    const TEMPLATES: [VisualTemplate; 5] = [
        VisualTemplate::FakeSoftware { skin: 3 },
        VisualTemplate::Lottery { skin: 1 },
        VisualTemplate::Parked { provider: 2 },
        VisualTemplate::BenignLanding { style: 0x51AB },
        VisualTemplate::LoadError,
    ];

    #[test]
    fn cached_paths_match_direct_rendering() {
        let cache = RenderCache::new();
        for t in TEMPLATES {
            for seed in [0u64, 1, 77, 0xDEAD_BEEF] {
                assert_eq!(cache.render(t, seed), t.render(seed), "{t:?} seed={seed}");
                assert_eq!(cache.dhash(t, seed), dhash128(&t.render(seed)), "{t:?} seed={seed}");
            }
        }
        assert_eq!(cache.len(), TEMPLATES.len(), "one memo entry per template");
    }

    #[test]
    fn concurrent_warmup_memoizes_once_per_template() {
        let cache = RenderCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for t in TEMPLATES {
                        for seed in 0..4u64 {
                            assert_eq!(cache.dhash(t, seed), dhash128(&t.render(seed)));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), TEMPLATES.len());
    }
}
