//! Behavioural tests of the browser session against adversarial worlds:
//! failure injection, redirect depth, log integrity.

use seacma_browser::{BrowserConfig, BrowserSession, EventRef, NavError, Screenshot};
use seacma_simweb::{SimTime, UaProfile, Url, Vantage, World, WorldConfig};

fn flaky_world() -> World {
    // Heavy failure injection: a fifth of loads come back blank.
    World::generate(WorldConfig {
        seed: 77,
        n_publishers: 120,
        n_hidden_only_publishers: 0,
        n_advertisers: 20,
        campaign_scale: 0.3,
        error_rate: 0.2,
        ..Default::default()
    })
}

#[test]
fn flaky_loads_never_panic_and_are_logged() {
    let w = flaky_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut blank = 0;
    let mut ok = 0;
    for p in w.publishers() {
        let mut s = BrowserSession::new(&w, cfg, SimTime::EPOCH);
        match s.navigate(&p.url()) {
            Ok(loaded) => {
                if matches!(loaded.page.visual, seacma_simweb::visual::VisualTemplate::LoadError) {
                    blank += 1;
                } else {
                    ok += 1;
                }
                // Every successful load leaves a PageLoaded event.
                assert!(s
                    .log()
                    .events()
                    .any(|e| matches!(e, EventRef::PageLoaded { .. })));
            }
            Err(NavError::NxDomain(_)) | Err(NavError::Refused(_)) => {}
            Err(e) => panic!("unexpected failure {e}"),
        }
    }
    assert!(blank > 5, "error injection did not fire ({blank})");
    assert!(ok > 50, "most loads should still succeed ({ok})");
}

#[test]
fn navigation_events_bracket_every_load() {
    let w = flaky_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut s = BrowserSession::new(&w, cfg, SimTime::EPOCH);
    for p in w.publishers().iter().take(10) {
        let _ = s.navigate(&p.url());
    }
    let starts = s
        .log()
        .events()
        .filter(|e| matches!(e, EventRef::NavigationStart { .. }))
        .count();
    assert_eq!(starts, 10, "one NavigationStart per navigate call");
}

#[test]
fn unknown_hosts_error_cleanly() {
    let w = flaky_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut s = BrowserSession::new(&w, cfg, SimTime::EPOCH);
    let err = s.navigate(&Url::http("does-not-exist.invalid", "/")).unwrap_err();
    assert!(matches!(err, NavError::NxDomain(_)));
    // The failed navigation is still visible in the log.
    assert_eq!(s.log().len(), 1);
}

#[test]
fn screenshots_disabled_sessions_render_on_demand() {
    let w = flaky_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
        .without_screenshots();
    let mut s = BrowserSession::new(&w, cfg, SimTime::EPOCH);
    let p = w.publishers().iter().find(|p| !p.stale).unwrap();
    let loaded = s.navigate(&p.url()).unwrap();
    assert_eq!(loaded.screenshot, Screenshot::Skipped, "no capture expected");
    let real = s.render_screenshot(&loaded.url, &loaded.page);
    assert!(real.width() > 1);
}

#[test]
fn hop_lists_match_logged_redirects() {
    let w = World::generate(WorldConfig {
        seed: 78,
        n_publishers: 60,
        n_hidden_only_publishers: 0,
        n_advertisers: 10,
        campaign_scale: 0.3,
        error_rate: 0.0,
        ..Default::default()
    });
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
    let mut s = BrowserSession::new(&w, cfg, SimTime::EPOCH);
    let loaded = s.navigate(&c.tds_url(0).unwrap()).unwrap();
    let logged: Vec<_> = s.log().redirects().collect();
    assert_eq!(loaded.hops.len(), logged.len());
    for ((f, t, k), (lf, lt, lk)) in loaded.hops.iter().zip(logged) {
        assert_eq!(f, lf);
        assert_eq!(t, lt);
        assert_eq!(*k, lk);
    }
}

#[test]
fn clock_is_caller_owned_across_navigations() {
    let w = flaky_world();
    let cfg = BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential);
    let mut s = BrowserSession::new(&w, cfg, SimTime(500));
    let _ = s.navigate(&w.publishers()[0].url());
    assert_eq!(s.now(), SimTime(500), "navigation itself must not advance time");
    s.advance(seacma_simweb::SimDuration::from_minutes(3));
    assert_eq!(s.now(), SimTime(503));
}
