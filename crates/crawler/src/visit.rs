//! Single-site visit logic: the click loop.

use seacma_util::impl_json_struct;
use seacma_util::sym::SymbolArena;

use seacma_browser::{BrowserConfig, BrowserSession, EventLog, NavError, RenderCache};
use seacma_graph::{milkable, BacktrackGraph};
use seacma_simweb::{ClickAction, PublisherSite, SimDuration, SimTime, World};

use crate::record::{LandingRecord, SiteVisit};

/// Budgets for one publisher visit (paper: "a number of clicks per page,
/// until a given (tunable) number of ads have been triggered", ~2 minutes
/// per session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlPolicy {
    /// Maximum clicks issued per visit.
    pub max_clicks: u32,
    /// Stop after this many ads (third-party landings) were exercised.
    pub max_ads: u32,
    /// Per-visit time budget in virtual minutes.
    pub timeout: SimDuration,
}

impl Default for CrawlPolicy {
    fn default() -> Self {
        Self { max_clicks: 8, max_ads: 5, timeout: SimDuration::from_minutes(2) }
    }
}

/// Visits one publisher with one browser configuration, returning the
/// visit record.
///
/// The crawl loop mirrors §3.2: load the page, rank elements by rendered
/// size, click the biggest candidates (each click may be intercepted by a
/// page-level ad listener), record any third-party landing with its
/// screenshot hash, involved URLs and milking candidate, then reopen the
/// browser and reload the publisher for the next interaction.
///
/// `cache` optionally shares clean template renders across visits (the
/// farm passes one cache per crawl); the visit record is byte-identical
/// with or without it, and identical across `ScreenshotMode::Hash` and
/// `ScreenshotMode::Full` configurations — the record stores hashes,
/// never pixels.
///
/// `arena` receives the record's domain strings: per landing, the
/// publisher domain is interned first, then the landing e2LD. This order
/// is load-bearing — the farm reproduces it when canonicalizing worker
/// scratch arenas, so the canonical symbol assignment is independent of
/// worker count.
pub fn visit_publisher(
    world: &World,
    publisher: &PublisherSite,
    config: BrowserConfig,
    start: SimTime,
    policy: CrawlPolicy,
    cache: Option<&RenderCache>,
    arena: &mut SymbolArena,
) -> SiteVisit {
    visit_publisher_reusing(
        world,
        publisher,
        config,
        start,
        policy,
        cache,
        arena,
        &mut VisitScratch::new(),
    )
}

/// Reusable per-worker buffers for [`visit_publisher_reusing`]: the
/// browser event log and the backtracking graph, both recycled (cleared,
/// capacity kept) across every visit a crawl worker performs. A fresh
/// scratch and a many-times-reused scratch produce byte-identical visit
/// records.
#[derive(Default)]
pub struct VisitScratch {
    log: EventLog,
    graph: BacktrackGraph,
}

impl VisitScratch {
    /// Empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`visit_publisher`] with an explicit scratch: the visit's browser
/// session recycles `scratch`'s event log and the landing analyses its
/// backtracking graph, leaving both behind for the caller's next visit.
/// The record is byte-identical to `visit_publisher`'s — cleared buffers
/// are observationally fresh ones — so the farm threads one scratch
/// through each worker's whole job stream and per-visit log/graph
/// allocations amortize away.
#[allow(clippy::too_many_arguments)]
pub fn visit_publisher_reusing(
    world: &World,
    publisher: &PublisherSite,
    config: BrowserConfig,
    start: SimTime,
    policy: CrawlPolicy,
    cache: Option<&RenderCache>,
    arena: &mut SymbolArena,
    scratch: &mut VisitScratch,
) -> SiteVisit {
    let mut session =
        BrowserSession::with_scratch(world, config, start, cache, std::mem::take(&mut scratch.log));
    scratch.graph.clear();
    let visit = run_visit(publisher, config, policy, cache, arena, &mut scratch.graph, &mut session);
    scratch.log = session.into_log();
    visit
}

fn run_visit(
    publisher: &PublisherSite,
    config: BrowserConfig,
    policy: CrawlPolicy,
    cache: Option<&RenderCache>,
    arena: &mut SymbolArena,
    graph: &mut BacktrackGraph,
    session: &mut BrowserSession<'_>,
) -> SiteVisit {
    let start = session.now();
    let mut visit = SiteVisit {
        publisher: publisher.id,
        ua: config.ua,
        vantage: config.vantage,
        started: start,
        landings: Vec::new(),
        clicks: 0,
        load_failed: false,
    };
    let deadline = start + policy.timeout;
    let pub_url = publisher.url();
    // How much of the session log the (incrementally built) graph has
    // ingested so far. Extending the graph per landing is byte-identical
    // to rebuilding it from the whole log — construction is
    // order-incremental — but re-interns nothing.
    let mut ingested = 0usize;

    let loaded = match session.navigate(&pub_url) {
        Ok(l) => l,
        Err(_) => {
            visit.load_failed = true;
            return visit;
        }
    };
    // Candidate elements: page-level ad listeners intercept clicks
    // regardless of the element, so element count (the size ranking's
    // length) only bounds how many interactions we try.
    let candidates = loaded.page.elements.len() as u32;
    let page = loaded.page;

    let mut click: u32 = 0;
    while click < policy.max_clicks.min(candidates * 2)
        && (visit.landings.len() as u32) < policy.max_ads
        && session.now() < deadline
    {
        const NO_ACTION: ClickAction = ClickAction::None;
        let action = page.ad_action(click as usize).unwrap_or(&NO_ACTION);
        visit.clicks += 1;
        click += 1;

        let landed = match session.click(&pub_url, action) {
            Ok(Some(l)) => l,
            Ok(None) => continue,
            Err(NavError::BrowserLocked) => {
                session.reopen();
                continue;
            }
            Err(_) => continue,
        };
        // Ad-trigger heuristic: third-party landing only.
        if landed.url.same_site(&pub_url) {
            continue;
        }
        ingested = graph.extend_from_log(session.log(), ingested);
        let involved = graph.involved_urls(&landed.url);
        let candidate = milkable::candidate(graph, &landed.url);
        let publisher_domain = arena.intern(&publisher.domain);
        let landing_e2ld = arena.intern(landed.url.e2ld_ref());
        visit.landings.push(LandingRecord {
            publisher: publisher.id,
            publisher_domain,
            ua: config.ua,
            vantage: config.vantage,
            click_ordinal: click - 1,
            landing_e2ld,
            dhash: landed.screenshot.dhash_via(cache),
            truth_is_attack: landed.page.visual.is_attack(),
            hops: landed.hops,
            involved_urls: involved,
            milkable_candidate: candidate,
            landing_url: landed.url,
            t: session.now(),
        });
        // Interacting with an ad navigated away: reopen and reload
        // (charged a little virtual time). The reload replays the
        // memoized publisher load while the host still vouches for it —
        // byte-identical log, no re-fetch, no re-serve.
        session.advance(SimDuration::from_minutes(1));
        session.reopen();
        if session.reload(&pub_url).is_err() {
            break;
        }
    }
    visit
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{UaProfile, Vantage, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 31,
            n_publishers: 120,
            n_hidden_only_publishers: 10,
            n_advertisers: 25,
            campaign_scale: 0.3,
            error_rate: 0.0,
            ..Default::default()
        })
    }

    fn cfg() -> BrowserConfig {
        BrowserConfig::instrumented(UaProfile::ChromeMac, Vantage::Residential)
    }

    #[test]
    fn visit_collects_third_party_landings() {
        let w = world();
        let mut arena = SymbolArena::new();
        let mut total = 0;
        for p in w.publishers().iter().take(40) {
            let v = visit_publisher(
                &w, p, cfg(), SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena,
            );
            assert!(!v.load_failed);
            assert!(v.clicks <= CrawlPolicy::default().max_clicks);
            for l in &v.landings {
                assert_ne!(arena.resolve(l.landing_e2ld), seacma_simweb::e2ld(&p.domain));
                assert_eq!(arena.resolve(l.publisher_domain), p.domain);
                assert!(!l.involved_urls.is_empty());
            }
            total += v.landings.len();
        }
        assert!(total > 30, "only {total} landings over 40 sites");
    }

    #[test]
    fn ad_budget_is_respected() {
        let w = world();
        let mut arena = SymbolArena::new();
        let policy = CrawlPolicy { max_ads: 2, ..Default::default() };
        for p in w.publishers().iter().take(20) {
            let v = visit_publisher(&w, p, cfg(), SimTime::EPOCH, policy, None, &mut arena);
            assert!(v.landings.len() <= 2);
        }
    }

    #[test]
    fn visits_are_deterministic() {
        // Fresh arenas on both sides: the symbol values themselves must
        // reproduce, not just the strings behind them.
        let w = world();
        let p = &w.publishers()[3];
        let mut arena_a = SymbolArena::new();
        let mut arena_b = SymbolArena::new();
        let a = visit_publisher(&w, p, cfg(), SimTime(500), CrawlPolicy::default(), None, &mut arena_a);
        let b = visit_publisher(&w, p, cfg(), SimTime(500), CrawlPolicy::default(), None, &mut arena_b);
        assert_eq!(a, b);
        assert_eq!(arena_a.strings().to_vec(), arena_b.strings().to_vec());
    }

    #[test]
    fn hash_mode_with_cache_equals_full_render_visits() {
        // The farm's fast path (fused hashes through a shared clean-render
        // cache) must reproduce the full-render visit records byte for
        // byte — SiteVisit stores dhashes, never pixels, so equality here
        // pins the whole record including landing hashes.
        let w = world();
        let cache = RenderCache::new();
        let mut arena_full = SymbolArena::new();
        let mut arena_fast = SymbolArena::new();
        for p in w.publishers().iter().take(30) {
            let full = visit_publisher(
                &w, p, cfg(), SimTime(77), CrawlPolicy::default(), None, &mut arena_full,
            );
            let fast = visit_publisher(
                &w,
                p,
                cfg().hash_screenshots(),
                SimTime(77),
                CrawlPolicy::default(),
                Some(&cache),
                &mut arena_fast,
            );
            assert_eq!(full, fast, "fast path diverged at {}", p.domain);
        }
        assert!(!cache.is_empty(), "cache must have been warmed");
    }

    #[test]
    fn attack_landings_have_milkable_candidates_when_tds_used() {
        let w = world();
        let mut arena = SymbolArena::new();
        let mut with_candidate = 0;
        let mut attacks = 0;
        for p in w.publishers().iter().take(120) {
            let v =
                visit_publisher(&w, p, cfg(), SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena);
            for l in &v.landings {
                if l.truth_is_attack {
                    attacks += 1;
                    if l.milkable_candidate.is_some() {
                        with_candidate += 1;
                    }
                }
            }
        }
        assert!(attacks > 10, "need attacks to assess ({attacks})");
        assert!(
            with_candidate * 2 > attacks,
            "most attacks should have upstream candidates: {with_candidate}/{attacks}"
        );
    }

    #[test]
    fn reused_scratch_log_is_byte_identical_to_fresh_logs() {
        // The farm's scratch-threading fast path: one EventLog recycled
        // across a worker's whole job stream must leave every record —
        // and the arena symbol assignment — untouched.
        let w = world();
        let mut arena_fresh = SymbolArena::new();
        let mut arena_reuse = SymbolArena::new();
        let mut scratch = VisitScratch::new();
        for p in w.publishers().iter().take(40) {
            let fresh = visit_publisher(
                &w, p, cfg(), SimTime(250), CrawlPolicy::default(), None, &mut arena_fresh,
            );
            let reused = visit_publisher_reusing(
                &w, p, cfg(), SimTime(250), CrawlPolicy::default(), None, &mut arena_reuse,
                &mut scratch,
            );
            assert_eq!(fresh, reused, "scratch reuse diverged at {}", p.domain);
        }
        assert_eq!(arena_fresh.strings().to_vec(), arena_reuse.strings().to_vec());
        assert!(!scratch.log.is_empty(), "scratch holds the last visit's log");
    }

    #[test]
    fn stock_automation_still_completes_visits() {
        // A lockable browser must not hang the crawl loop — it reopens.
        let w = world();
        let mut arena = SymbolArena::new();
        let cfg = BrowserConfig::stock_automation(UaProfile::Ie10Windows, Vantage::Residential);
        for p in w.publishers().iter().take(30) {
            let v = visit_publisher(&w, p, cfg, SimTime::EPOCH, CrawlPolicy::default(), None, &mut arena);
            assert!(v.clicks > 0 || v.load_failed);
        }
    }
}
impl_json_struct!(CrawlPolicy { max_clicks, max_ads, timeout });
