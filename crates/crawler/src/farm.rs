//! The parallel crawler farm.
//!
//! The paper ran container replicas across five servers plus residential
//! laptops; here each replica is a worker thread executing
//! [`visit_publisher_reusing`] jobs. Because every
//! fetch is a pure function of `(seed, url, client, time)`, the visit
//! schedule fixes virtual time per job **independently of thread count**:
//! the farm pretends to have [`CrawlSchedule::lanes`] crawlers
//! running 2-minute sessions back to back, and any number of OS threads
//! may execute that schedule.

use std::sync::atomic::{AtomicUsize, Ordering};

use seacma_util::sym::{SharedArena, SymbolArena};
use seacma_util::{impl_json_struct, resolve_workers};

use seacma_browser::{BrowserConfig, RenderCache};
use seacma_simweb::{PublisherId, SimDuration, SimTime, UaProfile, Vantage, World};

use crate::record::{CrawlDataset, SiteVisit};
use crate::visit::{visit_publisher_reusing, CrawlPolicy, VisitScratch};

/// Deterministic visit scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlSchedule {
    /// Virtual start of the crawl.
    pub start: SimTime,
    /// Virtual session length per visit.
    pub session_len: SimDuration,
    /// Number of virtual crawler lanes executing sessions back to back.
    /// This — not the OS thread count — fixes the virtual crawl span:
    /// `n_jobs / lanes × session_len`. The default (8 lanes of 2-minute
    /// sessions) stretches a paper-scale crawl over several virtual days,
    /// long enough for campaign domain rotation to manifest in the data
    /// (the θc filter depends on it).
    pub lanes: u64,
}

impl CrawlSchedule {
    /// Virtual start time of the `idx`-th job in a pass.
    pub fn job_time(&self, idx: usize) -> SimTime {
        self.start + self.session_len * (idx as u64 / self.lanes.max(1))
    }

    /// Virtual end of a pass over `n` jobs.
    pub fn pass_end(&self, n: usize) -> SimTime {
        self.job_time(n.saturating_sub(1)) + self.session_len
    }

    /// Total virtual span of `passes` passes over `n` jobs.
    pub fn span(&self, n: usize, passes: usize) -> SimDuration {
        SimDuration((self.pass_end(n) - self.start).minutes() * passes as u64)
    }
}

impl Default for CrawlSchedule {
    fn default() -> Self {
        Self { start: SimTime::EPOCH, session_len: SimDuration::from_minutes(2), lanes: 8 }
    }
}

/// The crawler farm.
pub struct CrawlFarm<'w> {
    world: &'w World,
    workers: usize,
    policy: CrawlPolicy,
}

impl<'w> CrawlFarm<'w> {
    /// Builds a farm with `workers` OS threads (0 ⇒ available parallelism).
    pub fn new(world: &'w World, workers: usize, policy: CrawlPolicy) -> Self {
        Self { world, workers: resolve_workers(workers), policy }
    }

    /// Crawls `publishers` once per UA in `uas`, from `vantage`, stealth
    /// instrumentation on. UA passes run back to back in virtual time
    /// (the paper avoids revisiting a site with the *same* UA but visits
    /// it with each different one).
    ///
    /// Every pass runs the render-free fast path: screenshots are
    /// captured as fused perceptual hashes through one crawl-wide
    /// [`RenderCache`], so each campaign/page template's clean render is
    /// computed once per crawl instead of once per visit — and no landing
    /// pixel buffer is ever materialized. The dataset is byte-identical
    /// to full-render visits (it stores hashes, and the fused-hash ==
    /// render-then-hash identity is pinned in `seacma-simweb`) and to any
    /// other worker count.
    ///
    /// Record domain strings are interned into `arena`. Workers intern
    /// into private scratch arenas while crawling; at assembly the merged
    /// visit sequence is walked in job order and every symbol is
    /// re-interned into `arena`, so the canonical symbol assignment (and
    /// the arena's first-seen order) is exactly what a sequential crawl
    /// would have produced — independent of worker count.
    pub fn crawl(
        &self,
        publishers: &[PublisherId],
        uas: &[UaProfile],
        vantage: Vantage,
        schedule: CrawlSchedule,
        arena: &SharedArena,
    ) -> CrawlDataset {
        let cache = RenderCache::new();
        let mut all: Vec<SiteVisit> = Vec::with_capacity(publishers.len() * uas.len());
        let mut pass_start = schedule.start;
        for &ua in uas {
            let pass_schedule = CrawlSchedule { start: pass_start, ..schedule };
            let visits = self.crawl_pass(publishers, ua, vantage, pass_schedule, &cache, arena);
            pass_start = pass_schedule.pass_end(publishers.len());
            all.extend(visits);
        }
        CrawlDataset { visits: all }
    }

    /// One pass: every publisher once with one UA.
    fn crawl_pass(
        &self,
        publishers: &[PublisherId],
        ua: UaProfile,
        vantage: Vantage,
        schedule: CrawlSchedule,
        cache: &RenderCache,
        arena: &SharedArena,
    ) -> Vec<SiteVisit> {
        let config = BrowserConfig::instrumented(ua, vantage).hash_screenshots();
        // Job queue: the jobs are just the indices 0..n, so a shared
        // atomic counter is the whole queue — each fetch_add claims the
        // next index, no lock or channel needed.
        let next = AtomicUsize::new(0);

        // Each worker accumulates its own (job index, visit) shard plus a
        // private scratch arena; the shards are merged by job index below.
        // No shared funnel, no result lock, no sort — the merge is a
        // deterministic scatter into pre-sized slots, the same
        // simulate/merge shape as the parallel milker. Scratch arenas keep
        // the hot crawl loop free of cross-thread arena contention (and of
        // any worker-count-dependent interleaving).
        let shards: Vec<(SymbolArena, Vec<(usize, SiteVisit)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    let next = &next;
                    let world = self.world;
                    let policy = self.policy;
                    scope.spawn(move || {
                        let mut scratch = SymbolArena::new();
                        // One visit scratch (event log + backtrack graph)
                        // per worker, recycled across jobs: each visit
                        // clears and refills the buffers, so they are
                        // allocated once per worker, not once per visit.
                        let mut buffers = VisitScratch::new();
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= publishers.len() {
                                break;
                            }
                            let p = &world.publishers()[publishers[idx].0 as usize];
                            let t = schedule.job_time(idx);
                            local.push((
                                idx,
                                visit_publisher_reusing(
                                    world,
                                    p,
                                    config,
                                    t,
                                    policy,
                                    Some(cache),
                                    &mut scratch,
                                    &mut buffers,
                                ),
                            ));
                        }
                        (scratch, local)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("crawl worker panicked")).collect()
        });

        // Scatter into job-order slots, remembering which worker (and so
        // which scratch arena) produced each visit.
        let mut slots: Vec<Option<(usize, SiteVisit)>> =
            (0..publishers.len()).map(|_| None).collect();
        let mut arenas = Vec::with_capacity(shards.len());
        for (wid, (scratch, shard)) in shards.into_iter().enumerate() {
            arenas.push(scratch);
            for (idx, visit) in shard {
                debug_assert!(slots[idx].is_none(), "job {idx} executed twice");
                slots[idx] = Some((wid, visit));
            }
        }

        // Canonicalize: walk visits in job order and re-intern every
        // record symbol into the shared arena. Within a record the
        // publisher domain precedes the landing e2LD — the same order
        // `visit_publisher` interns in — so the canonical arena's
        // first-seen order equals a sequential crawl's.
        slots
            .into_iter()
            .map(|s| {
                let (wid, mut visit) = s.expect("every claimed job produced a visit");
                let scratch = &arenas[wid];
                for l in &mut visit.landings {
                    l.publisher_domain = arena.intern(scratch.resolve(l.publisher_domain));
                    l.landing_e2ld = arena.intern(scratch.resolve(l.landing_e2ld));
                }
                visit
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 41,
            n_publishers: 150,
            n_hidden_only_publishers: 0,
            n_advertisers: 20,
            campaign_scale: 0.3,
            error_rate: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn schedule_is_lane_based() {
        let s = CrawlSchedule::default();
        assert_eq!(s.job_time(0), SimTime(0));
        assert_eq!(s.job_time(7), SimTime(0));
        assert_eq!(s.job_time(8), SimTime(2));
        assert_eq!(s.job_time(17), SimTime(4));
        assert!(s.pass_end(18) > s.job_time(17));
        let wide = CrawlSchedule { lanes: 64, ..Default::default() };
        assert_eq!(wide.job_time(63), SimTime(0));
        assert_eq!(wide.job_time(64), SimTime(2));
    }

    #[test]
    fn farm_output_is_thread_count_invariant() {
        let w = world();
        let pubs: Vec<PublisherId> = w.publishers().iter().map(|p| p.id).take(60).collect();
        let uas = [UaProfile::ChromeMac];
        let arena_a = SharedArena::new();
        let arena_b = SharedArena::new();
        let a = CrawlFarm::new(&w, 1, CrawlPolicy::default()).crawl(
            &pubs,
            &uas,
            Vantage::Residential,
            CrawlSchedule::default(),
            &arena_a,
        );
        let b = CrawlFarm::new(&w, 8, CrawlPolicy::default()).crawl(
            &pubs,
            &uas,
            Vantage::Residential,
            CrawlSchedule::default(),
            &arena_b,
        );
        assert_eq!(a, b, "crawl output must not depend on worker count");
        assert_eq!(
            arena_a.read().strings().to_vec(),
            arena_b.read().strings().to_vec(),
            "canonical arena content must not depend on worker count"
        );
    }

    #[test]
    fn multi_ua_passes_cover_all_platforms() {
        let w = world();
        let pubs: Vec<PublisherId> = w.publishers().iter().map(|p| p.id).take(40).collect();
        let d = CrawlFarm::new(&w, 4, CrawlPolicy::default()).crawl(
            &pubs,
            &UaProfile::ALL,
            Vantage::Residential,
            CrawlSchedule::default(),
            &SharedArena::new(),
        );
        assert_eq!(d.visits.len(), 40 * 4);
        // Mobile-only lottery campaigns only show up in the Android pass.
        let mobile_landings =
            d.landings().filter(|l| l.ua == UaProfile::ChromeAndroid).count();
        assert!(mobile_landings > 0);
        // Later UA passes happen later in virtual time.
        let t_first = d.visits[0].started;
        let t_last = d.visits.last().unwrap().started;
        assert!(t_last > t_first);
    }

    #[test]
    fn landings_accumulate_at_scale() {
        let w = world();
        let pubs: Vec<PublisherId> = w.publishers().iter().map(|p| p.id).collect();
        let d = CrawlFarm::new(&w, 0, CrawlPolicy::default()).crawl(
            &pubs,
            &[UaProfile::ChromeMac, UaProfile::ChromeAndroid],
            Vantage::Residential,
            CrawlSchedule::default(),
            &SharedArena::new(),
        );
        assert!(d.landing_count() > 300, "landings: {}", d.landing_count());
        assert!(d.publishers_with_landings() > 100);
        let attacks = d.landings().filter(|l| l.truth_is_attack).count();
        assert!(attacks > 50, "attacks: {attacks}");
    }
}
impl_json_struct!(CrawlSchedule { start, session_len, lanes });
