//! Crawl output records.
//!
//! Domain strings are stored as [`Sym`] symbols into the crawl's symbol
//! arena (the world-level arena when the pipeline drives the crawl): a
//! paper-scale crawl produces hundreds of thousands of landings over a
//! few thousand distinct domains, so records carry 4-byte symbols and the
//! arena stores each string once. Consumers resolve through the arena the
//! producing [`crate::CrawlFarm`] interned into.

use seacma_util::impl_json_struct;
use seacma_util::sym::Sym;

use seacma_simweb::{PublisherId, RedirectKind, SimTime, UaProfile, Url, Vantage};
use seacma_vision::dhash::Dhash;

/// One third-party landing page reached by clicking on a publisher page.
#[derive(Debug, Clone, PartialEq)]
pub struct LandingRecord {
    /// Publisher the click happened on.
    pub publisher: PublisherId,
    /// Publisher domain symbol (denormalized for reporting; resolve via
    /// the crawl's arena).
    pub publisher_domain: Sym,
    /// Browser/OS combination used.
    pub ua: UaProfile,
    /// IP vantage used.
    pub vantage: Vantage,
    /// Ordinal of the click within the visit.
    pub click_ordinal: u32,
    /// Final landing URL.
    pub landing_url: Url,
    /// e2LD symbol of the landing URL (the clustering key alongside the
    /// hash; resolve via the crawl's arena).
    pub landing_e2ld: Sym,
    /// Perceptual hash of the landing screenshot.
    pub dhash: Dhash,
    /// Redirect hops traversed, `(from, to, kind)`.
    pub hops: Vec<(Url, Url, RedirectKind)>,
    /// Every URL involved in delivering the landing (backward path plus
    /// included scripts) — the attribution input.
    pub involved_urls: Vec<Url>,
    /// Nearest upstream off-domain URL (milking candidate), when the
    /// chain had one.
    pub milkable_candidate: Option<Url>,
    /// Virtual time of the click.
    pub t: SimTime,
    /// Ground-truth: landing visual was an SE attack template. Used only
    /// for evaluating the unsupervised pipeline, never inside it.
    pub truth_is_attack: bool,
}

/// The outcome of visiting one publisher with one UA.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteVisit {
    /// Publisher visited.
    pub publisher: PublisherId,
    /// UA used.
    pub ua: UaProfile,
    /// Vantage used.
    pub vantage: Vantage,
    /// Virtual time the visit started.
    pub started: SimTime,
    /// Landings captured (third-party pages only).
    pub landings: Vec<LandingRecord>,
    /// Clicks issued.
    pub clicks: u32,
    /// The publisher page failed to load.
    pub load_failed: bool,
}

/// The full crawl output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrawlDataset {
    /// All visits, in schedule order.
    pub visits: Vec<SiteVisit>,
}

impl LandingRecord {
    /// The ad-loading redirect chain: the click URL, every intermediate
    /// hop and the landing URL. This — not the publisher page's full
    /// script set — is what attribution scans: a greedy publisher embeds
    /// several networks' loaders, but only the chain identifies the
    /// network that actually served *this* ad.
    pub fn chain_urls(&self) -> Vec<&Url> {
        let mut out: Vec<&Url> = Vec::with_capacity(self.hops.len() + 1);
        for (from, to, _) in &self.hops {
            if out.last() != Some(&from) {
                out.push(from);
            }
            out.push(to);
        }
        if out.last() != Some(&&self.landing_url) {
            out.push(&self.landing_url);
        }
        out
    }
}

impl CrawlDataset {
    /// Iterates all landings across visits.
    pub fn landings(&self) -> impl Iterator<Item = &LandingRecord> {
        self.visits.iter().flat_map(|v| v.landings.iter())
    }

    /// Number of distinct publishers whose clicks produced at least one
    /// third-party landing (paper: 39,171 of 70,541).
    pub fn publishers_with_landings(&self) -> usize {
        let mut ids: Vec<PublisherId> = self
            .visits
            .iter()
            .filter(|v| !v.landings.is_empty())
            .map(|v| v.publisher)
            .collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct publishers visited.
    pub fn publishers_visited(&self) -> usize {
        let mut ids: Vec<PublisherId> = self.visits.iter().map(|v| v.publisher).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// Total landings.
    pub fn landing_count(&self) -> usize {
        self.visits.iter().map(|v| v.landings.len()).sum()
    }

    /// Total clicks issued (ethics accounting input).
    pub fn click_count(&self) -> u64 {
        self.visits.iter().map(|v| u64::from(v.clicks)).sum()
    }

    /// Merges another dataset (e.g. the residential-vantage pool).
    pub fn merge(&mut self, other: CrawlDataset) {
        self.visits.extend(other.visits);
    }

    /// Splits the flattened landing order into `epochs` contiguous prefix
    /// chunks — the epoch-step hook the tracking phase and the resident
    /// daemon's scheduler replay the crawl through. Contiguity in the
    /// flattened order is load-bearing: batch DBSCAN numbering is
    /// input-order-sensitive, so an epoch feed assembled from these chunks
    /// reproduces the batch discovery clustering bit for bit at the final
    /// boundary. The last chunk may be short; an empty dataset yields no
    /// chunks (no epoch to close), matching the historical tracking
    /// behaviour.
    pub fn landing_epochs(&self, epochs: usize) -> Vec<Vec<&LandingRecord>> {
        let landings: Vec<&LandingRecord> = self.landings().collect();
        let chunk = landings.len().div_ceil(epochs.max(1)).max(1);
        landings.chunks(chunk).map(<[&LandingRecord]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(p: u32, n_landings: usize) -> SiteVisit {
        SiteVisit {
            publisher: PublisherId(p),
            ua: UaProfile::ChromeMac,
            vantage: Vantage::Institutional,
            started: SimTime(0),
            landings: (0..n_landings)
                .map(|i| LandingRecord {
                    publisher: PublisherId(p),
                    publisher_domain: Sym(p),
                    ua: UaProfile::ChromeMac,
                    vantage: Vantage::Institutional,
                    click_ordinal: i as u32,
                    landing_url: Url::http(format!("l{i}.club"), "/"),
                    landing_e2ld: Sym(1000 + i as u32),
                    dhash: Dhash(i as u128),
                    hops: vec![],
                    involved_urls: vec![],
                    milkable_candidate: None,
                    t: SimTime(0),
                    truth_is_attack: false,
                })
                .collect(),
            clicks: n_landings as u32 + 2,
            load_failed: false,
        }
    }

    #[test]
    fn dataset_counters() {
        let mut d = CrawlDataset::default();
        d.visits.push(visit(1, 2));
        d.visits.push(visit(1, 0)); // second UA pass, no landings
        d.visits.push(visit(2, 0));
        assert_eq!(d.landing_count(), 2);
        assert_eq!(d.publishers_visited(), 2);
        assert_eq!(d.publishers_with_landings(), 1);
        assert_eq!(d.click_count(), 4 + 2 + 2);
        assert_eq!(d.landings().count(), 2);
    }

    #[test]
    fn landing_epochs_are_contiguous_prefix_chunks() {
        let d = CrawlDataset { visits: vec![visit(1, 3), visit(2, 2), visit(3, 2)] };
        let flat: Vec<&LandingRecord> = d.landings().collect();
        let chunks = d.landing_epochs(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 1]);
        let rejoined: Vec<&LandingRecord> = chunks.into_iter().flatten().collect();
        assert_eq!(rejoined, flat, "chunking must preserve the flattened order");

        // More epochs than landings: one landing per chunk, none dropped.
        assert_eq!(d.landing_epochs(100).len(), 7);
        // Empty dataset: no chunks, no phantom epochs.
        assert!(CrawlDataset::default().landing_epochs(4).is_empty());
    }

    #[test]
    fn merge_appends() {
        let mut a = CrawlDataset { visits: vec![visit(1, 1)] };
        let b = CrawlDataset { visits: vec![visit(2, 1)] };
        a.merge(b);
        assert_eq!(a.visits.len(), 2);
        assert_eq!(a.publishers_visited(), 2);
    }
}
impl_json_struct!(LandingRecord {
    publisher,
    publisher_domain,
    ua,
    vantage,
    click_ordinal,
    landing_url,
    landing_e2ld,
    dhash,
    hops,
    involved_urls,
    milkable_candidate,
    t,
    truth_is_attack,
});
impl_json_struct!(SiteVisit { publisher, ua, vantage, started, landings, clicks, load_failed });
impl_json_struct!(CrawlDataset { visits });
