//! # seacma-crawler
//!
//! The crawler farm (paper §3.2): container-like browser replicas visiting
//! publisher sites in parallel, clicking where ads are likely armed, and
//! logging everything needed downstream — screenshots (as perceptual
//! hashes), redirect chains, involved-URL sets and milkable candidates.
//!
//! Key behaviours reproduced from the paper:
//!
//! * **Click heuristics** — elements are ranked by rendered size (big
//!   images/iframes carry the ad listeners); clicks at one spot repeat a
//!   tunable number of times because greedy publishers stack several ad
//!   networks on the same elements.
//! * **Ad-trigger detection** — a click "exercised an ad" iff it opened a
//!   tab or navigated to a third-party (different e2LD) URL.
//! * **Session discipline** — after each ad interaction the browser is
//!   reopened and the publisher reloaded; a visit ends when the click
//!   budget, the ad budget or the per-site timeout is exhausted.
//! * **Vantage split** — sites embedding cloaking networks (Propeller,
//!   Clickadu) must be crawled from residential IP space to observe
//!   SEACMA ads at all.
//! * **Determinism under parallelism** — each visit's virtual start time
//!   is a pure function of its position in the schedule (a fixed number
//!   of *virtual* crawler lanes), so the dataset is identical no matter
//!   how many OS threads execute it.

#![deny(missing_docs)]

pub mod farm;
pub mod record;
pub mod visit;

pub use farm::{CrawlFarm, CrawlSchedule};
pub use record::{CrawlDataset, LandingRecord, SiteVisit};
pub use visit::{visit_publisher, visit_publisher_reusing, CrawlPolicy, VisitScratch};
