//! Property suites for the crawl fast path.
//!
//! Two families of randomized invariants back the farm's render-free
//! pipeline:
//!
//! 1. **Fused hashing**: for every visual template and instance seed, the
//!    hash the fast path records — the fused noise+downsample pass over a
//!    clean render, with or without the shared [`RenderCache`] — equals
//!    `dhash128` of the fully materialized screenshot.
//! 2. **Sharded assembly**: for every publisher subset, job order, lane
//!    width and worker count, [`CrawlFarm::crawl`] reproduces the
//!    sequential reference crawl (full-render visits executed one job at a
//!    time in index order) byte for byte.

use seacma_browser::RenderCache;
use seacma_crawler::{visit_publisher, CrawlDataset, CrawlFarm, CrawlPolicy, CrawlSchedule};
use seacma_simweb::{
    PublisherId, SimDuration, SimTime, UaProfile, Vantage, VisualTemplate, World, WorldConfig,
};
use seacma_util::forall;
use seacma_util::prop::Rng;
use seacma_util::sym::{SharedArena, SymbolArena};
use seacma_vision::dhash::dhash128;

fn world() -> World {
    World::generate(WorldConfig {
        seed: 71,
        n_publishers: 80,
        n_hidden_only_publishers: 5,
        n_advertisers: 15,
        campaign_scale: 0.35,
        error_rate: 0.02,
        ..Default::default()
    })
}

/// Draws an arbitrary template, covering every variant.
fn arb_template(rng: &mut Rng) -> VisualTemplate {
    let skin = rng.below(u16::MAX as u64 + 1) as u16;
    let style = rng.u64();
    match rng.below(12) {
        0 => VisualTemplate::FakeSoftware { skin },
        1 => VisualTemplate::Scareware { skin },
        2 => VisualTemplate::TechSupport { skin },
        3 => VisualTemplate::Lottery { skin },
        4 => VisualTemplate::ChromeNotification { skin },
        5 => VisualTemplate::Registration { skin },
        6 => VisualTemplate::Parked { provider: skin },
        7 => VisualTemplate::StockAdult { image: skin },
        8 => VisualTemplate::ShortenerFrame { service: skin },
        9 => VisualTemplate::LoadError,
        10 => VisualTemplate::BenignLanding { style },
        _ => VisualTemplate::PublisherHome { style },
    }
}

#[test]
fn fused_dhash_equals_render_then_hash_for_all_templates() {
    let cache = RenderCache::new();
    forall!(300, |rng| {
        let tpl = arb_template(rng);
        let seed = rng.u64();
        let want = dhash128(&tpl.render(seed));
        assert_eq!(
            VisualTemplate::dhash_from_clean(&tpl.render_clean(), seed),
            want,
            "fused pass diverged for {tpl:?} seed {seed}"
        );
        assert_eq!(
            cache.dhash(tpl, seed),
            want,
            "cached fused pass diverged for {tpl:?} seed {seed}"
        );
    });
    assert!(!cache.is_empty(), "cache must have been exercised");
}

/// The sequential reference crawl: full-render visits (no cache, no hash
/// mode), one job at a time in index order — exactly what the farm
/// replaced. Byte-equality of [`CrawlDataset`]s against this oracle pins
/// the whole fast path: fused hashes, shared cache, sharded assembly.
fn reference_crawl(
    world: &World,
    publishers: &[PublisherId],
    uas: &[UaProfile],
    schedule: CrawlSchedule,
    arena: &mut SymbolArena,
) -> CrawlDataset {
    let mut visits = Vec::new();
    let mut pass_start = schedule.start;
    for &ua in uas {
        let config = seacma_browser::BrowserConfig::instrumented(ua, Vantage::Residential);
        let pass = CrawlSchedule { start: pass_start, ..schedule };
        for (idx, p) in publishers.iter().enumerate() {
            let site = &world.publishers()[p.0 as usize];
            visits.push(visit_publisher(
                world,
                site,
                config,
                pass.job_time(idx),
                CrawlPolicy::default(),
                None,
                arena,
            ));
        }
        pass_start = pass.pass_end(publishers.len());
    }
    CrawlDataset { visits }
}

#[test]
fn farm_equals_sequential_reference_for_all_job_orders_and_worker_counts() {
    let w = world();
    let all: Vec<PublisherId> = w.publishers().iter().map(|p| p.id).collect();
    forall!(12, |rng| {
        // Random subset in random order: the job list itself is the
        // shuffled quantity (job index fixes virtual time, so a permuted
        // input is a genuinely different crawl the farm must still match).
        let mut pubs = all.clone();
        for i in (1..pubs.len()).rev() {
            pubs.swap(i, rng.below(i as u64 + 1) as usize);
        }
        pubs.truncate(rng.range(10, 40));
        let uas: &[UaProfile] = if rng.bool(0.5) {
            &[UaProfile::ChromeMac]
        } else {
            &[UaProfile::ChromeMac, UaProfile::ChromeAndroid]
        };
        let schedule = CrawlSchedule {
            start: SimTime(rng.below(2000)),
            session_len: SimDuration::from_minutes(rng.range_u64(1, 5)),
            lanes: rng.range_u64(1, 16),
        };
        let mut seq_arena = SymbolArena::new();
        let expected = reference_crawl(&w, &pubs, uas, schedule, &mut seq_arena);
        let workers = rng.range(1, 9);
        let farm_arena = SharedArena::new();
        let got = CrawlFarm::new(&w, workers, CrawlPolicy::default()).crawl(
            &pubs,
            uas,
            Vantage::Residential,
            schedule,
            &farm_arena,
        );
        assert_eq!(
            got, expected,
            "farm diverged from sequential reference ({workers} workers, {} jobs)",
            pubs.len()
        );
        // The canonicalized arena must equal direct sequential interning —
        // same strings, same first-seen order, so the record symbols above
        // compared equal for the same underlying domains.
        assert_eq!(
            farm_arena.read().strings().to_vec(),
            seq_arena.strings().to_vec(),
            "canonical arena diverged from the sequential reference arena"
        );
    });
}
