//! Phase 2 of the parallel milker: the sequential merge sweep.
//!
//! Consumes the per-source timelines of [`crate::simulate`] in the exact
//! order the sequential scheduler would have produced them — time-major,
//! source-index-minor, which is one stable sort because each timeline is
//! already chronological and a source emits at most one event per tick —
//! and applies all cross-source state on one thread: the global
//! `seen_domains` / `seen_hashes` dedup, GSB discovery lookups (whose
//! first call per domain anchors the memoized fate, so ordering is
//! load-bearing), VirusTotal submissions, timelines and the intelligence
//! side channels. Because this sweep is deterministic in the event order
//! and the event order is independent of how phase 1 was scheduled, the
//! resulting [`MilkingOutcome`] is byte-identical at any worker count.

use std::collections::HashSet;

use seacma_blacklist::{GsbService, VirusTotal};
use seacma_simweb::{SimTime, Url};

use crate::downloads::MilkedFile;
use crate::scheduler::{DomainDiscovery, MilkingConfig, MilkingOutcome};
use crate::simulate::{CandidateEvent, SourceTimeline};
use crate::sources::MilkingSource;

/// Merges per-source timelines into the milking outcome.
pub(crate) fn merge_timelines(
    config: MilkingConfig,
    sources: &[MilkingSource],
    timelines: Vec<SourceTimeline>,
    gsb: &mut GsbService<'_>,
    vt: &mut VirusTotal,
    start: SimTime,
) -> MilkingOutcome {
    let end = start + config.duration;
    let mut out = MilkingOutcome::default();
    let mut events: Vec<CandidateEvent> = Vec::new();
    for tl in timelines {
        out.sessions += tl.sessions;
        events.extend(tl.events);
    }
    // The sequential scheduler's iteration order: outer loop over ticks,
    // inner loop over sources. `(t, source_idx)` is unique per event.
    events.sort_by_key(|e| (e.t, e.source_idx));

    let mut seen_domains: HashSet<String> = HashSet::new();
    let mut seen_hashes: HashSet<u128> = HashSet::new();
    // Membership sets backing the first-seen-ordered side-channel vectors.
    let mut phone_set: HashSet<String> = HashSet::new();
    let mut gateway_set: HashSet<Url> = HashSet::new();

    for ev in events {
        if !seen_domains.insert(ev.domain.clone()) {
            // Another source matched this domain at an earlier tick; the
            // sequential scheduler would have skipped this session at the
            // seen-domains check.
            continue;
        }
        let src = &sources[ev.source_idx];
        out.timelines.entry(ev.source_idx).or_default().push((ev.t, ev.domain.clone()));

        if let Some(phone) = ev.scam_phone {
            if phone_set.insert(phone.clone()) {
                out.scam_phones.push((phone, ev.t, src.cluster));
            }
        }
        if let Some(gw) = ev.survey_gateway {
            if gateway_set.insert(gw.clone()) {
                out.survey_gateways.push((gw, ev.t, src.cluster));
            }
        }
        if ev.notification_prompt {
            out.notification_grants.push((ev.landing_url.clone(), ev.t, src.cluster));
        }

        for payload in ev.downloads {
            if seen_hashes.insert(payload.sha) {
                let known = vt.lookup(&payload, ev.t).is_some();
                let initial = vt.submit(&payload, ev.t);
                out.files.push(MilkedFile {
                    payload,
                    page: ev.landing_url.clone(),
                    t: ev.t,
                    known_at_submit: known,
                    initial,
                    final_report: None,
                });
            }
        }

        // GSB measurement: the discovery-time lookup anchors the domain's
        // memoized fate at `ev.t`, exactly as the sequential path did.
        let listed_now = gsb.lookup(&ev.domain, ev.t).is_listed();
        let listed_at = poll_gsb_closed_form(gsb, config, &ev.domain, ev.t, end);
        out.discoveries.push(DomainDiscovery {
            domain: ev.domain,
            landing_url: ev.landing_url,
            source_idx: ev.source_idx,
            cluster: src.cluster,
            first_seen: ev.t,
            gsb_listed_at_discovery: listed_now,
            gsb_listed_at: listed_at,
        });
    }

    // Months later: VT rescan of everything submitted.
    for f in &mut out.files {
        f.final_report = vt.rescan(&f.payload, f.t + config.vt_rescan_after);
    }
    out
}

/// Closed form of [`Milker::poll_gsb`](crate::Milker): the 30-minute
/// polling grid through the lookup tail collapses to
/// [`GsbService::first_listed_poll`], and the late final lookup collapses
/// to one listing-time comparison. Loop ≡ closed form is pinned by
/// property tests in both seacma-blacklist and the scheduler suite.
pub(crate) fn poll_gsb_closed_form(
    gsb: &mut GsbService<'_>,
    config: MilkingConfig,
    domain: &str,
    first_seen: SimTime,
    milking_end: SimTime,
) -> Option<SimTime> {
    let tail_end = milking_end + config.lookup_tail;
    if let Some(t) = gsb.first_listed_poll(domain, first_seen, config.lookup_interval, tail_end) {
        return Some(t);
    }
    // The single late final lookup: listed by then means the poll cadence
    // would have observed the listing right at (or before) the tail end.
    let at = gsb.listing_time(domain, first_seen)?;
    (at <= first_seen + config.final_lookup_after).then(|| at.max(tail_end))
}
