//! Milked file downloads and the VirusTotal pipeline.

use seacma_util::impl_json_struct;

use seacma_blacklist::ScanReport;
use seacma_simweb::{FilePayload, SimTime, Url};

/// One file harvested by interacting with a milked SE attack page.
#[derive(Debug, Clone, PartialEq)]
pub struct MilkedFile {
    /// The payload served.
    pub payload: FilePayload,
    /// Landing URL it came from.
    pub page: Url,
    /// When it was downloaded.
    pub t: SimTime,
    /// Whether VirusTotal already knew the hash at submission time
    /// (paper: only 1,203 of 9,476).
    pub known_at_submit: bool,
    /// Scan report at submission.
    pub initial: ScanReport,
    /// Scan report after the months-later rescan (filled at experiment
    /// end).
    pub final_report: Option<ScanReport>,
}

impl MilkedFile {
    /// Whether the matured ensemble flags the file.
    pub fn finally_malicious(&self) -> bool {
        self.final_report.as_ref().is_some_and(ScanReport::is_malicious)
    }

    /// Whether at least `n` engines flag it after rescan.
    pub fn detected_by_at_least(&self, n: u32) -> bool {
        self.final_report.as_ref().is_some_and(|r| r.detections >= n)
    }
}

/// Aggregate statistics over a batch of milked files (the §4.5 numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DownloadStats {
    /// Total files milked.
    pub total: usize,
    /// Files VirusTotal already knew at submission.
    pub known_at_submit: usize,
    /// Files flagged malicious after rescan.
    pub finally_malicious: usize,
    /// Files flagged by ≥ 15 engines after rescan.
    pub flagged_15_plus: usize,
}

impl DownloadStats {
    /// Computes the aggregate over a batch.
    pub fn over(files: &[MilkedFile]) -> DownloadStats {
        DownloadStats {
            total: files.len(),
            known_at_submit: files.iter().filter(|f| f.known_at_submit).count(),
            finally_malicious: files.iter().filter(|f| f.finally_malicious()).count(),
            flagged_15_plus: files.iter().filter(|f| f.detected_by_at_least(15)).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_blacklist::VirusTotal;
    use seacma_simweb::{FileFormat, SimDuration};

    fn file(vt: &mut VirusTotal, i: u64, rescan: bool) -> MilkedFile {
        let payload = FilePayload::serve(900, FileFormat::Pe, &[i]);
        let t = SimTime(10);
        let known = vt.lookup(&payload, t).is_some();
        let initial = vt.submit(&payload, t);
        let final_report = rescan.then(|| {
            vt.rescan(&payload, t + SimDuration::from_days(90)).expect("submitted")
        });
        MilkedFile { payload, page: Url::http("x.club", "/"), t, known_at_submit: known, initial, final_report }
    }

    #[test]
    fn stats_reflect_catchup() {
        let mut vt = VirusTotal::new(5);
        let files: Vec<MilkedFile> = (0..300).map(|i| file(&mut vt, i, true)).collect();
        let stats = DownloadStats::over(&files);
        assert_eq!(stats.total, 300);
        assert!(stats.known_at_submit < 60, "known {}", stats.known_at_submit);
        assert!(stats.finally_malicious > 270, "malicious {}", stats.finally_malicious);
        assert!(
            stats.flagged_15_plus > 60 && stats.flagged_15_plus < 200,
            "15+ {}",
            stats.flagged_15_plus
        );
    }

    #[test]
    fn no_rescan_means_not_finally_malicious() {
        let mut vt = VirusTotal::new(5);
        let f = file(&mut vt, 1, false);
        assert!(!f.finally_malicious());
        assert!(!f.detected_by_at_least(1));
    }
}
impl_json_struct!(MilkedFile { payload, page, t, known_at_submit, initial, final_report });
impl_json_struct!(DownloadStats { total, known_at_submit, finally_malicious, flagged_15_plus });
