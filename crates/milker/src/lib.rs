//! # seacma-milker
//!
//! Continuous SEACMA campaign tracking ("milking", paper §3.5, §4.2, §4.5).
//!
//! SE attack pages live on throw-away domains, but the ad-loading chain
//! contains longer-lived upstream URLs. After the crawl, the pipeline:
//!
//! 1. **validates** each candidate `(URL, UA)` pair by re-visiting it and
//!    comparing the landing screenshot against the campaign's visual
//!    representative ([`sources::validate_candidates`]) — matches become
//!    *milking sources*;
//! 2. **milks** every source once per 15 virtual minutes for 14 virtual
//!    days ([`scheduler::Milker`]), recording every never-before-seen
//!    attack domain;
//! 3. checks each new domain against the GSB simulator every 30 minutes
//!    (continuing 12 days past the milking window, plus a final lookup two
//!    months later) to measure detection rates and listing lag;
//! 4. interacts with landing pages, harvesting the polymorphic binaries
//!    and driving the VirusTotal submit → wait → rescan flow.
//!
//! The production scheduler entry point is
//! [`Milker::run_parallel`](scheduler::Milker::run_parallel): per-source
//! timelines are simulated on worker threads (every session is a pure
//! function of `(seed, url, ua, time)`) and a sequential merge sweep
//! applies all cross-source state in the sequential scheduler's own
//! iteration order, so the outcome is byte-identical at any worker count.
//! [`Milker::run`](scheduler::Milker::run) remains the one-thread
//! reference path the invariance tests and the scaling bench compare
//! against.

#![deny(missing_docs)]

pub mod downloads;
mod merge;
pub mod scheduler;
mod simulate;
pub mod sources;
pub mod trackfeed;

pub use downloads::MilkedFile;
pub use scheduler::{DomainDiscovery, Milker, MilkingConfig, MilkingOutcome};
pub use sources::{validate_candidates, MilkingCandidate, MilkingSource};
