//! Phase 1 of the parallel milker: per-source timeline simulation.
//!
//! Every fetch, render and dhash comparison in a milking session is a pure
//! function of `(seed, url, ua, time)`, so each source's 14-day visit
//! timeline can be simulated independently of every other source — the
//! embarrassingly parallel phase. What *cannot* be decided per source is
//! whether a landed domain is globally new; that is phase 2's job
//! ([`crate::merge`]).
//!
//! The key observation that makes the split exact: in the sequential
//! scheduler, a tick changes state only when the landed domain is not yet
//! in the global `seen_domains` set **and** the rendered screenshot
//! matches the source's reference. A mismatching tick is a global no-op,
//! and after the first matching tick for a domain the domain is seen
//! forever. So phase 1 emits exactly the per-source-first *matching* ticks
//! as [`CandidateEvent`]s — everything the merge sweep could possibly
//! need — and drops the rest. The merge discards candidate events whose
//! domain another source matched earlier, reproducing the sequential
//! outcome byte for byte.

use std::collections::HashSet;

use seacma_browser::{BrowserConfig, QuietBrowser, RenderCache};
use seacma_simweb::{ClickAction, FilePayload, SimTime, Url, Vantage, World};
use seacma_vision::dhash::hamming;

use crate::scheduler::MilkingConfig;
use crate::sources::{MilkingSource, MATCH_THRESHOLD};

/// One per-source-first matching tick: a candidate discovery plus every
/// page artifact the merge sweep consumes (so phase 2 never re-fetches).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CandidateEvent {
    /// Tick time.
    pub t: SimTime,
    /// Index of the source in the milking source list.
    pub source_idx: usize,
    /// e2LD of the landing URL.
    pub domain: String,
    /// Full landing URL.
    pub landing_url: Url,
    /// Scam call-center number shown by the page, if any.
    pub scam_phone: Option<String>,
    /// Survey-scam gateway the page funnels to, if any.
    pub survey_gateway: Option<Url>,
    /// Whether the page asked for push-notification permission.
    pub notification_prompt: bool,
    /// Download payloads offered by the page's elements, in DOM order.
    pub downloads: Vec<FilePayload>,
}

/// The simulated timeline of one source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SourceTimeline {
    /// Index of the source in the milking source list.
    pub source_idx: usize,
    /// Sessions executed (one per tick, counting failed navigations).
    pub sessions: u64,
    /// Matching ticks in chronological order.
    pub events: Vec<CandidateEvent>,
}

/// Simulates source `source_idx`'s complete visit timeline.
///
/// The per-source `done` set mirrors what the global `seen_domains` set
/// does for this source's own discoveries: once this source has matched a
/// domain, later ticks landing on it are skipped without rendering (in the
/// sequential scheduler those ticks hit the `seen_domains` check). Domains
/// first matched by *other* sources still produce events here — phase 2
/// filters them, at the cost of one redundant render per cross-source
/// duplicate.
pub(crate) fn simulate_source(
    world: &World,
    config: MilkingConfig,
    source_idx: usize,
    src: &MilkingSource,
    start: SimTime,
    cache: &RenderCache,
) -> SourceTimeline {
    // Per-source constant, hoisted out of the tick loop.
    let browser_cfg =
        BrowserConfig::instrumented(src.ua, Vantage::Residential).without_screenshots();
    // `cache` is the run-wide clean-render memo: sources tracking the
    // same campaign share one clean render of its creative instead of
    // each worker re-rendering it privately.
    let mut browser = QuietBrowser::with_cache(world, browser_cfg, cache);
    let end = start + config.duration;

    let mut done: HashSet<String> = HashSet::new();
    let mut events = Vec::new();
    let mut sessions = 0u64;
    // Landing host of the last tick that resolved to "already milked".
    // A rotation epoch spans dozens of ticks, all landing on the same
    // host; since `host → e2ld` is pure and `done` only grows, a repeat
    // of a skipped host can be skipped again on a bare string compare —
    // no e2ld allocation, no set probe. Stale entries stay valid forever.
    let mut last_skip: Option<String> = None;
    let mut t = start;
    while t < end {
        sessions += 1;
        // Fast path: a HEAD-style probe (memoized across ticks for as
        // long as the hosting layer declares its answers valid) resolves
        // the landing URL without synthesizing any page. ~98 % of ticks
        // end here (domain already milked by this source) or in the
        // failed-navigation arm.
        let candidate = match browser.probe_cached(&src.url, t) {
            Err(()) => None,
            Ok(landing) => {
                if last_skip.as_deref() == Some(landing.host.as_str()) {
                    None
                } else {
                    let domain = landing.e2ld();
                    if done.contains(&domain) {
                        last_skip = Some(landing.host.clone());
                        None
                    } else {
                        Some(domain)
                    }
                }
            }
        };
        if let Some(domain) = candidate {
            // Candidate tick: load the document for real (probe and load
            // agree on the landing hop for hop).
            if let Ok((landing_url, page)) = browser.load(&src.url, t) {
                // Hash without rendering: the match check compares dhash
                // bits, never pixels (fused noise+downsample pass over the
                // cached clean render).
                let shot_hash = browser.screenshot_dhash(&landing_url, &page, t);
                if hamming(shot_hash, src.reference) <= MATCH_THRESHOLD {
                    last_skip = Some(landing_url.host.clone());
                    done.insert(domain);
                    let downloads = page
                        .elements
                        .iter()
                        .filter_map(|el| match el.action {
                            ClickAction::Download(payload) => Some(payload),
                            _ => None,
                        })
                        .collect();
                    events.push(CandidateEvent {
                        t,
                        source_idx,
                        domain: landing_url.e2ld(),
                        landing_url,
                        scam_phone: page.scam_phone,
                        survey_gateway: page.survey_gateway,
                        notification_prompt: page.notification_prompt,
                        downloads,
                    });
                }
            }
        }
        t += config.period;
    }
    SourceTimeline { source_idx, sessions, events }
}
