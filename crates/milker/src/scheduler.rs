//! The milking scheduler.
//!
//! Re-visits every validated source once per period (15 virtual minutes in
//! the paper) for the configured duration (14 days), discovering fresh
//! attack domains, driving GSB lookups on the measured cadence and
//! harvesting downloads into the VirusTotal flow.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use seacma_util::{impl_json_struct, resolve_workers};

use seacma_blacklist::{GsbService, VirusTotal};
use seacma_browser::{BrowserConfig, BrowserSession, RenderCache};
use seacma_simweb::{ClickAction, SimDuration, SimTime, Url, Vantage, World};
use seacma_vision::dhash::{dhash128, hamming};

use crate::downloads::MilkedFile;
use crate::sources::{MilkingSource, MATCH_THRESHOLD};

/// Milking cadence and measurement windows (§4.2, §4.5 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MilkingConfig {
    /// Period between visits to one source.
    pub period: SimDuration,
    /// Total milking duration.
    pub duration: SimDuration,
    /// GSB lookup cadence for discovered domains.
    pub lookup_interval: SimDuration,
    /// How long GSB lookups continue past the milking window.
    pub lookup_tail: SimDuration,
    /// Delay before the single final late lookup.
    pub final_lookup_after: SimDuration,
    /// Delay before the VirusTotal rescan of submitted files.
    pub vt_rescan_after: SimDuration,
}

impl Default for MilkingConfig {
    fn default() -> Self {
        Self {
            period: SimDuration::from_minutes(15),
            duration: SimDuration::from_days(14),
            lookup_interval: SimDuration::from_minutes(30),
            lookup_tail: SimDuration::from_days(12),
            final_lookup_after: SimDuration::from_days(60),
            vt_rescan_after: SimDuration::from_days(90),
        }
    }
}

/// A never-before-seen attack domain discovered through milking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDiscovery {
    /// The new attack domain.
    pub domain: String,
    /// Full landing URL observed.
    pub landing_url: Url,
    /// Index of the source (into the source list) that milked it.
    pub source_idx: usize,
    /// Campaign cluster of the source.
    pub cluster: usize,
    /// When the milker first saw the domain.
    pub first_seen: SimTime,
    /// GSB verdict at the first lookup (discovery time).
    pub gsb_listed_at_discovery: bool,
    /// When polling (30-minute cadence through the window + tail, plus
    /// the late final lookup) first saw the domain listed, if ever.
    pub gsb_listed_at: Option<SimTime>,
}

impl DomainDiscovery {
    /// GSB's lag behind the milker for this domain, when listed.
    pub fn gsb_lag(&self) -> Option<SimDuration> {
        self.gsb_listed_at.map(|at| at - self.first_seen)
    }
}

/// Complete output of a milking run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MilkingOutcome {
    /// Total milking sessions executed.
    pub sessions: u64,
    /// New-domain discoveries, in discovery order.
    pub discoveries: Vec<DomainDiscovery>,
    /// Files harvested and run through VirusTotal.
    pub files: Vec<MilkedFile>,
    /// Per-source timeline of `(time, domain)` rotation events (drives the
    /// figure-4 output).
    pub timelines: HashMap<usize, Vec<(SimTime, String)>>,
    /// Scam call-center numbers collected from tech-support pages:
    /// `(number, first seen, cluster)` — the real-time phone blacklist
    /// feed the paper describes (§4.3).
    pub scam_phones: Vec<(String, SimTime, usize)>,
    /// Survey-scam gateway URLs collected from lottery pages (§4.3).
    pub survey_gateways: Vec<(Url, SimTime, usize)>,
    /// Pages whose push-notification permission the crawler granted —
    /// the subscription channel attackers keep abusing after the page is
    /// gone (§4.3, Chrome Notifications).
    pub notification_grants: Vec<(Url, SimTime, usize)>,
}

impl MilkingOutcome {
    /// Fraction of discoveries listed by GSB at discovery time.
    pub fn gsb_init_rate(&self) -> f64 {
        if self.discoveries.is_empty() {
            return 0.0;
        }
        self.discoveries.iter().filter(|d| d.gsb_listed_at_discovery).count() as f64
            / self.discoveries.len() as f64
    }

    /// Fraction of discoveries ever listed (through the final lookup).
    pub fn gsb_final_rate(&self) -> f64 {
        if self.discoveries.is_empty() {
            return 0.0;
        }
        self.discoveries.iter().filter(|d| d.gsb_listed_at.is_some()).count() as f64
            / self.discoveries.len() as f64
    }

    /// Mean GSB listing lag in days over listed discoveries.
    pub fn mean_gsb_lag_days(&self) -> Option<f64> {
        let lags: Vec<f64> =
            self.discoveries.iter().filter_map(|d| d.gsb_lag()).map(|l| l.as_days()).collect();
        if lags.is_empty() {
            None
        } else {
            Some(lags.iter().sum::<f64>() / lags.len() as f64)
        }
    }
}

/// The milking engine.
pub struct Milker<'w> {
    world: &'w World,
    config: MilkingConfig,
}

impl<'w> Milker<'w> {
    /// Builds a milker.
    pub fn new(world: &'w World, config: MilkingConfig) -> Self {
        Self { world, config }
    }

    /// Runs the full milking experiment over `sources` starting at
    /// `start`, using the provided GSB and VirusTotal services.
    ///
    /// This is the sequential reference path: one thread, one session per
    /// `(tick, source)` in time-major order, GSB polled lookup by lookup.
    /// Production callers use [`run_parallel`](Self::run_parallel), which
    /// produces a byte-identical [`MilkingOutcome`] (pinned by the
    /// thread-count-invariance tests and the scaling bench's exactness
    /// gate); this path stays as the semantics oracle both are measured
    /// against.
    pub fn run(
        &self,
        sources: &[MilkingSource],
        gsb: &mut GsbService<'_>,
        vt: &mut VirusTotal,
        start: SimTime,
    ) -> MilkingOutcome {
        let mut out = MilkingOutcome::default();
        let mut seen_domains: HashSet<String> = HashSet::new();
        let mut seen_hashes: HashSet<u128> = HashSet::new();
        // Membership sets backing the first-seen-ordered side-channel
        // vectors (the vectors alone would make dedup O(n²)).
        let mut phone_set: HashSet<String> = HashSet::new();
        let mut gateway_set: HashSet<Url> = HashSet::new();
        // Per-source session configuration is tick-invariant.
        let configs: Vec<BrowserConfig> = sources
            .iter()
            .map(|src| {
                BrowserConfig::instrumented(src.ua, Vantage::Residential).without_screenshots()
            })
            .collect();
        let end = start + self.config.duration;

        // Round-robin over time: all sources are milked once per period.
        let mut t = start;
        while t < end {
            for (idx, src) in sources.iter().enumerate() {
                out.sessions += 1;
                let mut session = BrowserSession::new(self.world, configs[idx], t);
                let Ok(loaded) = session.navigate(&src.url) else {
                    continue;
                };
                let domain = loaded.url.e2ld();
                if seen_domains.contains(&domain) {
                    continue;
                }
                // Never-before-seen domain: verify it still shows the
                // campaign's attack before counting it.
                let shot = session.render_screenshot(&loaded.url, &loaded.page);
                if hamming(dhash128(&shot), src.reference) > MATCH_THRESHOLD {
                    continue;
                }
                seen_domains.insert(domain.clone());
                out.timelines.entry(idx).or_default().push((t, domain.clone()));

                // Intelligence side-channels: phone numbers, survey
                // gateways and notification-permission grants.
                if let Some(phone) = &loaded.page.scam_phone {
                    if phone_set.insert(phone.clone()) {
                        out.scam_phones.push((phone.clone(), t, src.cluster));
                    }
                }
                if let Some(gw) = &loaded.page.survey_gateway {
                    if gateway_set.insert(gw.clone()) {
                        out.survey_gateways.push((gw.clone(), t, src.cluster));
                    }
                }
                if loaded.page.notification_prompt {
                    out.notification_grants.push((loaded.url.clone(), t, src.cluster));
                }

                // Interact with the landing: downloads, permission grants.
                for el in &loaded.page.elements {
                    if let ClickAction::Download(payload) = el.action {
                        if seen_hashes.insert(payload.sha) {
                            let known = vt.lookup(&payload, t).is_some();
                            let initial = vt.submit(&payload, t);
                            out.files.push(MilkedFile {
                                payload,
                                page: loaded.url.clone(),
                                t,
                                known_at_submit: known,
                                initial,
                                final_report: None,
                            });
                        }
                    }
                    let _ = session.click(&loaded.url, &el.action);
                }

                // GSB measurement for the new domain.
                let listed_now = gsb.lookup(&domain, t).is_listed();
                let listed_at = self.poll_gsb(gsb, &domain, t, end);
                out.discoveries.push(DomainDiscovery {
                    domain,
                    landing_url: loaded.url,
                    source_idx: idx,
                    cluster: src.cluster,
                    first_seen: t,
                    gsb_listed_at_discovery: listed_now,
                    gsb_listed_at: listed_at,
                });
            }
            t += self.config.period;
        }

        // Months later: VT rescan of everything submitted.
        for f in &mut out.files {
            f.final_report = vt.rescan(&f.payload, f.t + self.config.vt_rescan_after);
        }
        out
    }

    /// Polls GSB at the configured cadence from `first_seen` through the
    /// end of the lookup tail, then does the single late final lookup.
    /// Returns the first time the domain was observed listed.
    fn poll_gsb(
        &self,
        gsb: &mut GsbService<'_>,
        domain: &str,
        first_seen: SimTime,
        milking_end: SimTime,
    ) -> Option<SimTime> {
        let tail_end = milking_end + self.config.lookup_tail;
        let mut t = first_seen;
        while t <= tail_end {
            if gsb.lookup(domain, t).is_listed() {
                return Some(t);
            }
            t += self.config.lookup_interval;
        }
        let final_t = first_seen + self.config.final_lookup_after;
        if gsb.lookup(domain, final_t).is_listed() {
            // The poll cadence stopped; report the listing time GSB would
            // have been observed at, bounded below by the tail end.
            let exact = gsb.listing_time(domain, first_seen)?;
            return Some(exact.max(tail_end));
        }
        None
    }

    /// Runs the milking experiment with phase 1 (per-source timeline
    /// simulation) fanned out over `workers` threads and phase 2 (the
    /// cross-source merge sweep) on the calling thread — the same
    /// determinism discipline as the crawl farm and the clustering stage.
    ///
    /// `workers == 0` means available parallelism. The returned
    /// [`MilkingOutcome`] is byte-identical to [`run`](Self::run) at any
    /// worker count: workers compute only pure per-source results, and
    /// the merge consumes them in the sequential scheduler's own
    /// iteration order (see the module docs of the `simulate` and `merge`
    /// modules for the elision argument).
    pub fn run_parallel(
        &self,
        sources: &[MilkingSource],
        gsb: &mut GsbService<'_>,
        vt: &mut VirusTotal,
        start: SimTime,
        workers: usize,
    ) -> MilkingOutcome {
        let workers = resolve_workers(workers).min(sources.len()).max(1);

        // Phase 1: fan out per-source simulations. Job dispatch is a
        // shared counter; results come home over a channel and are
        // re-ordered by source index, so OS scheduling cannot leak into
        // the merge. One clean-render cache is shared by all workers:
        // sources tracking the same campaign hash against the same
        // cached clean render.
        let cache = RenderCache::new();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<crate::simulate::SourceTimeline>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let world = self.world;
                let config = self.config;
                let cache = &cache;
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(src) = sources.get(idx) else { break };
                    let tl =
                        crate::simulate::simulate_source(world, config, idx, src, start, cache);
                    if tx.send(tl).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut timelines: Vec<crate::simulate::SourceTimeline> = rx.into_iter().collect();
        timelines.sort_by_key(|tl| tl.source_idx);

        // Phase 2: sequential time-ordered merge of all cross-source state.
        crate::merge::merge_timelines(self.config, sources, timelines, gsb, vt, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::MilkingSource;
    use seacma_simweb::{SeCategory, UaProfile, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 61,
            n_publishers: 60,
            n_hidden_only_publishers: 0,
            n_advertisers: 10,
            campaign_scale: 0.25,
            error_rate: 0.0,
            ..Default::default()
        })
    }

    fn sources_for(world: &World, cat: Option<SeCategory>) -> Vec<MilkingSource> {
        world
            .campaigns()
            .iter()
            .filter(|c| c.tds_domain.is_some())
            .filter(|c| cat.map_or(true, |cc| c.category == cc))
            .map(|c| MilkingSource {
                url: c.tds_url(0).unwrap(),
                ua: if c.category == SeCategory::LotteryGift {
                    UaProfile::ChromeAndroid
                } else {
                    UaProfile::ChromeMac
                },
                cluster: c.id.0 as usize,
                reference: dhash128(&c.template().render(1)),
            })
            .collect()
    }

    fn short_config() -> MilkingConfig {
        MilkingConfig {
            duration: SimDuration::from_days(3),
            lookup_tail: SimDuration::from_days(2),
            ..Default::default()
        }
    }

    #[test]
    fn milking_discovers_rotating_domains() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::FakeSoftware));
        assert!(!sources.is_empty());
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        // 3 days at 10h rotation ⇒ ~8 domains per source.
        let per_source = out.discoveries.len() as f64 / sources.len() as f64;
        assert!(
            (5.0..12.0).contains(&per_source),
            "{per_source} domains/source over 3 days"
        );
        assert_eq!(out.sessions, sources.len() as u64 * (3 * 24 * 4));
    }

    #[test]
    fn discoveries_are_unique_domains() {
        let w = world();
        let sources = sources_for(&w, None);
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        let mut domains: Vec<&str> = out.discoveries.iter().map(|d| d.domain.as_str()).collect();
        let n = domains.len();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), n, "discoveries must be deduplicated");
    }

    #[test]
    fn downloads_flow_through_virustotal() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::FakeSoftware));
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        assert!(!out.files.is_empty(), "fake-software milking must yield files");
        for f in &out.files {
            assert!(f.final_report.is_some(), "all files must be rescanned");
        }
        let known = out.files.iter().filter(|f| f.known_at_submit).count();
        assert!(
            (known as f64) < out.files.len() as f64 * 0.3,
            "most milked files must be VT-unknown ({known}/{})",
            out.files.len()
        );
    }

    #[test]
    fn gsb_rates_low_at_discovery() {
        let w = world();
        let sources = sources_for(&w, None);
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        assert!(out.gsb_init_rate() < 0.10, "init rate {}", out.gsb_init_rate());
        assert!(out.gsb_final_rate() >= out.gsb_init_rate());
    }

    #[test]
    fn timelines_are_chronological() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::FakeSoftware));
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        for timeline in out.timelines.values() {
            assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn tech_support_milking_collects_phone_numbers() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::TechnicalSupport));
        if sources.is_empty() {
            return; // tiny world may draw no milkable tech-support campaign
        }
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        assert!(!out.scam_phones.is_empty(), "phone numbers must be harvested");
        for (phone, _, _) in &out.scam_phones {
            assert!(phone.starts_with("+1-8"), "unexpected number format {phone}");
        }
        // Dedup: numbers rotate weekly; a 3-day run sees one per campaign.
        assert!(out.scam_phones.len() <= sources.len());
    }

    #[test]
    fn lottery_milking_collects_survey_gateways() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::LotteryGift));
        if sources.is_empty() {
            return;
        }
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        assert!(!out.survey_gateways.is_empty(), "gateways must be harvested");
        for (gw, _, _) in &out.survey_gateways {
            assert!(gw.path.starts_with("/survey"));
        }
    }

    #[test]
    fn notification_grants_recorded() {
        let w = world();
        let sources = sources_for(&w, Some(SeCategory::ChromeNotifications));
        if sources.is_empty() {
            return;
        }
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let out = Milker::new(&w, short_config()).run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        assert!(!out.notification_grants.is_empty());
    }

    #[test]
    fn outcome_stats_empty_safe() {
        let out = MilkingOutcome::default();
        assert_eq!(out.gsb_init_rate(), 0.0);
        assert_eq!(out.gsb_final_rate(), 0.0);
        assert!(out.mean_gsb_lag_days().is_none());
    }

    #[test]
    fn milker_output_is_thread_count_invariant() {
        // The parallel simulate/merge path must reproduce the sequential
        // scheduler byte for byte at any worker count (mirrors
        // `farm_output_is_thread_count_invariant`).
        let w = world();
        let sources = sources_for(&w, None);
        assert!(sources.len() > 4, "need a multi-source run");
        let milker = Milker::new(&w, short_config());
        let sequential = {
            let mut gsb = GsbService::new(&w);
            let mut vt = VirusTotal::new(1);
            milker.run(&sources, &mut gsb, &mut vt, SimTime::EPOCH)
        };
        for workers in [1usize, 2, 8] {
            let mut gsb = GsbService::new(&w);
            let mut vt = VirusTotal::new(1);
            let parallel = milker.run_parallel(&sources, &mut gsb, &mut vt, SimTime::EPOCH, workers);
            assert_eq!(
                parallel, sequential,
                "milking outcome must not depend on worker count ({workers} workers)"
            );
        }
    }

    #[test]
    fn parallel_path_handles_transient_load_errors() {
        // Blank transient loads make the milker land on the TDS hop
        // itself; the quiet and instrumented navigation paths must agree
        // on those sessions too.
        let w = World::generate(WorldConfig {
            seed: 62,
            n_publishers: 60,
            n_hidden_only_publishers: 0,
            n_advertisers: 10,
            campaign_scale: 0.25,
            error_rate: 0.03,
            ..Default::default()
        });
        let sources = sources_for(&w, None);
        let milker = Milker::new(&w, short_config());
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let sequential = milker.run(&sources, &mut gsb, &mut vt, SimTime::EPOCH);
        let mut gsb = GsbService::new(&w);
        let mut vt = VirusTotal::new(1);
        let parallel = milker.run_parallel(&sources, &mut gsb, &mut vt, SimTime::EPOCH, 3);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn closed_form_poll_equals_poll_loop() {
        // The merge sweep's closed-form GSB polling (grid query + late
        // final lookup) must equal the sequential scheduler's lookup loop
        // for every cadence, window and domain.
        let w = world();
        let campaigns = w.campaigns();
        seacma_util::forall!(200, |rng| {
            let config = MilkingConfig {
                lookup_interval: SimDuration::from_minutes(rng.range_u64(1, 12 * 60)),
                lookup_tail: SimDuration::from_minutes(rng.below(15 * 24 * 60)),
                final_lookup_after: SimDuration::from_minutes(rng.below(90 * 24 * 60)),
                ..Default::default()
            };
            let milker = Milker::new(&w, config);
            let c = &campaigns[rng.below(campaigns.len() as u64) as usize];
            let domain = c.attack_domain(w.seed(), SimTime(rng.below(20 * 24 * 60)), 0);
            let first_seen = SimTime(rng.below(20 * 24 * 60));
            let milking_end = first_seen + SimDuration::from_minutes(rng.below(14 * 24 * 60));
            let mut a = GsbService::new(&w);
            let mut b = GsbService::new(&w);
            assert_eq!(
                crate::merge::poll_gsb_closed_form(&mut b, config, &domain, first_seen, milking_end),
                milker.poll_gsb(&mut a, &domain, first_seen, milking_end),
                "domain {domain} first_seen {first_seen} interval {}",
                config.lookup_interval
            );
        });
    }
}
impl_json_struct!(MilkingConfig {
    period,
    duration,
    lookup_interval,
    lookup_tail,
    final_lookup_after,
    vt_rescan_after,
});
impl_json_struct!(DomainDiscovery {
    domain,
    landing_url,
    source_idx,
    cluster,
    first_seen,
    gsb_listed_at_discovery,
    gsb_listed_at,
});
impl_json_struct!(MilkingOutcome {
    sessions,
    discoveries,
    files,
    timelines,
    scam_phones,
    survey_gateways,
    notification_grants,
});
