//! Milking-source validation (the "small pilot experiment" of §4.2).
//!
//! A milkable candidate extracted from a backtracking graph is only useful
//! if re-visiting it independently — without the publisher page or the ad
//! network — still lands on the same campaign's attack content. Validation
//! re-visits each `(URL, UA)` candidate and compares the landing
//! screenshot's dhash against the campaign's visual representative.

use seacma_util::impl_json_struct;

use seacma_browser::{BrowserConfig, BrowserSession};
use seacma_simweb::{SimTime, UaProfile, Url, Vantage, World};
use seacma_vision::dhash::{hamming, Dhash};

/// Maximum dhash distance for a milked landing to count as "the same SE
/// attack" (the DBSCAN eps ball: 0.1 × 128 bits).
pub const MATCH_THRESHOLD: u32 = 12;

/// A candidate upstream URL, paired with the UA that originally elicited
/// it and the visual representative of its campaign cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MilkingCandidate {
    /// The upstream URL to re-visit.
    pub url: Url,
    /// UA to milk with (campaigns are platform-targeted).
    pub ua: UaProfile,
    /// Index of the campaign cluster this candidate came from.
    pub cluster: usize,
    /// dhash of the cluster's representative screenshot.
    pub reference: Dhash,
}

/// A validated milking source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MilkingSource {
    /// The upstream URL.
    pub url: Url,
    /// UA to milk with.
    pub ua: UaProfile,
    /// Campaign cluster the source tracks.
    pub cluster: usize,
    /// Visual reference for match checks during milking.
    pub reference: Dhash,
}

/// Validates candidates by re-visiting each one and checking that the
/// landing still shows the campaign's attack. Returns the surviving
/// sources, deduplicated by `(url, ua)`.
pub fn validate_candidates(
    world: &World,
    candidates: Vec<MilkingCandidate>,
    t: SimTime,
) -> Vec<MilkingSource> {
    let mut out: Vec<MilkingSource> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for c in candidates {
        if !seen.insert((c.url.clone(), c.ua)) {
            continue;
        }
        // Milking runs from residential space so cloaking networks can't
        // starve it (§3.2) — though validated sources are usually TDS
        // URLs that don't cloak. The match check compares dhash bits,
        // never pixels, so the session runs in hash mode (fused
        // noise+downsample pass, no pixel buffer).
        let cfg = BrowserConfig::instrumented(c.ua, Vantage::Residential).hash_screenshots();
        let mut session = BrowserSession::new(world, cfg, t);
        let Ok(loaded) = session.navigate(&c.url) else {
            continue;
        };
        let d = loaded.screenshot.dhash();
        if hamming(d, c.reference) <= MATCH_THRESHOLD {
            out.push(MilkingSource {
                url: c.url,
                ua: c.ua,
                cluster: c.cluster,
                reference: c.reference,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{SeCategory, WorldConfig};
    use seacma_vision::dhash::dhash128;

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 51,
            n_publishers: 100,
            n_hidden_only_publishers: 0,
            n_advertisers: 15,
            campaign_scale: 0.4,
            error_rate: 0.0,
            ..Default::default()
        })
    }

    fn reference_for(_world: &World, c: &seacma_simweb::SeCampaign) -> Dhash {
        dhash128(&c.template().render(1))
    }

    #[test]
    fn tds_candidates_validate() {
        let w = world();
        let cands: Vec<MilkingCandidate> = w
            .campaigns()
            .iter()
            .filter(|c| c.tds_domain.is_some() && c.category != SeCategory::LotteryGift)
            .map(|c| MilkingCandidate {
                url: c.tds_url(0).unwrap(),
                ua: UaProfile::ChromeMac,
                cluster: c.id.0 as usize,
                reference: reference_for(&w, c),
            })
            .collect();
        assert!(!cands.is_empty());
        let n = cands.len();
        let sources = validate_candidates(&w, cands, SimTime::EPOCH);
        assert_eq!(sources.len(), n, "all genuine TDS urls must validate");
    }

    #[test]
    fn mismatched_reference_rejected() {
        let w = world();
        let c = w
            .campaigns()
            .iter()
            .find(|c| c.tds_domain.is_some() && c.category == SeCategory::FakeSoftware)
            .unwrap();
        let cands = vec![MilkingCandidate {
            url: c.tds_url(0).unwrap(),
            ua: UaProfile::ChromeMac,
            cluster: 0,
            reference: Dhash(!0), // nothing looks like this
        }];
        assert!(validate_candidates(&w, cands, SimTime::EPOCH).is_empty());
    }

    #[test]
    fn ad_click_urls_do_not_validate_reliably() {
        // Direct ad-network click URLs rotate inventory over time, so the
        // screenshot comparison rejects (most of) them — the reason the
        // paper milks upstream TDS URLs instead.
        let w = world();
        let net = &w.networks()[0];
        let c = w
            .campaigns()
            .iter()
            .find(|c| c.category == SeCategory::FakeSoftware)
            .unwrap();
        let cands: Vec<MilkingCandidate> = (0..30)
            .map(|k| MilkingCandidate {
                url: net.click_url(w.seed(), 0xABC + k, 0, k as u32),
                ua: UaProfile::ChromeMac,
                cluster: 0,
                reference: reference_for(&w, c),
            })
            .collect();
        let kept = validate_candidates(&w, cands, SimTime::EPOCH).len();
        assert!(kept < 10, "{kept}/30 click URLs validated — too permissive");
    }

    #[test]
    fn duplicates_collapse() {
        let w = world();
        let c = w.campaigns().iter().find(|c| c.tds_domain.is_some()).unwrap();
        let cand = MilkingCandidate {
            url: c.tds_url(0).unwrap(),
            ua: UaProfile::ChromeMac,
            cluster: 0,
            reference: reference_for(&w, c),
        };
        let sources =
            validate_candidates(&w, vec![cand.clone(), cand.clone(), cand], SimTime::EPOCH);
        assert!(sources.len() <= 1);
    }

    #[test]
    fn nonexistent_urls_skipped() {
        let w = world();
        let cands = vec![MilkingCandidate {
            url: Url::http("gone.example", "/x"),
            ua: UaProfile::ChromeMac,
            cluster: 0,
            reference: Dhash(0),
        }];
        assert!(validate_candidates(&w, cands, SimTime::EPOCH).is_empty());
    }
}
impl_json_struct!(MilkingCandidate { url, ua, cluster, reference });
impl_json_struct!(MilkingSource { url, ua, cluster, reference });
