//! Feed milking discoveries back into the campaign tracker.
//!
//! The tracker clusters `(dhash, e2LD)` screenshot points, but a
//! [`DomainDiscovery`] records only the landing
//! URL and time — the
//! scheduler compares dhash bits and throws the hash away. Every render in
//! the simulator is a pure function of `(seed, url, client, time)`, so the
//! screenshot the milker matched can be re-derived bit for bit: load the
//! source URL at the discovery tick with the source's UA and take the
//! fused render-free dhash ([`QuietBrowser::screenshot_dhash`]). That
//! keeps the tracker's visual space identical to the one the discovery
//! clusters live in — crawl landings and milked landings cluster together
//! exactly when their screenshots match.

use std::collections::HashMap;

use seacma_browser::{BrowserConfig, QuietBrowser, RenderCache};
use seacma_simweb::{SimTime, Vantage, World};
use seacma_util::sym::{SharedArena, Sym};
use seacma_vision::cluster::ScreenshotPoint;
use seacma_vision::dhash::Dhash;

use crate::scheduler::{DomainDiscovery, MilkingOutcome};
use crate::sources::MilkingSource;

/// The shared re-derivation loop behind [`discovery_points`] and
/// [`discovery_sym_points`]: walks the outcome's discoveries, re-renders
/// each landing's dhash, and hands `(discovery, dhash)` to `make`.
fn rederive<T>(
    world: &World,
    sources: &[MilkingSource],
    outcome: &MilkingOutcome,
    mut make: impl FnMut(&DomainDiscovery, Dhash) -> T,
) -> Vec<(SimTime, T)> {
    // Discoveries arrive in merge-sweep order (time-major across sources),
    // so replaying them as-is hops between sources and re-warms each
    // browser's probe state interleaved. Instead: group by source, replay
    // each source's timeline once in tick order (the per-source
    // subsequence of a time-sorted feed is itself time-sorted), then emit
    // in the original discovery order. Every load is a pure function of
    // (seed, url, client, time), so regrouping cannot change any dhash.
    let mut by_source: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, d) in outcome.discoveries.iter().enumerate() {
        by_source.entry(d.source_idx).or_default().push(i);
    }
    let mut order: Vec<&Vec<usize>> = by_source.values().collect();
    order.sort_unstable_by_key(|idxs| idxs[0]);

    // One quiet browser per source: configs differ by UA, and reusing a
    // browser keeps the probe caches warm across that source's
    // discoveries. Clean renders are shared across all sources through one
    // cache — sources tracking the same campaign hash against the same
    // clean render.
    let cache = RenderCache::new();
    let mut dhashes: Vec<Option<Dhash>> = vec![None; outcome.discoveries.len()];
    for idxs in order {
        let src = &sources[outcome.discoveries[idxs[0]].source_idx];
        let browser = QuietBrowser::with_cache(
            world,
            BrowserConfig::instrumented(src.ua, Vantage::Residential).without_screenshots(),
            &cache,
        );
        for &i in idxs {
            let d = &outcome.discoveries[i];
            // The load cannot fail at a tick where the scheduler already
            // discovered a landing (same pure function); the `else` arm is
            // only defensive symmetry with the scheduler's own error arm.
            let Ok((landing_url, page)) = browser.load(&src.url, d.first_seen) else {
                continue;
            };
            debug_assert_eq!(landing_url, d.landing_url, "re-derived landing diverged");
            dhashes[i] = Some(browser.screenshot_dhash(&landing_url, &page, d.first_seen));
        }
    }

    // `make` runs in the outcome's discovery order — the sym variant
    // interns domains here, and symbol assignment must not depend on the
    // replay grouping above.
    outcome
        .discoveries
        .iter()
        .zip(dhashes)
        .filter_map(|(d, dhash)| Some((d.first_seen, make(d, dhash?))))
        .collect()
}

/// Re-derives one `(first_seen, ScreenshotPoint)` per discovery, in the
/// outcome's discovery order (merge-sweep order, so `first_seen` is
/// nondecreasing — ready to be bucketed into tracker epochs).
///
/// The dhash equals the one the milker compared against the source's
/// reference at the discovery tick; the e2LD is the discovered domain.
pub fn discovery_points(
    world: &World,
    sources: &[MilkingSource],
    outcome: &MilkingOutcome,
) -> Vec<(SimTime, ScreenshotPoint)> {
    rederive(world, sources, outcome, |d, dhash| ScreenshotPoint::new(dhash, d.domain.clone()))
}

/// The zero-string variant of [`discovery_points`]: each discovered
/// domain is interned into `arena` (the world-level arena the tracker
/// shares) and the feed carries `(dhash, symbol)` pairs ready for
/// `ingest_sym`. Interning happens here, at a sequential point in
/// discovery order, so symbol assignment stays deterministic.
pub fn discovery_sym_points(
    world: &World,
    sources: &[MilkingSource],
    outcome: &MilkingOutcome,
    arena: &SharedArena,
) -> Vec<(SimTime, (Dhash, Sym))> {
    rederive(world, sources, outcome, |d, dhash| (dhash, arena.intern(&d.domain)))
}

/// Buckets a [`discovery_points`] feed into one batch per virtual day —
/// the epoch-step hook the tracking phase and the resident daemon's
/// scheduler drive. Batch `d` holds every discovery with
/// `start + d·DAY <= first_seen < start + (d+1)·DAY`; quiet days yield
/// empty batches (they must still close an epoch, or dormancy and death
/// would never fire), and `days` is clamped to at least one.
///
/// The feed is nondecreasing in `first_seen` (merge-sweep order), so each
/// batch preserves the feed's ingestion order and concatenating all
/// batches reproduces the feed exactly.
///
/// Generic over the point payload: [`discovery_points`] feeds bucket into
/// `ScreenshotPoint` batches, [`discovery_sym_points`] feeds into
/// `(Dhash, Sym)` column batches.
pub fn epoch_batches<T: Clone>(
    feed: &[(SimTime, T)],
    start: SimTime,
    days: u64,
) -> Vec<Vec<T>> {
    let days = days.max(1);
    let mut out = Vec::with_capacity(days as usize);
    let mut next = 0usize;
    for day in 0..days {
        let end = start + seacma_simweb::SimDuration::from_minutes(
            seacma_simweb::DAY.minutes() * (day + 1),
        );
        let mut batch = Vec::new();
        while next < feed.len() && feed[next].0 < end {
            batch.push(feed[next].1.clone());
            next += 1;
        }
        out.push(batch);
    }
    debug_assert_eq!(next, feed.len(), "every discovery falls inside the window");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Milker, MilkingConfig};
    use crate::sources::MATCH_THRESHOLD;
    use seacma_vision::dhash::hamming;

    #[test]
    fn rederived_points_match_references_and_domains() {
        use seacma_blacklist::{GsbService, VirusTotal};
        use seacma_simweb::{SeCategory, SimDuration, UaProfile, WorldConfig};
        use seacma_vision::dhash::dhash128;

        let world = World::generate(WorldConfig {
            seed: 51,
            n_publishers: 100,
            n_hidden_only_publishers: 0,
            n_advertisers: 15,
            campaign_scale: 0.4,
            error_rate: 0.0,
            ..Default::default()
        });
        let t0 = SimTime::EPOCH;
        // Sources exactly as the pipeline builds them after clustering.
        let sources: Vec<MilkingSource> = world
            .campaigns()
            .iter()
            .filter(|c| c.tds_domain.is_some())
            .map(|c| MilkingSource {
                url: c.tds_url(0).unwrap(),
                ua: if c.category == SeCategory::LotteryGift {
                    UaProfile::ChromeAndroid
                } else {
                    UaProfile::ChromeMac
                },
                cluster: c.id.0 as usize,
                reference: dhash128(&c.template().render(1)),
            })
            .collect();
        assert!(!sources.is_empty(), "seed world must yield sources");
        let config =
            MilkingConfig { duration: SimDuration::from_days(2), ..Default::default() };
        let mut gsb = GsbService::new(&world);
        let mut vt = VirusTotal::new(1);
        let outcome = Milker::new(&world, config).run(&sources, &mut gsb, &mut vt, t0);
        assert!(!outcome.discoveries.is_empty(), "seed world must yield discoveries");

        let points = discovery_points(&world, &sources, &outcome);
        assert_eq!(points.len(), outcome.discoveries.len());
        // The sym feed is the same feed, column-form: same times, same
        // dhashes, and every symbol resolves to the string point's e2LD.
        let arena = SharedArena::new();
        let sym_points = discovery_sym_points(&world, &sources, &outcome, &arena);
        assert_eq!(sym_points.len(), points.len());
        for ((t, p), (ts, (dhash, sym))) in points.iter().zip(&sym_points) {
            assert_eq!(t, ts);
            assert_eq!(p.dhash, *dhash);
            assert_eq!(p.e2ld, arena.resolve_owned(*sym));
        }
        for ((t, p), d) in points.iter().zip(&outcome.discoveries) {
            assert_eq!(*t, d.first_seen);
            assert_eq!(p.e2ld, d.domain);
            // The scheduler only records a discovery when the rendered
            // screenshot matched the reference — the re-derived hash must
            // reproduce that match.
            let reference = sources[d.source_idx].reference;
            assert!(hamming(p.dhash, reference) <= MATCH_THRESHOLD);
        }
        // Merge-sweep order ⇒ nondecreasing first_seen.
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0));

        // The epoch-step hook: day buckets partition the feed in order,
        // quiet days close as empty batches.
        let days = 2u64;
        let batches = epoch_batches(&points, t0, days);
        assert_eq!(batches.len(), days as usize);
        let rejoined: Vec<ScreenshotPoint> = batches.iter().flatten().cloned().collect();
        let flat: Vec<ScreenshotPoint> = points.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(rejoined, flat, "bucketing must preserve the feed order");
        for (d, batch) in batches.iter().enumerate() {
            let end = t0 + SimDuration::from_minutes(seacma_simweb::DAY.minutes() * (d as u64 + 1));
            let mut idx = 0;
            for (t, p) in points.iter().filter(|(t, _)| {
                *t < end
                    && (d == 0
                        || *t >= t0
                            + SimDuration::from_minutes(seacma_simweb::DAY.minutes() * d as u64))
            }) {
                assert_eq!(&batch[idx], p, "misplaced discovery at {t:?}");
                idx += 1;
            }
            assert_eq!(idx, batch.len(), "day {d} holds exactly its window");
        }
    }
}
