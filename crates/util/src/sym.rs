//! World-level symbol interning: append-only arenas mapping repeated
//! values (domains, e2LDs, URLs) to dense `u32` symbols.
//!
//! PR 5 interned URLs per browser log; this module promotes the idea to a
//! world-level arena shared by the crawler, graph, milker, tracker and
//! daemon. The contracts that make interning safe under this workspace's
//! byte-identity discipline:
//!
//! * **Append-only.** A symbol, once handed out, never changes meaning.
//! * **Deterministic first-seen order.** Symbols are assigned in the order
//!   values are first interned, so two runs that intern the same value
//!   sequence assign identical symbols — the foundation for the farm's
//!   worker-count-invariant canonicalization.
//! * **Byte-identical JSON snapshot.** An arena serializes as the plain
//!   string array in first-seen order; parsing it back reproduces the
//!   arena exactly (same symbols, same order).
//!
//! [`Interner`] is the generic engine (also used by the backtrack graph
//! for `Url`-like keys); [`SymbolArena`] is the string specialization
//! with a typed [`Sym`] API; [`SharedArena`] wraps one in
//! `Arc<RwLock<..>>` so the pipeline, tracker and daemon snapshot can
//! share a single arena across threads.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, RwLock, RwLockReadGuard};

use crate::json::{FromJson, JsonError, ToJson, Value};

/// A dense arena symbol: an index into the arena that assigned it.
///
/// `Sym` is deliberately a plain newtype over `u32` — it serializes as
/// the bare number, packs into struct-of-arrays columns, and costs a
/// shift-free array index to resolve.
///
/// ```
/// use seacma_util::sym::{Sym, SymbolArena};
///
/// let mut arena = SymbolArena::new();
/// let evil = arena.intern("evil.club");
/// assert_eq!(evil, Sym(0));
/// assert_eq!(arena.intern("evil.club"), evil); // idempotent
/// assert_eq!(arena.resolve(evil), "evil.club");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

crate::impl_json_newtype!(Sym);

/// The generic append-only interner: dense `u32` ids in first-seen order.
///
/// Stores each distinct value exactly **once**, in the resolve column.
/// Lookup goes through a hash-indexed chain: `heads` maps a value's hash
/// to the most recently interned id with that hash, and `next[id]` links
/// ids sharing a hash (collision chain, walked with real equality
/// checks). A miss therefore costs a single `to_owned`, not the two full
/// clones a `HashMap<T, u32>` index would — which is exactly what the
/// crawl hot path pays per distinct URL per event log. The hasher is the
/// std `DefaultHasher` with its fixed default keys, so nothing about the
/// structure (let alone the observable first-seen order) depends on
/// process randomness.
///
/// ```
/// use seacma_util::sym::Interner;
///
/// let mut i: Interner<String> = Interner::new();
/// assert_eq!(i.intern("a.com"), 0);
/// assert_eq!(i.intern("b.com"), 1);
/// assert_eq!(i.intern("a.com"), 0);
/// assert_eq!(i.resolve(1), "b.com");
/// assert_eq!(i.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T> {
    items: Vec<T>,
    /// value hash → id of the last item interned with that hash.
    heads: HashMap<u64, u32>,
    /// `next[id]` → previous id sharing `id`'s hash, or `NO_ID`.
    next: Vec<u32>,
}

/// Chain terminator for [`Interner::next`] (also the id-space ceiling: an
/// interner holds fewer than `u32::MAX` values).
const NO_ID: u32 = u32::MAX;

fn hash_of<Q: Hash + ?Sized>(q: &Q) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    q.hash(&mut h);
    h.finish()
}

// Manual impl: an empty interner needs no `T: Default`.
impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner { items: Vec::new(), heads: HashMap::new(), next: Vec::new() }
    }
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its stable dense id. The first call for
    /// a value assigns the next id; later calls return the same id.
    pub fn intern<Q>(&mut self, item: &Q) -> u32
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = T> + ?Sized,
    {
        let h = hash_of(item);
        if let Some(id) = self.find(h, item) {
            return id;
        }
        let id = self.items.len() as u32;
        debug_assert!(id < NO_ID, "interner id space exhausted");
        self.items.push(item.to_owned());
        self.next.push(self.heads.insert(h, id).unwrap_or(NO_ID));
        id
    }

    /// Walks the collision chain for hash `h` looking for `item`. The
    /// `Borrow` contract guarantees `T` and `Q` hash and compare alike,
    /// so probing with the borrowed form finds the owned one.
    fn find<Q>(&self, h: u64, item: &Q) -> Option<u32>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let mut cur = self.heads.get(&h).copied().unwrap_or(NO_ID);
        while cur != NO_ID {
            if self.items[cur as usize].borrow() == item {
                return Some(cur);
            }
            cur = self.next[cur as usize];
        }
        None
    }

    /// The id a value already holds, without interning it.
    pub fn get<Q>(&self, item: &Q) -> Option<u32>
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.find(hash_of(item), item)
    }

    /// The value behind an id. Panics on an id this interner never
    /// assigned (symbols don't travel between arenas).
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Distinct values interned so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All interned values, in first-seen (id) order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Forgets every interned value while keeping the backing capacity.
    ///
    /// This is the scratch-reuse escape hatch for interners whose
    /// lifetime is one unit of work (a browser session's event log): the
    /// append-only contract holds *within* a generation, and `clear`
    /// starts a new one. Ids assigned after a clear restart from 0 and
    /// are a pure function of the post-clear intern sequence, so a
    /// cleared interner is observationally identical to a fresh one.
    pub fn clear(&mut self) {
        self.items.clear();
        self.heads.clear();
        self.next.clear();
    }
}

/// The world-level string arena: [`Interner<String>`] with a typed
/// [`Sym`] API and a byte-identical JSON snapshot (a string array in
/// first-seen order).
///
/// ```
/// use seacma_util::json;
/// use seacma_util::sym::SymbolArena;
///
/// let mut arena = SymbolArena::new();
/// arena.intern("pub0.com");
/// arena.intern("evil.club");
/// arena.intern("pub0.com");
/// assert_eq!(json::to_string(&arena), r#"["pub0.com","evil.club"]"#);
/// let back: SymbolArena = json::from_str(&json::to_string(&arena)).unwrap();
/// assert_eq!(json::to_string(&back), json::to_string(&arena));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolArena {
    inner: Interner<String>,
}

impl SymbolArena {
    /// An empty arena.
    pub fn new() -> Self {
        SymbolArena { inner: Interner::new() }
    }

    /// Interns a string, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        Sym(self.inner.intern(s))
    }

    /// The symbol a string already holds, without interning it. Query
    /// paths use this so unknown inputs never grow the arena.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.inner.get(s).map(Sym)
    }

    /// The string behind a symbol. Panics on a symbol from another arena.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.inner.resolve(sym.0)
    }

    /// Distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// All interned strings, in first-seen (symbol) order.
    pub fn strings(&self) -> &[String] {
        self.inner.items()
    }
}

impl ToJson for SymbolArena {
    fn to_json(&self) -> Value {
        Value::Arr(self.inner.items().iter().map(|s| Value::Str(s.clone())).collect())
    }
}

impl FromJson for SymbolArena {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let strings: Vec<String> = FromJson::from_json(v)?;
        let mut arena = SymbolArena::new();
        for (i, s) in strings.iter().enumerate() {
            let sym = arena.intern(s);
            if sym.index() != i {
                return Err(JsonError::msg(format!(
                    "symbol arena snapshot repeats {s:?} (entry {i})"
                )));
            }
        }
        Ok(arena)
    }
}

/// A [`SymbolArena`] shared across threads and components.
///
/// Cloning a `SharedArena` clones the *handle*; all clones intern into
/// and resolve against the same arena. Interning takes the write lock
/// only on first sight of a string (double-checked), so steady-state
/// lookups on a warmed arena are read-lock only.
///
/// Determinism note: concurrent interning from racing threads would make
/// symbol assignment scheduling-dependent, so every caller in this
/// workspace interns at a sequential point (the farm's canonicalization
/// pass, the milker's merge, the tracker's single-writer insert) — the
/// lock is for *sharing*, not for parallel assignment.
///
/// ```
/// use seacma_util::sym::SharedArena;
///
/// let arena = SharedArena::new();
/// let a = arena.clone();
/// let s = a.intern("evil.club");
/// assert_eq!(arena.lookup("evil.club"), Some(s));
/// assert_eq!(arena.read().resolve(s), "evil.club");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedArena(Arc<RwLock<SymbolArena>>);

impl SharedArena {
    /// A handle onto a fresh empty arena.
    pub fn new() -> Self {
        SharedArena(Arc::new(RwLock::new(SymbolArena::new())))
    }

    /// Wraps an existing arena (e.g. one parsed from a snapshot).
    pub fn from_arena(arena: SymbolArena) -> Self {
        SharedArena(Arc::new(RwLock::new(arena)))
    }

    /// Interns a string, returning its stable symbol. Fast path is a read
    /// lock; the write lock is taken only when the string is new.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(sym) = self.0.read().unwrap().lookup(s) {
            return sym;
        }
        self.0.write().unwrap().intern(s)
    }

    /// The symbol a string already holds, never growing the arena.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.0.read().unwrap().lookup(s)
    }

    /// The string behind a symbol, as an owned copy.
    pub fn resolve_owned(&self, sym: Sym) -> String {
        self.0.read().unwrap().resolve(sym).to_string()
    }

    /// A read guard for batch resolution without per-call locking.
    pub fn read(&self) -> RwLockReadGuard<'_, SymbolArena> {
        self.0.read().unwrap()
    }

    /// Distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.0.read().unwrap().len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.0.read().unwrap().is_empty()
    }

    /// Whether two handles share one underlying arena. Symbols only
    /// travel between components whose handles are `ptr_eq`.
    pub fn ptr_eq(&self, other: &SharedArena) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forall;
    use crate::json;

    #[test]
    fn symbols_are_first_seen_dense_and_idempotent() {
        let mut arena = SymbolArena::new();
        let a = arena.intern("a.com");
        let b = arena.intern("b.com");
        let a2 = arena.intern("a.com");
        assert_eq!((a, b, a2), (Sym(0), Sym(1), Sym(0)));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.resolve(b), "b.com");
        assert_eq!(arena.lookup("c.com"), None);
    }

    #[test]
    fn json_snapshot_is_first_seen_order_and_roundtrips() {
        forall!(|g| {
            let n = g.range(0, 40);
            let mut arena = SymbolArena::new();
            let mut seq = Vec::new();
            for _ in 0..n {
                // A small alphabet forces repeats; hostile characters
                // exercise the string escaper.
                let s = format!("d{}\"\\\n π☂.example", g.range(0, 8));
                seq.push((arena.intern(&s), s));
            }
            let text = json::to_string(&arena);
            let back: SymbolArena = json::from_str(&text).unwrap();
            assert_eq!(json::to_string(&back), text, "snapshot roundtrip");
            for (sym, s) in &seq {
                assert_eq!(back.resolve(*sym), s, "resolution survives roundtrip");
            }
        });
    }

    #[test]
    fn snapshot_with_duplicates_is_rejected() {
        let err = json::from_str::<SymbolArena>(r#"["a","b","a"]"#);
        assert!(err.is_err());
    }

    #[test]
    fn shared_handle_clones_see_one_arena() {
        let arena = SharedArena::new();
        let clone = arena.clone();
        let s1 = clone.intern("x.com");
        let s2 = arena.intern("x.com");
        assert_eq!(s1, s2);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.resolve_owned(s1), "x.com");
        // lookup never grows the arena
        assert_eq!(arena.lookup("unknown.example"), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn generic_interner_works_with_non_string_keys() {
        let mut i: Interner<Vec<u8>> = Interner::new();
        let a = i.intern(&b"ab"[..]);
        let b = i.intern(&b"cd"[..]);
        assert_eq!(i.intern(&b"ab"[..]), a);
        assert_eq!(i.resolve(b), b"cd");
        assert_eq!(i.items().len(), 2);
    }

    #[test]
    fn same_intern_sequence_assigns_same_symbols() {
        forall!(|g| {
            let n = g.range(1, 60);
            let seq: Vec<String> =
                (0..n).map(|_| format!("s{}.com", g.range(0, 10))).collect();
            let mut a = SymbolArena::new();
            let mut b = SymbolArena::new();
            let syms_a: Vec<Sym> = seq.iter().map(|s| a.intern(s)).collect();
            let syms_b: Vec<Sym> = seq.iter().map(|s| b.intern(s)).collect();
            assert_eq!(syms_a, syms_b);
            assert_eq!(json::to_string(&a), json::to_string(&b));
        });
    }
}
