//! A wall-clock microbenchmark harness.
//!
//! Replaces `criterion` for this workspace: warm up, run batched samples,
//! report min/mean/median/p95 nanoseconds per iteration, and optionally
//! dump every result as JSON (`--json PATH`). The API intentionally
//! mirrors the criterion surface the benches already used
//! ([`Bench::benchmark_group`], [`Group::bench_function`],
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`]) so a bench file
//! ports by swapping imports and the `bench_main!` footer.
//!
//! Run modes:
//!
//! * `cargo bench` — full measurement (default ~50 samples per bench).
//! * `cargo test --benches` / any run with `--test` in the args — each
//!   bench body executes exactly once as a smoke test, so benches stay
//!   compiling *and* running under the tier-1 test command.
//! * `--quick` — same single-iteration smoke mode, explicitly.

use std::time::{Duration, Instant};

use crate::json::{ToJson, Value};

/// Wall-time budget per benchmark in full mode.
const TARGET_TOTAL: Duration = Duration::from_millis(600);
/// Warmup budget per benchmark in full mode.
const WARMUP: Duration = Duration::from_millis(80);

/// Throughput annotation, echoed into results (criterion-compatible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A `group/param` benchmark identifier (criterion-compatible).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), param) }
    }
}

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/function` name.
    pub name: String,
    /// Total iterations measured.
    pub iters: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Elements or bytes per iteration, when annotated.
    pub throughput: Option<u64>,
    /// Heap allocations per iteration, when the binary was built with the
    /// `count-alloc` feature *and* installed
    /// `seacma_util::alloc::CountingAlloc` as its global allocator.
    pub allocs: Option<u64>,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("iters".into(), self.iters.to_json()),
            ("min_ns".into(), self.min_ns.to_json()),
            ("mean_ns".into(), self.mean_ns.to_json()),
            ("median_ns".into(), self.median_ns.to_json()),
            ("p95_ns".into(), self.p95_ns.to_json()),
            ("throughput".into(), self.throughput.to_json()),
            ("allocs".into(), self.allocs.to_json()),
        ])
    }
}

/// The harness: collects results across groups, prints a line per bench,
/// and writes the JSON report on [`Bench::finish`].
#[derive(Debug)]
pub struct Bench {
    quick: bool,
    json_path: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A harness configured from `std::env::args()`.
    ///
    /// Recognized flags: `--quick` (single-iteration smoke mode), `--json
    /// PATH` (write results as a JSON array). Harness flags passed by
    /// `cargo test`/`cargo bench` (`--test`, `--bench`, filters…) are
    /// accepted and ignored, except `--test` which implies `--quick`.
    pub fn from_args() -> Self {
        let mut quick = false;
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" | "--test" => quick = true,
                "--json" => json_path = args.next(),
                _ => {}
            }
        }
        Bench { quick, json_path, results: Vec::new() }
    }

    /// A fresh full-measurement harness (for tests of the harness itself).
    pub fn new() -> Self {
        Bench { quick: false, json_path: None, results: Vec::new() }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    /// Measured results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the summary and writes the JSON report, if requested.
    pub fn finish(self) {
        if let Some(path) = &self.json_path {
            let report = Value::Arr(self.results.iter().map(ToJson::to_json).collect());
            if let Err(e) = std::fs::write(path, crate::json::to_string_pretty(&report)) {
                eprintln!("bench: cannot write {path}: {e}");
            }
        }
        if self.quick {
            println!("bench: smoke mode — every bench body ran once");
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl Group<'_> {
    /// Sets how many timed samples to take (criterion-compatible).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Annotates per-iteration throughput (criterion-compatible).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Runs one benchmark; the closure drives a [`Bencher`].
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            quick: self.bench.quick,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters: 0,
            allocs: None,
        };
        f(&mut b);
        let result = b.into_result(name, self.throughput);
        let allocs = match result.allocs {
            Some(n) => format!("  {n} allocs/iter"),
            None => String::new(),
        };
        println!(
            "{:<40} median {:>12.1} ns/iter  p95 {:>12.1} ns/iter  ({} iters){allocs}",
            result.name, result.median_ns, result.p95_ns, result.iters
        );
        self.bench.results.push(result);
    }

    /// Runs one parameterized benchmark (criterion-compatible).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id.name.clone(), |b| f(b, input));
    }

    /// Ends the group (kept for criterion compatibility; groups flush
    /// eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters: u64,
    allocs: Option<u64>,
}

impl Bencher {
    /// Measures `f`. In smoke mode `f` runs once; otherwise it is warmed
    /// up, then timed in batches sized so one batch lasts roughly
    /// `TARGET_TOTAL / sample_size`.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.quick {
            self.count_allocs(&mut f);
            if self.allocs.is_none() {
                std::hint::black_box(f());
            }
            self.iters = 1;
            self.samples_ns = vec![0.0];
            return;
        }

        // Warmup + calibration: count how many iterations fit in WARMUP.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.sample_size;
        let batch = ((TARGET_TOTAL.as_secs_f64() / samples as f64 / est_per_iter) as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
        self.iters = batch * samples as u64;
        self.count_allocs(&mut f);
    }

    /// Counts one invocation's heap allocations when the `count-alloc`
    /// feature is compiled in; a no-op (leaving [`BenchResult::allocs`]
    /// `None`) otherwise.
    fn count_allocs<T>(&mut self, f: &mut impl FnMut() -> T) {
        #[cfg(feature = "count-alloc")]
        {
            let before = crate::alloc::alloc_count();
            std::hint::black_box(f());
            self.allocs = Some(crate::alloc::alloc_count() - before);
        }
        #[cfg(not(feature = "count-alloc"))]
        let _ = f;
    }

    fn into_result(mut self, name: String, throughput: Option<u64>) -> BenchResult {
        assert!(!self.samples_ns.is_empty(), "bench body never called Bencher::iter");
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let n = self.samples_ns.len();
        let pct = |p: f64| self.samples_ns[((n - 1) as f64 * p) as usize];
        BenchResult {
            name,
            iters: self.iters,
            min_ns: self.samples_ns[0],
            mean_ns: self.samples_ns.iter().sum::<f64>() / n as f64,
            median_ns: pct(0.5),
            p95_ns: pct(0.95),
            throughput,
            allocs: self.allocs,
        }
    }
}

/// Declares the bench binary's `main`: each listed function receives
/// `&mut Bench`, and the harness parses CLI flags and writes the report.
/// Drop-in for the `criterion_group!` + `criterion_main!` pair.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Bench::from_args();
            $( $func(&mut harness); )+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_stats() {
        let mut h = Bench::new();
        {
            let mut g = h.benchmark_group("unit");
            g.sample_size(5);
            g.throughput(Throughput::Elements(1));
            g.bench_function("noop_sum", |b| {
                let mut x = 0u64;
                b.iter(|| {
                    x = x.wrapping_add(1);
                    x
                })
            });
            g.finish();
        }
        let r = &h.results()[0];
        assert_eq!(r.name, "unit/noop_sum");
        assert!(r.iters > 0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert_eq!(r.throughput, Some(1));
    }

    #[test]
    fn benchmark_id_renders_group_slash_param() {
        assert_eq!(BenchmarkId::new("dbscan", 500).name, "dbscan/500");
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            name: "g/f".into(),
            iters: 10,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 2.0,
            p95_ns: 3.0,
            throughput: None,
            allocs: None,
        };
        let v = crate::json::parse(&crate::json::to_string(&r)).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("g/f"));
        assert!(v.get("throughput").unwrap().is_null());
    }
}
