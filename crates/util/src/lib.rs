//! # seacma-util
//!
//! The workspace's std-only infrastructure substrate. By policy this repo
//! builds **hermetically** — `cargo build --release --offline` with no
//! registry access — so everything external dependencies used to provide
//! lives here instead:
//!
//! * [`json`] — a JSON [`json::Value`] tree, compact/pretty serializers, a
//!   parser, and the [`json::ToJson`]/[`json::FromJson`] trait pair plus
//!   the [`impl_json_struct!`]/[`impl_json_enum!`]/[`impl_json_newtype!`]
//!   derive-replacement macros (replaces `serde` + `serde_json`).
//! * [`prop`] — a seeded deterministic generator and the [`forall!`]
//!   property-test macro (replaces `proptest`).
//! * [`bench`](mod@bench) — a wall-clock benchmark harness with a criterion-shaped
//!   API and JSON output, wired up by [`bench_main!`] (replaces
//!   `criterion`).
//! * [`sym`] — world-level symbol interning: [`sym::SymbolArena`] /
//!   [`sym::SharedArena`] hand out dense `u32` symbols in deterministic
//!   first-seen order with a byte-identical JSON snapshot.
//! * `alloc` (feature `count-alloc`) — a counting global allocator so
//!   bench binaries can report and gate per-phase allocation counts.
//!
//! Concurrency needs are covered by `std` directly (`std::sync::mpsc`,
//! `std::sync::Mutex`, `std::thread::scope` — see
//! `seacma-crawler::farm`), so there is no crossbeam/parking_lot shim.

#[cfg(feature = "count-alloc")]
pub mod alloc;
pub mod bench;
pub mod json;
pub mod prop;
pub mod sym;

/// Resolves a `workers` knob into an actual thread count: `0` means "use
/// the machine's available parallelism", anything else is taken verbatim.
///
/// Every parallel stage in the workspace (crawl farm, screenshot
/// clustering, milking simulate phase) shares this convention *and* the
/// guarantee that its output is byte-identical at any worker count — so
/// the fallback (4, used only when the OS refuses to report a parallelism
/// estimate) can never leak into results, only into wall-clock.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        workers
    }
}

/// Implements [`json::ToJson`] + [`json::FromJson`] for a named-field
/// struct, mirroring serde's derive output: an object with one pair per
/// field, in declaration order.
///
/// ```
/// use seacma_util::impl_json_struct;
/// use seacma_util::json::{self, FromJson};
///
/// #[derive(Debug, PartialEq)]
/// struct Campaign { name: String, domains: u32 }
/// impl_json_struct!(Campaign { name, domains });
///
/// let c = Campaign { name: "fake-av".into(), domains: 17 };
/// let text = json::to_string(&c);
/// assert_eq!(text, r#"{"name":"fake-av","domains":17}"#);
/// assert_eq!(json::from_str::<Campaign>(&text).unwrap(), c);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Obj(vec![
                    $( (stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                if v.as_object().is_none() {
                    return Err($crate::json::JsonError::expected(
                        concat!("object for ", stringify!($name)), v));
                }
                Ok($name {
                    $( $field: $crate::json::FromJson::from_json(
                        v.get(stringify!($field)).ok_or_else(
                            || $crate::json::JsonError::missing_field(stringify!($field)))?,
                    )?, )+
                })
            }
        }
    };
}

/// Implements [`json::ToJson`] + [`json::FromJson`] for a tuple struct
/// with one public field (a newtype), mirroring serde: the wrapper is
/// invisible and only the inner value is written.
///
/// ```
/// use seacma_util::impl_json_newtype;
/// use seacma_util::json;
///
/// #[derive(Debug, PartialEq)]
/// struct Minutes(u64);
/// impl_json_newtype!(Minutes);
///
/// assert_eq!(json::to_string(&Minutes(90)), "90");
/// assert_eq!(json::from_str::<Minutes>("90").unwrap(), Minutes(90));
/// ```
#[macro_export]
macro_rules! impl_json_newtype {
    ($name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::json::FromJson::from_json(v).map($name)
            }
        }
    };
}

/// Implements [`json::ToJson`] + [`json::FromJson`] for an enum in serde's
/// externally-tagged encoding: unit variants become `"Variant"`, newtype
/// variants `{"Variant": value}`, struct variants `{"Variant": {..}}`.
/// List every variant, each followed by a comma:
///
/// ```
/// use seacma_util::impl_json_enum;
/// use seacma_util::json;
///
/// #[derive(Debug, PartialEq)]
/// enum Verdict {
///     Clean,
///     Known(String),
///     Flagged { engines: u32, label: String },
/// }
/// impl_json_enum!(Verdict {
///     Clean,
///     Known(String),
///     Flagged { engines: u32, label: String },
/// });
///
/// assert_eq!(json::to_string(&Verdict::Clean), r#""Clean""#);
/// let v = Verdict::Flagged { engines: 12, label: "fakeav".into() };
/// let text = json::to_string(&v);
/// assert_eq!(text, r#"{"Flagged":{"engines":12,"label":"fakeav"}}"#);
/// assert_eq!(json::from_str::<Verdict>(&text).unwrap(), v);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($name:ident { $($body:tt)* }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::__json_enum_to!(self, $name, $($body)*);
                // Every variant returns above; listing all variants is the
                // macro contract (round-trip tests catch omissions).
                unreachable!("impl_json_enum! missing a variant of {}", stringify!($name))
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::__json_enum_from!(v, $name, $($body)*);
                Err($crate::json::JsonError::msg(format!(
                    "no variant of {} matches {}",
                    stringify!($name),
                    $crate::json::to_string(v)
                )))
            }
        }
    };
}

/// Implementation detail of [`impl_json_enum!`]: expands one early-return
/// block per variant of the serializer.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_to {
    ($slf:expr, $name:ident,) => {};
    // Normalize a missing trailing comma after the final variant.
    ($slf:expr, $name:ident, $variant:ident) => {
        $crate::__json_enum_to!($slf, $name, $variant,);
    };
    ($slf:expr, $name:ident, $variant:ident ( $inner:ty )) => {
        $crate::__json_enum_to!($slf, $name, $variant($inner),);
    };
    ($slf:expr, $name:ident, $variant:ident { $($field:ident : $ftype:ty),+ $(,)? }) => {
        $crate::__json_enum_to!($slf, $name, $variant { $($field : $ftype),+ },);
    };
    ($slf:expr, $name:ident, $variant:ident, $($rest:tt)*) => {
        if let $name::$variant = $slf {
            return $crate::json::Value::Str(stringify!($variant).to_string());
        }
        $crate::__json_enum_to!($slf, $name, $($rest)*);
    };
    ($slf:expr, $name:ident, $variant:ident ( $inner:ty ), $($rest:tt)*) => {
        if let $name::$variant(x) = $slf {
            return $crate::json::Value::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::ToJson::to_json(x),
            )]);
        }
        $crate::__json_enum_to!($slf, $name, $($rest)*);
    };
    ($slf:expr, $name:ident,
     $variant:ident { $($field:ident : $ftype:ty),+ $(,)? }, $($rest:tt)*) => {
        if let $name::$variant { $($field),+ } = $slf {
            return $crate::json::Value::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::Value::Obj(vec![
                    $( (stringify!($field).to_string(),
                        $crate::json::ToJson::to_json($field)), )+
                ]),
            )]);
        }
        $crate::__json_enum_to!($slf, $name, $($rest)*);
    };
}

/// Implementation detail of [`impl_json_enum!`]: expands one early-return
/// block per variant of the parser.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from {
    ($v:expr, $name:ident,) => {};
    // Normalize a missing trailing comma after the final variant.
    ($v:expr, $name:ident, $variant:ident) => {
        $crate::__json_enum_from!($v, $name, $variant,);
    };
    ($v:expr, $name:ident, $variant:ident ( $inner:ty )) => {
        $crate::__json_enum_from!($v, $name, $variant($inner),);
    };
    ($v:expr, $name:ident, $variant:ident { $($field:ident : $ftype:ty),+ $(,)? }) => {
        $crate::__json_enum_from!($v, $name, $variant { $($field : $ftype),+ },);
    };
    ($v:expr, $name:ident, $variant:ident, $($rest:tt)*) => {
        if let $crate::json::Value::Str(s) = $v {
            if s == stringify!($variant) {
                return Ok($name::$variant);
            }
        }
        $crate::__json_enum_from!($v, $name, $($rest)*);
    };
    ($v:expr, $name:ident, $variant:ident ( $inner:ty ), $($rest:tt)*) => {
        if let $crate::json::Value::Obj(pairs) = $v {
            if let [(tag, payload)] = pairs.as_slice() {
                if tag == stringify!($variant) {
                    return Ok($name::$variant(
                        <$inner as $crate::json::FromJson>::from_json(payload)?,
                    ));
                }
            }
        }
        $crate::__json_enum_from!($v, $name, $($rest)*);
    };
    ($v:expr, $name:ident,
     $variant:ident { $($field:ident : $ftype:ty),+ $(,)? }, $($rest:tt)*) => {
        if let $crate::json::Value::Obj(pairs) = $v {
            if let [(tag, payload)] = pairs.as_slice() {
                if tag == stringify!($variant) {
                    return Ok($name::$variant {
                        $( $field: <$ftype as $crate::json::FromJson>::from_json(
                            payload.get(stringify!($field)).ok_or_else(
                                || $crate::json::JsonError::missing_field(
                                    stringify!($field)))?,
                        )?, )+
                    });
                }
            }
        }
        $crate::__json_enum_from!($v, $name, $($rest)*);
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::json::{self, FromJson, ToJson, Value};

    #[derive(Debug, Clone, PartialEq)]
    struct Inner {
        id: u32,
        tag: String,
    }
    impl_json_struct!(Inner { id, tag });

    #[derive(Debug, Clone, PartialEq)]
    struct Outer {
        inner: Inner,
        hash: u128,
        score: f64,
        items: Vec<Inner>,
        opt: Option<String>,
    }
    impl_json_struct!(Outer { inner, hash, score, items, opt });

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Wrapped(u64);
    impl_json_newtype!(Wrapped);

    #[derive(Debug, Clone, PartialEq)]
    enum Mixed {
        Plain,
        Wrapping(Wrapped),
        Structured { a: u32, b: String },
        AlsoPlain,
    }
    impl_json_enum!(Mixed {
        Plain,
        Wrapping(Wrapped),
        Structured { a: u32, b: String },
        AlsoPlain,
    });

    fn rt<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(x: T) {
        let s = json::to_string(&x);
        assert_eq!(json::from_str::<T>(&s).unwrap(), x, "roundtrip via {s}");
        let p = json::to_string_pretty(&x);
        assert_eq!(json::from_str::<T>(&p).unwrap(), x, "pretty roundtrip via {p}");
    }

    #[test]
    fn struct_macro_roundtrips_nested() {
        rt(Outer {
            inner: Inner { id: 1, tag: "a\"b".into() },
            hash: u128::MAX - 3,
            score: 0.375,
            items: vec![Inner { id: 2, tag: String::new() }],
            opt: None,
        });
    }

    #[test]
    fn struct_macro_field_order_matches_declaration() {
        let s = json::to_string(&Inner { id: 9, tag: "t".into() });
        assert_eq!(s, r#"{"id":9,"tag":"t"}"#);
    }

    #[test]
    fn struct_macro_reports_missing_fields() {
        let err = json::from_str::<Inner>(r#"{"id":9}"#).unwrap_err();
        assert!(err.message.contains("tag"), "{err}");
    }

    #[test]
    fn newtype_macro_is_transparent() {
        rt(Wrapped(17));
        assert_eq!(json::to_string(&Wrapped(17)), "17");
    }

    #[test]
    fn enum_macro_matches_serde_externally_tagged_encoding() {
        assert_eq!(json::to_string(&Mixed::Plain), r#""Plain""#);
        assert_eq!(json::to_string(&Mixed::AlsoPlain), r#""AlsoPlain""#);
        assert_eq!(json::to_string(&Mixed::Wrapping(Wrapped(3))), r#"{"Wrapping":3}"#);
        assert_eq!(
            json::to_string(&Mixed::Structured { a: 1, b: "x".into() }),
            r#"{"Structured":{"a":1,"b":"x"}}"#
        );
        for v in [
            Mixed::Plain,
            Mixed::AlsoPlain,
            Mixed::Wrapping(Wrapped(99)),
            Mixed::Structured { a: 7, b: "y".into() },
        ] {
            rt(v);
        }
    }

    #[test]
    fn enum_macro_rejects_unknown_variants() {
        assert!(json::from_str::<Mixed>(r#""Nope""#).is_err());
        assert!(json::from_str::<Mixed>(r#"{"Nope":1}"#).is_err());
        assert!(json::from_str::<Mixed>("4").is_err());
    }

    #[test]
    fn values_from_macros_compose_with_value_tree() {
        let v = Mixed::Structured { a: 1, b: "x".into() }.to_json();
        assert!(v.get("Structured").is_some());
        assert_eq!(
            v.get("Structured").and_then(|s| s.get("a")).and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn resolve_workers_passes_explicit_counts_through() {
        assert_eq!(crate::resolve_workers(1), 1);
        assert_eq!(crate::resolve_workers(7), 7);
        assert!(crate::resolve_workers(0) >= 1, "0 must resolve to a usable count");
    }
}
