//! Minimal JSON support: a [`Value`] tree, a compact and a pretty
//! serializer, a recursive-descent parser, and the [`ToJson`]/[`FromJson`]
//! trait pair that replaces `serde`'s derive machinery throughout the
//! workspace (see the `impl_json_struct!`, `impl_json_enum!` and
//! `impl_json_newtype!` macros at the crate root).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Objects preserve insertion order; maps and sets are
//!    serialized in sorted key order. Serializing the same value twice
//!    yields byte-identical output, so exported artifacts are replayable.
//! 2. **Round-trip fidelity.** `parse(to_string(v)) == v` for every value
//!    the workspace produces, including 128-bit content hashes (`u128`
//!    does not fit in an `f64`, so integers are kept exact).
//! 3. **No dependencies.** `std` only.
//!
//! The enum encoding matches serde's externally-tagged default: a unit
//! variant is a string, a payload variant is a single-key object.
//!
//! # Examples
//!
//! ```
//! use seacma_util::json::{self, Value};
//!
//! let v = Value::Obj(vec![
//!     ("name".to_string(), Value::Str("seacma".to_string())),
//!     ("campaigns".to_string(), Value::UInt(108)),
//!     ("rate".to_string(), Value::Float(0.5)),
//! ]);
//! let text = json::to_string(&v);
//! assert_eq!(text, r#"{"name":"seacma","campaigns":108,"rate":0.5}"#);
//! assert_eq!(json::parse(&text).unwrap(), v);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::BuildHasher;

/// A JSON document.
///
/// Numbers are split into three variants so that 128-bit hashes survive a
/// round trip: [`Value::UInt`] holds every non-negative integer,
/// [`Value::Int`] holds strictly negative integers, and [`Value::Float`]
/// holds anything written with a fraction or exponent. Constructors and the
/// parser maintain that normalization, so the derived `PartialEq` is
/// structural *and* numeric for integers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A strictly negative integer.
    Int(i128),
    /// A non-negative integer (covers `u128` content hashes exactly).
    UInt(u128),
    /// A float — anything with a `.` or exponent in source form.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Pairs keep insertion order; [`to_string`] writes them
    /// as-is, which is what makes exports byte-stable.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error produced by the parser or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source text, when parsing; `None` for
    /// conversion errors.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError { message: message.into(), offset: None }
    }

    /// Error for a struct field absent from the source object.
    pub fn missing_field(field: &str) -> Self {
        JsonError::msg(format!("missing field `{field}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, got: &Value) -> Self {
        JsonError::msg(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Floats print via Rust's shortest round-trippable `Display`, with a
/// trailing `.0` forced onto integral values so the parser reads them back
/// as floats (matching serde_json). Non-finite values have no JSON form and
/// become `null`, like JavaScript's `JSON.stringify`.
fn float_into(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    out.push_str(&format!("{x}"));
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => float_into(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str(INDENT);
                }
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str(INDENT);
            }
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str(INDENT);
                }
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str(INDENT);
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes to the compact single-line form.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_compact(&v.to_json(), &mut out);
    out
}

/// Serializes to the pretty two-space-indented form.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_pretty(&v.to_json(), &mut out, 0);
    out
}

/// Pretty form as bytes (drop-in for `serde_json::to_vec_pretty`).
pub fn to_vec_pretty<T: ToJson + ?Sized>(v: &T) -> Vec<u8> {
    to_string_pretty(v).into_bytes()
}

/// Writes the compact form to an `io::Write`.
pub fn to_writer<W: std::io::Write, T: ToJson + ?Sized>(
    mut w: W,
    v: &T,
) -> std::io::Result<()> {
    w.write_all(to_string(v).as_bytes())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`].
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Parses and converts in one step (drop-in for `serde_json::from_str`).
pub fn from_str<T: FromJson>(src: &str) -> Result<T, JsonError> {
    T::from_json(&parse(src)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: Some(self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: must be followed by \uDCxx.
                                self.eat("\\u")
                                    .map_err(|_| self.err("lone leading surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (source is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits at `pos` and advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"));
        }
        if let Some(neg) = text.strip_prefix('-') {
            // "-0" normalizes to UInt(0) to keep integer equality numeric.
            match neg.parse::<i128>() {
                Ok(0) => Ok(Value::UInt(0)),
                Ok(n) => Ok(Value::Int(-n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        } else {
            match text.parse::<u128>() {
                Ok(n) => Ok(Value::UInt(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------------

/// Conversion into a JSON [`Value`] — the workspace's `Serialize`.
///
/// Implement via `impl_json_struct!` / `impl_json_enum!` /
/// `impl_json_newtype!` rather than by hand where possible.
pub trait ToJson {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Conversion out of a JSON [`Value`] — the workspace's `Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, erroring on shape or type mismatches.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::expected("string", v))
    }
}

macro_rules! unsigned_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(u128::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(JsonError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
unsigned_json!(u8, u16, u32, u64, u128);

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::UInt(*self as u128)
    }
}

impl FromJson for usize {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::UInt(n) => usize::try_from(*n)
                .map_err(|_| JsonError::msg("integer out of range for usize")),
            other => Err(JsonError::expected("unsigned integer", other)),
        }
    }
}

macro_rules! signed_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let n = *self as i128;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u128) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let wide: i128 = match v {
                    Value::UInt(n) => i128::try_from(*n)
                        .map_err(|_| JsonError::msg("integer out of range"))?,
                    Value::Int(n) => *n,
                    other => return Err(JsonError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| JsonError::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
signed_json!(i8, i16, i32, i64, isize);

impl ToJson for i128 {
    fn to_json(&self) -> Value {
        if *self < 0 {
            Value::Int(*self)
        } else {
            Value::UInt(*self as u128)
        }
    }
}

impl FromJson for i128 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::UInt(n) => {
                i128::try_from(*n).map_err(|_| JsonError::msg("integer out of range for i128"))
            }
            Value::Int(n) => Ok(*n),
            other => Err(JsonError::expected("integer", other)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::expected("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::expected("3-element array", v)),
        }
    }
}

/// Types usable as JSON object keys (serde's map-key role). Keys render to
/// strings; maps serialize in sorted key order for determinism.
pub trait JsonKey: Ord {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses a rendered key back.
    fn from_key(k: &str) -> Result<Self, JsonError>
    where
        Self: Sized;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(k: &str) -> Result<Self, JsonError> {
        Ok(k.to_string())
    }
}

macro_rules! int_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(k: &str) -> Result<Self, JsonError> {
                k.parse().map_err(|_| JsonError::msg(
                    concat!("invalid ", stringify!($t), " object key")))
            }
        }
    )*};
}
int_json_key!(u16, u32, u64, usize, i64);

fn map_to_json<'a, K: JsonKey + 'a, V: ToJson + 'a>(
    iter: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(&K, &V)> = iter.collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_key(), v.to_json())).collect())
}

impl<K: JsonKey, V: ToJson, S: BuildHasher> ToJson for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: FromJson, S: BuildHasher + Default> FromJson
    for HashMap<K, V, S>
{
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::expected("object", v))?
            .iter()
            .map(|(k, item)| Ok((K::from_key(k)?, V::from_json(item)?)))
            .collect()
    }
}

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::expected("object", v))?
            .iter()
            .map(|(k, item)| Ok((K::from_key(k)?, V::from_json(item)?)))
            .collect()
    }
}

impl<T: ToJson + Ord, S: BuildHasher> ToJson for HashSet<T, S> {
    fn to_json(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Arr(items.into_iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + std::hash::Hash + Eq, S: BuildHasher + Default> FromJson for HashSet<T, S> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let s = to_string(v);
        assert_eq!(&parse(&s).unwrap(), v, "compact roundtrip of {s}");
        let p = to_string_pretty(v);
        assert_eq!(&parse(&p).unwrap(), v, "pretty roundtrip of {p}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::UInt(0));
        roundtrip(&Value::UInt(u128::MAX));
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::Int(i128::MIN + 1));
        roundtrip(&Value::Float(0.1));
        roundtrip(&Value::Float(-1.5e300));
        roundtrip(&Value::Float(3.0));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Str("a\"b\\c\nd\te\u{8}\u{c}\u{1}é‰🦀".to_string()));
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&Value::Float(3.0)), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::Float(3.0));
        assert_eq!(parse("3").unwrap(), Value::UInt(3));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&Value::Arr(vec![]));
        roundtrip(&Value::Obj(vec![]));
        roundtrip(&Value::Obj(vec![
            ("z".into(), Value::Arr(vec![Value::Null, Value::UInt(1)])),
            ("a".into(), Value::Obj(vec![("nested".into(), Value::Bool(false))])),
            ("weird key \"\n".into(), Value::Str("v".into())),
        ]));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(parse(r#""🦀""#).unwrap(), Value::Str("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn u128_hashes_survive() {
        let sha = u128::MAX - 7;
        let s = to_string(&sha);
        assert_eq!(from_str::<u128>(&s).unwrap(), sha);
    }

    #[test]
    fn maps_serialize_sorted() {
        let mut m: HashMap<usize, &str> = HashMap::new();
        m.insert(10, "ten");
        m.insert(2, "two");
        m.insert(1, "one");
        assert_eq!(to_string(&m), r#"{"1":"one","2":"two","10":"ten"}"#);
        let back: HashMap<usize, String> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[&10], "ten");
    }

    #[test]
    fn builtin_conversions() {
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Option<String>>("null").unwrap(), None);
        assert_eq!(from_str::<(String, u64)>(r#"["a",9]"#).unwrap(), ("a".into(), 9));
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"landing_url":"http://x/","n":3,"ok":true}"#).unwrap();
        assert!(v.get("landing_url").is_some());
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }
}
