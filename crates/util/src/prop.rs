//! A tiny deterministic property-testing harness.
//!
//! Replaces `proptest` for this workspace's needs: run a property over a
//! few hundred pseudo-random inputs drawn from a seeded generator. Unlike
//! proptest there is **no shrinking** and **no persistence file** — every
//! case is a pure function of its index, so a failure report ("case 17")
//! is already a minimal, stable reproduction recipe. That mirrors the
//! simulation substrate's determinism contract: same seed, same bytes.
//!
//! # Examples
//!
//! ```
//! use seacma_util::forall;
//!
//! forall!(64, |rng| {
//!     let a = rng.u64();
//!     let b = rng.below(100);
//!     assert!(b < 100);
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

/// Default number of cases run by [`forall!`](crate::forall) when no count
/// is given. Matches proptest's default.
pub const DEFAULT_CASES: u64 = 256;

/// A deterministic generator: a SplitMix64 stream seeded per test case.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// The next 128 random bits.
    pub fn u128(&mut self) -> u128 {
        (u128::from(self.u64()) << 64) | u128::from(self.u64())
    }

    /// The next 8 random bits.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below with empty range");
        // Multiply-shift reduction: unbiased for all practical n.
        ((u128::from(self.u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`; the range must be non-empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range with empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`; the range must be non-empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64 with empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of `slice`.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Rng::pick from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// A random byte from `charset` (which must be non-empty ASCII).
    pub fn char_of(&mut self, charset: &str) -> char {
        *self.pick(charset.as_bytes()) as char
    }

    /// A string of length drawn from `[min_len, max_len]`, each character
    /// uniform over `charset` — the harness's stand-in for proptest's
    /// regex-literal strategies like `"[a-z0-9]{1,8}"`.
    pub fn string_of(&mut self, charset: &str, min_len: usize, max_len: usize) -> String {
        let len = self.range(min_len, max_len + 1);
        (0..len).map(|_| self.char_of(charset)).collect()
    }

    /// A `Vec` with `[min_len, max_len]` elements drawn by `gen`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range(min_len, max_len + 1);
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Lowercase ASCII letters.
pub const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
/// Lowercase ASCII letters and digits.
pub const LOWER_DIGITS: &str = "abcdefghijklmnopqrstuvwxyz0123456789";
/// ASCII digits.
pub const DIGITS: &str = "0123456789";

/// Runs `property` against `cases` deterministic generator streams.
///
/// Each case `i` gets a generator seeded as a pure function of `i`, so a
/// failing case number is a complete reproduction recipe. On failure the
/// case number is printed and the panic is re-raised (so `cargo test`
/// reports the original assertion message too).
pub fn forall(cases: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::new(0x5EAC_A001_u64.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng)
        }));
        if let Err(panic) = outcome {
            eprintln!("forall: property failed at case {case} of {cases}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Property-test entry point: `forall!(|rng| { ... })` runs the body
/// [`DEFAULT_CASES`] times; `forall!(N, |rng| { ... })` runs it `N` times.
/// The body receives `rng: &mut Rng` and asserts with the ordinary
/// `assert!` family.
///
/// # Examples
///
/// ```
/// use seacma_util::forall;
/// use seacma_util::prop::LOWER;
///
/// forall!(|rng| {
///     let s = rng.string_of(LOWER, 1, 8);
///     assert!(!s.is_empty() && s.len() <= 8);
///     assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
/// });
/// ```
#[macro_export]
macro_rules! forall {
    (|$rng:ident| $body:expr) => {
        $crate::prop::forall($crate::prop::DEFAULT_CASES, |$rng: &mut $crate::prop::Rng| {
            $body
        })
    };
    ($cases:expr, |$rng:ident| $body:expr) => {
        $crate::prop::forall($cases, |$rng: &mut $crate::prop::Rng| $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        assert_ne!(Rng::new(1).u64(), Rng::new(2).u64());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let x = rng.range(2, 5);
            assert!((2..5).contains(&x));
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 7];
        for _ in 0..300 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn string_of_respects_charset_and_len() {
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            let s = rng.string_of(LOWER_DIGITS, 1, 9);
            assert!((1..=9).contains(&s.len()));
            assert!(s.chars().all(|c| LOWER_DIGITS.contains(c)));
        }
    }

    #[test]
    fn forall_runs_all_cases() {
        let mut n = 0u64;
        forall(40, |_| n += 1);
        assert_eq!(n, 40);
    }

    #[test]
    #[should_panic]
    fn forall_propagates_failures() {
        forall(10, |rng| assert!(rng.u64() % 2 == 0, "odd draw"));
    }
}
