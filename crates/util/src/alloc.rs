//! Heap-allocation counting for the bench harness (feature `count-alloc`).
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and reallocation) through a relaxed atomic. A bench binary
//! installs it explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: seacma_util::alloc::CountingAlloc = seacma_util::alloc::CountingAlloc;
//! ```
//!
//! and then brackets measured regions with [`alloc_count`] /
//! [`alloc_bytes`]. For a deterministic single-threaded program the call
//! count is exact and reproducible — which is what lets `verify.sh` gate
//! allocation regressions the same way it gates exactness. The module
//! (and the `allocs` column in bench output) only exists under the
//! `count-alloc` feature so ordinary builds pay nothing, not even the
//! atomic increment.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts calls and bytes, then defers to
/// [`System`]. Install with `#[global_allocator]` in the binary that
/// wants counting; the counters stay at zero otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the
// GlobalAlloc contract; the counters don't affect allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation calls (alloc + realloc) since process start. Bracket
/// a region with two reads and subtract.
pub fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Total bytes requested (alloc sizes + realloc growth) since process
/// start.
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install CountingAlloc, so counters only
    // move if some other binary-level harness installed it; either way
    // the API must be monotone and non-panicking.
    #[test]
    fn counters_are_monotone() {
        let c0 = alloc_count();
        let b0 = alloc_bytes();
        let v: Vec<u8> = vec![0; 4096];
        std::hint::black_box(&v);
        assert!(alloc_count() >= c0);
        assert!(alloc_bytes() >= b0);
    }
}
