//! # seacma-blacklist
//!
//! Simulators for the two external reputation services the measurement
//! depends on: **Google Safe Browsing** (URL blacklist) and **VirusTotal**
//! (multi-AV file scanning).
//!
//! The paper *measures* these services from outside; this crate embeds
//! their measured behaviour as ground truth so the pipeline's measurement
//! code paths (lookup scheduling, init-vs-final detection-rate accounting,
//! submit + delayed-rescan flows) run unchanged:
//!
//! * GSB detects only a small fraction of SE attack domains, with strong
//!   per-category differences (Registration and Chrome-Notification
//!   campaigns evade entirely; Tables 1 and 4) and a mean listing lag of
//!   well over 7 days after a domain goes live (§4.5).
//! * VirusTotal knows only ~12.7 % of milked (highly polymorphic) files at
//!   submission time; after a months-later rescan, the AV ensemble catches
//!   up: > 95 % flagged by at least one engine, > 40 % by 15 or more.

pub mod gsb;
pub mod virustotal;

pub use gsb::{GsbParams, GsbService, GsbVerdict};
pub use virustotal::{ScanReport, VirusTotal};
