//! Google Safe Browsing simulator.
//!
//! Per-category detection probabilities and latency distributions are
//! calibrated to the paper's Tables 1 and 4: Fake-Software and Lottery
//! domains are eventually listed at moderate rates, Scareware and
//! Technical-Support at high rates but slowly, Registration and
//! Chrome-Notification campaigns evade completely. Conditional on being
//! detected at all, a domain is listed `spread · u²` days after it goes
//! live (`u` uniform), giving the long tail and the > 7-day mean lag the
//! paper measures.

use std::collections::HashMap;

use seacma_util::sym::SymbolArena;
use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_simweb::det::{det_f64, str_word};
use seacma_simweb::{SeCategory, SimDuration, SimTime, World};

/// Per-category GSB behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsbParams {
    /// Probability that a domain of this category is *ever* listed.
    pub p_detect: f64,
    /// Latency spread in days: listing delay is `spread · u²` days.
    pub spread_days: f64,
}

impl GsbParams {
    /// Calibrated parameters for a category.
    pub fn for_category(cat: SeCategory) -> GsbParams {
        match cat {
            SeCategory::FakeSoftware => GsbParams { p_detect: 0.20, spread_days: 40.0 },
            SeCategory::Registration => GsbParams { p_detect: 0.0, spread_days: 1.0 },
            SeCategory::LotteryGift => GsbParams { p_detect: 0.15, spread_days: 50.0 },
            SeCategory::ChromeNotifications => GsbParams { p_detect: 0.03, spread_days: 60.0 },
            SeCategory::Scareware => GsbParams { p_detect: 0.55, spread_days: 50.0 },
            SeCategory::TechnicalSupport => GsbParams { p_detect: 0.55, spread_days: 50.0 },
        }
    }

    /// Mean listing delay (days), conditional on detection: `spread / 3`.
    pub fn mean_delay_days(&self) -> f64 {
        self.spread_days / 3.0
    }
}

/// Result of a GSB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsbVerdict {
    /// Domain is on the blacklist at lookup time.
    Listed,
    /// Domain is not (yet) on the blacklist.
    NotListed,
}

impl GsbVerdict {
    /// True if listed.
    pub fn is_listed(self) -> bool {
        matches!(self, GsbVerdict::Listed)
    }
}

#[derive(Debug, Clone, Copy)]
struct DomainFate {
    /// When the domain went live (campaign epoch start).
    listed_at: Option<SimTime>,
}

/// Lazily-built reverse index of attack domains: `domain → occurrences`.
///
/// Classifying a looked-up domain by linear scan
/// (`World::campaign_of_attack_domain`) costs `campaigns × grace-window ×
/// shards` generated domain strings *per classified domain* — the
/// dominant cost of a paper-scale milking run's GSB traffic (~2,000 fresh
/// domains). The index generates each `(campaign, epoch, shard)` domain
/// exactly once instead, then answers every classification with one map
/// probe. Occurrences keep `(campaign position, epoch)` so window
/// filtering and tie-breaking reproduce the scan order exactly (first
/// campaign in world order wins; within it, the latest in-window epoch is
/// the activation epoch) — pinned by a property test against the scan.
///
/// Keyed through a private [`SymbolArena`]: each generated domain string
/// is stored once in the arena and the occurrence column is a plain
/// `Vec` indexed by symbol, so extending coverage by an epoch appends to
/// dense vectors instead of growing a string-keyed map.
#[derive(Default)]
struct AttackIndex {
    /// Generated domain strings, interned once each.
    arena: SymbolArena,
    /// Per symbol: `(campaign position, epoch)` occurrences, insertion
    /// order. Indexed by `Sym::index()`.
    occurrences: Vec<Vec<(u32, u64)>>,
    /// Per campaign position: epochs `[0, indexed_to)` are in the map.
    indexed_to: Vec<u64>,
}

impl AttackIndex {
    /// Extends coverage so every campaign's epochs up to its epoch at `t`
    /// (the top of the grace window) are indexed, then returns the
    /// occurrence list for `domain`.
    fn occurrences_at<'a>(
        &'a mut self,
        world: &World,
        domain: &str,
        t: SimTime,
    ) -> Option<&'a [(u32, u64)]> {
        let campaigns = world.campaigns();
        self.indexed_to.resize(campaigns.len(), 0);
        for (pos, c) in campaigns.iter().enumerate() {
            let e_now = c.epoch(t);
            let to = &mut self.indexed_to[pos];
            while *to <= e_now {
                for shard in 0..c.category.parallel_shards() {
                    let d = c.attack_domain_at_epoch(world.seed(), *to, shard);
                    let sym = self.arena.intern(&d);
                    if sym.index() == self.occurrences.len() {
                        self.occurrences.push(Vec::new());
                    }
                    self.occurrences[sym.index()].push((pos as u32, *to));
                }
                *to += 1;
            }
        }
        let sym = self.arena.lookup(domain)?;
        Some(self.occurrences[sym.index()].as_slice())
    }
}

/// The simulated GSB service. Lookups are memoized per domain.
pub struct GsbService<'w> {
    world: &'w World,
    cache: HashMap<String, DomainFate>,
    index: AttackIndex,
}

impl<'w> GsbService<'w> {
    /// Builds the service over a world.
    pub fn new(world: &'w World) -> Self {
        Self { world, cache: HashMap::new(), index: AttackIndex::default() }
    }

    /// Looks up `domain` at time `t`. `t` also serves as the observation
    /// anchor for classifying which campaign (if any) owns the domain.
    pub fn lookup(&mut self, domain: &str, t: SimTime) -> GsbVerdict {
        let fate = self.fate(domain, t);
        match fate.listed_at {
            Some(at) if at <= t => GsbVerdict::Listed,
            _ => GsbVerdict::NotListed,
        }
    }

    /// When the domain was (or will be) listed, if ever. Exposed so
    /// experiments can measure GSB's lag against the milker's discovery
    /// times without polling minute by minute.
    pub fn listing_time(&mut self, domain: &str, t_hint: SimTime) -> Option<SimTime> {
        self.fate(domain, t_hint).listed_at
    }

    /// Closed form of the milker's polling loop: the first instant on the
    /// lookup grid `{start, start+interval, …} ∩ [start, grid_end]` at
    /// which a lookup would observe `domain` listed, if any.
    ///
    /// Equivalent to — and replacing — ~1,250 individual [`lookup`]s per
    /// milked domain (a 12-day tail on a 30-minute cadence): since a
    /// listed domain stays listed, the first listed poll is just the
    /// listing time rounded up to the grid. `start` doubles as the
    /// classification anchor, exactly as the first lookup of the loop
    /// did. Loop ≡ closed form is pinned by a property test across seeds
    /// and cadences.
    ///
    /// [`lookup`]: Self::lookup
    pub fn first_listed_poll(
        &mut self,
        domain: &str,
        start: SimTime,
        interval: SimDuration,
        grid_end: SimTime,
    ) -> Option<SimTime> {
        if start > grid_end {
            return None;
        }
        let at = self.listing_time(domain, start)?;
        if at <= start {
            return Some(start);
        }
        let step = interval.minutes().max(1);
        let first_on_grid = start + SimDuration::from_minutes((at - start).minutes().div_ceil(step) * step);
        (first_on_grid <= grid_end).then_some(first_on_grid)
    }

    fn fate(&mut self, domain: &str, t: SimTime) -> DomainFate {
        if let Some(f) = self.cache.get(domain) {
            return *f;
        }
        let fate = self.compute_fate(domain, t);
        self.cache.insert(domain.to_string(), fate);
        fate
    }

    fn compute_fate(&mut self, domain: &str, t: SimTime) -> DomainFate {
        // Only SE attack domains ever get listed; upstream TDS domains,
        // publishers and benign advertisers are never on the blacklist
        // (the paper: upstream URLs "are not typically blocked").
        let Some((campaign, activated)) = self.classify(domain, t) else {
            return DomainFate { listed_at: None };
        };
        let params = GsbParams::for_category(campaign.category);
        let dw = str_word(domain);
        if det_f64(&[self.world.seed(), 0x65B_D, dw]) >= params.p_detect {
            return DomainFate { listed_at: None };
        }
        let u = det_f64(&[self.world.seed(), 0x65B_E, dw]);
        let delay_minutes = (params.spread_days * u * u * 24.0 * 60.0) as u64;
        DomainFate { listed_at: Some(activated + SimDuration::from_minutes(delay_minutes)) }
    }

    /// Index-backed equivalent of `World::campaign_of_attack_domain`
    /// followed by the activation-epoch scan: the owning campaign (first
    /// in world order with an occurrence inside its parking grace window
    /// at `t`) and the start of the latest in-window epoch in which the
    /// domain served.
    fn classify(&mut self, domain: &str, t: SimTime) -> Option<(&'w seacma_simweb::SeCampaign, SimTime)> {
        let world = self.world;
        let occ = self.index.occurrences_at(world, domain, t)?;
        let campaigns = world.campaigns();
        let mut best: Option<(u32, u64)> = None;
        for &(pos, e) in occ {
            let c = &campaigns[pos as usize];
            let e_now = c.epoch(t);
            let lo = e_now.saturating_sub(seacma_simweb::SeCampaign::PARKED_GRACE_EPOCHS);
            if e < lo || e > e_now {
                continue; // parked out or future relative to this t
            }
            best = match best {
                Some((bp, _)) if pos > bp => best,
                Some((bp, be)) if pos == bp && e <= be => best,
                _ => Some((pos, e)),
            };
        }
        let (pos, e) = best?;
        let c = &campaigns[pos as usize];
        Some((c, c.epoch_start(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{SimTime, World, WorldConfig, DAY};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 21,
            n_publishers: 50,
            n_hidden_only_publishers: 0,
            n_advertisers: 10,
            campaign_scale: 1.0,
            ..Default::default()
        })
    }

    #[test]
    fn registration_domains_never_listed() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let far = SimTime::EPOCH + DAY * 200;
        for c in w.campaigns().iter().filter(|c| c.category == SeCategory::Registration) {
            let t = SimTime::EPOCH + DAY;
            let d = c.attack_domain(w.seed(), t, 0);
            assert_eq!(gsb.lookup(&d, far), GsbVerdict::NotListed);
        }
    }

    #[test]
    fn detection_rates_follow_calibration() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        // Sample many fake-software domains across epochs; at t→∞ the
        // listing rate must approach p_detect = 0.20.
        let mut listed = 0u32;
        let mut total = 0u32;
        let far = SimTime::EPOCH + DAY * 400;
        for c in w.campaigns().iter().filter(|c| c.category == SeCategory::FakeSoftware) {
            for day in 0..14u64 {
                let t = SimTime::EPOCH + DAY * day;
                let d = c.attack_domain(w.seed(), t, 0);
                // Anchor classification near the domain's live window.
                if gsb.listing_time(&d, t).is_some_and(|at| at <= far) {
                    listed += 1;
                }
                total += 1;
            }
        }
        let rate = f64::from(listed) / f64::from(total);
        assert!((0.10..0.32).contains(&rate), "eventual detection rate {rate}");
    }

    #[test]
    fn listing_lags_domain_activation_by_days() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let mut lags = Vec::new();
        for c in w.campaigns() {
            for day in 0..14u64 {
                let t = SimTime::EPOCH + DAY * day;
                let d = c.attack_domain(w.seed(), t, 0);
                if let Some(at) = gsb.listing_time(&d, t) {
                    let activated = c.epoch_start(c.epoch(t));
                    lags.push((at - activated).as_days());
                }
            }
        }
        assert!(!lags.is_empty());
        let mean = lags.iter().sum::<f64>() / lags.len() as f64;
        assert!(mean > 7.0, "mean GSB lag {mean:.1}d must exceed 7 days (paper §4.5)");
    }

    #[test]
    fn fresh_domains_not_listed_immediately() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let mut listed_at_birth = 0u32;
        let mut total = 0u32;
        for c in w.campaigns() {
            let t = SimTime::EPOCH + DAY * 3;
            let d = c.attack_domain(w.seed(), t, 0);
            let birth = c.epoch_start(c.epoch(t));
            if gsb.lookup(&d, birth).is_listed() {
                listed_at_birth += 1;
            }
            total += 1;
        }
        let rate = f64::from(listed_at_birth) / f64::from(total);
        assert!(rate < 0.05, "initial detection rate {rate} too high");
    }

    #[test]
    fn verdicts_are_monotone_in_time() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let c = &w.campaigns()[0];
        let t = SimTime::EPOCH + DAY;
        let d = c.attack_domain(w.seed(), t, 0);
        let mut was_listed = false;
        for day in 0..120 {
            let v = gsb.lookup(&d, t + DAY * day).is_listed();
            assert!(!was_listed || v, "a listed domain must stay listed");
            was_listed = v;
        }
    }

    /// The linear-scan fate computation the [`AttackIndex`] replaces,
    /// verbatim: classify via `World::campaign_of_attack_domain`, then
    /// find the activation epoch by scanning the grace window backwards.
    fn scan_fate(w: &World, domain: &str, t: SimTime) -> Option<SimTime> {
        use seacma_simweb::SeCampaign;
        let cid = w.campaign_of_attack_domain(domain, t)?;
        let campaign = w.campaign(cid);
        let params = GsbParams::for_category(campaign.category);
        let dw = str_word(domain);
        if det_f64(&[w.seed(), 0x65B_D, dw]) >= params.p_detect {
            return None;
        }
        let e_now = campaign.epoch(t);
        let lo = e_now.saturating_sub(SeCampaign::PARKED_GRACE_EPOCHS);
        let mut activated = t;
        'outer: for e in (lo..=e_now).rev() {
            for shard in 0..campaign.category.parallel_shards() {
                if campaign.attack_domain_at_epoch(w.seed(), e, shard) == domain {
                    activated = campaign.epoch_start(e);
                    break 'outer;
                }
            }
        }
        let u = det_f64(&[w.seed(), 0x65B_E, dw]);
        let delay_minutes = (params.spread_days * u * u * 24.0 * 60.0) as u64;
        Some(activated + SimDuration::from_minutes(delay_minutes))
    }

    #[test]
    fn indexed_fate_equals_linear_scan() {
        // The reverse index must reproduce the linear classification scan
        // exactly — owning campaign, activation epoch, detection draw —
        // for live domains, parked domains, long-expired domains queried
        // with late anchors, future domains queried with early anchors,
        // and non-attack domains. Fresh service per case so memoization
        // cannot mask a divergence.
        let w = world();
        let campaigns = w.campaigns();
        seacma_util::forall!(300, |rng| {
            let (domain, t) = match rng.below(6) {
                // Attack domain drawn at one time, classified at another
                // (same, later, much later or earlier anchor).
                0..=3 => {
                    let c = &campaigns[rng.below(campaigns.len() as u64) as usize];
                    let t_dom = SimTime(rng.below(40 * 24 * 60));
                    let shard = (rng.below(u64::from(c.category.parallel_shards()))) as u8;
                    let d = c.attack_domain(w.seed(), t_dom, shard);
                    (d, SimTime(rng.below(60 * 24 * 60)))
                }
                // Milkable TDS domain.
                4 => {
                    let with_tds: Vec<_> =
                        campaigns.iter().filter(|c| c.tds_domain.is_some()).collect();
                    let c = with_tds[rng.below(with_tds.len() as u64) as usize];
                    (c.tds_domain.clone().unwrap(), SimTime(rng.below(20 * 24 * 60)))
                }
                // Unknown host.
                _ => ("never-an-attack.example".to_string(), SimTime(rng.below(20 * 24 * 60))),
            };
            let mut gsb = GsbService::new(&w);
            assert_eq!(
                gsb.listing_time(&domain, t),
                scan_fate(&w, &domain, t),
                "index/scan divergence for {domain} at {t}"
            );
        });
    }

    /// The polling loop `first_listed_poll` replaces, verbatim.
    fn poll_loop(
        gsb: &mut GsbService<'_>,
        domain: &str,
        start: SimTime,
        interval: SimDuration,
        grid_end: SimTime,
    ) -> Option<SimTime> {
        let mut t = start;
        while t <= grid_end {
            if gsb.lookup(domain, t).is_listed() {
                return Some(t);
            }
            t += interval;
        }
        None
    }

    #[test]
    fn closed_form_poll_equals_lookup_loop() {
        // Across seeds, domains, grid anchors and cadences, the closed
        // form must return exactly what the old lookup loop returned —
        // including the None cases (never listed, listed past the grid,
        // empty grid). Fresh services per path so memoization cannot mask
        // a divergence.
        let worlds: Vec<World> = [21u64, 61, 0x5EAC]
            .iter()
            .map(|&seed| {
                World::generate(WorldConfig {
                    seed,
                    n_publishers: 40,
                    n_hidden_only_publishers: 0,
                    n_advertisers: 8,
                    campaign_scale: 0.5,
                    ..Default::default()
                })
            })
            .collect();
        seacma_util::forall!(300, |rng| {
            let w = &worlds[rng.below(worlds.len() as u64) as usize];
            let campaigns = w.campaigns();
            let c = &campaigns[rng.below(campaigns.len() as u64) as usize];
            let t_dom = SimTime(rng.below(30 * 24 * 60));
            let domain = c.attack_domain(w.seed(), t_dom, 0);
            let start = SimTime(rng.below(40 * 24 * 60));
            let interval = SimDuration::from_minutes(rng.range_u64(1, 12 * 60));
            // Occasionally an empty grid (grid_end < start).
            let span = rng.below(26 * 24 * 60) as i64 - 1440;
            let grid_end = SimTime((start.minutes() as i64 + span).max(0) as u64);
            let mut a = GsbService::new(w);
            let mut b = GsbService::new(w);
            assert_eq!(
                b.first_listed_poll(&domain, start, interval, grid_end),
                poll_loop(&mut a, &domain, start, interval, grid_end),
                "domain {domain} start {start} interval {interval} end {grid_end}"
            );
        });
    }

    #[test]
    fn non_attack_domains_never_listed() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let far = SimTime::EPOCH + DAY * 300;
        // TDS (milkable) domains evade GSB.
        for c in w.campaigns().iter().filter(|c| c.tds_domain.is_some()).take(10) {
            assert_eq!(
                gsb.lookup(c.tds_domain.as_ref().unwrap(), far),
                GsbVerdict::NotListed
            );
        }
        // Publishers too.
        assert_eq!(gsb.lookup(&w.publishers()[0].domain, far), GsbVerdict::NotListed);
    }
}
impl_json_struct!(GsbParams { p_detect, spread_days });
impl_json_enum!(GsbVerdict { Listed, NotListed });
