//! Google Safe Browsing simulator.
//!
//! Per-category detection probabilities and latency distributions are
//! calibrated to the paper's Tables 1 and 4: Fake-Software and Lottery
//! domains are eventually listed at moderate rates, Scareware and
//! Technical-Support at high rates but slowly, Registration and
//! Chrome-Notification campaigns evade completely. Conditional on being
//! detected at all, a domain is listed `spread · u²` days after it goes
//! live (`u` uniform), giving the long tail and the > 7-day mean lag the
//! paper measures.

use std::collections::HashMap;

use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_simweb::det::{det_f64, str_word};
use seacma_simweb::{SeCategory, SimDuration, SimTime, World};

/// Per-category GSB behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsbParams {
    /// Probability that a domain of this category is *ever* listed.
    pub p_detect: f64,
    /// Latency spread in days: listing delay is `spread · u²` days.
    pub spread_days: f64,
}

impl GsbParams {
    /// Calibrated parameters for a category.
    pub fn for_category(cat: SeCategory) -> GsbParams {
        match cat {
            SeCategory::FakeSoftware => GsbParams { p_detect: 0.20, spread_days: 40.0 },
            SeCategory::Registration => GsbParams { p_detect: 0.0, spread_days: 1.0 },
            SeCategory::LotteryGift => GsbParams { p_detect: 0.15, spread_days: 50.0 },
            SeCategory::ChromeNotifications => GsbParams { p_detect: 0.03, spread_days: 60.0 },
            SeCategory::Scareware => GsbParams { p_detect: 0.55, spread_days: 50.0 },
            SeCategory::TechnicalSupport => GsbParams { p_detect: 0.55, spread_days: 50.0 },
        }
    }

    /// Mean listing delay (days), conditional on detection: `spread / 3`.
    pub fn mean_delay_days(&self) -> f64 {
        self.spread_days / 3.0
    }
}

/// Result of a GSB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsbVerdict {
    /// Domain is on the blacklist at lookup time.
    Listed,
    /// Domain is not (yet) on the blacklist.
    NotListed,
}

impl GsbVerdict {
    /// True if listed.
    pub fn is_listed(self) -> bool {
        matches!(self, GsbVerdict::Listed)
    }
}

#[derive(Debug, Clone, Copy)]
struct DomainFate {
    /// When the domain went live (campaign epoch start).
    listed_at: Option<SimTime>,
}

/// The simulated GSB service. Lookups are memoized per domain.
pub struct GsbService<'w> {
    world: &'w World,
    cache: HashMap<String, DomainFate>,
}

impl<'w> GsbService<'w> {
    /// Builds the service over a world.
    pub fn new(world: &'w World) -> Self {
        Self { world, cache: HashMap::new() }
    }

    /// Looks up `domain` at time `t`. `t` also serves as the observation
    /// anchor for classifying which campaign (if any) owns the domain.
    pub fn lookup(&mut self, domain: &str, t: SimTime) -> GsbVerdict {
        let fate = self.fate(domain, t);
        match fate.listed_at {
            Some(at) if at <= t => GsbVerdict::Listed,
            _ => GsbVerdict::NotListed,
        }
    }

    /// When the domain was (or will be) listed, if ever. Exposed so
    /// experiments can measure GSB's lag against the milker's discovery
    /// times without polling minute by minute.
    pub fn listing_time(&mut self, domain: &str, t_hint: SimTime) -> Option<SimTime> {
        self.fate(domain, t_hint).listed_at
    }

    fn fate(&mut self, domain: &str, t: SimTime) -> DomainFate {
        if let Some(f) = self.cache.get(domain) {
            return *f;
        }
        let fate = self.compute_fate(domain, t);
        self.cache.insert(domain.to_string(), fate);
        fate
    }

    fn compute_fate(&self, domain: &str, t: SimTime) -> DomainFate {
        // Only SE attack domains ever get listed; upstream TDS domains,
        // publishers and benign advertisers are never on the blacklist
        // (the paper: upstream URLs "are not typically blocked").
        let Some(cid) = self.world.campaign_of_attack_domain(domain, t) else {
            return DomainFate { listed_at: None };
        };
        let campaign = self.world.campaign(cid);
        let params = GsbParams::for_category(campaign.category);
        let dw = str_word(domain);
        if det_f64(&[self.world.seed(), 0x65B_D, dw]) >= params.p_detect {
            return DomainFate { listed_at: None };
        }
        // Activation time: start of the epoch in which this domain serves.
        let activated = self.activation_time(campaign, domain, t);
        let u = det_f64(&[self.world.seed(), 0x65B_E, dw]);
        let delay_minutes = (params.spread_days * u * u * 24.0 * 60.0) as u64;
        DomainFate { listed_at: Some(activated + SimDuration::from_minutes(delay_minutes)) }
    }

    fn activation_time(
        &self,
        campaign: &seacma_simweb::SeCampaign,
        domain: &str,
        t: SimTime,
    ) -> SimTime {
        let e_now = campaign.epoch(t);
        let lo = e_now.saturating_sub(seacma_simweb::SeCampaign::PARKED_GRACE_EPOCHS);
        for e in (lo..=e_now).rev() {
            for shard in 0..campaign.category.parallel_shards() {
                if campaign.attack_domain_at_epoch(self.world.seed(), e, shard) == domain {
                    return campaign.epoch_start(e);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{SimTime, World, WorldConfig, DAY};

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 21,
            n_publishers: 50,
            n_hidden_only_publishers: 0,
            n_advertisers: 10,
            campaign_scale: 1.0,
            ..Default::default()
        })
    }

    #[test]
    fn registration_domains_never_listed() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let far = SimTime::EPOCH + DAY * 200;
        for c in w.campaigns().iter().filter(|c| c.category == SeCategory::Registration) {
            let t = SimTime::EPOCH + DAY;
            let d = c.attack_domain(w.seed(), t, 0);
            assert_eq!(gsb.lookup(&d, far), GsbVerdict::NotListed);
        }
    }

    #[test]
    fn detection_rates_follow_calibration() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        // Sample many fake-software domains across epochs; at t→∞ the
        // listing rate must approach p_detect = 0.20.
        let mut listed = 0u32;
        let mut total = 0u32;
        let far = SimTime::EPOCH + DAY * 400;
        for c in w.campaigns().iter().filter(|c| c.category == SeCategory::FakeSoftware) {
            for day in 0..14u64 {
                let t = SimTime::EPOCH + DAY * day;
                let d = c.attack_domain(w.seed(), t, 0);
                // Anchor classification near the domain's live window.
                if gsb.listing_time(&d, t).is_some_and(|at| at <= far) {
                    listed += 1;
                }
                total += 1;
            }
        }
        let rate = f64::from(listed) / f64::from(total);
        assert!((0.10..0.32).contains(&rate), "eventual detection rate {rate}");
    }

    #[test]
    fn listing_lags_domain_activation_by_days() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let mut lags = Vec::new();
        for c in w.campaigns() {
            for day in 0..14u64 {
                let t = SimTime::EPOCH + DAY * day;
                let d = c.attack_domain(w.seed(), t, 0);
                if let Some(at) = gsb.listing_time(&d, t) {
                    let activated = c.epoch_start(c.epoch(t));
                    lags.push((at - activated).as_days());
                }
            }
        }
        assert!(!lags.is_empty());
        let mean = lags.iter().sum::<f64>() / lags.len() as f64;
        assert!(mean > 7.0, "mean GSB lag {mean:.1}d must exceed 7 days (paper §4.5)");
    }

    #[test]
    fn fresh_domains_not_listed_immediately() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let mut listed_at_birth = 0u32;
        let mut total = 0u32;
        for c in w.campaigns() {
            let t = SimTime::EPOCH + DAY * 3;
            let d = c.attack_domain(w.seed(), t, 0);
            let birth = c.epoch_start(c.epoch(t));
            if gsb.lookup(&d, birth).is_listed() {
                listed_at_birth += 1;
            }
            total += 1;
        }
        let rate = f64::from(listed_at_birth) / f64::from(total);
        assert!(rate < 0.05, "initial detection rate {rate} too high");
    }

    #[test]
    fn verdicts_are_monotone_in_time() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let c = &w.campaigns()[0];
        let t = SimTime::EPOCH + DAY;
        let d = c.attack_domain(w.seed(), t, 0);
        let mut was_listed = false;
        for day in 0..120 {
            let v = gsb.lookup(&d, t + DAY * day).is_listed();
            assert!(!was_listed || v, "a listed domain must stay listed");
            was_listed = v;
        }
    }

    #[test]
    fn non_attack_domains_never_listed() {
        let w = world();
        let mut gsb = GsbService::new(&w);
        let far = SimTime::EPOCH + DAY * 300;
        // TDS (milkable) domains evade GSB.
        for c in w.campaigns().iter().filter(|c| c.tds_domain.is_some()).take(10) {
            assert_eq!(
                gsb.lookup(c.tds_domain.as_ref().unwrap(), far),
                GsbVerdict::NotListed
            );
        }
        // Publishers too.
        assert_eq!(gsb.lookup(&w.publishers()[0].domain, far), GsbVerdict::NotListed);
    }
}
impl_json_struct!(GsbParams { p_detect, spread_days });
impl_json_enum!(GsbVerdict { Listed, NotListed });
