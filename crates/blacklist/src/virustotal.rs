//! VirusTotal simulator.
//!
//! The milker uploads every downloaded file: of the paper's 9,476 milked
//! binaries only 1,203 were already known (the campaigns' payloads are
//! highly polymorphic); after a three-month wait and rescan, more than
//! 9,000 were flagged malicious and over 4,000 by at least 15 engines,
//! mostly labelled Trojan/Adware/PUP (§4.5). This module reproduces that
//! signature-catch-up dynamic deterministically per file hash.

use std::collections::HashMap;

use seacma_util::impl_json_struct;

use seacma_simweb::det::{det_range, det_weighted};
use seacma_simweb::{FilePayload, SimDuration, SimTime};

/// How long after first submission the AV ensemble has "caught up" with
/// signatures for a fresh polymorphic sample.
pub const SIGNATURE_CATCHUP: SimDuration = SimDuration::from_days(30);

/// Engines in the simulated ensemble.
pub const AV_VENDOR_COUNT: u32 = 60;

/// Malware label families, weighted roughly as in the paper's results.
pub const LABELS: [&str; 5] = ["Trojan", "Adware", "PUP", "Downloader", "Riskware"];
const LABEL_WEIGHTS: [f64; 5] = [0.34, 0.30, 0.24, 0.07, 0.05];

/// One multi-AV scan report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// File hash the report describes.
    pub sha: u128,
    /// Number of engines flagging the file.
    pub detections: u32,
    /// Total engines that scanned it.
    pub total_engines: u32,
    /// Predominant label, when flagged.
    pub label: Option<String>,
    /// When the scan ran.
    pub scanned_at: SimTime,
}

impl ScanReport {
    /// Whether any engine flagged the file.
    pub fn is_malicious(&self) -> bool {
        self.detections > 0
    }
}

/// The simulated VirusTotal service.
pub struct VirusTotal {
    seed: u64,
    /// First-submission time per hash (drives signature catch-up).
    first_seen: HashMap<u128, SimTime>,
}

impl VirusTotal {
    /// Builds the service. `seed` decouples VT randomness from the world's.
    pub fn new(seed: u64) -> Self {
        Self { seed, first_seen: HashMap::new() }
    }

    /// Looks up a hash without submitting it: returns a report only for
    /// samples the ecosystem already knows (the campaign families' old,
    /// non-polymorphic variants) or files previously submitted here.
    pub fn lookup(&self, payload: &FilePayload, t: SimTime) -> Option<ScanReport> {
        if payload.is_known_variant() {
            return Some(self.report_for(payload.sha, t, true));
        }
        self.first_seen
            .get(&payload.sha)
            .map(|&at| self.report_for(payload.sha, t, t >= at + SIGNATURE_CATCHUP))
    }

    /// Submits a file for first-time scanning, returning the initial
    /// report (few or no detections for fresh polymorphic samples).
    pub fn submit(&mut self, payload: &FilePayload, t: SimTime) -> ScanReport {
        if payload.is_known_variant() {
            return self.report_for(payload.sha, t, true);
        }
        let at = *self.first_seen.entry(payload.sha).or_insert(t);
        self.report_for(payload.sha, t, t >= at + SIGNATURE_CATCHUP)
    }

    /// Requests a rescan at time `t` (the paper waited three months before
    /// rescanning everything).
    pub fn rescan(&self, payload: &FilePayload, t: SimTime) -> Option<ScanReport> {
        self.lookup(payload, t)
    }

    fn report_for(&self, sha: u128, t: SimTime, mature: bool) -> ScanReport {
        let w = [self.seed, 0x57CA2, sha as u64, (sha >> 64) as u64];
        // ~4 % of samples permanently evade the ensemble.
        let evades = det_range(&w, 100) < 4;
        let detections = if evades {
            0
        } else if mature {
            // Mature signatures: 1..=40 engines, skewed low so ~40–45 %
            // of samples reach 15+ (paper: >4,000 of >9,000).
            let u = seacma_simweb::det::det_f64(&[w[0], w[1], w[2], w[3], 1]);
            1 + (39.0 * u * u) as u32
        } else {
            // Fresh sample: most engines blind; 0..=4 heuristic hits.
            det_range(&[w[0], w[1], w[2], w[3], 2], 5) as u32
        };
        let label = (detections > 0).then(|| {
            LABELS[det_weighted(&[w[0], w[1], w[2], w[3], 3], &LABEL_WEIGHTS)].to_string()
        });
        ScanReport { sha, detections, total_engines: AV_VENDOR_COUNT, label, scanned_at: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_simweb::{FileFormat, SimTime};

    fn fresh_payload(i: u64) -> FilePayload {
        // Find a non-known-variant serving deterministically.
        let mut k = 0;
        loop {
            let p = FilePayload::serve(500 + i, FileFormat::Pe, &[i, k]);
            if !p.is_known_variant() {
                return p;
            }
            k += 1;
        }
    }

    fn known_payload() -> FilePayload {
        let mut k = 0;
        loop {
            let p = FilePayload::serve(7, FileFormat::Pe, &[k]);
            if p.is_known_variant() {
                return p;
            }
            k += 1;
        }
    }

    #[test]
    fn fresh_samples_unknown_until_submitted() {
        let vt = VirusTotal::new(3);
        let p = fresh_payload(1);
        assert!(vt.lookup(&p, SimTime::EPOCH).is_none());
    }

    #[test]
    fn known_variants_have_existing_reports() {
        let vt = VirusTotal::new(3);
        let p = known_payload();
        let r = vt.lookup(&p, SimTime::EPOCH).expect("known variant must have a report");
        assert!(r.detections >= 1 || r.detections == 0, "mature report expected");
        assert_eq!(r.total_engines, AV_VENDOR_COUNT);
    }

    #[test]
    fn initial_scan_is_nearly_blind_then_catches_up() {
        let mut vt = VirusTotal::new(3);
        let t0 = SimTime::EPOCH;
        let mut initial_hi = 0;
        let mut final_malicious = 0;
        let mut final_15plus = 0;
        let n = 500;
        for i in 0..n {
            let p = fresh_payload(i);
            let first = vt.submit(&p, t0);
            if first.detections >= 15 {
                initial_hi += 1;
            }
            let later = vt.rescan(&p, t0 + SIGNATURE_CATCHUP + SimDuration::from_days(60)).unwrap();
            if later.is_malicious() {
                final_malicious += 1;
            }
            if later.detections >= 15 {
                final_15plus += 1;
            }
        }
        assert_eq!(initial_hi, 0, "fresh polymorphic samples must start below 15 detections");
        let frac_mal = f64::from(final_malicious) / f64::from(n as u32);
        assert!(frac_mal > 0.90, "mature malicious rate {frac_mal}");
        let frac_15 = f64::from(final_15plus) / f64::from(n as u32);
        assert!((0.30..0.60).contains(&frac_15), "15+-engine rate {frac_15}");
    }

    #[test]
    fn reports_are_deterministic() {
        let mut vt = VirusTotal::new(9);
        let p = fresh_payload(4);
        let a = vt.submit(&p, SimTime(5));
        let b = vt.submit(&p, SimTime(5));
        assert_eq!(a, b);
    }

    #[test]
    fn labels_only_on_detections() {
        let mut vt = VirusTotal::new(3);
        for i in 0..200 {
            let p = fresh_payload(i);
            let r = vt.submit(&p, SimTime::EPOCH);
            if r.detections == 0 {
                assert!(r.label.is_none());
            } else {
                assert!(LABELS.contains(&r.label.as_deref().unwrap()));
            }
        }
    }

    #[test]
    fn trojan_adware_pup_dominate() {
        let mut vt = VirusTotal::new(3);
        let mut counts: HashMap<String, u32> = HashMap::new();
        let far = SimTime::EPOCH + SIGNATURE_CATCHUP + SimDuration::from_days(1);
        for i in 0..600 {
            let p = fresh_payload(i);
            vt.submit(&p, SimTime::EPOCH);
            if let Some(r) = vt.rescan(&p, far) {
                if let Some(l) = r.label {
                    *counts.entry(l).or_default() += 1;
                }
            }
        }
        let total: u32 = counts.values().sum();
        let top3 = counts.get("Trojan").unwrap_or(&0)
            + counts.get("Adware").unwrap_or(&0)
            + counts.get("PUP").unwrap_or(&0);
        assert!(
            f64::from(top3) / f64::from(total) > 0.75,
            "Trojan/Adware/PUP must dominate: {counts:?}"
        );
    }
}
impl_json_struct!(ScanReport { sha, detections, total_engines, label, scanned_at });
