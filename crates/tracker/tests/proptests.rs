//! Property suites for the incremental tracker, on the in-tree
//! deterministic harness (`seacma_util::prop`).
//!
//! The two load-bearing properties from ISSUE 4:
//!
//! 1. **Exactness** — incremental labels equal a batch
//!    `cluster_screenshots` over the same prefix, at every epoch boundary,
//!    for random corpora, random epoch splits and random insertion orders;
//! 2. **Snapshot/resume** — serializing the tracker at an arbitrary point
//!    (including mid-epoch) and resuming produces byte-identical snapshots
//!    and summaries to the uninterrupted run.

use seacma_tracker::{CampaignTracker, IncrementalClusterer, TrackerConfig};
use seacma_util::forall;
use seacma_util::prop::Rng;
use seacma_vision::cluster::{cluster_screenshots, ClusterParams, ScreenshotPoint};
use seacma_vision::dhash::Dhash;

/// A corpus with planted near-duplicate campaigns (rotating domains),
/// exact duplicates and background noise — every dedup/border/noise path.
fn gen_corpus(rng: &mut Rng, n: usize) -> Vec<ScreenshotPoint> {
    let n_centers = rng.range(1, 5);
    let centers: Vec<u128> = (0..n_centers).map(|_| rng.u128()).collect();
    (0..n)
        .map(|i| {
            let roll = rng.f64();
            if roll < 0.7 {
                let c = rng.below(centers.len() as u64) as usize;
                let mut h = centers[c];
                for _ in 0..rng.below(4) {
                    h ^= 1u128 << rng.below(128);
                }
                ScreenshotPoint::new(Dhash(h), format!("c{c}d{}.xyz", rng.below(6)))
            } else if roll < 0.8 && i > 0 {
                // Exact duplicate pressure is rare in random hashes;
                // plant some.
                let c = rng.below(centers.len() as u64) as usize;
                ScreenshotPoint::new(Dhash(centers[c]), format!("c{c}d0.xyz"))
            } else {
                ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.com"))
            }
        })
        .collect()
}

/// Random parameter draws exercise the min_pts and θc boundaries too.
fn gen_params(rng: &mut Rng) -> ClusterParams {
    ClusterParams {
        eps: *rng.pick(&[0.05, 0.1, 0.15]),
        min_pts: rng.range(1, 6),
        theta_c: rng.range(1, 5),
    }
}

/// Splits `0..n` into 1..=5 random contiguous epoch chunks.
fn gen_epoch_splits(rng: &mut Rng, n: usize) -> Vec<usize> {
    let epochs = rng.range(1, 6);
    let mut cuts: Vec<usize> = (0..epochs - 1).map(|_| rng.below(n as u64 + 1) as usize).collect();
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[test]
fn incremental_equals_batch_at_every_epoch_boundary() {
    forall!(40, |rng| {
        let params = gen_params(rng);
        let n = rng.range(10, 90);
        let pts = gen_corpus(rng, n);
        let mut inc = IncrementalClusterer::new(params);
        let mut fed = 0;
        for cut in gen_epoch_splits(rng, pts.len()) {
            for p in &pts[fed..cut] {
                inc.insert(p.clone());
            }
            fed = cut;
            assert_eq!(
                inc.clusters(),
                cluster_screenshots(&pts[..cut], params),
                "prefix {cut} of {} with {params:?}",
                pts.len()
            );
        }
    });
}

#[test]
fn exactness_holds_for_random_insertion_orders() {
    // Both paths see the *same* shuffled order (batch clustering is
    // order-sensitive in its cluster numbering, so the comparison must
    // be over a shared order — the property is incremental == batch, not
    // order-invariance).
    forall!(30, |rng| {
        let params = gen_params(rng);
        let n = rng.range(10, 70);
        let mut pts = gen_corpus(rng, n);
        // Fisher–Yates with the harness rng.
        for i in (1..pts.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            pts.swap(i, j);
        }
        let mut inc = IncrementalClusterer::new(params);
        for (i, p) in pts.iter().enumerate() {
            inc.insert(p.clone());
            if i % 7 == 0 || i + 1 == pts.len() {
                assert_eq!(inc.clusters(), cluster_screenshots(&pts[..=i], params));
            }
        }
    });
}

#[test]
fn snapshot_resume_is_byte_identical_to_uninterrupted() {
    forall!(25, |rng| {
        let config = TrackerConfig { params: gen_params(rng), ..Default::default() };
        let n = rng.range(10, 60);
        let pts = gen_corpus(rng, n);
        let cut = rng.below(pts.len() as u64 + 1) as usize;

        let mut whole = CampaignTracker::new(config);
        let mut front = CampaignTracker::new(config);
        for p in &pts[..cut] {
            whole.ingest(p.clone());
            front.ingest(p.clone());
        }
        // Sometimes snapshot at an epoch boundary, sometimes mid-epoch.
        if rng.bool(0.5) {
            assert_eq!(whole.end_epoch(), front.end_epoch());
        }
        let snap = front.to_json();
        let mut resumed = CampaignTracker::from_json(&snap).expect("snapshot parses");
        assert_eq!(resumed.to_json(), snap, "serialize∘deserialize is the identity");

        for p in &pts[cut..] {
            whole.ingest(p.clone());
            resumed.ingest(p.clone());
        }
        assert_eq!(whole.end_epoch(), resumed.end_epoch(), "summaries agree after resume");
        assert_eq!(whole.to_json(), resumed.to_json(), "final snapshots byte-identical");
    });
}
